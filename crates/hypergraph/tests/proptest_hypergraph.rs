//! Property-based cross-validation of the acyclicity machinery on random
//! hypergraphs.

use proptest::prelude::*;

use minesweeper_hypergraph::{
    elimination_width, find_beta_cycle, induced_width_of_order, is_alpha_acyclic, is_berge_acyclic,
    is_beta_acyclic, is_gamma_acyclic, is_nested_elimination_order, min_width_order,
    nested_elimination_order, treewidth_exact, Hypergraph,
};

/// Random hypergraph with up to 5 vertices and 5 edges (small enough for
/// the exponential witnesses searches).
fn hypergraph_strategy() -> impl Strategy<Value = Hypergraph> {
    (2usize..=5).prop_flat_map(|n| {
        prop::collection::vec(prop::collection::btree_set(0..n, 1..=n.min(3)), 1..=5).prop_map(
            move |edges| {
                Hypergraph::new(
                    n,
                    edges.into_iter().map(|e| e.into_iter().collect()).collect(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Proposition A.6 both ways: a NEO exists iff no β-cycle exists, and
    /// any constructed NEO passes the prefix-poset chain check.
    #[test]
    fn neo_iff_no_beta_cycle(h in hypergraph_strategy()) {
        let neo = nested_elimination_order(&h);
        let cycle = find_beta_cycle(&h);
        prop_assert_eq!(neo.is_some(), cycle.is_none(), "{:?}", h);
        if let Some(order) = neo {
            prop_assert!(is_nested_elimination_order(&h, &order));
        }
    }

    /// The acyclicity hierarchy: Berge ⇒ γ ⇒ β ⇒ α.
    #[test]
    fn hierarchy_implications(h in hypergraph_strategy()) {
        if is_berge_acyclic(&h) {
            prop_assert!(is_gamma_acyclic(&h), "Berge ⇒ γ: {:?}", h);
        }
        if is_gamma_acyclic(&h) {
            prop_assert!(is_beta_acyclic(&h), "γ ⇒ β: {:?}", h);
        }
        if is_beta_acyclic(&h) {
            prop_assert!(is_alpha_acyclic(&h), "β ⇒ α: {:?}", h);
        }
    }

    /// β-acyclicity equals "every edge-subset is α-acyclic" (the original
    /// definition from Fagin).
    #[test]
    fn beta_equals_hereditary_alpha(h in hypergraph_strategy()) {
        let m = h.num_edges();
        let mut hereditary = true;
        for mask in 1u32..(1 << m) {
            let keep: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
            if !is_alpha_acyclic(&h.edge_subgraph(&keep)) {
                hereditary = false;
                break;
            }
        }
        prop_assert_eq!(hereditary, is_beta_acyclic(&h), "{:?}", h);
    }

    /// Proposition A.7: Gaifman induced width equals prefix-poset
    /// elimination width for every order, and min_width_order achieves the
    /// exact treewidth at these sizes.
    #[test]
    fn widths_agree(h in hypergraph_strategy()) {
        let n = h.num_vertices();
        // Check a handful of orders: identity, reverse, and one rotation.
        let identity: Vec<usize> = (0..n).collect();
        let reverse: Vec<usize> = (0..n).rev().collect();
        let rotated: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
        for order in [identity, reverse, rotated] {
            prop_assert_eq!(
                induced_width_of_order(&h, &order),
                elimination_width(&h, &order),
                "{:?} {:?}", h, order
            );
        }
        let (best, w) = min_width_order(&h, 6);
        prop_assert_eq!(w, treewidth_exact(&h, 6));
        prop_assert_eq!(induced_width_of_order(&h, &best), w);
    }

    /// A NEO's elimination width never undercuts the treewidth.
    #[test]
    fn neo_width_bounded_below_by_treewidth(h in hypergraph_strategy()) {
        if let Some(order) = nested_elimination_order(&h) {
            let tw = treewidth_exact(&h, 6);
            prop_assert!(elimination_width(&h, &order) >= tw);
        }
    }
}
