//! Hypergraph structure theory for join queries.
//!
//! Implements Appendix A of "Beyond Worst-case Analysis for Joins with
//! Minesweeper" (Ngo, Nguyen, Ré, Rudra; PODS 2014):
//!
//! * [`Hypergraph`] — vertices are query attributes, hyperedges are atoms;
//! * GYO reduction for **α-acyclicity** and join-tree construction
//!   ([`gyo`]) — the substrate for Yannakakis' algorithm;
//! * **β-acyclicity** via Brouwer–Kolen nest-point elimination and (for
//!   cross-validation) direct β-cycle search ([`beta`]);
//! * **nested elimination orders** (Definition A.5 / Proposition A.6) — the
//!   GAOs under which Minesweeper achieves `Õ(|C| + Z)`;
//! * **prefix posets** and **elimination width** (Section A.2 /
//!   Proposition A.7) — the `w` of the `Õ(|C|^{w+1} + Z)` bound;
//! * treewidth computation (exact for small hypergraphs, min-fill heuristic
//!   otherwise) ([`treewidth`]).

pub mod beta;
pub mod elimination;
pub mod gyo;
pub mod hierarchy;
pub mod hypergraph;
pub mod treewidth;

pub use beta::{find_beta_cycle, is_beta_acyclic, nest_points, nested_elimination_order};
pub use elimination::{elimination_width, is_nested_elimination_order, prefix_posets, PrefixPoset};
pub use gyo::{gyo_reduce, is_alpha_acyclic, join_tree, JoinTree};
pub use hierarchy::{find_gamma_cycle, is_berge_acyclic, is_gamma_acyclic};
pub use hypergraph::Hypergraph;
pub use treewidth::{induced_width_of_order, min_width_order, treewidth_exact, treewidth_upper};
