//! The hypergraph of a join query (Appendix A).
//!
//! Vertices are attribute indices `0..n`; each hyperedge is the attribute
//! set of one atom. Duplicate hyperedges are allowed (a query may join two
//! atoms over the same attribute set).

use std::collections::BTreeSet;

/// A hypergraph `H = (V, E)` with `V = {0, …, n−1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<BTreeSet<usize>>,
}

impl Hypergraph {
    /// Creates a hypergraph on `n` vertices from edge vertex lists. Panics
    /// if an edge mentions a vertex `≥ n` or is empty.
    pub fn new(n: usize, edges: Vec<Vec<usize>>) -> Self {
        let edges: Vec<BTreeSet<usize>> = edges
            .into_iter()
            .map(|e| {
                let s: BTreeSet<usize> = e.into_iter().collect();
                assert!(!s.is_empty(), "hyperedges must be non-empty");
                assert!(s.iter().all(|&v| v < n), "edge vertex out of range");
                s
            })
            .collect();
        Hypergraph { n, edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[BTreeSet<usize>] {
        &self.edges
    }

    /// Edge `i`.
    pub fn edge(&self, i: usize) -> &BTreeSet<usize> {
        &self.edges[i]
    }

    /// Indices of edges containing vertex `v` (the paper's `B(v)`).
    pub fn edges_containing(&self, v: usize) -> Vec<usize> {
        (0..self.edges.len())
            .filter(|&i| self.edges[i].contains(&v))
            .collect()
    }

    /// True if vertex `v` appears in exactly one hyperedge (a *private*
    /// attribute in the paper's terminology).
    pub fn is_private(&self, v: usize) -> bool {
        self.edges.iter().filter(|e| e.contains(&v)).count() == 1
    }

    /// Vertices that appear in at least one edge.
    pub fn covered_vertices(&self) -> BTreeSet<usize> {
        self.edges.iter().flatten().copied().collect()
    }

    /// The sub-hypergraph induced by keeping only the given edges (vertex
    /// set unchanged). Used by the β-acyclicity definition ("every
    /// sub-hypergraph is α-acyclic").
    pub fn edge_subgraph(&self, keep: &[usize]) -> Hypergraph {
        Hypergraph {
            n: self.n,
            edges: keep.iter().map(|&i| self.edges[i].clone()).collect(),
        }
    }

    /// Removes vertex `v` from every edge, dropping edges that become
    /// empty. This is the `H − {v}` operation of the nest-point elimination
    /// argument (proof of Proposition A.6).
    pub fn remove_vertex(&self, v: usize) -> Hypergraph {
        let edges = self
            .edges
            .iter()
            .map(|e| {
                let mut e = e.clone();
                e.remove(&v);
                e
            })
            .filter(|e| !e.is_empty())
            .collect();
        Hypergraph { n: self.n, edges }
    }

    /// The Gaifman (primal) graph: an adjacency matrix where two vertices
    /// are connected iff they co-occur in some hyperedge.
    pub fn gaifman(&self) -> Vec<Vec<bool>> {
        let mut adj = vec![vec![false; self.n]; self.n];
        for e in &self.edges {
            let vs: Vec<usize> = e.iter().copied().collect();
            for (i, &a) in vs.iter().enumerate() {
                for &b in &vs[i + 1..] {
                    adj[a][b] = true;
                    adj[b][a] = true;
                }
            }
        }
        adj
    }
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::Hypergraph;

    /// Q∆ = R(A,B) ⋈ S(A,C) ⋈ T(B,C): α-cyclic and β-cyclic (Example A.1).
    pub fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![0, 2], vec![1, 2]])
    }

    /// Q∆+U: the triangle plus U(A,B,C): α-acyclic but β-cyclic
    /// (Example A.1).
    pub fn triangle_plus_u() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![0, 1, 2]])
    }

    /// The bow-tie query R(X) ⋈ S(X,Y) ⋈ T(Y): β-acyclic.
    pub fn bowtie() -> Hypergraph {
        Hypergraph::new(2, vec![vec![0], vec![0, 1], vec![1]])
    }

    /// Example B.7: R(A,B,C) ⋈ S(A,C) ⋈ T(B,C) — β-acyclic; (C,A,B) is a
    /// nested elimination order while (A,B,C) is not.
    pub fn example_b7() -> Hypergraph {
        Hypergraph::new(3, vec![vec![0, 1, 2], vec![0, 2], vec![1, 2]])
    }

    /// Path query of length m over m+1 attributes.
    pub fn path(m: usize) -> Hypergraph {
        Hypergraph::new(m + 1, (0..m).map(|i| vec![i, i + 1]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;

    #[test]
    fn basic_accessors() {
        let h = triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edges_containing(0), vec![0, 1]);
        assert!(!h.is_private(0));
        let b = bowtie();
        assert!(!b.is_private(0)); // X appears in R and S
        assert_eq!(b.covered_vertices().len(), 2);
    }

    #[test]
    fn remove_vertex_drops_empty_edges() {
        let b = bowtie();
        let h = b.remove_vertex(0);
        // R(X) became empty and was dropped; S and T survive on {Y}.
        assert_eq!(h.num_edges(), 2);
        assert!(h.edges().iter().all(|e| e.contains(&1)));
    }

    #[test]
    fn edge_subgraph_selects() {
        let h = triangle_plus_u();
        let sub = h.edge_subgraph(&[0, 1, 2]);
        assert_eq!(sub, triangle());
    }

    #[test]
    fn gaifman_of_path() {
        let h = path(3);
        let g = h.gaifman();
        assert!(g[0][1] && g[1][2] && g[2][3]);
        assert!(!g[0][2] && !g[0][3] && !g[1][3]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_edge_rejected() {
        Hypergraph::new(2, vec![vec![]]);
    }
}
