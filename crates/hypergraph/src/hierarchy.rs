//! The acyclicity hierarchy of Section 6.1 / Fagin (1983):
//!
//! ```text
//!   Berge-acyclicity ⊊ γ-acyclicity ⊊ (jtdb) ⊊ β-acyclicity ⊊ α-acyclicity
//! ```
//!
//! This module adds the two strongest notions to the β/α tests of the
//! sibling modules:
//!
//! * **Berge-acyclicity** — the bipartite incidence multigraph
//!   (vertices vs edges, one arc per membership) has no cycle; equivalent
//!   to "no Berge cycle", i.e. no sequence `(F₁,x₁,F₂,x₂,…,F_m,x_m,F₁)`
//!   with `m ≥ 2`, distinct edges, distinct vertices, `xᵢ ∈ Fᵢ ∩ Fᵢ₊₁`.
//!   In particular two edges sharing two vertices already form one.
//! * **γ-acyclicity** — no γ-cycle: a sequence shaped like a β-cycle
//!   (`m ≥ 3`) in which every vertex *except possibly the last* belongs to
//!   exactly its two adjacent edges (Fagin's Definition; the β-cycle of
//!   Definition A.4 requires exclusivity of *every* vertex, so every
//!   γ-acyclic hypergraph is β-acyclic).
//!
//! The searches are exponential-time backtracking — these run on *query*
//! hypergraphs, which have a handful of edges.
//!
//! (The `jtdb` notion of Duris (2012) between γ and β is documented but
//! not implemented; it needs join-tree enumeration machinery that nothing
//! in the paper's algorithms consumes.)

use crate::hypergraph::Hypergraph;

/// Berge-acyclicity via cycle detection in the incidence multigraph.
pub fn is_berge_acyclic(h: &Hypergraph) -> bool {
    // Multigraph condition 1: no vertex pair may occur in two edges.
    for i in 0..h.num_edges() {
        for j in (i + 1)..h.num_edges() {
            if h.edge(i).intersection(h.edge(j)).count() >= 2 {
                return false;
            }
        }
    }
    // Duplicate edges of size ≥ 2 share two vertices (caught above);
    // duplicate singletons share one membership each — they do not form a
    // Berge cycle by themselves, but identical edges of size ≥ 2 do.
    // Condition 2: the simple bipartite incidence graph is a forest.
    // Union-find over vertex-nodes and edge-nodes.
    let n = h.num_vertices();
    let m = h.num_edges();
    let mut parent: Vec<usize> = (0..n + m).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for (e, edge) in h.edges().iter().enumerate() {
        for &v in edge {
            let a = find(&mut parent, v);
            let b = find(&mut parent, n + e);
            if a == b {
                return false; // membership arc closes a cycle
            }
            parent[a] = b;
        }
    }
    true
}

/// Searches for a γ-cycle; `None` means γ-acyclic. Returns
/// `(edges, vertices)` with `edges.len() == vertices.len() == m ≥ 3`; all
/// vertices except possibly the last are exclusive to their two adjacent
/// edges.
pub fn find_gamma_cycle(h: &Hypergraph) -> Option<(Vec<usize>, Vec<usize>)> {
    let m = h.num_edges();
    for start in 0..m {
        let mut edges = vec![start];
        let mut verts = Vec::new();
        if extend(h, start, &mut edges, &mut verts) {
            return Some((edges, verts));
        }
    }
    None
}

fn extend(h: &Hypergraph, start: usize, edges: &mut Vec<usize>, verts: &mut Vec<usize>) -> bool {
    let last = *edges.last().unwrap();
    // Close the cycle: the final vertex x_m ∈ F_m ∩ F₁ need not be
    // exclusive — any shared fresh vertex closes a γ-cycle.
    if edges.len() >= 3 {
        for &u in h.edge(last) {
            if h.edge(start).contains(&u) && !verts.contains(&u) {
                verts.push(u);
                if validate_gamma(h, edges, verts) {
                    return true;
                }
                verts.pop();
            }
        }
    }
    if edges.len() >= h.num_edges() {
        return false;
    }
    for next in 0..h.num_edges() {
        if next == start || edges.contains(&next) {
            continue;
        }
        for &u in h.edge(last) {
            if !h.edge(next).contains(&u) || verts.contains(&u) {
                continue;
            }
            edges.push(next);
            verts.push(u);
            if extend(h, start, edges, verts) {
                return true;
            }
            verts.pop();
            edges.pop();
        }
    }
    false
}

/// Full validation of a candidate γ-cycle (Fagin's definition: every
/// vertex but the last is exclusive to its two adjacent edges).
fn validate_gamma(h: &Hypergraph, edges: &[usize], verts: &[usize]) -> bool {
    let m = edges.len();
    if m < 3 || verts.len() != m {
        return false;
    }
    for i in 0..m {
        let u = verts[i];
        if !h.edge(edges[i]).contains(&u) || !h.edge(edges[(i + 1) % m]).contains(&u) {
            return false;
        }
        if i + 1 < m {
            // Exclusivity for all but the last vertex.
            for (j, &e) in edges.iter().enumerate() {
                if j != i && j != (i + 1) % m && h.edge(e).contains(&u) {
                    return false;
                }
            }
        }
    }
    true
}

/// γ-acyclicity test.
pub fn is_gamma_acyclic(h: &Hypergraph) -> bool {
    find_gamma_cycle(h).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beta::is_beta_acyclic;
    use crate::gyo::is_alpha_acyclic;
    use crate::hypergraph::fixtures::*;

    #[test]
    fn berge_basics() {
        // A path of binary edges is Berge-acyclic.
        assert!(is_berge_acyclic(&path(4)));
        // The bow-tie {X},{X,Y},{Y}: each unary edge adds one arc into an
        // existing component ⇒ cycle? Incidence graph: X–R, X–S, Y–S, Y–T:
        // a tree. Berge-acyclic.
        assert!(is_berge_acyclic(&bowtie()));
        // Triangle: cyclic at every level.
        assert!(!is_berge_acyclic(&triangle()));
        // Two edges sharing two vertices form a Berge cycle.
        let h = Hypergraph::new(3, vec![vec![0, 1, 2], vec![0, 1]]);
        assert!(!is_berge_acyclic(&h));
    }

    #[test]
    fn gamma_basics() {
        assert!(is_gamma_acyclic(&path(5)));
        assert!(is_gamma_acyclic(&bowtie()));
        assert!(!is_gamma_acyclic(&triangle()));
        assert!(!is_gamma_acyclic(&triangle_plus_u()));
    }

    /// The hierarchy is strict; exhibit separating examples at each level.
    #[test]
    fn hierarchy_is_strict() {
        // Berge ⊊ γ: two edges sharing two vertices ({A,B,C}, {A,B}) are
        // γ-acyclic (no 3 distinct edges) but not Berge-acyclic.
        let h = Hypergraph::new(3, vec![vec![0, 1, 2], vec![0, 1]]);
        assert!(!is_berge_acyclic(&h));
        assert!(is_gamma_acyclic(&h));
        // γ ⊊ β: F₁={A,B}, F₂={B,C}, F₃={C,A,B}… pick Fagin's classic:
        // {A,B}, {B,C}, {A,B,C}: γ-cycle? Sequence needs m≥3 distinct
        // edges forming a cycle where all but the last vertex are
        // exclusive. (AB, B, BC, C, ABC, A, AB): B ∈ AB∩BC but B ∈ ABC ⇒
        // not exclusive. Try (AB, A?, …) — known result: this hypergraph
        // is β-acyclic but NOT γ-acyclic.
        let h = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]]);
        assert!(is_beta_acyclic(&h));
        assert!(!is_gamma_acyclic(&h), "β-acyclic yet γ-cyclic");
        // β ⊊ α: the triangle plus universal edge (Example A.1).
        assert!(is_alpha_acyclic(&triangle_plus_u()));
        assert!(!is_beta_acyclic(&triangle_plus_u()));
    }

    /// Implications downward: Berge ⇒ γ ⇒ β ⇒ α on a catalogue of
    /// hypergraphs.
    #[test]
    fn hierarchy_implications_hold() {
        let catalogue = vec![
            triangle(),
            triangle_plus_u(),
            bowtie(),
            example_b7(),
            path(3),
            path(5),
            Hypergraph::new(3, vec![vec![0, 1, 2], vec![0, 1]]),
            Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]]),
            Hypergraph::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]),
            Hypergraph::new(
                4,
                vec![
                    vec![0],
                    vec![0, 1],
                    vec![0, 2],
                    vec![0, 3],
                    vec![1],
                    vec![2],
                    vec![3],
                ],
            ),
        ];
        for h in &catalogue {
            if is_berge_acyclic(h) {
                assert!(is_gamma_acyclic(h), "Berge ⇒ γ fails on {h:?}");
            }
            if is_gamma_acyclic(h) {
                assert!(is_beta_acyclic(h), "γ ⇒ β fails on {h:?}");
            }
            if is_beta_acyclic(h) {
                assert!(is_alpha_acyclic(h), "β ⇒ α fails on {h:?}");
            }
        }
    }

    #[test]
    fn gamma_cycle_witness_is_valid() {
        let (edges, verts) = find_gamma_cycle(&triangle()).unwrap();
        assert!(validate_gamma(&triangle(), &edges, &verts));
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn star_query_is_berge_acyclic() {
        let star = Hypergraph::new(
            4,
            vec![
                vec![0],
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1],
                vec![2],
                vec![3],
            ],
        );
        assert!(is_berge_acyclic(&star));
        assert!(is_gamma_acyclic(&star));
    }
}
