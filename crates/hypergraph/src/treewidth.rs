//! Treewidth via elimination orders.
//!
//! Proposition A.7: the treewidth of a hypergraph equals the minimum, over
//! all elimination orders, of the induced width — and the induced width of
//! a particular order equals `max_j |U(P_j)|` from the prefix-poset
//! recursion. We provide the classical Gaifman-graph formulation (eliminate
//! vertices back to front, connecting the earlier neighbours of each
//! eliminated vertex into a clique), an exact minimizer for small vertex
//! counts, and the min-fill heuristic for larger hypergraphs.

use crate::hypergraph::Hypergraph;

/// Induced width of `order` on the Gaifman graph: eliminate `order[n−1]`
/// first; each elimination connects the remaining neighbours of the
/// eliminated vertex. The width is the maximum number of earlier
/// neighbours seen at elimination time.
pub fn induced_width_of_order(h: &Hypergraph, order: &[usize]) -> usize {
    let n = h.num_vertices();
    assert_eq!(order.len(), n);
    let mut adj = h.gaifman();
    let mut width = 0usize;
    let mut eliminated = vec![false; n];
    for j in (0..n).rev() {
        let v = order[j];
        let nbrs: Vec<usize> = (0..n)
            .filter(|&u| !eliminated[u] && u != v && adj[v][u])
            .collect();
        width = width.max(nbrs.len());
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                adj[a][b] = true;
                adj[b][a] = true;
            }
        }
        eliminated[v] = true;
    }
    width
}

/// Exact treewidth by exhausting all elimination orders. Only feasible for
/// small `n` (the hypergraphs of queries, not of data); panics if
/// `n > max_n` to protect against accidental blow-ups.
pub fn treewidth_exact(h: &Hypergraph, max_n: usize) -> usize {
    let n = h.num_vertices();
    assert!(n <= max_n, "treewidth_exact limited to {max_n} vertices");
    let mut order: Vec<usize> = (0..n).collect();
    let mut best = usize::MAX;
    permute(&mut order, 0, &mut |perm| {
        best = best.min(induced_width_of_order(h, perm));
    });
    if n == 0 {
        0
    } else {
        best
    }
}

fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

/// Min-fill heuristic: repeatedly eliminate the vertex whose elimination
/// adds the fewest fill edges. Returns `(order, width)` — an upper bound on
/// treewidth. The returned order eliminates back to front (i.e. it is a GAO
/// whose induced width is the reported width).
pub fn treewidth_upper(h: &Hypergraph) -> (Vec<usize>, usize) {
    let n = h.num_vertices();
    let mut adj = h.gaifman();
    let mut alive: Vec<bool> = vec![true; n];
    let mut rev_order = Vec::with_capacity(n);
    let mut width = 0usize;
    for _ in 0..n {
        // Choose the live vertex minimizing fill-in, tie-break on degree
        // then index for determinism.
        let mut best: Option<(usize, usize, usize)> = None; // (fill, degree, v)
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let nbrs: Vec<usize> = (0..n)
                .filter(|&u| alive[u] && u != v && adj[v][u])
                .collect();
            let mut fill = 0usize;
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if !adj[a][b] {
                        fill += 1;
                    }
                }
            }
            let cand = (fill, nbrs.len(), v);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        let (_, deg, v) = best.expect("a live vertex exists");
        width = width.max(deg);
        let nbrs: Vec<usize> = (0..n)
            .filter(|&u| alive[u] && u != v && adj[v][u])
            .collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                adj[a][b] = true;
                adj[b][a] = true;
            }
        }
        alive[v] = false;
        rev_order.push(v);
    }
    rev_order.reverse();
    (rev_order, width)
}

/// Finds an order minimizing induced width: exact for `n ≤ exact_limit`,
/// min-fill heuristic beyond. Returns `(order, width)`.
pub fn min_width_order(h: &Hypergraph, exact_limit: usize) -> (Vec<usize>, usize) {
    let n = h.num_vertices();
    if n <= exact_limit {
        let mut order: Vec<usize> = (0..n).collect();
        let mut best_order = order.clone();
        let mut best = usize::MAX;
        permute(&mut order, 0, &mut |perm| {
            let w = induced_width_of_order(h, perm);
            if w < best {
                best = w;
                best_order = perm.to_vec();
            }
        });
        (best_order, if n == 0 { 0 } else { best })
    } else {
        treewidth_upper(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::elimination_width;
    use crate::hypergraph::fixtures::*;

    #[test]
    fn path_has_treewidth_one() {
        assert_eq!(treewidth_exact(&path(4), 8), 1);
    }

    #[test]
    fn triangle_has_treewidth_two() {
        assert_eq!(treewidth_exact(&triangle(), 8), 2);
        assert_eq!(treewidth_exact(&triangle_plus_u(), 8), 2);
    }

    #[test]
    fn bowtie_has_treewidth_one() {
        assert_eq!(treewidth_exact(&bowtie(), 8), 1);
    }

    #[test]
    fn clique_query_has_treewidth_k_minus_one() {
        // Prop 5.3's Q_w: pairwise edges on w+1 vertices plus a universal
        // edge; treewidth w.
        for w in 2..4usize {
            let k = w + 1;
            let mut edges: Vec<Vec<usize>> = Vec::new();
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push(vec![i, j]);
                }
            }
            edges.push((0..k).collect());
            let h = Hypergraph::new(k, edges);
            assert_eq!(treewidth_exact(&h, 8), w);
        }
    }

    #[test]
    fn induced_width_matches_elimination_width() {
        // Proposition A.7: Gaifman-graph induced width equals the
        // prefix-poset universe bound, for every order.
        for h in [
            triangle(),
            triangle_plus_u(),
            bowtie(),
            example_b7(),
            path(3),
        ] {
            let n = h.num_vertices();
            let mut order: Vec<usize> = (0..n).collect();
            permute(&mut order, 0, &mut |perm| {
                assert_eq!(
                    induced_width_of_order(&h, perm),
                    elimination_width(&h, perm),
                    "{h:?} {perm:?}"
                );
            });
        }
    }

    #[test]
    fn heuristic_is_sound_upper_bound() {
        for h in [
            triangle(),
            triangle_plus_u(),
            bowtie(),
            example_b7(),
            path(5),
        ] {
            let exact = treewidth_exact(&h, 8);
            let (order, w) = treewidth_upper(&h);
            assert!(w >= exact);
            assert_eq!(induced_width_of_order(&h, &order), w);
        }
    }

    #[test]
    fn min_width_order_finds_optimum_for_small_graphs() {
        for h in [triangle(), bowtie(), path(4), example_b7()] {
            let (order, w) = min_width_order(&h, 8);
            assert_eq!(w, treewidth_exact(&h, 8));
            assert_eq!(induced_width_of_order(&h, &order), w);
        }
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn exact_guard_panics() {
        treewidth_exact(&path(10), 8);
    }
}
