//! GYO (Graham / Yu–Özsoyoğlu) reduction: α-acyclicity and join trees.
//!
//! A hypergraph is α-acyclic iff the GYO procedure empties it (Appendix A:
//! "remove any edge that is empty or contained in another hyperedge, or
//! remove vertices that appear in at most one hyperedge"). While reducing we
//! record, for every absorbed edge, the edge that absorbed it — this yields
//! a join tree (Definition A.3) whose bags are the original hyperedges,
//! which is exactly what Yannakakis' algorithm needs.

use std::collections::BTreeSet;

use crate::hypergraph::Hypergraph;

/// A join tree over the original hyperedges of an α-acyclic hypergraph.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// `parent[i]` is the parent edge of edge `i`; the root has `None`.
    /// A hypergraph whose GYO reduction leaves several disconnected
    /// components yields a forest: one root per component.
    pub parent: Vec<Option<usize>>,
    /// Edge indices in a bottom-up order (every node appears before its
    /// parent) — the order Yannakakis' upward semijoin pass uses.
    pub bottom_up: Vec<usize>,
}

impl JoinTree {
    /// Edge indices top-down (every node appears after its parent).
    pub fn top_down(&self) -> Vec<usize> {
        let mut v = self.bottom_up.clone();
        v.reverse();
        v
    }

    /// The children of each node.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(i);
            }
        }
        ch
    }
}

/// Runs the GYO reduction. Returns the set of surviving (non-absorbed)
/// edges; the hypergraph is α-acyclic iff at most one edge survives per
/// connected component, i.e. iff no two surviving edges share a vertex and
/// each surviving edge's private part is the whole edge. In practice we
/// return the reduced edge contents: α-acyclic iff all reduced edges are
/// empty or the reduction absorbed everything into single edges whose
/// remaining vertices are private.
pub fn gyo_reduce(h: &Hypergraph) -> Vec<BTreeSet<usize>> {
    let mut edges: Vec<BTreeSet<usize>> = h.edges().to_vec();
    let mut alive: Vec<bool> = vec![true; edges.len()];
    loop {
        let mut changed = false;
        // Rule 1: remove vertices that appear in at most one live edge.
        let mut count = vec![0usize; h.num_vertices()];
        for (i, e) in edges.iter().enumerate() {
            if alive[i] {
                for &v in e {
                    count[v] += 1;
                }
            }
        }
        for (i, e) in edges.iter_mut().enumerate() {
            if !alive[i] {
                continue;
            }
            let before = e.len();
            e.retain(|&v| count[v] > 1);
            if e.len() != before {
                changed = true;
            }
        }
        // Rule 2: remove edges that are empty or contained in another live
        // edge.
        for i in 0..edges.len() {
            if !alive[i] {
                continue;
            }
            if edges[i].is_empty() {
                alive[i] = false;
                changed = true;
                continue;
            }
            for j in 0..edges.len() {
                if i != j && alive[j] && edges[i].is_subset(&edges[j]) {
                    // Ties (equal sets) are broken by index so exactly one
                    // of the pair survives.
                    if !(edges[i] == edges[j] && i < j) {
                        alive[i] = false;
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    edges
        .into_iter()
        .zip(alive)
        .filter_map(|(e, a)| if a { Some(e) } else { None })
        .collect()
}

/// α-acyclicity test: the GYO reduction empties the hypergraph.
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    gyo_reduce(h).is_empty()
}

/// Builds a join tree (forest for disconnected hypergraphs) over the
/// original edges. Returns `None` when the hypergraph is not α-acyclic.
///
/// The construction mirrors GYO: whenever an edge's remaining vertices are
/// contained in another live edge, it is absorbed and the absorber becomes
/// its parent; vertices private to a single live edge are deleted. Edges
/// that survive to the end with no absorber become roots.
pub fn join_tree(h: &Hypergraph) -> Option<JoinTree> {
    let m = h.num_edges();
    let mut edges: Vec<BTreeSet<usize>> = h.edges().to_vec();
    let mut alive: Vec<bool> = vec![true; m];
    let mut parent: Vec<Option<usize>> = vec![None; m];
    let mut bottom_up: Vec<usize> = Vec::with_capacity(m);
    loop {
        let mut changed = false;
        let mut count = vec![0usize; h.num_vertices()];
        for (i, e) in edges.iter().enumerate() {
            if alive[i] {
                for &v in e {
                    count[v] += 1;
                }
            }
        }
        for (i, e) in edges.iter_mut().enumerate() {
            if !alive[i] {
                continue;
            }
            let before = e.len();
            e.retain(|&v| count[v] > 1);
            if e.len() != before {
                changed = true;
            }
        }
        for i in 0..m {
            if !alive[i] {
                continue;
            }
            let absorber = (0..m).find(|&j| {
                j != i
                    && alive[j]
                    && edges[i].is_subset(&edges[j])
                    && !(edges[i] == edges[j] && i < j)
            });
            if let Some(j) = absorber {
                alive[i] = false;
                parent[i] = Some(j);
                bottom_up.push(i);
                changed = true;
            } else if edges[i].is_empty() {
                // Isolated component fully reduced: make it a root.
                alive[i] = false;
                bottom_up.push(i);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if alive.iter().any(|&a| a) {
        return None; // irreducible core left: α-cyclic
    }
    Some(JoinTree { parent, bottom_up })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::fixtures::*;

    #[test]
    fn triangle_is_alpha_cyclic() {
        assert!(!is_alpha_acyclic(&triangle()));
        assert!(join_tree(&triangle()).is_none());
    }

    #[test]
    fn triangle_plus_u_is_alpha_acyclic() {
        // Example A.1: adding the universal edge makes it α-acyclic.
        let h = triangle_plus_u();
        assert!(is_alpha_acyclic(&h));
        let t = join_tree(&h).unwrap();
        // The universal edge (index 3) must be the root.
        assert_eq!(t.parent[3], None);
        assert_eq!(t.parent[0], Some(3));
        assert_eq!(t.parent[1], Some(3));
        assert_eq!(t.parent[2], Some(3));
        assert_eq!(t.children()[3].len(), 3);
    }

    #[test]
    fn bowtie_and_path_are_alpha_acyclic() {
        assert!(is_alpha_acyclic(&bowtie()));
        assert!(is_alpha_acyclic(&path(5)));
        let t = join_tree(&path(5)).unwrap();
        // Every non-root edge's parent shares a vertex with it.
        let h = path(5);
        for (i, p) in t.parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(!h.edge(i).is_disjoint(h.edge(*p)), "edge {i} parent {p}");
            }
        }
    }

    #[test]
    fn join_tree_bottom_up_is_consistent() {
        let h = triangle_plus_u();
        let t = join_tree(&h).unwrap();
        // bottom_up lists every edge exactly once, children before parents.
        assert_eq!(t.bottom_up.len(), h.num_edges());
        let pos: Vec<usize> = {
            let mut p = vec![0; h.num_edges()];
            for (k, &e) in t.bottom_up.iter().enumerate() {
                p[e] = k;
            }
            p
        };
        for (i, par) in t.parent.iter().enumerate() {
            if let Some(par) = par {
                assert!(pos[i] < pos[*par], "child {i} after parent {par}");
            }
        }
        let td = t.top_down();
        assert_eq!(td.len(), h.num_edges());
        assert_eq!(td[0], *t.bottom_up.last().unwrap());
    }

    #[test]
    fn duplicate_edges_absorb_each_other() {
        let h = Hypergraph::new(2, vec![vec![0, 1], vec![0, 1]]);
        assert!(is_alpha_acyclic(&h));
        let t = join_tree(&h).unwrap();
        // Exactly one root.
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
    }

    #[test]
    fn disconnected_components_form_forest() {
        let h = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3]]);
        assert!(is_alpha_acyclic(&h));
        let t = join_tree(&h).unwrap();
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 2);
    }

    #[test]
    fn star_query_is_alpha_acyclic() {
        // R1(A), S(A,B), S(A,C), S(A,D), R2(B), R3(C), R4(D).
        let h = Hypergraph::new(
            4,
            vec![
                vec![0],
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1],
                vec![2],
                vec![3],
            ],
        );
        assert!(is_alpha_acyclic(&h));
        assert!(join_tree(&h).is_some());
    }
}
