//! β-acyclicity: nest points, β-cycles, and nested elimination orders.
//!
//! A hypergraph is β-acyclic iff every sub-hypergraph is α-acyclic, iff it
//! has no β-cycle (Definition A.4), iff some vertex ordering is a *nested
//! elimination order* (Proposition A.6). The constructive route uses nest
//! points: Brouwer–Kolen (1980) proved every β-acyclic hypergraph has at
//! least two *nest points* — vertices whose incident edges form a chain
//! under inclusion. Eliminating nest points back to front yields the NEO
//! the Minesweeper analysis needs (Section 4).

use crate::hypergraph::Hypergraph;

/// The nest points of `h` restricted to vertices that occur in some edge: a
/// vertex `v` is a nest point when `{F ∈ E : v ∈ F}` is a chain under `⊆`.
pub fn nest_points(h: &Hypergraph) -> Vec<usize> {
    let covered = h.covered_vertices();
    covered
        .into_iter()
        .filter(|&v| is_nest_point(h, v))
        .collect()
}

fn is_nest_point(h: &Hypergraph, v: usize) -> bool {
    let incident = h.edges_containing(v);
    let mut sets: Vec<_> = incident.iter().map(|&i| h.edge(i)).collect();
    sets.sort_by_key(|s| s.len());
    sets.windows(2).all(|w| w[0].is_subset(w[1]))
}

/// Computes a nested elimination order `v₁, …, v_n` via nest-point
/// elimination, or `None` if the hypergraph is β-cyclic.
///
/// Vertices not covered by any edge are appended at deterministic positions
/// (they are trivially nest points). The construction follows the proof of
/// Proposition A.6: pick a nest point `v`, make it the *last* remaining
/// vertex of the order, recurse on `H − {v}`.
pub fn nested_elimination_order(h: &Hypergraph) -> Option<Vec<usize>> {
    let n = h.num_vertices();
    let mut current = h.clone();
    let mut removed = vec![false; n];
    let mut suffix: Vec<usize> = Vec::with_capacity(n);
    // Vertices in no edge at all can be eliminated immediately.
    loop {
        let covered = current.covered_vertices();
        // Pick the smallest-index unremoved vertex that is currently a nest
        // point (uncovered vertices are nest points vacuously).
        let pick = (0..n)
            .filter(|&v| !removed[v])
            .find(|&v| !covered.contains(&v) || is_nest_point(&current, v));
        match pick {
            Some(v) => {
                removed[v] = true;
                suffix.push(v);
                current = current.remove_vertex(v);
                if suffix.len() == n {
                    break;
                }
            }
            None => return None, // some covered vertices remain, none a nest point
        }
    }
    suffix.reverse();
    Some(suffix)
}

/// β-acyclicity test (via nest-point elimination).
///
/// ```
/// use minesweeper_hypergraph::{is_beta_acyclic, Hypergraph};
/// // The bow-tie {X}, {X,Y}, {Y} is β-acyclic…
/// let bowtie = Hypergraph::new(2, vec![vec![0], vec![0, 1], vec![1]]);
/// assert!(is_beta_acyclic(&bowtie));
/// // …while the triangle is not.
/// let triangle = Hypergraph::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 2]]);
/// assert!(!is_beta_acyclic(&triangle));
/// ```
pub fn is_beta_acyclic(h: &Hypergraph) -> bool {
    nested_elimination_order(h).is_some()
}

/// Searches for a β-cycle `(F₁,u₁,F₂,u₂,…,F_m,u_m,F₁)` with `m ≥ 3`
/// (Definition A.4): distinct vertices `uᵢ`, distinct edges `Fᵢ`,
/// `uᵢ ∈ Fᵢ ∩ Fᵢ₊₁`, and `uᵢ ∉ F_j` for every other `j`. Exponential-time
/// backtracking search; intended for cross-validating [`is_beta_acyclic`]
/// on small hypergraphs in tests.
///
/// Returns the cycle as `(edges, vertices)` with `edges.len() ==
/// vertices.len() == m`.
pub fn find_beta_cycle(h: &Hypergraph) -> Option<(Vec<usize>, Vec<usize>)> {
    let m = h.num_edges();
    for start in 0..m {
        let mut edges = vec![start];
        let mut verts = Vec::new();
        if extend_cycle(h, start, &mut edges, &mut verts) {
            return Some((edges, verts));
        }
    }
    None
}

fn extend_cycle(
    h: &Hypergraph,
    start: usize,
    edges: &mut Vec<usize>,
    verts: &mut Vec<usize>,
) -> bool {
    let last = *edges.last().unwrap();
    // Option 1: close the cycle back to `start` if long enough.
    if edges.len() >= 3 {
        for &u in h.edge(last) {
            if h.edge(start).contains(&u)
                && !verts.contains(&u)
                && cycle_vertex_ok(h, u, edges, verts, edges.len() - 1, true)
            {
                verts.push(u);
                if revalidate(h, edges, verts) {
                    return true;
                }
                verts.pop();
            }
        }
    }
    if edges.len() >= h.num_edges() {
        return false;
    }
    // Option 2: extend with a new edge.
    for next in 0..h.num_edges() {
        if edges.contains(&next) || next == start {
            continue;
        }
        for &u in h.edge(last) {
            if h.edge(next).contains(&u)
                && !verts.contains(&u)
                && cycle_vertex_ok(h, u, edges, verts, edges.len() - 1, false)
            {
                edges.push(next);
                verts.push(u);
                if extend_cycle(h, start, edges, verts) {
                    return true;
                }
                verts.pop();
                edges.pop();
            }
        }
    }
    false
}

/// Checks `u = u_i` is absent from all currently chosen edges except
/// `F_i`/`F_{i+1}` (where `F_{i+1}` is `F₁` when closing).
fn cycle_vertex_ok(
    h: &Hypergraph,
    u: usize,
    edges: &[usize],
    _verts: &[usize],
    i: usize,
    closing: bool,
) -> bool {
    for (j, &e) in edges.iter().enumerate() {
        let allowed = j == i || (closing && j == 0);
        if !allowed && h.edge(e).contains(&u) {
            return false;
        }
    }
    true
}

/// Full re-validation of a candidate cycle against Definition A.4 (the
/// incremental checks above cannot see future edges, so verify at closing
/// time).
fn revalidate(h: &Hypergraph, edges: &[usize], verts: &[usize]) -> bool {
    let m = edges.len();
    if m < 3 || verts.len() != m {
        return false;
    }
    for i in 0..m {
        let u = verts[i];
        let fi = edges[i];
        let fi1 = edges[(i + 1) % m];
        if !h.edge(fi).contains(&u) || !h.edge(fi1).contains(&u) {
            return false;
        }
        for (j, &e) in edges.iter().enumerate() {
            if j != i && j != (i + 1) % m && h.edge(e).contains(&u) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::fixtures::*;

    #[test]
    fn triangle_is_beta_cyclic_with_witness() {
        let h = triangle();
        assert!(!is_beta_acyclic(&h));
        let (edges, verts) = find_beta_cycle(&h).expect("triangle has a β-cycle");
        assert_eq!(edges.len(), 3);
        assert!(revalidate(&h, &edges, &verts));
    }

    #[test]
    fn triangle_plus_u_is_beta_cyclic() {
        // Example A.1: α-acyclic yet β-cyclic.
        let h = triangle_plus_u();
        assert!(!is_beta_acyclic(&h));
        assert!(find_beta_cycle(&h).is_some());
    }

    #[test]
    fn bowtie_path_star_are_beta_acyclic() {
        assert!(is_beta_acyclic(&bowtie()));
        assert!(find_beta_cycle(&bowtie()).is_none());
        assert!(is_beta_acyclic(&path(6)));
        assert!(find_beta_cycle(&path(4)).is_none());
        let star = Hypergraph::new(
            4,
            vec![
                vec![0],
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1],
                vec![2],
                vec![3],
            ],
        );
        assert!(is_beta_acyclic(&star));
    }

    #[test]
    fn example_b7_is_beta_acyclic() {
        let h = example_b7();
        assert!(is_beta_acyclic(&h));
        assert!(find_beta_cycle(&h).is_none());
    }

    #[test]
    fn nest_points_of_bowtie() {
        // In the bow-tie {X}, {X,Y}, {Y}: both X and Y are nest points
        // ({X} ⊂ {X,Y} and {Y} ⊂ {X,Y}).
        let pts = nest_points(&bowtie());
        assert_eq!(pts, vec![0, 1]);
    }

    #[test]
    fn nest_points_of_triangle_absent() {
        assert!(nest_points(&triangle()).is_empty());
    }

    #[test]
    fn brouwer_kolen_two_nest_points() {
        // Every β-acyclic hypergraph with ≥ 2 covered vertices has ≥ 2 nest
        // points (Brouwer–Kolen).
        for h in [bowtie(), path(5), example_b7()] {
            if h.covered_vertices().len() >= 2 {
                assert!(nest_points(&h).len() >= 2, "{h:?}");
            }
        }
    }

    #[test]
    fn neo_of_path_is_valid_permutation() {
        let h = path(4);
        let neo = nested_elimination_order(&h).unwrap();
        let mut sorted = neo.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>());
        assert!(crate::elimination::is_nested_elimination_order(&h, &neo));
    }

    #[test]
    fn neo_none_for_beta_cyclic() {
        assert!(nested_elimination_order(&triangle()).is_none());
        assert!(nested_elimination_order(&triangle_plus_u()).is_none());
    }

    #[test]
    fn uncovered_vertices_are_handled() {
        // Vertex 2 occurs in no edge.
        let h = Hypergraph::new(3, vec![vec![0, 1]]);
        let neo = nested_elimination_order(&h).unwrap();
        assert_eq!(neo.len(), 3);
    }

    #[test]
    fn beta_definition_agrees_with_subgraph_definition() {
        // β-acyclic iff every edge-subset is α-acyclic (the original
        // definition). Check on all sub-hypergraphs of a few fixtures.
        for h in [
            triangle(),
            triangle_plus_u(),
            bowtie(),
            example_b7(),
            path(3),
        ] {
            let m = h.num_edges();
            let mut all_alpha = true;
            for mask in 1u32..(1 << m) {
                let keep: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
                if !crate::gyo::is_alpha_acyclic(&h.edge_subgraph(&keep)) {
                    all_alpha = false;
                    break;
                }
            }
            assert_eq!(all_alpha, is_beta_acyclic(&h), "{h:?}");
        }
    }
}
