//! Elimination orders, prefix posets, and elimination width (Section A.2).
//!
//! Fix an elimination order `v₁, …, v_n` (the GAO). The paper's recursion
//! builds hypergraphs `H_n, …, H_1` and set collections `P_n, …, P_1`:
//! `P_j` collects, for every edge of `H_j` containing `v_j`, that edge
//! restricted to `{v₁, …, v_{j−1}}`; then `H_{j−1}` is `H_j` with `v_j`
//! deleted and the union `U(P_j)` added as a fresh edge. Two quantities
//! fall out:
//!
//! * the order is a **nested elimination order** iff every `P_j` is a chain
//!   under inclusion (Definition A.5) — exactly when Minesweeper's filter
//!   `G(t₁, …, t_i)` is totally ordered (Proposition 4.2);
//! * the **elimination width** is `max_j |U(P_j)|`, which equals the
//!   induced treewidth of the Gaifman graph under that order
//!   (Proposition A.7) and drives the `Õ(|C|^{w+1} + Z)` bound of
//!   Theorem 5.1.

use std::collections::BTreeSet;

use crate::hypergraph::Hypergraph;

/// The prefix poset `P_j` for position `j` (1-based in the paper; stored
/// 0-based here) of an elimination order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixPoset {
    /// The eliminated vertex `v_j`.
    pub vertex: usize,
    /// The member sets `F − {v_j}` for `F ∈ B(v_j)` (deduplicated).
    pub sets: Vec<BTreeSet<usize>>,
    /// The universe `U(P_j) = ∪ sets`.
    pub universe: BTreeSet<usize>,
}

impl PrefixPoset {
    /// A poset is a chain when its member sets are nested.
    pub fn is_chain(&self) -> bool {
        let mut sorted: Vec<&BTreeSet<usize>> = self.sets.iter().collect();
        sorted.sort_by_key(|s| s.len());
        sorted.windows(2).all(|w| w[0].is_subset(w[1]))
    }
}

/// Computes the prefix posets `P_n, …, P_1` of `order` (returned indexed by
/// position: `result[j]` is `P_{j+1}` for the vertex `order[j]`).
///
/// `order` must be a permutation of `0..h.num_vertices()`.
pub fn prefix_posets(h: &Hypergraph, order: &[usize]) -> Vec<PrefixPoset> {
    let n = h.num_vertices();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(!seen[v], "order must be a permutation");
        seen[v] = true;
    }
    // position[v] = index of v in order.
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }
    // Current edge set of H_j, deduplicated.
    let mut edges: BTreeSet<BTreeSet<usize>> = h.edges().iter().cloned().collect();
    let mut result: Vec<Option<PrefixPoset>> = (0..n).map(|_| None).collect();
    for j in (0..n).rev() {
        let vj = order[j];
        let incident: Vec<BTreeSet<usize>> =
            edges.iter().filter(|e| e.contains(&vj)).cloned().collect();
        let sets: BTreeSet<BTreeSet<usize>> = incident
            .iter()
            .map(|e| {
                let mut e = e.clone();
                e.remove(&vj);
                e
            })
            .collect();
        let universe: BTreeSet<usize> = sets.iter().flatten().copied().collect();
        debug_assert!(universe.iter().all(|&u| position[u] < j));
        result[j] = Some(PrefixPoset {
            vertex: vj,
            sets: sets.into_iter().collect(),
            universe: universe.clone(),
        });
        // Build H_{j−1}: drop v_j from every edge, add U(P_j).
        let mut next: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for e in &edges {
            let mut e = e.clone();
            e.remove(&vj);
            if !e.is_empty() {
                next.insert(e);
            }
        }
        if !universe.is_empty() {
            next.insert(universe);
        }
        edges = next;
    }
    result.into_iter().map(|p| p.unwrap()).collect()
}

/// Definition A.5: `order` is a nested elimination order iff every prefix
/// poset is a chain.
pub fn is_nested_elimination_order(h: &Hypergraph, order: &[usize]) -> bool {
    prefix_posets(h, order).iter().all(|p| p.is_chain())
}

/// The elimination width of `order`: `max_j |U(P_j)|` (Proposition A.7).
pub fn elimination_width(h: &Hypergraph, order: &[usize]) -> usize {
    prefix_posets(h, order)
        .iter()
        .map(|p| p.universe.len())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beta::nested_elimination_order;
    use crate::hypergraph::fixtures::*;

    #[test]
    fn example_b7_orders() {
        // Q = R(A,B,C) ⋈ S(A,C) ⋈ T(B,C) with A=0, B=1, C=2.
        // (C,A,B) is a nested elimination order while (A,B,C) is not
        // (Example B.7).
        let h = example_b7();
        assert!(is_nested_elimination_order(&h, &[2, 0, 1]));
        assert!(!is_nested_elimination_order(&h, &[0, 1, 2]));
    }

    #[test]
    fn neo_construction_agrees_with_check() {
        for h in [bowtie(), path(4), example_b7()] {
            let neo = nested_elimination_order(&h).unwrap();
            assert!(is_nested_elimination_order(&h, &neo), "{h:?} {neo:?}");
        }
    }

    #[test]
    fn no_order_is_neo_for_beta_cyclic() {
        // Proposition A.6 (reverse direction): a β-cyclic hypergraph has no
        // NEO. Exhaust all 3! orders of the triangle.
        let h = triangle();
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        for p in perms {
            assert!(!is_nested_elimination_order(&h, &p), "{p:?}");
        }
    }

    #[test]
    fn elimination_width_of_path_is_one() {
        let h = path(5);
        let order: Vec<usize> = (0..6).collect();
        assert_eq!(elimination_width(&h, &order), 1);
    }

    #[test]
    fn elimination_width_of_triangle_is_two() {
        let h = triangle();
        for p in [[0, 1, 2], [1, 2, 0], [2, 0, 1]] {
            assert_eq!(elimination_width(&h, &p), 2);
        }
    }

    #[test]
    fn prefix_poset_contents_of_bowtie() {
        // Bow-tie {X}, {X,Y}, {Y} with order (X, Y) = (0, 1).
        let h = bowtie();
        let ps = prefix_posets(&h, &[0, 1]);
        // P_2 (vertex Y): edges containing Y are {X,Y} and {Y}; minus Y
        // gives {X} and {} — a chain with universe {X}.
        assert_eq!(ps[1].vertex, 1);
        assert!(ps[1].is_chain());
        assert_eq!(ps[1].universe, [0].into_iter().collect());
        // P_1 (vertex X): H_1 has edges {X} (from {X,Y} and R) and {X}
        // (universe edge) — all dedup to {X}; minus X: {} — chain.
        assert_eq!(ps[0].vertex, 0);
        assert!(ps[0].is_chain());
        assert!(ps[0].universe.is_empty());
    }

    #[test]
    fn gao_with_private_attributes_last_is_neo_for_star() {
        // Star query hypergraph with GAO (A, B, C, D) = (0, 1, 2, 3).
        let h = Hypergraph::new(
            4,
            vec![
                vec![0],
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1],
                vec![2],
                vec![3],
            ],
        );
        assert!(is_nested_elimination_order(&h, &[0, 1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_rejected() {
        prefix_posets(&bowtie(), &[0, 0]);
    }
}
