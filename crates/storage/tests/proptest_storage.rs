//! Property-based tests for the storage layer: trie round-trips, FindGap
//! vs a linear-scan model, and cursor/iterator agreement.

use proptest::prelude::*;

use minesweeper_storage::{ExecStats, TrieCursor, TrieRelation, Tuple, Val};

fn tuples_strategy(arity: usize, max_len: usize, dom: Val) -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(prop::collection::vec(0..dom, arity..=arity), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Building a trie and iterating it returns exactly the sorted,
    /// deduplicated tuples.
    #[test]
    fn round_trip(tuples in tuples_strategy(3, 40, 8)) {
        let rel = TrieRelation::from_tuples("R", 3, tuples.clone()).unwrap();
        let mut expect = tuples;
        expect.sort();
        expect.dedup();
        prop_assert_eq!(rel.to_tuples(), expect.clone());
        prop_assert_eq!(rel.len(), expect.len());
        for t in &expect {
            prop_assert!(rel.contains(t));
        }
    }

    /// FindGap agrees with a linear scan over the child values at every
    /// node reachable by a prefix, per the paper's (x⁻, x⁺) definition.
    #[test]
    fn find_gap_matches_linear_model(
        tuples in tuples_strategy(2, 30, 10),
        probe in -2i64..12,
        prefix in 0i64..10,
    ) {
        let rel = TrieRelation::from_tuples("R", 2, tuples).unwrap();
        let mut st = ExecStats::new();
        // Root level.
        {
            let vals = rel.child_values(rel.root()).to_vec();
            let g = rel.find_gap(rel.root(), probe, &mut st);
            let le = vals.iter().filter(|&&v| v <= probe).count();
            prop_assert_eq!(g.lo_coord, le);
            let expect_hi = if le > 0 && vals[le - 1] == probe { le } else { le + 1 };
            prop_assert_eq!(g.hi_coord, expect_hi);
            if g.lo_coord >= 1 {
                prop_assert_eq!(g.lo_val, vals[g.lo_coord - 1]);
            } else {
                prop_assert_eq!(g.lo_val, minesweeper_storage::NEG_INF);
            }
            if g.hi_coord <= vals.len() {
                prop_assert_eq!(g.hi_val, vals[g.hi_coord - 1]);
            } else {
                prop_assert_eq!(g.hi_val, minesweeper_storage::POS_INF);
            }
        }
        // One level down, if the prefix exists.
        let (node, matched) = rel.descend(&[prefix]);
        if matched == 1 {
            let vals = rel.child_values(node).to_vec();
            let g = rel.find_gap(node, probe, &mut st);
            let le = vals.iter().filter(|&&v| v <= probe).count();
            prop_assert_eq!(g.lo_coord, le);
        }
    }

    /// A cursor seek-sweep visits exactly the distinct first-column values.
    #[test]
    fn cursor_sweep_matches_first_column(tuples in tuples_strategy(2, 30, 10)) {
        let rel = TrieRelation::from_tuples("R", 2, tuples).unwrap();
        let mut st = ExecStats::new();
        let mut cur = TrieCursor::new(&rel);
        let mut seen = Vec::new();
        if cur.open() {
            while !cur.at_end() {
                seen.push(cur.key());
                let key = cur.key();
                cur.seek(key + 1, &mut st);
            }
        }
        prop_assert_eq!(seen, rel.first_column().to_vec());
    }

    /// Cursor open/up returns to a consistent parent position.
    #[test]
    fn cursor_open_up_consistency(tuples in tuples_strategy(2, 30, 6)) {
        let rel = TrieRelation::from_tuples("R", 2, tuples).unwrap();
        let mut st = ExecStats::new();
        let mut cur = TrieCursor::new(&rel);
        if !cur.open() {
            return Ok(());
        }
        while !cur.at_end() {
            let parent_key = cur.key();
            prop_assert!(cur.open(), "non-leaf node has children");
            // Children of (parent_key, *) are exactly the sorted second
            // coordinates of matching tuples.
            let expect: Vec<Val> = rel
                .to_tuples()
                .into_iter()
                .filter(|t| t[0] == parent_key)
                .map(|t| t[1])
                .collect();
            prop_assert_eq!(cur.remaining().to_vec(), expect);
            cur.up();
            prop_assert_eq!(cur.key(), parent_key);
            cur.next(&mut st);
        }
    }

    /// Node counting matches the number of distinct prefixes.
    #[test]
    fn node_count_is_distinct_prefix_count(tuples in tuples_strategy(3, 30, 6)) {
        let rel = TrieRelation::from_tuples("R", 3, tuples.clone()).unwrap();
        let mut p1: Vec<Val> = tuples.iter().map(|t| t[0]).collect();
        let mut p2: Vec<(Val, Val)> = tuples.iter().map(|t| (t[0], t[1])).collect();
        let mut p3: Vec<Tuple> = tuples;
        p1.sort_unstable();
        p1.dedup();
        p2.sort_unstable();
        p2.dedup();
        p3.sort();
        p3.dedup();
        prop_assert_eq!(rel.node_count(), p1.len() + p2.len() + p3.len());
    }
}
