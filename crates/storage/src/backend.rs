//! The storage-layer trait: the node-level read contract every physical
//! trie representation must honour.
//!
//! The probe loop, the cursors, and the sharding layer only ever *read*
//! relations, and they read them through a small node-addressed API:
//! navigate (`root`/`child`/`value`), measure (`child_count`/
//! `subtree_tuple_count`), and probe (`find_gap` plus the rank/seek
//! primitives below). [`TrieStorage`] names that contract so alternative
//! physical layouts can slot in under the same cursor layer without
//! touching the algorithms. Two implementations exist today:
//! [`crate::TrieRelation`], the canonical columnar sorted-array layout,
//! and [`crate::BitLeafRelation`], the hybrid whose dense runs are packed
//! `u64` bitsets with a rank directory (see `bitleaf.rs`).
//! [`crate::GapCursor`], [`crate::TrieCursor`], the merge layer, and the
//! sharding profiles are all written against the trait, so optimizations
//! like position reuse carry to every implementation.
//!
//! The trait still exposes sorted child slices (`child_values`): the
//! paper's index model (Section 2.1) is an ordered search tree, and
//! slice-based consumers — equi-depth sharding, the NPRR baseline's
//! sorted intersections, the merge layer of `docs/STORAGE.md` — rely on
//! per-node sorted order. Probe-style consumers should prefer the
//! *rank/seek* methods (`count_le`, `seek_le`, `seek_ge`,
//! `child_value_at`, `gap_at`): on the canonical layout they default to
//! galloping over the slice, while the hybrid overrides them with O(1)
//! rank and O(words) select over its packed runs.

use crate::stats::ExecStats;
use crate::trie::{gap_from_cnt_le, Gap, NodeId, TrieRelation, TupleIter};
use crate::value::Val;
use crate::{sorted, Tuple};

/// Node-addressed read access to one stored relation (see the module
/// docs). All coordinates are the paper's 1-based child coordinates; the
/// out-of-range conventions of `FindGap` are those of
/// [`TrieRelation::find_gap`].
pub trait TrieStorage {
    /// Relation name (catalog key).
    fn name(&self) -> &str;

    /// Number of columns (trie depth).
    fn arity(&self) -> usize;

    /// Number of distinct tuples.
    fn len(&self) -> usize;

    /// True when the relation holds no tuples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The root node (empty index tuple).
    fn root(&self) -> NodeId;

    /// Number of children of an interior `node`.
    fn child_count(&self, node: NodeId) -> usize;

    /// The child of `node` at 1-based coordinate `coord`.
    fn child(&self, node: NodeId, coord: usize) -> NodeId;

    /// The value stored at a non-root node.
    fn value(&self, node: NodeId) -> Val;

    /// The sorted child values of an interior `node`.
    fn child_values(&self, node: NodeId) -> &[Val];

    /// Number of tuples (leaves) under `node`.
    fn subtree_tuple_count(&self, node: NodeId) -> usize;

    /// The paper's `R.FindGap(x, a)` over this storage (same contract and
    /// accounting as [`TrieRelation::find_gap`]).
    fn find_gap(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> Gap;

    /// Rank query: `|{v child of node : v ≤ a}|`. The building block of
    /// `find_gap`; [`crate::GapCursor`] calls it on its cold path.
    fn count_le(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> usize {
        let _ = stats;
        sorted::count_le(self.child_values(node), a)
    }

    /// Rank query with a position hint: `count_le(node, a)` given that the
    /// answer is at least `from` (i.e. the first `from` child values are
    /// already known to be ≤ `a`). The warm path of
    /// [`crate::GapCursor`]'s landing-spot reuse.
    fn seek_le(&self, node: NodeId, from: usize, a: Val, stats: &mut ExecStats) -> usize {
        let _ = stats;
        sorted::gallop_gt(self.child_values(node), from, a)
    }

    /// Sibling seek: the smallest 0-based child index `i ≥ from` with
    /// `child value ≥ target`, or `child_count(node)` when none exists.
    /// [`crate::TrieCursor`]'s leapfrog seek.
    fn seek_ge(&self, node: NodeId, from: usize, target: Val, stats: &mut ExecStats) -> usize {
        let _ = stats;
        sorted::gallop_ge(self.child_values(node), from, target)
    }

    /// The value of the child at 1-based `coord` (select — the inverse of
    /// [`TrieStorage::count_le`]).
    fn child_value_at(&self, node: NodeId, coord: usize, stats: &mut ExecStats) -> Val {
        let _ = stats;
        self.child_values(node)[coord - 1]
    }

    /// True when [`TrieStorage::seek_le`] from a remembered position beats
    /// a cold [`TrieStorage::count_le`] on this node. The canonical
    /// sorted-array layout gallops, so position hints pay off; a packed
    /// bitset run answers ranks in O(1), so the hint bookkeeping is pure
    /// overhead and [`crate::GapCursor`] skips it.
    fn hinted_seeks(&self, node: NodeId) -> bool {
        let _ = node;
        true
    }

    /// Builds the `FindGap` answer from a precomputed rank `cnt_le =
    /// count_le(node, a)` — shared by `find_gap` and the position-reusing
    /// [`crate::GapCursor`], so the two probe paths cannot drift apart.
    /// Does **not** bump `find_gap_calls`; callers account the probe.
    fn gap_at(&self, node: NodeId, cnt_le: usize, a: Val, stats: &mut ExecStats) -> Gap {
        let _ = stats;
        gap_from_cnt_le(self.child_values(node), cnt_le, a)
    }

    /// Descends from the root along exact value matches; returns the node
    /// reached for the longest matching prefix of `prefix` together with
    /// how many components matched (same contract as
    /// [`TrieRelation::descend`]).
    fn descend(&self, prefix: &[Val]) -> (NodeId, usize) {
        let mut node = self.root();
        for (i, &v) in prefix.iter().enumerate() {
            if node.depth() == self.arity() {
                return (node, i);
            }
            let vals = self.child_values(node);
            let cnt = sorted::count_le(vals, v);
            if cnt == 0 || vals[cnt - 1] != v {
                return (node, i);
            }
            node = self.child(node, cnt);
        }
        (node, prefix.len())
    }

    /// Membership test for a full tuple.
    fn contains(&self, tuple: &[Val]) -> bool {
        tuple.len() == self.arity() && self.descend(tuple).1 == self.arity()
    }

    /// Number of tuples (leaves) under each child of `node`, aligned with
    /// [`TrieStorage::child_values`] (same contract as
    /// [`TrieRelation::child_tuple_counts`]).
    fn child_tuple_counts(&self, node: NodeId) -> Vec<usize> {
        (1..=self.child_count(node))
            .map(|c| self.subtree_tuple_count(self.child(node, c)))
            .collect()
    }

    /// Iterates all tuples in lexicographic order (materializing each) —
    /// the ordered-iteration half of the read contract.
    fn tuples(&self) -> TupleIter<'_, Self>
    where
        Self: Sized,
    {
        TupleIter::new(self)
    }

    /// Materializes the whole relation as a vector of tuples.
    fn to_tuples(&self) -> Vec<Tuple>
    where
        Self: Sized,
    {
        self.tuples().collect()
    }
}

impl TrieStorage for TrieRelation {
    fn name(&self) -> &str {
        TrieRelation::name(self)
    }

    fn arity(&self) -> usize {
        TrieRelation::arity(self)
    }

    fn len(&self) -> usize {
        TrieRelation::len(self)
    }

    fn root(&self) -> NodeId {
        TrieRelation::root(self)
    }

    fn child_count(&self, node: NodeId) -> usize {
        TrieRelation::child_count(self, node)
    }

    fn child(&self, node: NodeId, coord: usize) -> NodeId {
        TrieRelation::child(self, node, coord)
    }

    fn value(&self, node: NodeId) -> Val {
        TrieRelation::value(self, node)
    }

    fn child_values(&self, node: NodeId) -> &[Val] {
        TrieRelation::child_values(self, node)
    }

    fn subtree_tuple_count(&self, node: NodeId) -> usize {
        TrieRelation::subtree_tuple_count(self, node)
    }

    fn find_gap(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> Gap {
        TrieRelation::find_gap(self, node, a, stats)
    }

    fn descend(&self, prefix: &[Val]) -> (NodeId, usize) {
        TrieRelation::descend(self, prefix)
    }

    fn contains(&self, tuple: &[Val]) -> bool {
        TrieRelation::contains(self, tuple)
    }

    fn child_tuple_counts(&self, node: NodeId) -> Vec<usize> {
        TrieRelation::child_tuple_counts(self, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait methods must coincide with the inherent ones on the
    /// canonical implementation.
    #[test]
    fn trait_matches_inherent_api() {
        fn probe<S: TrieStorage>(s: &S) -> (usize, usize, Val, usize) {
            let mut st = ExecStats::new();
            let root = s.root();
            let g = s.find_gap(root, 3, &mut st);
            let c1 = s.child(root, 1);
            (
                s.child_count(root),
                s.subtree_tuple_count(c1),
                g.hi_val,
                s.child_values(root).len(),
            )
        }
        let r =
            TrieRelation::from_tuples("R", 2, vec![vec![1, 5], vec![1, 9], vec![4, 2]]).unwrap();
        let (fanout, under_first, hi, vals) = probe(&r);
        assert_eq!(fanout, 2);
        assert_eq!(under_first, 2);
        assert_eq!(hi, 4);
        assert_eq!(vals, 2);
        assert_eq!(TrieStorage::name(&r), "R");
        assert!(!TrieStorage::is_empty(&r));
    }

    #[test]
    fn subtree_counts_cascade() {
        let r = TrieRelation::from_tuples(
            "R",
            3,
            vec![vec![1, 2, 4], vec![1, 2, 7], vec![1, 3, 5], vec![7, 4, 2]],
        )
        .unwrap();
        assert_eq!(r.subtree_tuple_count(r.root()), 4);
        let n1 = r.child(r.root(), 1);
        assert_eq!(r.subtree_tuple_count(n1), 3);
        let n12 = r.child(n1, 1);
        assert_eq!(r.subtree_tuple_count(n12), 2);
        let leaf = r.child(n12, 2);
        assert_eq!(r.subtree_tuple_count(leaf), 1);
    }

    /// The defaulted rank/seek primitives agree with each other and with
    /// the slice they are defined over.
    #[test]
    fn default_probe_primitives_are_consistent() {
        let r =
            TrieRelation::from_tuples("R", 2, vec![vec![1, 5], vec![3, 2], vec![3, 9], vec![8, 1]])
                .unwrap();
        let mut st = ExecStats::new();
        let root = r.root();
        for a in [-1, 0, 1, 2, 3, 7, 8, 9] {
            let cnt = TrieStorage::count_le(&r, root, a, &mut st);
            assert_eq!(
                cnt,
                r.child_values(root).iter().filter(|&&v| v <= a).count()
            );
            assert_eq!(TrieStorage::seek_le(&r, root, cnt.min(1), a, &mut st), cnt);
            let gap = TrieStorage::gap_at(&r, root, cnt, a, &mut st);
            let direct = r.find_gap(root, a, &mut ExecStats::new());
            assert_eq!(gap, direct);
        }
        assert_eq!(TrieStorage::child_value_at(&r, root, 1, &mut st), 1);
        assert_eq!(TrieStorage::child_value_at(&r, root, 3, &mut st), 8);
        assert!(TrieStorage::hinted_seeks(&r, root));
        assert_eq!(TrieStorage::seek_ge(&r, root, 0, 2, &mut st), 1);
        assert_eq!(TrieStorage::seek_ge(&r, root, 2, 2, &mut st), 2);
        assert_eq!(TrieStorage::seek_ge(&r, root, 0, 99, &mut st), 3);
        assert_eq!(TrieStorage::descend(&r, &[3, 9]), (r.descend(&[3, 9]).0, 2));
        assert!(TrieStorage::contains(&r, &[3, 2]));
        assert!(!TrieStorage::contains(&r, &[3, 3]));
        assert_eq!(TrieStorage::child_tuple_counts(&r, root), vec![1, 2, 1]);
        assert_eq!(r.tuples().count(), 4);
        assert_eq!(TrieStorage::to_tuples(&r), r.to_tuples());
    }
}
