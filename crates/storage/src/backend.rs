//! The storage-layer trait: the node-level read contract every physical
//! trie representation must honour.
//!
//! The probe loop, the cursors, and the sharding layer only ever *read*
//! relations, and they read them through a small node-addressed API:
//! navigate (`root`/`child`/`value`), measure (`child_count`/
//! `subtree_tuple_count`), and probe (`child_values` + `find_gap`).
//! [`TrieStorage`] names that contract so alternative physical layouts —
//! the ROADMAP's bitset/SIMD leaf representation, mmap-backed levels — can
//! slot in under the same cursor layer without touching the algorithms.
//! [`crate::TrieRelation`] is the canonical (columnar sorted-array)
//! implementation; [`crate::GapCursor`] is written against the trait, so
//! its position-reuse optimization carries to every implementation.
//!
//! The trait deliberately exposes sorted child slices (`child_values`):
//! the paper's index model (Section 2.1) is an ordered search tree, and
//! every consumer — galloping seeks, equi-depth sharding, the merge layer
//! of `docs/STORAGE.md` — relies on per-node sorted order. A future
//! non-slice representation would implement the trait for its *cursor*
//! view rather than its raw storage.

use crate::stats::ExecStats;
use crate::trie::{Gap, NodeId, TrieRelation};
use crate::value::Val;

/// Node-addressed read access to one stored relation (see the module
/// docs). All coordinates are the paper's 1-based child coordinates; the
/// out-of-range conventions of `FindGap` are those of
/// [`TrieRelation::find_gap`].
pub trait TrieStorage {
    /// Relation name (catalog key).
    fn name(&self) -> &str;

    /// Number of columns (trie depth).
    fn arity(&self) -> usize;

    /// Number of distinct tuples.
    fn len(&self) -> usize;

    /// True when the relation holds no tuples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The root node (empty index tuple).
    fn root(&self) -> NodeId;

    /// Number of children of an interior `node`.
    fn child_count(&self, node: NodeId) -> usize;

    /// The child of `node` at 1-based coordinate `coord`.
    fn child(&self, node: NodeId, coord: usize) -> NodeId;

    /// The value stored at a non-root node.
    fn value(&self, node: NodeId) -> Val;

    /// The sorted child values of an interior `node`.
    fn child_values(&self, node: NodeId) -> &[Val];

    /// Number of tuples (leaves) under `node`.
    fn subtree_tuple_count(&self, node: NodeId) -> usize;

    /// The paper's `R.FindGap(x, a)` over this storage (same contract and
    /// accounting as [`TrieRelation::find_gap`]).
    fn find_gap(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> Gap;
}

impl TrieStorage for TrieRelation {
    fn name(&self) -> &str {
        TrieRelation::name(self)
    }

    fn arity(&self) -> usize {
        TrieRelation::arity(self)
    }

    fn len(&self) -> usize {
        TrieRelation::len(self)
    }

    fn root(&self) -> NodeId {
        TrieRelation::root(self)
    }

    fn child_count(&self, node: NodeId) -> usize {
        TrieRelation::child_count(self, node)
    }

    fn child(&self, node: NodeId, coord: usize) -> NodeId {
        TrieRelation::child(self, node, coord)
    }

    fn value(&self, node: NodeId) -> Val {
        TrieRelation::value(self, node)
    }

    fn child_values(&self, node: NodeId) -> &[Val] {
        TrieRelation::child_values(self, node)
    }

    fn subtree_tuple_count(&self, node: NodeId) -> usize {
        TrieRelation::subtree_tuple_count(self, node)
    }

    fn find_gap(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> Gap {
        TrieRelation::find_gap(self, node, a, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait methods must coincide with the inherent ones on the
    /// canonical implementation.
    #[test]
    fn trait_matches_inherent_api() {
        fn probe<S: TrieStorage>(s: &S) -> (usize, usize, Val, usize) {
            let mut st = ExecStats::new();
            let root = s.root();
            let g = s.find_gap(root, 3, &mut st);
            let c1 = s.child(root, 1);
            (
                s.child_count(root),
                s.subtree_tuple_count(c1),
                g.hi_val,
                s.child_values(root).len(),
            )
        }
        let r =
            TrieRelation::from_tuples("R", 2, vec![vec![1, 5], vec![1, 9], vec![4, 2]]).unwrap();
        let (fanout, under_first, hi, vals) = probe(&r);
        assert_eq!(fanout, 2);
        assert_eq!(under_first, 2);
        assert_eq!(hi, 4);
        assert_eq!(vals, 2);
        assert_eq!(TrieStorage::name(&r), "R");
        assert!(!TrieStorage::is_empty(&r));
    }

    #[test]
    fn subtree_counts_cascade() {
        let r = TrieRelation::from_tuples(
            "R",
            3,
            vec![vec![1, 2, 4], vec![1, 2, 7], vec![1, 3, 5], vec![7, 4, 2]],
        )
        .unwrap();
        assert_eq!(r.subtree_tuple_count(r.root()), 4);
        let n1 = r.child(r.root(), 1);
        assert_eq!(r.subtree_tuple_count(n1), 3);
        let n12 = r.child(n1, 1);
        assert_eq!(r.subtree_tuple_count(n12), 2);
        let leaf = r.child(n12, 2);
        assert_eq!(r.subtree_tuple_count(leaf), 1);
    }
}
