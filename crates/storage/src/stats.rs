//! Execution statistics.
//!
//! The paper's empirical section (5.2) measures certificate size "by counting
//! the number of FindGap operations during computing join queries". The
//! [`ExecStats`] struct carries that counter plus the other quantities that
//! appear in the paper's accounting (probe points, constraints inserted,
//! output size, backtracks).

/// Counters threaded through every algorithm in the workspace.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of `FindGap` index probes — the paper's empirical `|C|` proxy.
    pub find_gap_calls: u64,
    /// Number of probe points returned by `getProbePoint` (iterations of the
    /// outer algorithm, Theorem 3.2 bounds this by `O(2^r |C| + Z)`).
    pub probe_points: u64,
    /// Number of constraints handed to `CDS.InsConstraint` (Theorem 3.2:
    /// `O(m 4^r |C| + Z)`).
    pub constraints_inserted: u64,
    /// Number of output tuples produced (`Z`).
    pub outputs: u64,
    /// Number of backtracking steps taken by `getProbePoint` (Algorithm 3,
    /// line 16).
    pub backtracks: u64,
    /// Calls to `IntervalSet::next` inside the CDS (chain traversal work).
    pub cds_next_calls: u64,
    /// Value comparisons performed by baseline algorithms (their analogue of
    /// certificate work; Proposition 2.5 lower-bounds any comparison-based
    /// join by `Ω(|C|)` comparisons).
    pub comparisons: u64,
    /// Seek operations performed by cursor-based baselines (LFTJ).
    pub seeks: u64,
    /// Intermediate tuples materialized by baseline algorithms (semijoin or
    /// binary-join intermediates).
    pub intermediate_tuples: u64,
    /// Probes answered against a relation's *delta* (insert or tombstone
    /// side) by the versioned-storage [`crate::MergeView`] — the
    /// incremental-maintenance cost the WCOJ survey names as the practical
    /// barrier; see `docs/STORAGE.md`.
    pub delta_probes: u64,
    /// Elementary steps taken while merging a base trie with its delta
    /// (per-value union/liveness work in `FindGap`, and per-tuple steps of
    /// the merging iterator that materializes snapshots and compactions).
    pub merge_steps: u64,
    /// `u64` bitset words examined by dense-leaf probes (rank lookups,
    /// select scans, next-set-bit walks) in the hybrid
    /// [`crate::BitLeafRelation`] backend — the word-level analogue of
    /// `comparisons` for the packed representation.
    pub bitset_words_scanned: u64,
    /// Probe operations (`find_gap`, rank, select, seek) answered by a
    /// packed bitset run instead of a sorted array.
    pub bitset_probes: u64,
    /// Dense (bitset-backed) runs visible to the probed atoms at stream
    /// construction — a deterministic inventory counter, not per-probe
    /// work (each shard of a parallel run re-counts its own view).
    pub dense_leaves: u64,
}

impl ExecStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the counters of `other` into `self` (useful for aggregating over
    /// repeated runs).
    pub fn merge(&mut self, other: &ExecStats) {
        self.find_gap_calls += other.find_gap_calls;
        self.probe_points += other.probe_points;
        self.constraints_inserted += other.constraints_inserted;
        self.outputs += other.outputs;
        self.backtracks += other.backtracks;
        self.cds_next_calls += other.cds_next_calls;
        self.comparisons += other.comparisons;
        self.seeks += other.seeks;
        self.intermediate_tuples += other.intermediate_tuples;
        self.delta_probes += other.delta_probes;
        self.merge_steps += other.merge_steps;
        self.bitset_words_scanned += other.bitset_words_scanned;
        self.bitset_probes += other.bitset_probes;
        self.dense_leaves += other.dense_leaves;
    }

    /// The certificate-size estimate used for reporting: the number of
    /// `FindGap` calls, exactly as in the paper's Figure 2.
    pub fn certificate_estimate(&self) -> u64 {
        self.find_gap_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_counters() {
        let mut a = ExecStats::new();
        a.find_gap_calls = 1;
        a.outputs = 2;
        let mut b = ExecStats::new();
        b.find_gap_calls = 10;
        b.probe_points = 5;
        b.comparisons = 7;
        a.merge(&b);
        assert_eq!(a.find_gap_calls, 11);
        assert_eq!(a.probe_points, 5);
        assert_eq!(a.outputs, 2);
        assert_eq!(a.comparisons, 7);
    }

    #[test]
    fn certificate_estimate_is_find_gap_count() {
        let mut s = ExecStats::new();
        s.find_gap_calls = 123;
        assert_eq!(s.certificate_estimate(), 123);
    }
}
