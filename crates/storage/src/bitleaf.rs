//! Hybrid dense-leaf storage: packed `u64` bitset runs behind
//! [`TrieStorage`].
//!
//! The paper's §6.2 `FindGap` contract is representation-agnostic: any
//! layout that can answer rank ("how many children ≤ a?") and select
//! ("what is the k-th child value?") over each node's sorted child run
//! satisfies it. The canonical [`TrieRelation`] gallops over sorted
//! arrays, costing `O(log |run|)` per probe. When a run is *dense* — its
//! values occupy a narrow numeric span relative to the run length — the
//! same questions have `O(1)`/`O(words)` answers over a packed bitset:
//!
//! * bit `i` of the word array is set iff value `base + i` is present;
//! * a precomputed rank directory `rank[w] = popcount(words[..w])` turns
//!   `count_le(a)` into one directory lookup plus one masked popcount,
//!   and `select(k)` into a binary search of the directory plus a bit
//!   walk inside a single word.
//!
//! [`BitLeafRelation`] is an overlay: it wraps an [`Arc`]`<TrieRelation>`
//! and attaches an optional packed `DenseRun` to each interior node whose
//! child run passes the density test (see [`LeafPolicy`]). Navigation
//! (`child`, `value`, `child_values`, subtree counts) delegates to the
//! base trie — so slice-based consumers like equi-depth sharding and the
//! merge layer keep working unchanged — while the probe primitives
//! (`find_gap`, `count_le`, `seek_le`, `seek_ge`, `child_value_at`) are
//! overridden with rank/select over the packed run. Representation
//! selection happens at build/compact time in the versioned layer;
//! probe-time dispatch is one enum match via [`StorageRef`].
//!
//! Probe work done by the packed side is accounted in the deterministic
//! counters [`crate::ExecStats::bitset_probes`] (operations answered by a
//! dense run) and [`crate::ExecStats::bitset_words_scanned`] (data words
//! actually read), mirroring how `comparisons` accounts for the sorted
//! side.

use std::sync::Arc;

use crate::backend::TrieStorage;
use crate::sorted;
use crate::stats::ExecStats;
use crate::trie::{Gap, NodeId, TrieRelation};
use crate::value::{Val, NEG_INF, POS_INF};

/// Minimum run length before the [`LeafPolicy::Auto`] policy considers
/// packing: shorter runs gallop in a handful of comparisons anyway, so a
/// bitset buys nothing.
pub const DENSE_MIN_RUN: usize = 8;

/// Maximum span-to-length ratio the [`LeafPolicy::Auto`] policy accepts:
/// a run is packed only when `span ≤ DENSE_SPAN_FACTOR · len`, i.e. at
/// least one value per `DENSE_SPAN_FACTOR` bits (≥ 25% bit occupancy).
pub const DENSE_SPAN_FACTOR: i128 = 4;

/// How a relation chooses the physical representation of each node's
/// child run (see the module docs). The policy lives on the
/// [`crate::Database`] and is re-applied whenever a relation's immutable
/// base is rebuilt (load and compaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafPolicy {
    /// Sorted arrays everywhere — the canonical layout, no hybrid built.
    Sorted,
    /// Density-adaptive (the default): runs with at least
    /// [`DENSE_MIN_RUN`] values and at most [`DENSE_SPAN_FACTOR`] bits of
    /// span per value are packed; everything else stays sorted.
    #[default]
    Auto,
    /// Pack every run whose bitset would not dwarf the sorted array (a
    /// memory guard still applies; see [`LeafPolicy::wants_dense`]).
    /// Used by tests and the CI backend matrix to force maximal bitset
    /// coverage.
    Dense,
}

impl LeafPolicy {
    /// Reads the policy from the `MSJ_LEAF` environment variable:
    /// `off`/`sorted` → [`LeafPolicy::Sorted`], `on`/`dense`/`force` →
    /// [`LeafPolicy::Dense`], anything else (or unset) →
    /// [`LeafPolicy::Auto`].
    pub fn from_env() -> Self {
        Self::parse(std::env::var("MSJ_LEAF").ok().as_deref())
    }

    /// Parsing behind [`LeafPolicy::from_env`], separated so tests need
    /// not mutate process-global environment state.
    pub fn parse(raw: Option<&str>) -> Self {
        match raw.map(str::to_ascii_lowercase).as_deref() {
            Some("off") | Some("sorted") => LeafPolicy::Sorted,
            Some("on") | Some("dense") | Some("force") => LeafPolicy::Dense,
            _ => LeafPolicy::Auto,
        }
    }

    /// Stable label for reports and `--explain` output.
    pub fn label(&self) -> &'static str {
        match self {
            LeafPolicy::Sorted => "sorted",
            LeafPolicy::Auto => "auto",
            LeafPolicy::Dense => "dense",
        }
    }

    /// The density test: should this sorted child run be packed? Span
    /// arithmetic is done in `i128` so pathological spreads cannot
    /// overflow. Under [`LeafPolicy::Dense`] a memory guard still
    /// rejects runs whose word array would exceed `max(4·len, 4)` words
    /// (a packed run wider than ~4 machine words per value stores less
    /// information per byte than the sorted array it replaces).
    pub fn wants_dense(&self, vals: &[Val]) -> bool {
        if vals.is_empty() {
            return false;
        }
        let len = vals.len() as i128;
        let span = vals[vals.len() - 1] as i128 - vals[0] as i128 + 1;
        match self {
            LeafPolicy::Sorted => false,
            LeafPolicy::Auto => vals.len() >= DENSE_MIN_RUN && span <= DENSE_SPAN_FACTOR * len,
            LeafPolicy::Dense => (span + 63) / 64 <= (4 * len).max(4),
        }
    }
}

/// One packed child run: bit `i` of `words` is set iff value `base + i`
/// is among the node's children.
#[derive(Debug, Clone)]
struct DenseRun {
    /// Value of bit 0.
    base: Val,
    /// Number of set bits (the run length / child count).
    len: u32,
    /// The packed bitset; the last word is zero-padded past the top
    /// value.
    words: Box<[u64]>,
    /// Rank directory: `rank[w]` = number of set bits in `words[..w]`,
    /// so `rank[words.len()] == len`.
    rank: Box<[u32]>,
}

impl DenseRun {
    /// Packs a non-empty sorted run. Callers must have applied
    /// [`LeafPolicy::wants_dense`] first, which bounds the span.
    fn build(vals: &[Val]) -> DenseRun {
        let base = vals[0];
        let span = (vals[vals.len() - 1] - base) as usize + 1;
        let n_words = span.div_ceil(64);
        let mut words = vec![0u64; n_words];
        for &v in vals {
            let off = (v - base) as usize;
            words[off / 64] |= 1u64 << (off % 64);
        }
        let mut rank = Vec::with_capacity(n_words + 1);
        let mut acc = 0u32;
        rank.push(0);
        for &w in &words {
            acc += w.count_ones();
            rank.push(acc);
        }
        DenseRun {
            base,
            len: vals.len() as u32,
            words: words.into(),
            rank: rank.into(),
        }
    }

    /// Rank: `|{v in run : v ≤ a}|`. One rank-directory lookup plus one
    /// masked popcount of a single data word.
    fn count_le(&self, a: Val, stats: &mut ExecStats) -> usize {
        if a < self.base {
            return 0;
        }
        let off = a as i128 - self.base as i128;
        if off >= self.words.len() as i128 * 64 {
            return self.len as usize;
        }
        let off = off as usize;
        let (w, b) = (off / 64, off % 64);
        let mask = if b == 63 {
            !0u64
        } else {
            (1u64 << (b + 1)) - 1
        };
        stats.bitset_words_scanned += 1;
        self.rank[w] as usize + (self.words[w] & mask).count_ones() as usize
    }

    /// Select: the value of the `k`-th set bit, 1-based (`1 ≤ k ≤ len`).
    /// Binary search of the rank directory, then a bit walk inside one
    /// data word.
    fn select(&self, k: usize, stats: &mut ExecStats) -> Val {
        debug_assert!(k >= 1 && k <= self.len as usize);
        // Smallest w with rank[w + 1] ≥ k is the word holding bit k.
        let w = self.rank.partition_point(|&r| (r as usize) < k) - 1;
        stats.bitset_words_scanned += 1;
        let mut word = self.words[w];
        let mut remaining = k - self.rank[w] as usize;
        loop {
            let tz = word.trailing_zeros() as usize;
            if remaining == 1 {
                return self.base + (w * 64 + tz) as Val;
            }
            word &= word - 1; // clear lowest set bit
            remaining -= 1;
        }
    }

    /// Sibling seek with the [`TrieStorage::seek_ge`] contract: smallest
    /// 0-based index `i ≥ from` whose value is ≥ `target`, or `len`.
    fn seek_ge(&self, from: usize, target: Val, stats: &mut ExecStats) -> usize {
        let lt = if target <= self.base {
            0
        } else {
            self.count_le(target - 1, stats)
        };
        lt.max(from)
    }

    /// `select` with a word hint: walks the rank directory outward from
    /// `hint` instead of binary-searching it. Callers pass the probe
    /// word, and a dense run's neighbouring set bit is rarely more than
    /// a word away, so the walk is a step or two of contiguous `u32`
    /// reads.
    fn select_near(&self, k: usize, hint: usize, stats: &mut ExecStats) -> Val {
        let mut w = hint;
        // rank[0] = 0 < k and rank[n_words] = len ≥ k bound the walk.
        while self.rank[w] as usize >= k {
            w -= 1;
        }
        while (self.rank[w + 1] as usize) < k {
            w += 1;
        }
        stats.bitset_words_scanned += 1;
        let mut word = self.words[w];
        let mut remaining = k - self.rank[w] as usize;
        loop {
            let tz = word.trailing_zeros() as usize;
            if remaining == 1 {
                return self.base + (w * 64 + tz) as Val;
            }
            word &= word - 1;
            remaining -= 1;
        }
    }

    /// Builds the `FindGap` answer from a precomputed rank — the exact
    /// packed mirror of `gap_from_cnt_le`, with bit probes standing in
    /// for slice indexing. An in-range exact hit is one bit test; an
    /// in-range miss resolves both neighbours by walking outward from
    /// the probe word.
    fn gap_from_rank(&self, cnt_le: usize, a: Val, stats: &mut ExecStats) -> Gap {
        let n = self.len as usize;
        let off = a as i128 - self.base as i128;
        if off >= 0 && off < self.words.len() as i128 * 64 {
            let off = off as usize;
            let (w, b) = (off / 64, off % 64);
            stats.bitset_words_scanned += 1;
            if self.words[w] & (1u64 << b) != 0 {
                return Gap {
                    lo_coord: cnt_le,
                    hi_coord: cnt_le,
                    lo_val: a,
                    hi_val: a,
                };
            }
            let (lo_coord, lo_val) = if cnt_le == 0 {
                (0, NEG_INF)
            } else {
                (cnt_le, self.select_near(cnt_le, w, stats))
            };
            let (hi_coord, hi_val) = if cnt_le == n {
                (n + 1, POS_INF)
            } else {
                (cnt_le + 1, self.select_near(cnt_le + 1, w, stats))
            };
            return Gap {
                lo_coord,
                hi_coord,
                lo_val,
                hi_val,
            };
        }
        // Out-of-range probes sit before the first or past the last
        // value; only the inner neighbour needs a select.
        if off < 0 {
            Gap {
                lo_coord: 0,
                hi_coord: 1,
                lo_val: NEG_INF,
                hi_val: self.select(1, stats),
            }
        } else {
            Gap {
                lo_coord: n,
                hi_coord: n + 1,
                lo_val: self.select(n, stats),
                hi_val: POS_INF,
            }
        }
    }
}

/// The hybrid relation: a canonical [`TrieRelation`] base plus packed
/// [`u64`]-bitset runs for the nodes whose child runs pass the density
/// test (see the module docs).
///
/// Built from an immutable base at load/compaction time via
/// [`BitLeafRelation::build`]; probe primitives dispatch per node to the
/// packed run when one exists and fall back to the base's sorted arrays
/// otherwise, so the full [`TrieStorage`] read contract holds on any mix.
#[derive(Debug, Clone)]
pub struct BitLeafRelation {
    base: Arc<TrieRelation>,
    /// `runs[depth][parent_index]` — the optional packed run of the
    /// parent node's children. `runs[0]` has one entry (the root);
    /// `runs[d]` for `d ≥ 1` has one entry per node at depth `d`.
    runs: Vec<Vec<Option<Box<DenseRun>>>>,
    dense_runs: u64,
    words_total: u64,
}

impl BitLeafRelation {
    /// Scans every interior node of `base` and packs the runs selected
    /// by `policy`. Returns `None` when the hybrid would be pointless:
    /// always under [`LeafPolicy::Sorted`], and under [`LeafPolicy::Auto`]
    /// when no run passes the density test (the caller then probes the
    /// base directly, paying zero dispatch overhead). Under
    /// [`LeafPolicy::Dense`] a hybrid is always returned, even with zero
    /// packed runs, so forced-on test matrices exercise the dispatch
    /// path.
    pub fn build(base: Arc<TrieRelation>, policy: LeafPolicy) -> Option<Self> {
        if policy == LeafPolicy::Sorted {
            return None;
        }
        let arity = base.arity();
        let mut runs: Vec<Vec<Option<Box<DenseRun>>>> = Vec::with_capacity(arity);
        let mut dense_runs = 0u64;
        let mut words_total = 0u64;
        for depth in 0..arity {
            let parents = if depth == 0 {
                1
            } else {
                base.level_column(depth - 1).len()
            };
            let mut level_runs = Vec::with_capacity(parents);
            for pos in 0..parents {
                let vals = base.child_values(NodeId { depth, pos });
                if policy.wants_dense(vals) {
                    let run = DenseRun::build(vals);
                    dense_runs += 1;
                    words_total += run.words.len() as u64;
                    level_runs.push(Some(Box::new(run)));
                } else {
                    level_runs.push(None);
                }
            }
            runs.push(level_runs);
        }
        if dense_runs == 0 && policy == LeafPolicy::Auto {
            return None;
        }
        Some(BitLeafRelation {
            base,
            runs,
            dense_runs,
            words_total,
        })
    }

    /// The canonical base trie this hybrid overlays.
    pub fn base(&self) -> &Arc<TrieRelation> {
        &self.base
    }

    /// Number of packed (bitset-backed) runs.
    pub fn dense_run_count(&self) -> u64 {
        self.dense_runs
    }

    /// Total `u64` words across all packed runs (resident bitset size).
    pub fn words_total(&self) -> u64 {
        self.words_total
    }

    /// The packed run of `node`'s children, if the run was selected
    /// dense.
    fn run(&self, node: NodeId) -> Option<&DenseRun> {
        let idx = if node.depth == 0 { 0 } else { node.pos };
        self.runs[node.depth][idx].as_deref()
    }

    /// True when `node`'s child run is bitset-backed.
    pub fn is_dense(&self, node: NodeId) -> bool {
        self.run(node).is_some()
    }
}

impl TrieStorage for BitLeafRelation {
    fn name(&self) -> &str {
        self.base.name()
    }

    fn arity(&self) -> usize {
        self.base.arity()
    }

    fn len(&self) -> usize {
        self.base.len()
    }

    fn root(&self) -> NodeId {
        self.base.root()
    }

    fn child_count(&self, node: NodeId) -> usize {
        self.base.child_count(node)
    }

    fn child(&self, node: NodeId, coord: usize) -> NodeId {
        self.base.child(node, coord)
    }

    fn value(&self, node: NodeId) -> Val {
        self.base.value(node)
    }

    fn child_values(&self, node: NodeId) -> &[Val] {
        self.base.child_values(node)
    }

    fn subtree_tuple_count(&self, node: NodeId) -> usize {
        self.base.subtree_tuple_count(node)
    }

    fn find_gap(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> Gap {
        match self.run(node) {
            Some(run) => {
                stats.find_gap_calls += 1;
                stats.bitset_probes += 1;
                let cnt_le = run.count_le(a, stats);
                run.gap_from_rank(cnt_le, a, stats)
            }
            // The base bumps `find_gap_calls` itself.
            None => self.base.find_gap(node, a, stats),
        }
    }

    fn count_le(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> usize {
        match self.run(node) {
            Some(run) => {
                stats.bitset_probes += 1;
                run.count_le(a, stats)
            }
            None => sorted::count_le(self.base.child_values(node), a),
        }
    }

    fn seek_le(&self, node: NodeId, from: usize, a: Val, stats: &mut ExecStats) -> usize {
        match self.run(node) {
            // Rank is O(1) on a packed run; the position hint is moot.
            Some(run) => {
                stats.bitset_probes += 1;
                run.count_le(a, stats)
            }
            None => sorted::gallop_gt(self.base.child_values(node), from, a),
        }
    }

    fn seek_ge(&self, node: NodeId, from: usize, target: Val, stats: &mut ExecStats) -> usize {
        match self.run(node) {
            Some(run) => {
                stats.bitset_probes += 1;
                run.seek_ge(from, target, stats)
            }
            None => sorted::gallop_ge(self.base.child_values(node), from, target),
        }
    }

    fn child_value_at(&self, node: NodeId, coord: usize, stats: &mut ExecStats) -> Val {
        match self.run(node) {
            Some(run) => {
                stats.bitset_probes += 1;
                run.select(coord, stats)
            }
            None => self.base.child_values(node)[coord - 1],
        }
    }

    fn hinted_seeks(&self, node: NodeId) -> bool {
        !self.is_dense(node)
    }

    fn gap_at(&self, node: NodeId, cnt_le: usize, a: Val, stats: &mut ExecStats) -> Gap {
        match self.run(node) {
            Some(run) => {
                stats.bitset_probes += 1;
                run.gap_from_rank(cnt_le, a, stats)
            }
            None => crate::trie::gap_from_cnt_le(self.base.child_values(node), cnt_le, a),
        }
    }

    fn descend(&self, prefix: &[Val]) -> (NodeId, usize) {
        self.base.descend(prefix)
    }

    fn contains(&self, tuple: &[Val]) -> bool {
        self.base.contains(tuple)
    }

    fn child_tuple_counts(&self, node: NodeId) -> Vec<usize> {
        self.base.child_tuple_counts(node)
    }
}

/// A `Copy` reference to whichever backend a relation probe should use:
/// the canonical sorted trie or its hybrid overlay. The executor resolves
/// this once per atom (see `Database::probe_target`) and the probe loop
/// monomorphizes over it, so the sorted path compiles to exactly the code
/// it had before the hybrid existed.
#[derive(Debug, Clone, Copy)]
pub enum StorageRef<'a> {
    /// Probe the canonical sorted-array trie.
    Sorted(&'a TrieRelation),
    /// Probe the hybrid bitset overlay.
    Hybrid(&'a BitLeafRelation),
}

impl StorageRef<'_> {
    /// Packed-run inventory of the referenced backend (0 for the
    /// canonical layout) — recorded once per stream into
    /// [`crate::ExecStats::dense_leaves`].
    pub fn dense_runs(&self) -> u64 {
        match self {
            StorageRef::Sorted(_) => 0,
            StorageRef::Hybrid(h) => h.dense_run_count(),
        }
    }

    /// Total packed words of the referenced backend (0 for the canonical
    /// layout).
    pub fn words_total(&self) -> u64 {
        match self {
            StorageRef::Sorted(_) => 0,
            StorageRef::Hybrid(h) => BitLeafRelation::words_total(h),
        }
    }
}

/// Forwards one trait method to whichever backend the enum holds. Every
/// method — including the defaulted ones — must be forwarded explicitly,
/// otherwise the trait defaults would run against `StorageRef` itself and
/// silently bypass the hybrid's overrides.
macro_rules! fwd {
    ($self:ident, $r:ident => $e:expr) => {
        match $self {
            StorageRef::Sorted($r) => $e,
            StorageRef::Hybrid($r) => $e,
        }
    };
}

impl TrieStorage for StorageRef<'_> {
    fn name(&self) -> &str {
        fwd!(self, r => TrieStorage::name(*r))
    }

    fn arity(&self) -> usize {
        fwd!(self, r => TrieStorage::arity(*r))
    }

    fn len(&self) -> usize {
        fwd!(self, r => TrieStorage::len(*r))
    }

    fn is_empty(&self) -> bool {
        fwd!(self, r => TrieStorage::is_empty(*r))
    }

    fn root(&self) -> NodeId {
        fwd!(self, r => TrieStorage::root(*r))
    }

    fn child_count(&self, node: NodeId) -> usize {
        fwd!(self, r => TrieStorage::child_count(*r, node))
    }

    fn child(&self, node: NodeId, coord: usize) -> NodeId {
        fwd!(self, r => TrieStorage::child(*r, node, coord))
    }

    fn value(&self, node: NodeId) -> Val {
        fwd!(self, r => TrieStorage::value(*r, node))
    }

    fn child_values(&self, node: NodeId) -> &[Val] {
        fwd!(self, r => TrieStorage::child_values(*r, node))
    }

    fn subtree_tuple_count(&self, node: NodeId) -> usize {
        fwd!(self, r => TrieStorage::subtree_tuple_count(*r, node))
    }

    fn find_gap(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> Gap {
        fwd!(self, r => TrieStorage::find_gap(*r, node, a, stats))
    }

    fn count_le(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> usize {
        fwd!(self, r => TrieStorage::count_le(*r, node, a, stats))
    }

    fn seek_le(&self, node: NodeId, from: usize, a: Val, stats: &mut ExecStats) -> usize {
        fwd!(self, r => TrieStorage::seek_le(*r, node, from, a, stats))
    }

    fn seek_ge(&self, node: NodeId, from: usize, target: Val, stats: &mut ExecStats) -> usize {
        fwd!(self, r => TrieStorage::seek_ge(*r, node, from, target, stats))
    }

    fn child_value_at(&self, node: NodeId, coord: usize, stats: &mut ExecStats) -> Val {
        fwd!(self, r => TrieStorage::child_value_at(*r, node, coord, stats))
    }

    fn hinted_seeks(&self, node: NodeId) -> bool {
        fwd!(self, r => TrieStorage::hinted_seeks(*r, node))
    }

    fn gap_at(&self, node: NodeId, cnt_le: usize, a: Val, stats: &mut ExecStats) -> Gap {
        fwd!(self, r => TrieStorage::gap_at(*r, node, cnt_le, a, stats))
    }

    fn descend(&self, prefix: &[Val]) -> (NodeId, usize) {
        fwd!(self, r => TrieStorage::descend(*r, prefix))
    }

    fn contains(&self, tuple: &[Val]) -> bool {
        fwd!(self, r => TrieStorage::contains(*r, tuple))
    }

    fn child_tuple_counts(&self, node: NodeId) -> Vec<usize> {
        fwd!(self, r => TrieStorage::child_tuple_counts(*r, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::MAX_DOMAIN_VALUE;
    use crate::Tuple;

    fn trie(arity: usize, tuples: Vec<Tuple>) -> Arc<TrieRelation> {
        Arc::new(TrieRelation::from_tuples("R", arity, tuples).unwrap())
    }

    /// Every interior node, every probe value drawn from the node's run
    /// (±1) plus sentinels: the hybrid must agree with the base on
    /// `find_gap`, the rank/seek primitives, select, and iteration.
    fn assert_equivalent(base: &TrieRelation, hybrid: &BitLeafRelation) {
        let mut nodes = vec![base.root()];
        while let Some(node) = nodes.pop() {
            let vals = base.child_values(node);
            let mut probes: Vec<Val> = vec![NEG_INF, -1, 0, POS_INF, MAX_DOMAIN_VALUE];
            for &v in vals {
                probes.push(v);
                probes.push(v.saturating_sub(1));
                if v < MAX_DOMAIN_VALUE {
                    probes.push(v + 1);
                }
            }
            for a in probes {
                let mut s1 = ExecStats::new();
                let mut s2 = ExecStats::new();
                let g1 = base.find_gap(node, a, &mut s1);
                let g2 = hybrid.find_gap(node, a, &mut s2);
                assert_eq!(g1, g2, "find_gap({node:?}, {a}) diverged");
                assert_eq!(s1.find_gap_calls, s2.find_gap_calls);
                let c1 = TrieStorage::count_le(base, node, a, &mut s1);
                let c2 = hybrid.count_le(node, a, &mut s2);
                assert_eq!(c1, c2, "count_le({node:?}, {a}) diverged");
                assert_eq!(hybrid.seek_le(node, 0, a, &mut s2), c1);
                if c1 > 0 {
                    assert_eq!(hybrid.seek_le(node, c1, a, &mut s2), c1);
                }
                assert_eq!(
                    hybrid.seek_ge(node, 0, a, &mut s2),
                    sorted::gallop_ge(vals, 0, a),
                    "seek_ge({node:?}, {a}) diverged"
                );
                assert_eq!(hybrid.gap_at(node, c1, a, &mut s2), g1);
            }
            for coord in 1..=vals.len() {
                let mut st = ExecStats::new();
                assert_eq!(hybrid.child_value_at(node, coord, &mut st), vals[coord - 1]);
                let child = base.child(node, coord);
                assert_eq!(
                    hybrid.subtree_tuple_count(child),
                    base.subtree_tuple_count(child)
                );
                if child.depth() < base.arity() {
                    nodes.push(child);
                }
            }
            assert_eq!(
                TrieStorage::child_tuple_counts(base, node),
                hybrid.child_tuple_counts(node)
            );
        }
        assert_eq!(hybrid.to_tuples(), base.to_tuples());
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(LeafPolicy::parse(None), LeafPolicy::Auto);
        assert_eq!(LeafPolicy::parse(Some("off")), LeafPolicy::Sorted);
        assert_eq!(LeafPolicy::parse(Some("SORTED")), LeafPolicy::Sorted);
        assert_eq!(LeafPolicy::parse(Some("on")), LeafPolicy::Dense);
        assert_eq!(LeafPolicy::parse(Some("dense")), LeafPolicy::Dense);
        assert_eq!(LeafPolicy::parse(Some("Force")), LeafPolicy::Dense);
        assert_eq!(LeafPolicy::parse(Some("auto")), LeafPolicy::Auto);
        assert_eq!(LeafPolicy::parse(Some("garbage")), LeafPolicy::Auto);
        assert_eq!(LeafPolicy::default(), LeafPolicy::Auto);
        assert_eq!(LeafPolicy::Dense.label(), "dense");
    }

    #[test]
    fn sorted_policy_builds_nothing() {
        let base = trie(1, (0..64).map(|v| vec![v]).collect());
        assert!(BitLeafRelation::build(base, LeafPolicy::Sorted).is_none());
    }

    #[test]
    fn empty_relation() {
        let base = trie(2, vec![]);
        assert!(BitLeafRelation::build(base.clone(), LeafPolicy::Auto).is_none());
        // Forced on: hybrid exists with zero packed runs and still
        // honours the probe contract on the empty root.
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Dense).unwrap();
        assert_eq!(h.dense_run_count(), 0);
        assert!(TrieStorage::is_empty(&h));
        let mut st = ExecStats::new();
        let g = h.find_gap(h.root(), 5, &mut st);
        assert_eq!((g.lo_coord, g.hi_coord), (0, 1));
        assert_eq!((g.lo_val, g.hi_val), (NEG_INF, POS_INF));
        assert_eq!(st.bitset_probes, 0);
        assert_equivalent(&base, &h);
    }

    #[test]
    fn single_value() {
        let base = trie(1, vec![vec![42]]);
        // A single value never passes the Auto length floor...
        assert!(BitLeafRelation::build(base.clone(), LeafPolicy::Auto).is_none());
        // ...but packs under Dense: one word, rank directory [0, 1].
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Dense).unwrap();
        assert_eq!(h.dense_run_count(), 1);
        assert_eq!(h.words_total(), 1);
        assert!(h.is_dense(h.root()));
        assert_equivalent(&base, &h);
    }

    #[test]
    fn all_dense_contiguous_run() {
        // 0..=63 fills word 0 exactly; 0..=64 straddles into word 1.
        for top in [63, 64] {
            let base = trie(1, (0..=top).map(|v| vec![v]).collect());
            let h = BitLeafRelation::build(base.clone(), LeafPolicy::Auto).unwrap();
            assert_eq!(h.dense_run_count(), 1);
            assert_eq!(h.words_total(), if top == 63 { 1 } else { 2 });
            assert_equivalent(&base, &h);
        }
    }

    #[test]
    fn all_sparse_stays_sorted() {
        // 16 values, each 1000 apart: span/len = 1000 ≫ 4.
        let base = trie(1, (0..16).map(|v| vec![v * 1000]).collect());
        assert!(BitLeafRelation::build(base.clone(), LeafPolicy::Auto).is_none());
        // Forced on, the memory guard still applies per run — span
        // 15001 needs 235 words > max(4·16, 4) = 64, so the run stays
        // sorted even under Dense.
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Dense).unwrap();
        assert_eq!(h.dense_run_count(), 0);
        assert!(!h.is_dense(h.root()));
        assert_equivalent(&base, &h);
    }

    #[test]
    fn word_boundary_straddling_runs() {
        // Runs deliberately crossing 64-bit word boundaries at awkward
        // offsets: base 60 with values through 130 (words 0..=2 of the
        // run), plus holes on the exact boundaries 63/64 and 127/128.
        let vals: Vec<Val> = (60..=130)
            .filter(|v| ![63, 64, 127, 128].contains(v))
            .collect();
        let base = trie(1, vals.iter().map(|&v| vec![v]).collect());
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Auto).unwrap();
        assert_eq!(h.dense_run_count(), 1);
        assert_equivalent(&base, &h);
    }

    #[test]
    fn max_domain_adjacent_gaps() {
        // Values packed against the top of the legal domain: probes at
        // MAX_DOMAIN_VALUE and POS_INF must produce the +∞ sentinel
        // without overflow in span or select arithmetic.
        let top = MAX_DOMAIN_VALUE;
        let vals: Vec<Val> = (0..32).map(|i| top - 2 * i).collect();
        let mut sorted_vals = vals.clone();
        sorted_vals.sort_unstable();
        let base = trie(1, sorted_vals.iter().map(|&v| vec![v]).collect());
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Auto).unwrap();
        assert_eq!(h.dense_run_count(), 1);
        assert_equivalent(&base, &h);
        let mut st = ExecStats::new();
        let g = h.find_gap(h.root(), top, &mut st);
        assert!(g.exact());
        assert_eq!(g.hi_val, top);
        let g = h.find_gap(h.root(), POS_INF, &mut st);
        assert_eq!(g.hi_val, POS_INF);
        assert_eq!(g.lo_val, top);
    }

    #[test]
    fn multi_level_mixed_density() {
        // First level sparse (3 values far apart), second level dense
        // under one parent and sparse under the others.
        let mut tuples: Vec<Tuple> = (0..32).map(|v| vec![5, v]).collect();
        tuples.push(vec![100_000, 7]);
        tuples.push(vec![900_000, 3]);
        let base = trie(2, tuples);
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Auto).unwrap();
        assert_eq!(h.dense_run_count(), 1);
        let n1 = base.child(base.root(), 1);
        assert!(h.is_dense(n1));
        assert!(!h.is_dense(base.root()));
        assert!(h.hinted_seeks(base.root()));
        assert!(!h.hinted_seeks(n1));
        assert_equivalent(&base, &h);
    }

    #[test]
    fn counters_account_packed_probes() {
        let base = trie(1, (0..=200).map(|v| vec![v]).collect());
        let h = BitLeafRelation::build(base, LeafPolicy::Auto).unwrap();
        let mut st = ExecStats::new();
        h.find_gap(h.root(), 100, &mut st);
        assert_eq!(st.find_gap_calls, 1);
        assert_eq!(st.bitset_probes, 1);
        // One rank word + one select word (exact hit short-circuits the
        // second select).
        assert_eq!(st.bitset_words_scanned, 2);
        let before = st.bitset_words_scanned;
        h.count_le(h.root(), 150, &mut st);
        assert_eq!(st.bitset_probes, 2);
        assert_eq!(st.bitset_words_scanned, before + 1);
    }

    #[test]
    fn storage_ref_forwards_both_backends() {
        let base = trie(1, (0..=100).map(|v| vec![v]).collect());
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Auto).unwrap();
        let s = StorageRef::Sorted(&base);
        let d = StorageRef::Hybrid(&h);
        assert_eq!(s.dense_runs(), 0);
        assert_eq!(d.dense_runs(), 1);
        assert_eq!(s.words_total(), 0);
        assert!(d.words_total() >= 2);
        let mut st_s = ExecStats::new();
        let mut st_d = ExecStats::new();
        for a in [NEG_INF, -1, 0, 50, 100, 101, POS_INF] {
            assert_eq!(
                s.find_gap(s.root(), a, &mut st_s),
                d.find_gap(d.root(), a, &mut st_d)
            );
        }
        assert_eq!(st_s.find_gap_calls, st_d.find_gap_calls);
        assert_eq!(st_s.bitset_probes, 0);
        assert_eq!(st_d.bitset_probes, 7);
        assert!(s.hinted_seeks(s.root()));
        assert!(!d.hinted_seeks(d.root()));
        assert_eq!(s.to_tuples(), d.to_tuples());
        assert_eq!(TrieStorage::name(&s), TrieStorage::name(&d));
        assert!(s.contains(&[50]) && d.contains(&[50]));
    }

    #[test]
    fn dense_memory_guard_under_forced_policy() {
        // Two values a billion apart: even Dense must refuse (the word
        // array would have ~16M entries for 2 values).
        let base = trie(1, vec![vec![0], vec![1_000_000_000]]);
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Dense).unwrap();
        assert_eq!(h.dense_run_count(), 0);
        assert_equivalent(&base, &h);
    }

    #[test]
    fn seek_ge_respects_from_hint() {
        let base = trie(1, (10..=90).map(|v| vec![v]).collect());
        let h = BitLeafRelation::build(base, LeafPolicy::Auto).unwrap();
        let mut st = ExecStats::new();
        let root = h.root();
        // First index with value ≥ 20 is 10; a larger `from` wins.
        assert_eq!(h.seek_ge(root, 0, 20, &mut st), 10);
        assert_eq!(h.seek_ge(root, 40, 20, &mut st), 40);
        // Past the end: child_count, exactly like gallop_ge.
        assert_eq!(h.seek_ge(root, 0, 1000, &mut st), 81);
        assert_eq!(h.seek_ge(root, 0, NEG_INF, &mut st), 0);
    }
}
