//! Searches over sorted slices: binary search partitions and galloping
//! (exponential) search.
//!
//! Galloping search is the "leapfrogging" strategy of Hwang–Lin / Demaine et
//! al. referenced in Section 6.2 of the paper: seeking forward from a known
//! position to the first element `≥ target` costs `O(log d)` where `d` is the
//! distance advanced, which is what makes leapfrog-style intersection
//! adaptive.

use crate::value::Val;

/// Number of elements in the sorted slice that are `≤ a`.
#[inline]
pub fn count_le(vals: &[Val], a: Val) -> usize {
    vals.partition_point(|&v| v <= a)
}

/// Number of elements in the sorted slice that are `< a`.
#[inline]
pub fn count_lt(vals: &[Val], a: Val) -> usize {
    vals.partition_point(|&v| v < a)
}

/// Index of the first element `≥ a` starting the search from position
/// `from`, using galloping (doubling) steps followed by a binary search in
/// the final bracket. Returns `vals.len()` if every element from `from`
/// onwards is `< a`.
///
/// Cost is `O(log(result − from + 1))` comparisons, so a full left-to-right
/// scan by repeated `gallop_ge` calls is adaptive in the total distance
/// travelled.
pub fn gallop_ge(vals: &[Val], from: usize, a: Val) -> usize {
    let n = vals.len();
    if from >= n {
        return n;
    }
    if vals[from] >= a {
        return from;
    }
    // Invariant: vals[from + lo] < a. Double the step until we overshoot.
    let mut step = 1usize;
    let mut lo = 0usize; // offset known to be < a
    loop {
        let probe = from + lo + step;
        if probe >= n {
            // Binary search in (from+lo, n).
            let tail = &vals[from + lo + 1..];
            return from + lo + 1 + tail.partition_point(|&v| v < a);
        }
        if vals[probe] >= a {
            let seg = &vals[from + lo + 1..=probe];
            return from + lo + 1 + seg.partition_point(|&v| v < a);
        }
        lo += step;
        step *= 2;
    }
}

/// Index of the first element `> a` starting from `from`, by galloping.
pub fn gallop_gt(vals: &[Val], from: usize, a: Val) -> usize {
    if a == Val::MAX {
        return vals.len();
    }
    gallop_ge(vals, from, a + 1)
}

/// Merges two sorted, deduplicated slices into their sorted intersection.
pub fn intersect_sorted(a: &[Val], b: &[Val]) -> Vec<Val> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_bounds() {
        let v = [1, 3, 3, 5, 9];
        assert_eq!(count_le(&v, 0), 0);
        assert_eq!(count_le(&v, 1), 1);
        assert_eq!(count_le(&v, 3), 3);
        assert_eq!(count_le(&v, 4), 3);
        assert_eq!(count_le(&v, 9), 5);
        assert_eq!(count_le(&v, 100), 5);
        assert_eq!(count_lt(&v, 3), 1);
        assert_eq!(count_lt(&v, 1), 0);
        assert_eq!(count_lt(&v, 10), 5);
    }

    #[test]
    fn gallop_matches_linear_scan() {
        let v: Vec<Val> = vec![2, 4, 4, 8, 16, 23, 42, 99, 100, 101];
        for from in 0..=v.len() {
            for a in -1..110 {
                let expect = v
                    .iter()
                    .enumerate()
                    .skip(from)
                    .find(|(_, &x)| x >= a)
                    .map(|(i, _)| i)
                    .unwrap_or(v.len());
                assert_eq!(gallop_ge(&v, from, a), expect, "from={from} a={a}");
            }
        }
    }

    #[test]
    fn gallop_gt_skips_equals() {
        let v: Vec<Val> = vec![5, 5, 5, 7];
        assert_eq!(gallop_gt(&v, 0, 5), 3);
        assert_eq!(gallop_gt(&v, 0, 4), 0);
        assert_eq!(gallop_gt(&v, 0, 7), 4);
    }

    #[test]
    fn gallop_on_empty_and_past_end() {
        let v: Vec<Val> = vec![];
        assert_eq!(gallop_ge(&v, 0, 5), 0);
        let v = vec![1, 2];
        assert_eq!(gallop_ge(&v, 2, 0), 2);
        assert_eq!(gallop_ge(&v, 5, 0), 2);
    }

    #[test]
    fn intersection_of_sorted_sets() {
        assert_eq!(intersect_sorted(&[1, 2, 3], &[2, 3, 4]), vec![2, 3]);
        assert_eq!(intersect_sorted(&[1, 5, 9], &[2, 6, 10]), Vec::<Val>::new());
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<Val>::new());
    }
}
