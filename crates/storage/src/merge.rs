//! Lazy merge of a base trie with its write delta.
//!
//! A versioned relation (see [`crate::VersionedRelation`] and
//! `docs/STORAGE.md`) is three tries over the same column order: an
//! immutable **base**, a sorted **insert delta** (`ins`, disjoint from the
//! base), and a sorted **tombstone delta** (`del`, a subset of the base).
//! The logical relation is `(base ∖ del) ∪ ins`. A [`MergeView`] answers
//! the paper's cursor contract — `FindGap`, descent by value, membership,
//! ordered iteration — against that logical relation *without building it*:
//! every probe consults the base plus the (small) deltas and combines the
//! answers.
//!
//! The contract the merge layer guarantees to the CDS/cursor layer above is
//! **observational equivalence**: every [`MergeView::find_gap`] returns
//! bit-for-bit the same [`Gap`] (coordinates *and* values) that
//! [`TrieRelation::find_gap`] would return on the materialized merge, and
//! [`MergeView::iter_tuples`] yields exactly the materialized tuple
//! sequence. Minesweeper's correctness rests only on that contract
//! (Section 2.1's ordered-search-tree model), so certificate-style
//! guarantees survive mutation unchanged. The property tests in this crate
//! assert the equivalence against [`MergeView::materialize`].
//!
//! Cost accounting: probes that consult a non-empty delta bump
//! [`ExecStats::delta_probes`], and each elementary union/liveness step
//! bumps [`ExecStats::merge_steps`] — the index-maintenance overhead the
//! WCOJ survey singles out, measured by the `mutation` bench.
//!
//! A merged child coordinate counts **live** base children (base children
//! whose subtree is not fully tombstoned) plus insert children not already
//! present live in the base. A base child is *dead* when the tombstones
//! under it cover its whole subtree — detected in `O(arity)` by comparing
//! [`TrieRelation::subtree_tuple_count`] on both sides, which is what makes
//! deletion of whole subtrees cheap.

use crate::backend::TrieStorage;
use crate::sorted;
use crate::stats::ExecStats;
use crate::trie::{gap_from_cnt_le, Gap, NodeId, TrieRelation, TupleIter};
use crate::value::{Tuple, Val, NEG_INF, POS_INF};

/// A node of the merged trie: the base / insert / tombstone nodes that share
/// this node's value prefix (each side is absent when the prefix does not
/// occur there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeNode {
    depth: usize,
    base: Option<NodeId>,
    ins: Option<NodeId>,
    del: Option<NodeId>,
}

impl MergeNode {
    /// Depth of the node (0 = root, `arity` = leaf).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Read-only merged view of `(base ∖ del) ∪ ins` (see the module docs).
///
/// ```
/// use minesweeper_storage::{ExecStats, MergeView, TrieRelation};
/// let base = TrieRelation::from_tuples("R", 1, vec![vec![1], vec![5]]).unwrap();
/// let ins = TrieRelation::from_tuples("R", 1, vec![vec![3]]).unwrap();
/// let del = TrieRelation::from_tuples("R", 1, vec![vec![5]]).unwrap();
/// let view = MergeView::new(&base, &ins, &del);
/// let mut st = ExecStats::new();
/// // Logical relation is {1, 3}: a probe at 4 sees 3 and +∞.
/// let g = view.find_gap(&view.root(), 4, &mut st);
/// assert_eq!(g.lo_val, 3);
/// assert_eq!(st.delta_probes, 1);
/// ```
///
/// The base side is generic over [`TrieStorage`] (defaulting to the
/// canonical [`TrieRelation`]), so a hybrid bitset base answers the
/// empty-delta fast path and all liveness bookkeeping through its packed
/// runs; the deltas themselves are always small sorted tries.
#[derive(Debug)]
pub struct MergeView<'a, B: TrieStorage = TrieRelation> {
    base: &'a B,
    ins: &'a TrieRelation,
    del: &'a TrieRelation,
}

impl<B: TrieStorage> Clone for MergeView<'_, B> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<B: TrieStorage> Copy for MergeView<'_, B> {}

impl<'a, B: TrieStorage> MergeView<'a, B> {
    /// Builds a view over a base trie and its deltas. All three must share
    /// one arity; the caller (the versioned relation) maintains the set
    /// invariants `ins ∩ base = ∅` and `del ⊆ base`.
    pub fn new(base: &'a B, ins: &'a TrieRelation, del: &'a TrieRelation) -> Self {
        assert_eq!(base.arity(), ins.arity(), "insert delta arity mismatch");
        assert_eq!(base.arity(), del.arity(), "tombstone delta arity mismatch");
        MergeView { base, ins, del }
    }

    /// Relation name (the base's name).
    pub fn name(&self) -> &str {
        self.base.name()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.base.arity()
    }

    /// Logical tuple count: `|base| − |del| + |ins|`.
    pub fn len(&self) -> usize {
        self.base.len() - self.del.len() + self.ins.len()
    }

    /// True when the logical relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when both deltas are empty (the view is the base).
    pub fn delta_is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }

    /// The merged root node.
    pub fn root(&self) -> MergeNode {
        MergeNode {
            depth: 0,
            base: Some(self.base.root()),
            ins: Some(self.ins.root()),
            del: Some(self.del.root()),
        }
    }

    fn side_vals(rel: &'a TrieRelation, node: Option<NodeId>) -> &'a [Val] {
        node.map_or(&[][..], |n| rel.child_values(n))
    }

    fn base_vals(&self, node: Option<NodeId>) -> &'a [Val] {
        node.map_or(&[][..], |n| self.base.child_values(n))
    }

    /// True when the base child at 0-based index `idx` under `node` is fully
    /// tombstoned (its whole subtree is in `del`). One merge step.
    fn base_child_dead(&self, node: &MergeNode, idx: usize, stats: &mut ExecStats) -> bool {
        let (Some(bn), Some(dn)) = (node.base, node.del) else {
            return false;
        };
        stats.merge_steps += 1;
        let v = self.base.child_values(bn)[idx];
        match self.del.child_values(dn).binary_search(&v) {
            Ok(j) => {
                let bc = self.base.child(bn, idx + 1);
                let dc = self.del.child(dn, j + 1);
                self.del.subtree_tuple_count(dc) == self.base.subtree_tuple_count(bc)
            }
            Err(_) => false,
        }
    }

    /// The paper's `R.FindGap(x, a)` against the merged relation. Returns
    /// exactly the [`Gap`] (coordinates in the *merged* child ordering,
    /// values with `±∞` sentinels) that [`TrieRelation::find_gap`] would
    /// return on [`MergeView::materialize`]. Increments `find_gap_calls`
    /// always, `delta_probes` when a non-empty delta was consulted, and
    /// `merge_steps` per liveness/union step.
    pub fn find_gap(&self, node: &MergeNode, a: Val, stats: &mut ExecStats) -> Gap {
        stats.find_gap_calls += 1;
        let base_vals = self.base_vals(node.base);
        let ins_vals = Self::side_vals(self.ins, node.ins);
        let del_vals = Self::side_vals(self.del, node.del);
        if ins_vals.is_empty() && del_vals.is_empty() {
            // Clean node: the merged answer is the base's answer, routed
            // through the storage trait so a packed bitset run answers in
            // O(1) rank + select instead of a binary search.
            return match node.base {
                Some(bn) => {
                    let cnt_le = self.base.count_le(bn, a, stats);
                    self.base.gap_at(bn, cnt_le, a, stats)
                }
                None => gap_from_cnt_le(&[], 0, a),
            };
        }
        stats.delta_probes += 1;

        // Count dead base children (≤ a, and in total).
        let (mut dead_le, mut dead_total) = (0usize, 0usize);
        for &v in del_vals {
            let idx = base_vals
                .binary_search(&v)
                .expect("tombstone child value must exist in base (del ⊆ base)");
            if self.base_child_dead(node, idx, stats) {
                dead_total += 1;
                if v <= a {
                    dead_le += 1;
                }
            }
        }
        // Count insert children that coincide with a live base child.
        let (mut overlap_le, mut overlap_total) = (0usize, 0usize);
        for &v in ins_vals {
            stats.merge_steps += 1;
            if let Ok(idx) = base_vals.binary_search(&v) {
                if !self.base_child_dead(node, idx, stats) {
                    overlap_total += 1;
                    if v <= a {
                        overlap_le += 1;
                    }
                }
            }
        }

        let b_le = sorted::count_le(base_vals, a);
        let i_le = sorted::count_le(ins_vals, a);
        let merged_le = b_le - dead_le + i_le - overlap_le;
        let merged_len = base_vals.len() - dead_total + ins_vals.len() - overlap_total;

        // Largest live value ≤ a on each side.
        let mut bi = b_le;
        while bi > 0 && self.base_child_dead(node, bi - 1, stats) {
            bi -= 1;
        }
        let base_lo = (bi > 0).then(|| base_vals[bi - 1]);
        let ins_lo = (i_le > 0).then(|| ins_vals[i_le - 1]);
        let lo = base_lo.into_iter().chain(ins_lo).max();

        // Smallest live value ≥ a on each side.
        let mut bj = sorted::count_lt(base_vals, a);
        while bj < base_vals.len() && self.base_child_dead(node, bj, stats) {
            bj += 1;
        }
        let base_hi = (bj < base_vals.len()).then(|| base_vals[bj]);
        let i_lt = sorted::count_lt(ins_vals, a);
        let ins_hi = (i_lt < ins_vals.len()).then(|| ins_vals[i_lt]);
        let hi = base_hi.into_iter().chain(ins_hi).min();

        let (lo_coord, lo_val) = match lo {
            Some(v) if merged_le > 0 => (merged_le, v),
            _ => (0, NEG_INF),
        };
        let (hi_coord, hi_val) = if lo_coord > 0 && lo_val == a {
            (lo_coord, a)
        } else if merged_le == merged_len {
            (merged_len + 1, POS_INF)
        } else {
            (
                merged_le + 1,
                hi.expect("a merged value > a must exist when merged_le < merged_len"),
            )
        };
        Gap {
            lo_coord,
            hi_coord,
            lo_val,
            hi_val,
        }
    }

    /// Steps to the merged child of `node` carrying value `v`, or `None`
    /// when `v` is not a live merged child value. Counts one `delta_probes`
    /// when a delta was consulted.
    pub fn child_by_value(
        &self,
        node: &MergeNode,
        v: Val,
        stats: &mut ExecStats,
    ) -> Option<MergeNode> {
        assert!(node.depth < self.arity(), "leaf nodes have no children");
        let ins_vals = Self::side_vals(self.ins, node.ins);
        let del_vals = Self::side_vals(self.del, node.del);
        if !ins_vals.is_empty() || !del_vals.is_empty() {
            stats.delta_probes += 1;
        }
        let mut base_side = None;
        let mut del_side = None;
        if let Some(bn) = node.base {
            if let Ok(i) = self.base.child_values(bn).binary_search(&v) {
                if !self.base_child_dead(node, i, stats) {
                    base_side = Some(self.base.child(bn, i + 1));
                    if let Some(dn) = node.del {
                        if let Ok(j) = del_vals.binary_search(&v) {
                            del_side = Some(self.del.child(dn, j + 1));
                        }
                    }
                }
            }
        }
        let ins_side = node.ins.and_then(|inn| {
            ins_vals
                .binary_search(&v)
                .ok()
                .map(|j| self.ins.child(inn, j + 1))
        });
        if base_side.is_none() && ins_side.is_none() {
            return None;
        }
        Some(MergeNode {
            depth: node.depth + 1,
            base: base_side,
            ins: ins_side,
            del: del_side,
        })
    }

    /// The sorted merged child values of `node` (allocates; the lazy probes
    /// above never need the full list).
    pub fn child_values(&self, node: &MergeNode, stats: &mut ExecStats) -> Vec<Val> {
        let base_vals = self.base_vals(node.base);
        let ins_vals = Self::side_vals(self.ins, node.ins);
        let mut out = Vec::with_capacity(base_vals.len() + ins_vals.len());
        let (mut i, mut j) = (0, 0);
        while i < base_vals.len() || j < ins_vals.len() {
            stats.merge_steps += 1;
            if j >= ins_vals.len() || (i < base_vals.len() && base_vals[i] <= ins_vals[j]) {
                let live = !self.base_child_dead(node, i, stats);
                if live {
                    out.push(base_vals[i]);
                    if j < ins_vals.len() && ins_vals[j] == base_vals[i] {
                        j += 1; // live-overlap value emitted once
                    }
                }
                // A dead base child leaves any equal insert value to the
                // ins side of the merge.
                i += 1;
            } else {
                out.push(ins_vals[j]);
                j += 1;
            }
        }
        out
    }

    /// Membership test against the logical relation.
    pub fn contains(&self, tuple: &[Val], stats: &mut ExecStats) -> bool {
        if !self.delta_is_empty() {
            stats.delta_probes += 1;
        }
        (self.base.contains(tuple) && !self.del.contains(tuple)) || self.ins.contains(tuple)
    }

    /// Iterates the merged tuples in lexicographic order.
    pub fn iter_tuples(&self) -> MergeIter<'a, B> {
        MergeIter {
            base: self.base.tuples().peekable(),
            ins: self.ins.iter_tuples().peekable(),
            del: self.del.iter_tuples().peekable(),
            steps: 0,
        }
    }

    /// Materializes the merged relation as a plain [`TrieRelation`] — the
    /// reference semantics for the lazy probes, and the snapshot/compaction
    /// builder. Returns the number of merge steps taken alongside.
    pub fn materialize(&self) -> (TrieRelation, u64) {
        let mut it = self.iter_tuples();
        let tuples: Vec<Tuple> = it.by_ref().collect();
        let rel = TrieRelation::from_sorted_unique(self.name().to_string(), self.arity(), &tuples);
        (rel, it.steps())
    }
}

/// Merging iterator over `(base ∖ del) ∪ ins` in lexicographic order.
pub struct MergeIter<'a, B: TrieStorage = TrieRelation> {
    base: std::iter::Peekable<TupleIter<'a, B>>,
    ins: std::iter::Peekable<TupleIter<'a>>,
    del: std::iter::Peekable<TupleIter<'a>>,
    steps: u64,
}

impl<B: TrieStorage> MergeIter<'_, B> {
    /// Elementary merge steps taken so far (one per tuple advanced on any
    /// side); feeds [`ExecStats::merge_steps`] in the `mutation` bench.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl<B: TrieStorage> Iterator for MergeIter<'_, B> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            self.steps += 1;
            let take_base = match (self.base.peek(), self.ins.peek()) {
                (Some(b), Some(i)) => b < i, // sides are disjoint, never equal
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            if !take_base {
                return self.ins.next();
            }
            let t = self.base.next().expect("peeked");
            // Tombstones are a subset of the base and both run in order, so
            // the del head either equals the base head (skip it) or is ahead.
            if self.del.peek() == Some(&t) {
                self.del.next();
                continue;
            }
            debug_assert!(self.del.peek().is_none_or(|d| *d > t), "del ⊄ base");
            return Some(t);
        }
    }
}

/// A descent cursor over a [`MergeView`]: maintains the current node path
/// and answers `FindGap` at the top — the merged analogue of the
/// [`crate::GapCursor`] probe pattern, for point reads and delta-aware
/// probing without materializing a snapshot.
#[derive(Debug, Clone)]
pub struct MergeCursor<'a, B: TrieStorage = TrieRelation> {
    view: MergeView<'a, B>,
    stack: Vec<MergeNode>,
}

impl<'a, B: TrieStorage> MergeCursor<'a, B> {
    /// A cursor positioned at the merged root.
    pub fn new(view: MergeView<'a, B>) -> Self {
        let root = view.root();
        MergeCursor {
            view,
            stack: vec![root],
        }
    }

    /// The view this cursor walks.
    pub fn view(&self) -> &MergeView<'a, B> {
        &self.view
    }

    /// The current node (top of the descent path).
    pub fn node(&self) -> &MergeNode {
        self.stack.last().expect("stack holds at least the root")
    }

    /// Depth of the current node (0 = root).
    pub fn depth(&self) -> usize {
        self.node().depth
    }

    /// `FindGap(current, a)` against the merged relation.
    pub fn find_gap(&self, a: Val, stats: &mut ExecStats) -> Gap {
        self.view.find_gap(self.node(), a, stats)
    }

    /// Descends to the child carrying `v`; returns false (and stays) when
    /// `v` is not a live merged child value.
    pub fn descend(&mut self, v: Val, stats: &mut ExecStats) -> bool {
        let node = *self.node();
        match self.view.child_by_value(&node, v, stats) {
            Some(child) => {
                self.stack.push(child);
                true
            }
            None => false,
        }
    }

    /// Pops back to the parent; returns false at the root.
    pub fn up(&mut self) -> bool {
        if self.stack.len() > 1 {
            self.stack.pop();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, arity: usize, tuples: &[&[Val]]) -> TrieRelation {
        TrieRelation::from_tuples(name, arity, tuples.iter().map(|t| t.to_vec()).collect()).unwrap()
    }

    fn empty(arity: usize) -> TrieRelation {
        TrieRelation::from_tuples("R", arity, vec![]).unwrap()
    }

    /// Probes every node of the materialized merge at a range of values and
    /// demands bit-identical gaps from the lazy view.
    fn assert_equivalent(base: &TrieRelation, ins: &TrieRelation, del: &TrieRelation) {
        assert_equivalent_on(base, ins, del);
    }

    /// [`assert_equivalent`] over any base backend.
    fn assert_equivalent_on<B: TrieStorage>(base: &B, ins: &TrieRelation, del: &TrieRelation) {
        let view = MergeView::new(base, ins, del);
        let (mat, _) = view.materialize();
        assert_eq!(view.len(), mat.len(), "len mismatch");
        assert_eq!(
            view.iter_tuples().collect::<Vec<_>>(),
            mat.to_tuples(),
            "tuple stream mismatch"
        );
        // Walk both tries in lockstep, probing each interior node.
        fn walk<B: TrieStorage>(
            view: &MergeView<B>,
            vnode: &MergeNode,
            mat: &TrieRelation,
            mnode: NodeId,
        ) {
            let mut st = ExecStats::new();
            let mvals: Vec<Val> = mat.child_values(mnode).to_vec();
            assert_eq!(
                view.child_values(vnode, &mut st),
                mvals,
                "child values at depth {}",
                mnode.depth()
            );
            // Probe around every child value plus sentinels.
            let mut probes = vec![0, 1, Val::MAX / 8];
            for &v in &mvals {
                probes.extend([v - 1, v, v + 1]);
            }
            for a in probes {
                let got = view.find_gap(vnode, a, &mut st);
                let expect = mat.find_gap(mnode, a, &mut ExecStats::new());
                assert_eq!(got, expect, "probe {a} at depth {}", mnode.depth());
            }
            if mnode.depth() + 1 < mat.arity() {
                for (i, &v) in mvals.iter().enumerate() {
                    let vchild = view.child_by_value(vnode, v, &mut st).unwrap();
                    walk(view, &vchild, mat, mat.child(mnode, i + 1));
                }
            } else {
                for &v in &mvals {
                    assert!(view.child_by_value(vnode, v, &mut st).is_some());
                }
            }
        }
        walk(&view, &view.root(), &mat, mat.root());
    }

    #[test]
    fn pure_base_is_transparent() {
        let base = rel("R", 2, &[&[1, 5], &[1, 9], &[4, 2]]);
        let (no_ins, no_del) = (empty(2), empty(2));
        let view = MergeView::new(&base, &no_ins, &no_del);
        let mut st = ExecStats::new();
        let g = view.find_gap(&view.root(), 2, &mut st);
        assert_eq!((g.lo_val, g.hi_val), (1, 4));
        assert_eq!(st.delta_probes, 0, "no delta, no delta probes");
        assert_equivalent(&base, &empty(2), &empty(2));
    }

    #[test]
    fn inserts_appear_deletes_vanish() {
        let base = rel("R", 2, &[&[1, 5], &[1, 9], &[4, 2], &[7, 3]]);
        let ins = rel("R", 2, &[&[1, 7], &[3, 3]]);
        let del = rel("R", 2, &[&[4, 2]]);
        let view = MergeView::new(&base, &ins, &del);
        let mut st = ExecStats::new();
        assert!(view.contains(&[3, 3], &mut st));
        assert!(view.contains(&[1, 7], &mut st));
        assert!(!view.contains(&[4, 2], &mut st));
        assert!(view.contains(&[1, 5], &mut st));
        assert_eq!(view.len(), 5);
        assert!(st.delta_probes > 0);
        assert_equivalent(&base, &ins, &del);
    }

    #[test]
    fn fully_tombstoned_subtree_disappears() {
        // Both tuples under first value 1 deleted: root child 1 must vanish.
        let base = rel("R", 2, &[&[1, 5], &[1, 9], &[4, 2]]);
        let del = rel("R", 2, &[&[1, 5], &[1, 9]]);
        let no_ins = empty(2);
        let view = MergeView::new(&base, &no_ins, &del);
        let mut st = ExecStats::new();
        let g = view.find_gap(&view.root(), 1, &mut st);
        assert_eq!((g.lo_val, g.hi_val), (NEG_INF, 4));
        assert!(view.child_by_value(&view.root(), 1, &mut st).is_none());
        assert_equivalent(&base, &empty(2), &del);
    }

    #[test]
    fn insert_under_tombstoned_subtree() {
        // Subtree 1 fully tombstoned in the base but revived by an insert.
        let base = rel("R", 2, &[&[1, 5], &[4, 2]]);
        let ins = rel("R", 2, &[&[1, 8]]);
        let del = rel("R", 2, &[&[1, 5]]);
        assert_equivalent(&base, &ins, &del);
        let view = MergeView::new(&base, &ins, &del);
        let mut st = ExecStats::new();
        let child = view.child_by_value(&view.root(), 1, &mut st).unwrap();
        let g = view.find_gap(&child, 5, &mut st);
        assert_eq!((g.lo_val, g.hi_val), (NEG_INF, 8));
    }

    #[test]
    fn empty_base_all_inserts() {
        let ins = rel("R", 3, &[&[1, 2, 3], &[1, 2, 5], &[9, 0, 0]]);
        assert_equivalent(&empty(3), &ins, &empty(3));
    }

    #[test]
    fn everything_deleted() {
        let base = rel("R", 2, &[&[1, 5], &[4, 2]]);
        let del = base.clone();
        let no_ins = empty(2);
        let view = MergeView::new(&base, &no_ins, &del);
        assert!(view.is_empty());
        assert_eq!(view.iter_tuples().count(), 0);
        assert_equivalent(&base, &empty(2), &del);
    }

    #[test]
    fn partial_overlap_prefixes() {
        // Inserts share the prefix 1 with base tuples; deletes hit only part
        // of that subtree.
        let base = rel(
            "R",
            3,
            &[&[1, 2, 4], &[1, 2, 7], &[1, 3, 5], &[7, 4, 2], &[10, 4, 1]],
        );
        let ins = rel("R", 3, &[&[1, 2, 5], &[1, 9, 9], &[8, 8, 8]]);
        let del = rel("R", 3, &[&[1, 2, 7], &[10, 4, 1]]);
        assert_equivalent(&base, &ins, &del);
    }

    #[test]
    fn merge_cursor_descends_and_probes() {
        let base = rel("R", 2, &[&[1, 5], &[4, 2]]);
        let ins = rel("R", 2, &[&[1, 8]]);
        let del = rel("R", 2, &[&[4, 2]]);
        let view = MergeView::new(&base, &ins, &del);
        let mut cur = MergeCursor::new(view);
        let mut st = ExecStats::new();
        assert_eq!(cur.depth(), 0);
        assert!(!cur.descend(4, &mut st), "fully dead child unreachable");
        assert!(cur.descend(1, &mut st));
        let g = cur.find_gap(6, &mut st);
        assert_eq!((g.lo_val, g.hi_val), (5, 8));
        assert!(cur.up());
        assert!(!cur.up());
        assert!(cur.view().contains(&[1, 8], &mut st));
    }

    /// The merge contract must hold verbatim when the base side is the
    /// hybrid bitset backend: same gaps, same child values, same tuple
    /// stream as the materialized merge.
    #[test]
    fn hybrid_base_honours_merge_contract() {
        use crate::bitleaf::{BitLeafRelation, LeafPolicy};
        use std::sync::Arc;
        let mut tuples: Vec<Vec<Val>> = (0..32).map(|v| vec![1, v]).collect();
        tuples.push(vec![5, 2]);
        tuples.push(vec![900_000, 7]);
        let base = Arc::new(TrieRelation::from_tuples("R", 2, tuples).unwrap());
        let ins = rel("R", 2, &[&[0, 1], &[1, 100], &[5, 3]]);
        let del = rel("R", 2, &[&[1, 3], &[1, 4], &[5, 2]]);
        let hybrid = BitLeafRelation::build(base.clone(), LeafPolicy::Dense).unwrap();
        assert!(hybrid.dense_run_count() >= 1);
        assert_equivalent_on(&hybrid, &ins, &del);
        assert_equivalent_on(&hybrid, &empty(2), &empty(2));
        // Empty-delta fast path goes through the packed run.
        let (e1, e2) = (empty(2), empty(2));
        let view = MergeView::new(&hybrid, &e1, &e2);
        let mut st = ExecStats::new();
        let node = view.child_by_value(&view.root(), 1, &mut st).unwrap();
        let g = view.find_gap(&node, 16, &mut st);
        assert!(g.exact());
        assert!(st.bitset_probes > 0, "dense run must answer the probe");
        // And the lazy view with deltas agrees with the sorted-base view
        // probe for probe.
        let vh = MergeView::new(&hybrid, &ins, &del);
        let vs = MergeView::new(base.as_ref(), &ins, &del);
        for a in [NEG_INF, -1, 0, 1, 3, 4, 5, 31, 100, 900_000, POS_INF] {
            let mut s1 = ExecStats::new();
            let mut s2 = ExecStats::new();
            assert_eq!(
                vh.find_gap(&vh.root(), a, &mut s1),
                vs.find_gap(&vs.root(), a, &mut s2),
            );
        }
    }

    #[test]
    fn materialize_counts_steps() {
        let base = rel("R", 1, &[&[1], &[3], &[5]]);
        let ins = rel("R", 1, &[&[2]]);
        let no_del = empty(1);
        let view = MergeView::new(&base, &ins, &no_del);
        let (mat, steps) = view.materialize();
        assert_eq!(mat.to_tuples(), vec![vec![1], vec![2], vec![3], vec![5]]);
        assert!(steps >= 4);
    }
}
