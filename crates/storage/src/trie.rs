//! The ordered search-tree relation (Figure 3 of the paper).
//!
//! A [`TrieRelation`] of arity `k` stores its tuples lexicographically sorted
//! and exposes them as an unbounded-fanout search tree with `k` levels: the
//! children of the root are the distinct first-column values, the children of
//! a depth-1 node are the distinct second-column values among tuples sharing
//! that first value, and so on. Index tuples `x = (x₁, …, x_j)` with 1-based
//! coordinates address nodes exactly as in Section 2.1; coordinate `0` and
//! `len+1` are the out-of-range sentinels of conventions (1)/(2).
//!
//! The physical layout is columnar: level `j` is a single sorted `Vec<Val>`
//! of node values, plus a prefix-offset array giving each node's child range
//! in level `j+1`. Navigation is therefore just range-restricted binary
//! search — `FindGap` costs `O(log |R|)` as the paper assumes.

use crate::backend::TrieStorage;
use crate::error::StorageError;
use crate::sorted;
use crate::stats::ExecStats;
use crate::value::{Tuple, Val, NEG_INF, POS_INF};

/// Identifies a node of the search tree.
///
/// `depth == 0` is the root (representing the empty index tuple); a node at
/// `depth d ≥ 1` is the `pos`-th entry (0-based, global within the level) of
/// level `d − 1` and carries the value `R[x₁, …, x_d]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    pub(crate) depth: usize,
    pub(crate) pos: usize,
}

impl NodeId {
    /// Depth of the node; the root has depth 0 and leaves have depth
    /// `arity`.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Result of a `FindGap(x, a)` probe: the paper's `(x⁻, x⁺)` pair together
/// with the values at those coordinates (with `±∞` for the out-of-range
/// sentinels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gap {
    /// `x⁻`: largest 1-based coordinate with `R[(x, x⁻)] ≤ a`; `0` when every
    /// child value exceeds `a` (so the value is `−∞`).
    pub lo_coord: usize,
    /// `x⁺`: smallest 1-based coordinate with `R[(x, x⁺)] ≥ a`; `len + 1`
    /// when every child value is below `a` (so the value is `+∞`).
    pub hi_coord: usize,
    /// `R[(x, x⁻)]`, or [`NEG_INF`] if `lo_coord == 0`.
    pub lo_val: Val,
    /// `R[(x, x⁺)]`, or [`POS_INF`] if `hi_coord == len + 1`.
    pub hi_val: Val,
}

impl Gap {
    /// True when `a` itself was found (`x⁻ = x⁺`).
    pub fn exact(&self) -> bool {
        self.lo_coord == self.hi_coord
    }
}

/// One level of the columnar trie.
#[derive(Debug, Clone, Default)]
struct Level {
    /// Node values, grouped contiguously by parent and sorted within each
    /// group.
    values: Vec<Val>,
    /// `child_off[i]..child_off[i+1]` is the child range of node `i` in the
    /// next level. Empty for the last level.
    child_off: Vec<u32>,
}

/// A relation stored as a sorted trie over its own column order.
///
/// Construct via [`crate::RelationBuilder`] or [`TrieRelation::from_tuples`].
///
/// ```
/// use minesweeper_storage::{ExecStats, TrieRelation};
/// let r = TrieRelation::from_tuples("R", 2, vec![vec![1, 5], vec![3, 7]]).unwrap();
/// let mut st = ExecStats::new();
/// // FindGap at the root around 2: brackets between the values 1 and 3.
/// let g = r.find_gap(r.root(), 2, &mut st);
/// assert_eq!((g.lo_val, g.hi_val), (1, 3));
/// assert!(!g.exact());
/// assert_eq!(st.find_gap_calls, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TrieRelation {
    name: String,
    arity: usize,
    n_tuples: usize,
    levels: Vec<Level>,
}

impl TrieRelation {
    /// Builds a relation from (possibly unsorted, possibly duplicated)
    /// tuples. Duplicates are removed, matching the set semantics of the
    /// paper.
    pub fn from_tuples(
        name: impl Into<String>,
        arity: usize,
        mut tuples: Vec<Tuple>,
    ) -> Result<Self, StorageError> {
        let name = name.into();
        assert!(arity >= 1, "relations must have arity >= 1");
        for t in &tuples {
            if t.len() != arity {
                return Err(StorageError::ArityMismatch {
                    relation: name,
                    expected: arity,
                    got: t.len(),
                });
            }
            for &v in t {
                if !(0..=crate::value::MAX_DOMAIN_VALUE).contains(&v) {
                    return Err(StorageError::ValueOutOfDomain {
                        relation: name,
                        value: v,
                    });
                }
            }
        }
        tuples.sort_unstable();
        tuples.dedup();
        Ok(Self::from_sorted_unique(name, arity, &tuples))
    }

    /// Builds from tuples that are already sorted and unique. Used by the
    /// builder; panics (debug) if the precondition is violated.
    pub(crate) fn from_sorted_unique(name: String, arity: usize, tuples: &[Tuple]) -> Self {
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]));
        let n_tuples = tuples.len();
        let mut levels: Vec<Level> = (0..arity).map(|_| Level::default()).collect();
        if n_tuples == 0 {
            return Self {
                name,
                arity,
                n_tuples,
                levels,
            };
        }
        // Walk columns left to right; at depth d, a new node starts whenever
        // the prefix of length d+1 changes.
        // `group_start[d]` = index in `tuples` where the current depth-d node
        // began.
        for depth in 0..arity {
            let level_is_leaf = depth + 1 == arity;
            let mut i = 0usize;
            while i < n_tuples {
                // A depth-`depth` node corresponds to a maximal run of tuples
                // sharing the first `depth+1` values whose first `depth`
                // values also match the enclosing parent run. We emit nodes
                // in tuple order, which is exactly sorted-per-parent order.
                let mut j = i + 1;
                while j < n_tuples && tuples[j][..=depth] == tuples[i][..=depth] {
                    j += 1;
                }
                levels[depth].values.push(tuples[i][depth]);
                if !level_is_leaf {
                    levels[depth].child_off.push(0); // fixed up below
                }
                i = j;
            }
        }
        // Fix up child offsets: children of consecutive nodes at depth d are
        // consecutive runs at depth d+1. Recompute by replaying the grouping.
        for depth in 0..arity.saturating_sub(1) {
            let mut offs = Vec::with_capacity(levels[depth].values.len() + 1);
            offs.push(0u32);
            let mut child = 0usize;
            let mut i = 0usize;
            while i < n_tuples {
                let mut j = i + 1;
                while j < n_tuples && tuples[j][..=depth] == tuples[i][..=depth] {
                    j += 1;
                }
                // Count distinct depth+1 prefixes inside [i, j).
                let mut k = i;
                while k < j {
                    let mut l = k + 1;
                    while l < j && tuples[l][..=depth + 1] == tuples[k][..=depth + 1] {
                        l += 1;
                    }
                    child += 1;
                    k = l;
                }
                offs.push(child as u32);
                i = j;
            }
            levels[depth].child_off = offs;
        }
        Self {
            name,
            arity,
            n_tuples,
            levels,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples — the paper's `|R|`.
    pub fn len(&self) -> usize {
        self.n_tuples
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.n_tuples == 0
    }

    /// The root node (empty index tuple).
    pub fn root(&self) -> NodeId {
        NodeId { depth: 0, pos: 0 }
    }

    /// Number of distinct values at the first trie level (`|R[*]|`).
    pub fn root_fanout(&self) -> usize {
        if self.n_tuples == 0 {
            0
        } else {
            self.levels[0].values.len()
        }
    }

    fn child_bounds(&self, node: NodeId) -> (usize, usize) {
        if node.depth == 0 {
            (
                0,
                if self.n_tuples == 0 {
                    0
                } else {
                    self.levels[0].values.len()
                },
            )
        } else {
            let lvl = &self.levels[node.depth - 1];
            (
                lvl.child_off[node.pos] as usize,
                lvl.child_off[node.pos + 1] as usize,
            )
        }
    }

    /// Number of children of `node` — the paper's `|R[(x, *)]|`. Panics if
    /// `node` is a leaf.
    pub fn child_count(&self, node: NodeId) -> usize {
        assert!(node.depth < self.arity, "leaf nodes have no children");
        let (lo, hi) = self.child_bounds(node);
        hi - lo
    }

    /// The child of `node` at 1-based coordinate `coord ∈ 1..=child_count`.
    /// This is the paper's step from index tuple `x` to `(x, coord)`.
    pub fn child(&self, node: NodeId, coord: usize) -> NodeId {
        let (lo, hi) = self.child_bounds(node);
        assert!(
            coord >= 1 && lo + coord - 1 < hi,
            "coordinate {coord} out of range 1..={} at depth {}",
            hi - lo,
            node.depth,
        );
        NodeId {
            depth: node.depth + 1,
            pos: lo + coord - 1,
        }
    }

    /// The value stored at a (non-root) node: `R[x₁, …, x_d]`.
    pub fn value(&self, node: NodeId) -> Val {
        assert!(node.depth >= 1, "the root carries no value");
        self.levels[node.depth - 1].values[node.pos]
    }

    /// The sorted child values of `node` (`R[(x, *)]`).
    pub fn child_values(&self, node: NodeId) -> &[Val] {
        assert!(node.depth < self.arity);
        let (lo, hi) = self.child_bounds(node);
        if self.n_tuples == 0 {
            return &[];
        }
        &self.levels[node.depth].values[lo..hi]
    }

    /// The paper's `R.FindGap(x, a)`: coordinates `(x⁻, x⁺)` bracketing `a`
    /// among the children of `node`, with out-of-range sentinels mapped to
    /// `−∞`/`+∞` values. Increments `stats.find_gap_calls` — the empirical
    /// certificate-size measure of Section 5.2.
    pub fn find_gap(&self, node: NodeId, a: Val, stats: &mut ExecStats) -> Gap {
        stats.find_gap_calls += 1;
        let vals = self.child_values(node);
        gap_from_cnt_le(vals, sorted::count_le(vals, a), a)
    }

    /// Descends from the root along exact value matches; returns the node
    /// reached for the longest matching prefix of `prefix` together with how
    /// many components matched.
    pub fn descend(&self, prefix: &[Val]) -> (NodeId, usize) {
        let mut node = self.root();
        for (i, &v) in prefix.iter().enumerate() {
            if node.depth == self.arity {
                return (node, i);
            }
            let vals = self.child_values(node);
            let cnt = sorted::count_le(vals, v);
            if cnt == 0 || vals[cnt - 1] != v {
                return (node, i);
            }
            node = self.child(node, cnt);
        }
        (node, prefix.len())
    }

    /// Membership test for a full tuple.
    pub fn contains(&self, tuple: &[Val]) -> bool {
        tuple.len() == self.arity && self.descend(tuple).1 == self.arity
    }

    /// Iterates all tuples in lexicographic order (materializing each).
    pub fn iter_tuples(&self) -> TupleIter<'_> {
        TupleIter::new(self)
    }

    /// Materializes the whole relation as a vector of tuples.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter_tuples().collect()
    }

    /// Projection of the relation onto its first column (`π_{A_{s(1)}}(R)`,
    /// i.e. `R[*]`).
    pub fn first_column(&self) -> &[Val] {
        if self.n_tuples == 0 {
            &[]
        } else {
            &self.levels[0].values
        }
    }

    /// Total number of trie nodes (the count of "variables" `R[x]` the
    /// instance defines, cf. Section 2.2).
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|l| l.values.len()).sum()
    }

    /// Number of tuples under each distinct first-column value, aligned
    /// with [`TrieRelation::first_column`] (so `counts.iter().sum() ==
    /// len()`). This is the weight vector equi-depth sharding uses to keep
    /// per-shard work balanced under skew; computed by cascading each root
    /// child's range through the child-offset arrays in `O(arity · |R[*]|)`.
    pub fn first_level_tuple_counts(&self) -> Vec<usize> {
        if self.n_tuples == 0 {
            return Vec::new();
        }
        self.child_tuple_counts(self.root())
    }

    /// Number of tuples (leaves) under each child of `node`, aligned with
    /// [`TrieRelation::child_values`]. The generalization of
    /// [`TrieRelation::first_level_tuple_counts`] to any interior node —
    /// nested sharding uses it to weigh the *second*-level split inside
    /// one heavy first value. Panics if `node` is a leaf.
    pub fn child_tuple_counts(&self, node: NodeId) -> Vec<usize> {
        assert!(node.depth < self.arity, "leaf nodes have no children");
        if self.n_tuples == 0 {
            return Vec::new();
        }
        // A child of `node` sits in level `node.depth`; leaves sit in level
        // `arity - 1`. Cascading a position range through the child-offset
        // arrays of the levels in between turns it into a leaf range.
        let (child_lo, child_hi) = self.child_bounds(node);
        (child_lo..child_hi)
            .map(|child| {
                let (mut lo, mut hi) = (child, child + 1);
                for level in node.depth..self.arity - 1 {
                    let off = &self.levels[level].child_off;
                    (lo, hi) = (off[lo] as usize, off[hi] as usize);
                }
                hi - lo
            })
            .collect()
    }

    /// Number of tuples (leaves) in the subtree rooted at `node`, in
    /// `O(arity)` by cascading the node's position range through the
    /// child-offset arrays. The root's subtree count is [`TrieRelation::len`];
    /// a leaf's is 1. The versioned-storage merge layer uses this to decide
    /// whether a tombstone set kills a base subtree outright (see
    /// `docs/STORAGE.md`).
    pub fn subtree_tuple_count(&self, node: NodeId) -> usize {
        if node.depth == 0 {
            return self.n_tuples;
        }
        let (mut lo, mut hi) = (node.pos, node.pos + 1);
        for level in node.depth - 1..self.arity - 1 {
            let off = &self.levels[level].child_off;
            (lo, hi) = (off[lo] as usize, off[hi] as usize);
        }
        hi - lo
    }

    /// All node values of a trie level (0-based), across all parents.
    /// Sibling groups are contiguous; cursors slice this column by the
    /// parent's child range.
    pub fn level_column(&self, level: usize) -> &[Val] {
        assert!(level < self.arity);
        &self.levels[level].values
    }
}

/// Builds the `(x⁻, x⁺)` pair from `cnt_le = |{v ∈ vals : v ≤ a}|` — the
/// single definition shared by [`TrieRelation::find_gap`] and the
/// position-reusing [`crate::GapCursor`], so the two probe paths cannot
/// drift apart.
pub(crate) fn gap_from_cnt_le(vals: &[Val], cnt_le: usize, a: Val) -> Gap {
    let (lo_coord, lo_val) = if cnt_le == 0 {
        (0, NEG_INF)
    } else {
        (cnt_le, vals[cnt_le - 1])
    };
    let (hi_coord, hi_val) = if cnt_le > 0 && vals[cnt_le - 1] == a {
        (cnt_le, a)
    } else if cnt_le == vals.len() {
        (vals.len() + 1, POS_INF)
    } else {
        (cnt_le + 1, vals[cnt_le])
    };
    Gap {
        lo_coord,
        hi_coord,
        lo_val,
        hi_val,
    }
}

/// Iterator over the tuples of any [`TrieStorage`] in lexicographic order
/// (defaults to the canonical [`TrieRelation`]). Drives the backend purely
/// through the navigation methods, so the hybrid bitset layout gets
/// ordered iteration for free.
pub struct TupleIter<'a, S: TrieStorage = TrieRelation> {
    rel: &'a S,
    /// Stack of (node, next 1-based coordinate to visit).
    stack: Vec<(NodeId, usize)>,
    current: Tuple,
    done: bool,
}

impl<'a, S: TrieStorage> TupleIter<'a, S> {
    pub(crate) fn new(rel: &'a S) -> Self {
        TupleIter {
            rel,
            stack: vec![(rel.root(), 1)],
            current: Vec::with_capacity(rel.arity()),
            done: rel.is_empty(),
        }
    }
}

impl<S: TrieStorage> Iterator for TupleIter<'_, S> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        loop {
            let (node, coord) = *self.stack.last()?;
            if node.depth == self.rel.arity() {
                // Leaf: yield and pop.
                let out = self.current.clone();
                self.stack.pop();
                self.current.pop();
                return Some(out);
            }
            if coord > self.rel.child_count(node) {
                self.stack.pop();
                if self.stack.is_empty() {
                    self.done = true;
                    return None;
                }
                self.current.pop();
                continue;
            }
            self.stack.last_mut().unwrap().1 += 1;
            let child = self.rel.child(node, coord);
            self.current.push(self.rel.value(child));
            self.stack.push((child, 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(tuples: &[&[Val]]) -> TrieRelation {
        TrieRelation::from_tuples(
            "R",
            tuples.first().map_or(1, |t| t.len()),
            tuples.iter().map(|t| t.to_vec()).collect(),
        )
        .unwrap()
    }

    /// The worked example of Figure 3: R(A2, A4, A5).
    fn figure3() -> TrieRelation {
        rel(&[&[1, 2, 4], &[1, 2, 7], &[1, 3, 5], &[7, 4, 2], &[10, 4, 1]])
    }

    #[test]
    fn figure3_layout() {
        let r = figure3();
        assert_eq!(r.arity(), 3);
        assert_eq!(r.len(), 5);
        assert_eq!(r.first_column(), &[1, 7, 10]);
        // |R[*]| = 3, |R[1,*]| = 2, |R[2,*]| = 1 (1-based coordinates).
        let root = r.root();
        assert_eq!(r.child_count(root), 3);
        let n1 = r.child(root, 1);
        assert_eq!(r.value(n1), 1);
        assert_eq!(r.child_count(n1), 2);
        assert_eq!(r.child_values(n1), &[2, 3]);
        let n2 = r.child(root, 2);
        assert_eq!(r.value(n2), 7);
        assert_eq!(r.child_values(n2), &[4]);
        // R[1,2] = 3 in paper notation (value of second child of first node).
        let n12 = r.child(n1, 2);
        assert_eq!(r.value(n12), 3);
        assert_eq!(r.child_values(n12), &[5]);
        // R[3,1,1]: third root child -> first child -> first child = 1.
        let n3 = r.child(root, 3);
        let n31 = r.child(n3, 1);
        let n311 = r.child(n31, 1);
        assert_eq!(r.value(n311), 1);
        assert_eq!(r.node_count(), 3 + 4 + 5);
    }

    #[test]
    fn tuple_ordering_notation_example() {
        // Section 2.1 example: R(A1,A2) = {(1,1),(1,8),(2,3),(2,4)}.
        let r = rel(&[&[1, 1], &[1, 8], &[2, 3], &[2, 4]]);
        assert_eq!(r.first_column(), &[1, 2]); // R[*] = {1, 2}
        let n1 = r.child(r.root(), 1);
        assert_eq!(r.child_values(n1), &[1, 8]); // R[1,*] = {1, 8}
        let n2 = r.child(r.root(), 2);
        assert_eq!(r.value(n2), 2); // R[2] = 2
        let n21 = r.child(n2, 1);
        assert_eq!(r.value(n21), 3); // R[2,1] = 3
    }

    #[test]
    fn find_gap_brackets_value() {
        let r = figure3();
        let mut st = ExecStats::new();
        let root = r.root();
        // Children of root: [1, 7, 10].
        let g = r.find_gap(root, 5, &mut st);
        assert_eq!((g.lo_coord, g.hi_coord), (1, 2));
        assert_eq!((g.lo_val, g.hi_val), (1, 7));
        assert!(!g.exact());
        // Exact hit.
        let g = r.find_gap(root, 7, &mut st);
        assert_eq!((g.lo_coord, g.hi_coord), (2, 2));
        assert!(g.exact());
        // Below all values: x⁻ = 0 is out of range with value −∞.
        let g = r.find_gap(root, 0, &mut st);
        assert_eq!((g.lo_coord, g.hi_coord), (0, 1));
        assert_eq!((g.lo_val, g.hi_val), (NEG_INF, 1));
        // Above all values: x⁺ = len + 1 with value +∞.
        let g = r.find_gap(root, 11, &mut st);
        assert_eq!((g.lo_coord, g.hi_coord), (3, 4));
        assert_eq!((g.lo_val, g.hi_val), (10, POS_INF));
        assert_eq!(st.find_gap_calls, 4);
    }

    #[test]
    fn find_gap_within_subtree() {
        let r = figure3();
        let mut st = ExecStats::new();
        let n1 = r.child(r.root(), 1); // values [2, 3]
        let g = r.find_gap(n1, 2, &mut st);
        assert!(g.exact());
        assert_eq!(g.lo_coord, 1);
        let g = r.find_gap(n1, 9, &mut st);
        assert_eq!((g.lo_coord, g.hi_coord), (2, 3));
        assert_eq!(g.hi_val, POS_INF);
    }

    #[test]
    fn descend_and_contains() {
        let r = figure3();
        assert!(r.contains(&[1, 3, 5]));
        assert!(!r.contains(&[1, 3, 6]));
        assert!(!r.contains(&[2, 3, 5]));
        let (node, matched) = r.descend(&[1, 2]);
        assert_eq!(matched, 2);
        assert_eq!(r.child_values(node), &[4, 7]);
        let (_, matched) = r.descend(&[1, 9, 9]);
        assert_eq!(matched, 1);
    }

    #[test]
    fn iteration_round_trips_sorted_tuples() {
        let tuples: Vec<Tuple> = vec![
            vec![1, 2, 4],
            vec![1, 2, 7],
            vec![1, 3, 5],
            vec![7, 4, 2],
            vec![10, 4, 1],
        ];
        let r = figure3();
        assert_eq!(r.to_tuples(), tuples);
    }

    #[test]
    fn first_level_tuple_counts_cascade() {
        let r = figure3();
        assert_eq!(r.first_level_tuple_counts(), vec![3, 1, 1]);
        assert_eq!(r.first_level_tuple_counts().iter().sum::<usize>(), r.len());
        // Unary: every value carries exactly one tuple.
        let u = rel(&[&[4], &[2], &[9]]);
        assert_eq!(u.first_level_tuple_counts(), vec![1, 1, 1]);
        // Empty: no weights.
        let e = TrieRelation::from_tuples("E", 2, vec![]).unwrap();
        assert!(e.first_level_tuple_counts().is_empty());
    }

    #[test]
    fn child_tuple_counts_at_interior_nodes() {
        let r = figure3();
        // Root counts equal the first-level counts.
        assert_eq!(r.child_tuple_counts(r.root()), vec![3, 1, 1]);
        // Under value 1 the children 2 and 3 hold 2 and 1 tuples.
        let n1 = r.child(r.root(), 1);
        assert_eq!(r.child_tuple_counts(n1), vec![2, 1]);
        // At the last interior level every child is a single leaf.
        let n12 = r.child(n1, 1);
        assert_eq!(r.child_tuple_counts(n12), vec![1, 1]);
    }

    #[test]
    fn duplicates_are_removed() {
        let r = rel(&[&[3, 3], &[1, 2], &[3, 3], &[1, 2]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.to_tuples(), vec![vec![1, 2], vec![3, 3]]);
    }

    #[test]
    fn empty_relation() {
        let r = TrieRelation::from_tuples("E", 2, vec![]).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.root_fanout(), 0);
        assert_eq!(r.to_tuples(), Vec::<Tuple>::new());
        let mut st = ExecStats::new();
        let g = r.find_gap(r.root(), 5, &mut st);
        assert_eq!((g.lo_coord, g.hi_coord), (0, 1));
        assert_eq!((g.lo_val, g.hi_val), (NEG_INF, POS_INF));
    }

    #[test]
    fn unary_relation() {
        let r = rel(&[&[4], &[2], &[9]]);
        assert_eq!(r.first_column(), &[2, 4, 9]);
        assert!(r.contains(&[4]));
        assert!(!r.contains(&[5]));
        assert_eq!(r.to_tuples(), vec![vec![2], vec![4], vec![9]]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = TrieRelation::from_tuples("R", 2, vec![vec![1, 2, 3]]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn negative_values_rejected() {
        let err = TrieRelation::from_tuples("R", 1, vec![vec![-5]]).unwrap_err();
        assert!(matches!(err, StorageError::ValueOutOfDomain { .. }));
    }
}
