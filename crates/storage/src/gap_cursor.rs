//! Positional `FindGap` with cross-probe reuse.
//!
//! The streaming executor probes relations around consecutive probe points,
//! and consecutive probe points share long prefixes and move forward
//! lexicographically. A [`GapCursor`] exploits that: per trie depth it
//! remembers the node and landing position of the previous `FindGap`, and
//! when the next probe hits the same node it gallops forward from the
//! remembered position instead of binary-searching the whole sibling range.
//! A forward sweep over a level therefore costs `O(log d)` per probe in the
//! distance `d` advanced — the same adaptivity argument as leapfrogging
//! (Section 6.2) — while backward or cross-node probes fall back to the
//! plain `O(log |R|)` search.
//!
//! Results are bit-for-bit identical to [`crate::TrieRelation::find_gap`],
//! including the `find_gap_calls` accounting, so certificate-proxy
//! measurements are unaffected by the reuse.

use crate::backend::TrieStorage;
use crate::stats::ExecStats;
use crate::trie::{Gap, NodeId};
use crate::value::Val;

/// One remembered landing site: the node probed and the `count_le` result.
#[derive(Debug, Clone, Copy)]
struct Landing {
    node: NodeId,
    cnt_le: usize,
}

/// A reusable `FindGap` scratchpad for one relation (one per atom in the
/// executor). Create with the relation's arity; feed every probe through
/// [`GapCursor::find_gap`].
#[derive(Debug, Clone, Default)]
pub struct GapCursor {
    /// Last landing per depth (`memo[d]` covers nodes at depth `d`).
    memo: Vec<Option<Landing>>,
    /// Probes answered by galloping from a remembered position.
    pub reused: u64,
}

impl GapCursor {
    /// A cursor for a relation of the given arity.
    pub fn new(arity: usize) -> Self {
        GapCursor {
            memo: vec![None; arity],
            reused: 0,
        }
    }

    /// Drops all remembered positions (e.g. when switching relations).
    pub fn reset(&mut self) {
        self.memo.fill(None);
        self.reused = 0;
    }

    /// The paper's `R.FindGap(x, a)` (same contract and statistics as
    /// [`crate::TrieRelation::find_gap`]), reusing the previous landing
    /// position at this depth when the probe revisits the same node. Generic
    /// over [`TrieStorage`], so the reuse optimization carries to any
    /// physical layout behind the storage trait.
    pub fn find_gap<S: TrieStorage>(
        &mut self,
        rel: &S,
        node: NodeId,
        a: Val,
        stats: &mut ExecStats,
    ) -> Gap {
        stats.find_gap_calls += 1;
        let memo = &mut self.memo[node.depth()];
        let landing = if rel.hinted_seeks(node) { *memo } else { None };
        let cnt_le = match landing {
            // Same node, and the remembered landing is still left of (or at)
            // the answer: every value before it is ≤ a, so galloping from it
            // is sound and costs only the distance advanced.
            Some(l)
                if l.node == node
                    && (l.cnt_le == 0 || rel.child_value_at(node, l.cnt_le, stats) <= a) =>
            {
                self.reused += 1;
                rel.seek_le(node, l.cnt_le, a, stats)
            }
            // Cold path — also taken when the backend answers ranks in
            // O(1) (packed bitset runs report `hinted_seeks == false`),
            // where position bookkeeping is pure overhead.
            _ => rel.count_le(node, a, stats),
        };
        *memo = Some(Landing { node, cnt_le });
        rel.gap_at(node, cnt_le, a, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::TrieRelation;
    use crate::value::{NEG_INF, POS_INF};

    fn rel2(tuples: &[(Val, Val)]) -> TrieRelation {
        TrieRelation::from_tuples("R", 2, tuples.iter().map(|&(a, b)| vec![a, b]).collect())
            .unwrap()
    }

    /// Every probe sequence must agree with the plain `find_gap`.
    #[test]
    fn agrees_with_plain_find_gap_on_sweeps() {
        let rel = rel2(&[(1, 5), (1, 9), (3, 2), (7, 7), (7, 8), (12, 0)]);
        let mut cur = GapCursor::new(2);
        let mut s1 = ExecStats::new();
        let mut s2 = ExecStats::new();
        // Forward sweep, backward jumps, exact hits, repeats.
        for &a in &[0, 1, 1, 2, 3, 6, 7, 12, 13, 2, 0, 12] {
            let got = cur.find_gap(&rel, rel.root(), a, &mut s1);
            let expect = rel.find_gap(rel.root(), a, &mut s2);
            assert_eq!(got, expect, "root probe {a}");
        }
        // Second level under first root child (values [5, 9]).
        let n1 = rel.child(rel.root(), 1);
        for &a in &[4, 5, 6, 9, 10, 4] {
            let got = cur.find_gap(&rel, n1, a, &mut s1);
            let expect = rel.find_gap(n1, a, &mut s2);
            assert_eq!(got, expect, "level-1 probe {a}");
        }
        assert_eq!(s1.find_gap_calls, s2.find_gap_calls, "identical accounting");
    }

    #[test]
    fn forward_sweep_reuses_positions() {
        let tuples: Vec<(Val, Val)> = (0..200).map(|i| (2 * i, i)).collect();
        let rel = rel2(&tuples);
        let mut cur = GapCursor::new(2);
        let mut st = ExecStats::new();
        for a in 0..400 {
            let got = cur.find_gap(&rel, rel.root(), a, &mut st);
            let expect = rel.find_gap(rel.root(), a, &mut ExecStats::new());
            assert_eq!(got, expect);
        }
        assert!(
            cur.reused > 300,
            "sweep should mostly reuse: {}",
            cur.reused
        );
    }

    #[test]
    fn node_switch_falls_back_cleanly() {
        let rel = rel2(&[(1, 1), (1, 5), (2, 3), (2, 9)]);
        let n1 = rel.child(rel.root(), 1);
        let n2 = rel.child(rel.root(), 2);
        let mut cur = GapCursor::new(2);
        let mut st = ExecStats::new();
        // Alternate between sibling nodes; memo must never leak across.
        for &(n, a) in &[(n1, 2), (n2, 2), (n1, 6), (n2, 9), (n1, 0), (n2, 0)] {
            let got = cur.find_gap(&rel, n, a, &mut st);
            let expect = rel.find_gap(n, a, &mut ExecStats::new());
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn empty_relation_probe() {
        let rel = TrieRelation::from_tuples("E", 1, vec![]).unwrap();
        let mut cur = GapCursor::new(1);
        let mut st = ExecStats::new();
        let g = cur.find_gap(&rel, rel.root(), 5, &mut st);
        assert_eq!((g.lo_coord, g.hi_coord), (0, 1));
        assert_eq!((g.lo_val, g.hi_val), (NEG_INF, POS_INF));
    }
}
