//! Versioned relations: an immutable base trie plus an in-memory write
//! delta, with cheap snapshots.
//!
//! A [`VersionedRelation`] is the storage layer's unit of mutability (the
//! full design rationale lives in `docs/STORAGE.md`):
//!
//! * **base** — an immutable, `Arc`-shared [`TrieRelation`] holding the bulk
//!   of the data;
//! * **ins** — a small sorted trie of pending inserts, disjoint from the
//!   base;
//! * **del** — a small sorted trie of tombstones, a subset of the base;
//! * **version** — a counter bumped exactly when the logical content
//!   changes, used by the engine to key plan- and re-index-cache
//!   invalidation.
//!
//! The logical relation is `(base ∖ del) ∪ ins`. Reads go through either
//! the lazy [`MergeView`] (point reads, delta-aware probing) or a
//! **snapshot**: a materialized merge, built at most once per version and
//! `Arc`-shared, so executors keep their plain `&TrieRelation` fast path
//! and a clone of the enclosing catalog is O(1) per relation. A reader
//! holding a snapshot `Arc` keeps it alive across any number of later
//! writes — that is the whole snapshot-isolation story; there is no lock in
//! the probe loop.
//!
//! [`VersionedRelation::apply`] enforces set semantics: inserting a present
//! tuple or deleting an absent one is a no-op, deleting a delta insert
//! removes it from `ins`, and re-inserting a tombstoned tuple just clears
//! the tombstone. Batches that change nothing do not bump the version, so
//! caches keyed on versions stay warm. [`VersionedRelation::compact`] folds
//! the delta back into a fresh base when it has grown past the documented
//! threshold; compaction never changes logical content and therefore never
//! bumps the version.

use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use crate::bitleaf::{BitLeafRelation, LeafPolicy};
use crate::error::StorageError;
use crate::merge::MergeView;
use crate::trie::TrieRelation;
use crate::value::{Tuple, Val};

/// One element of a write batch against a single relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Add a tuple (no-op if already present — set semantics).
    Insert(Tuple),
    /// Remove a tuple (no-op if absent).
    Delete(Tuple),
}

impl WriteOp {
    /// The tuple the operation carries.
    pub fn tuple(&self) -> &[Val] {
        match self {
            WriteOp::Insert(t) | WriteOp::Delete(t) => t,
        }
    }
}

/// Effect of an applied batch: how many operations actually changed the
/// relation (no-ops excluded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Tuples that became present and were not before the operation ran.
    pub inserted: usize,
    /// Tuples that became absent and were present before the operation ran.
    pub deleted: usize,
}

impl WriteOutcome {
    /// Total rows affected.
    pub fn affected(&self) -> usize {
        self.inserted + self.deleted
    }
}

/// Fraction of the base size the delta may reach before
/// [`VersionedRelation::should_compact`] recommends folding it in. The
/// merge overhead per probe is `O(delta-fanout)` work against `O(log |R|)`
/// base work, so a small constant fraction keeps probes near base speed; see
/// the compaction policy in `docs/STORAGE.md`.
pub const COMPACT_DELTA_RATIO: f64 = 0.25;

/// An immutable base trie plus its write delta and version counter (see the
/// module docs).
///
/// ```
/// use minesweeper_storage::{TrieRelation, VersionedRelation, WriteOp};
/// let base = TrieRelation::from_tuples("R", 1, vec![vec![1], vec![5]]).unwrap();
/// let mut rel = VersionedRelation::from_base(base);
/// let out = rel
///     .apply(&[WriteOp::Insert(vec![3]), WriteOp::Delete(vec![5])])
///     .unwrap();
/// assert_eq!((out.inserted, out.deleted), (1, 1));
/// assert_eq!(rel.version(), 1);
/// assert_eq!(rel.snapshot().to_tuples(), vec![vec![1], vec![3]]);
/// // Set semantics: re-inserting a present tuple changes nothing.
/// let out = rel.apply(&[WriteOp::Insert(vec![1])]).unwrap();
/// assert_eq!(out.affected(), 0);
/// assert_eq!(rel.version(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct VersionedRelation {
    base: Arc<TrieRelation>,
    ins: Arc<TrieRelation>,
    del: Arc<TrieRelation>,
    version: u64,
    compactions: u64,
    /// Materialized merge for the current version, built on first use.
    snapshot: OnceLock<Arc<TrieRelation>>,
    /// Leaf-representation policy the hybrid index is (re)built under.
    policy: LeafPolicy,
    /// Hybrid dense-leaf index over `base`, rebuilt at load and compaction.
    /// `None` when the policy (or the data) keeps every run sorted. Stays
    /// valid across delta writes because it is tied to the immutable base.
    hybrid: Option<Arc<BitLeafRelation>>,
}

impl VersionedRelation {
    /// Wraps an immutable trie as version 0 with an empty delta, selecting
    /// leaf representations under [`LeafPolicy::from_env`].
    pub fn from_base(base: TrieRelation) -> Self {
        Self::from_base_with_policy(base, LeafPolicy::from_env())
    }

    /// Wraps an immutable trie as version 0 with an empty delta, selecting
    /// leaf representations under the given policy.
    pub fn from_base_with_policy(base: TrieRelation, policy: LeafPolicy) -> Self {
        let ins = Self::empty_delta(&base);
        let del = ins.clone();
        let base = Arc::new(base);
        let hybrid = BitLeafRelation::build(base.clone(), policy).map(Arc::new);
        VersionedRelation {
            base,
            ins: Arc::new(ins),
            del: Arc::new(del),
            version: 0,
            compactions: 0,
            snapshot: OnceLock::new(),
            policy,
            hybrid,
        }
    }

    /// Restores a persisted version counter onto a freshly loaded base —
    /// the crash-recovery constructor. Checkpoints dump a relation's
    /// *compacted* snapshot together with its version; loading that dump
    /// through [`VersionedRelation::from_base`] would reset the counter to
    /// 0 and break the engine's version-continuity check against the WAL
    /// tail. Only valid while the delta is empty (i.e. immediately after
    /// construction), which is the only state recovery ever sees.
    pub fn restore_version(&mut self, version: u64) {
        debug_assert!(
            self.delta_is_empty(),
            "restore_version is a recovery-time operation on a fresh base"
        );
        self.version = version;
    }

    fn empty_delta(base: &TrieRelation) -> TrieRelation {
        TrieRelation::from_sorted_unique(base.name().to_string(), base.arity(), &[])
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        self.base.name()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.base.arity()
    }

    /// Logical tuple count (`|base| − |del| + |ins|`).
    pub fn len(&self) -> usize {
        self.base.len() - self.del.len() + self.ins.len()
    }

    /// True when the logical relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tuple count of the immutable base.
    pub fn base_len(&self) -> usize {
        self.base.len()
    }

    /// Total delta size (`|ins| + |del|`) — the quantity the compaction
    /// policy watches.
    pub fn delta_len(&self) -> usize {
        self.ins.len() + self.del.len()
    }

    /// True when no writes are pending against the base.
    pub fn delta_is_empty(&self) -> bool {
        self.delta_len() == 0
    }

    /// Version counter: bumped exactly when a batch changes logical content.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of compactions performed over this relation's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The immutable base trie.
    pub fn base(&self) -> &Arc<TrieRelation> {
        &self.base
    }

    /// The leaf-representation policy this relation selects under.
    pub fn leaf_policy(&self) -> LeafPolicy {
        self.policy
    }

    /// The hybrid dense-leaf index over the current base, if the policy and
    /// the data produced one. It covers the *base only* — callers must fall
    /// back to the snapshot (or a merge view) while the delta is non-empty.
    pub fn hybrid(&self) -> Option<&Arc<BitLeafRelation>> {
        self.hybrid.as_ref()
    }

    /// Switches the leaf policy and rebuilds the hybrid index over the
    /// current base under it. Content-neutral: no version bump.
    pub fn set_leaf_policy(&mut self, policy: LeafPolicy) {
        self.policy = policy;
        self.hybrid = BitLeafRelation::build(self.base.clone(), policy).map(Arc::new);
    }

    /// Lazy merged view of the current version — probes consult base plus
    /// delta without materializing anything.
    pub fn merge_view(&self) -> MergeView<'_> {
        MergeView::new(&self.base, &self.ins, &self.del)
    }

    /// The materialized snapshot of the current version, built at most once
    /// and `Arc`-shared. With an empty delta this is the base itself (no
    /// copy); readers that clone the `Arc` keep their version alive across
    /// later writes — snapshot isolation with zero probe-loop locking.
    pub fn snapshot(&self) -> &Arc<TrieRelation> {
        if self.delta_is_empty() {
            return &self.base;
        }
        self.snapshot
            .get_or_init(|| Arc::new(self.merge_view().materialize().0))
    }

    /// Applies a batch of writes atomically, in order, under set semantics.
    /// The whole batch is validated (arity, domain) before any state
    /// changes. The version is bumped exactly when the delta content
    /// changed; the returned [`WriteOutcome`] counts effective operations
    /// (an insert-then-delete of the same new tuple counts in both fields
    /// yet leaves the version untouched).
    pub fn apply(&mut self, ops: &[WriteOp]) -> Result<WriteOutcome, StorageError> {
        for op in ops {
            let t = op.tuple();
            if t.len() != self.arity() {
                return Err(StorageError::ArityMismatch {
                    relation: self.name().to_string(),
                    expected: self.arity(),
                    got: t.len(),
                });
            }
            for &v in t {
                if !(0..=crate::value::MAX_DOMAIN_VALUE).contains(&v) {
                    return Err(StorageError::ValueOutOfDomain {
                        relation: self.name().to_string(),
                        value: v,
                    });
                }
            }
        }
        let mut ins: BTreeSet<Tuple> = self.ins.iter_tuples().collect();
        let mut del: BTreeSet<Tuple> = self.del.iter_tuples().collect();
        let mut out = WriteOutcome::default();
        for op in ops {
            match op {
                WriteOp::Insert(t) => {
                    if del.remove(t) {
                        out.inserted += 1; // un-tombstone a base tuple
                    } else if !self.base.contains(t) && ins.insert(t.clone()) {
                        out.inserted += 1;
                    }
                }
                WriteOp::Delete(t) => {
                    if ins.remove(t) {
                        out.deleted += 1; // retract a pending insert
                    } else if self.base.contains(t) && del.insert(t.clone()) {
                        out.deleted += 1;
                    }
                }
            }
        }
        let changed = ins.len() != self.ins.len()
            || del.len() != self.del.len()
            || !ins.iter().zip(self.ins.iter_tuples()).all(|(a, b)| *a == b)
            || !del.iter().zip(self.del.iter_tuples()).all(|(a, b)| *a == b);
        if changed {
            let name = self.name().to_string();
            let arity = self.arity();
            let ins: Vec<Tuple> = ins.into_iter().collect();
            let del: Vec<Tuple> = del.into_iter().collect();
            self.ins = Arc::new(TrieRelation::from_sorted_unique(name.clone(), arity, &ins));
            self.del = Arc::new(TrieRelation::from_sorted_unique(name, arity, &del));
            self.version += 1;
            self.snapshot = OnceLock::new();
        }
        Ok(out)
    }

    /// True when the delta has outgrown [`COMPACT_DELTA_RATIO`] of the base
    /// (always true for a non-empty delta over an empty base).
    pub fn should_compact(&self) -> bool {
        !self.delta_is_empty()
            && self.delta_len() as f64 > COMPACT_DELTA_RATIO * self.base.len() as f64
    }

    /// Folds the delta into a fresh immutable base (reusing the snapshot if
    /// one was already materialized) and re-selects leaf representations for
    /// the new base under the relation's policy. Logical content and version
    /// are unchanged — readers holding the old base simply keep it alive via
    /// their `Arc`. Returns false (and does nothing) when the delta is
    /// empty.
    pub fn compact(&mut self) -> bool {
        if self.delta_is_empty() {
            return false;
        }
        self.base = self.snapshot().clone();
        self.ins = Arc::new(Self::empty_delta(&self.base));
        self.del = Arc::new(Self::empty_delta(&self.base));
        self.snapshot = OnceLock::new();
        self.hybrid = BitLeafRelation::build(self.base.clone(), self.policy).map(Arc::new);
        self.compactions += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ExecStats;

    fn base3() -> TrieRelation {
        TrieRelation::from_tuples("R", 2, vec![vec![1, 5], vec![1, 9], vec![4, 2]]).unwrap()
    }

    #[test]
    fn apply_updates_logical_content_and_version() {
        let mut r = VersionedRelation::from_base(base3());
        assert_eq!(r.version(), 0);
        assert!(r.delta_is_empty());
        let out = r
            .apply(&[WriteOp::Insert(vec![2, 2]), WriteOp::Delete(vec![1, 9])])
            .unwrap();
        assert_eq!((out.inserted, out.deleted), (1, 1));
        assert_eq!(r.version(), 1);
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.snapshot().to_tuples(),
            vec![vec![1, 5], vec![2, 2], vec![4, 2]]
        );
    }

    #[test]
    fn no_ops_do_not_bump_version() {
        let mut r = VersionedRelation::from_base(base3());
        // Insert a present tuple, delete an absent one.
        let out = r
            .apply(&[WriteOp::Insert(vec![1, 5]), WriteOp::Delete(vec![9, 9])])
            .unwrap();
        assert_eq!(out.affected(), 0);
        assert_eq!(r.version(), 0);
        // Insert-then-delete of a brand-new tuple: two effective ops, but the
        // delta round-trips to its previous (empty) content.
        let out = r
            .apply(&[WriteOp::Insert(vec![3, 3]), WriteOp::Delete(vec![3, 3])])
            .unwrap();
        assert_eq!(out.affected(), 2);
        assert_eq!(r.version(), 0);
        assert!(r.delta_is_empty());
    }

    #[test]
    fn delete_then_reinsert_clears_tombstone() {
        let mut r = VersionedRelation::from_base(base3());
        r.apply(&[WriteOp::Delete(vec![1, 5])]).unwrap();
        assert_eq!(r.version(), 1);
        assert_eq!(r.len(), 2);
        r.apply(&[WriteOp::Insert(vec![1, 5])]).unwrap();
        assert_eq!(r.version(), 2);
        assert!(r.delta_is_empty(), "tombstone cleared, not double-stored");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn snapshot_isolation_across_writes() {
        let mut r = VersionedRelation::from_base(base3());
        r.apply(&[WriteOp::Insert(vec![2, 2])]).unwrap();
        let old = r.snapshot().clone();
        r.apply(&[WriteOp::Delete(vec![2, 2]), WriteOp::Delete(vec![1, 5])])
            .unwrap();
        // The old snapshot still sees version-1 content.
        assert_eq!(
            old.to_tuples(),
            vec![vec![1, 5], vec![1, 9], vec![2, 2], vec![4, 2]]
        );
        assert_eq!(r.snapshot().to_tuples(), vec![vec![1, 9], vec![4, 2]]);
    }

    #[test]
    fn snapshot_is_base_when_delta_empty() {
        let r = VersionedRelation::from_base(base3());
        assert!(Arc::ptr_eq(r.snapshot(), r.base()));
    }

    #[test]
    fn compact_folds_delta_without_version_bump() {
        let mut r = VersionedRelation::from_base(base3());
        r.apply(&[WriteOp::Insert(vec![9, 9]), WriteOp::Delete(vec![4, 2])])
            .unwrap();
        let v = r.version();
        let before = r.snapshot().to_tuples();
        assert!(r.should_compact());
        assert!(r.compact());
        assert_eq!(r.version(), v, "compaction is content-neutral");
        assert_eq!(r.compactions(), 1);
        assert!(r.delta_is_empty());
        assert_eq!(r.base_len(), 3);
        assert_eq!(r.snapshot().to_tuples(), before);
        assert!(!r.compact(), "empty delta: nothing to fold");
    }

    #[test]
    fn compaction_reselects_leaf_representation() {
        // Sparse base: no dense runs under Auto.
        let base =
            TrieRelation::from_tuples("R", 1, vec![vec![0], vec![1000], vec![2000]]).unwrap();
        let mut r = VersionedRelation::from_base_with_policy(base, LeafPolicy::Auto);
        assert!(r.hybrid().is_none(), "sparse base builds no hybrid");
        // Densify: drop the outliers, fill 1..=40 contiguously, compact.
        let mut ops: Vec<WriteOp> = (1..=40).map(|v| WriteOp::Insert(vec![v])).collect();
        ops.push(WriteOp::Delete(vec![1000]));
        ops.push(WriteOp::Delete(vec![2000]));
        r.apply(&ops).unwrap();
        assert!(r.hybrid().is_none(), "delta writes never touch the hybrid");
        assert!(r.compact());
        let h = r.hybrid().expect("dense run selected after compaction");
        assert!(h.dense_run_count() >= 1);
        assert_eq!(h.base().len(), r.base_len());
        // And back: delete the dense stretch, compact again.
        let ops: Vec<WriteOp> = (3..=40).map(|v| WriteOp::Delete(vec![v])).collect();
        r.apply(&ops).unwrap();
        assert!(r.compact());
        assert!(r.hybrid().is_none(), "sparse again after fold");
        assert_eq!(r.leaf_policy(), LeafPolicy::Auto);
    }

    #[test]
    fn batch_validation_is_atomic() {
        let mut r = VersionedRelation::from_base(base3());
        let err = r
            .apply(&[WriteOp::Insert(vec![2, 2]), WriteOp::Insert(vec![1, 2, 3])])
            .unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        assert_eq!(r.version(), 0, "failed batch leaves no trace");
        assert!(r.delta_is_empty());
        let err = r.apply(&[WriteOp::Delete(vec![-1, 0])]).unwrap_err();
        assert!(matches!(err, StorageError::ValueOutOfDomain { .. }));
        assert_eq!(r.version(), 0);
    }

    #[test]
    fn merge_view_agrees_with_snapshot() {
        let mut r = VersionedRelation::from_base(base3());
        r.apply(&[
            WriteOp::Insert(vec![0, 1]),
            WriteOp::Insert(vec![1, 7]),
            WriteOp::Delete(vec![4, 2]),
        ])
        .unwrap();
        let view = r.merge_view();
        let mut st = ExecStats::new();
        assert_eq!(
            view.iter_tuples().collect::<Vec<_>>(),
            r.snapshot().to_tuples()
        );
        assert!(view.contains(&[0, 1], &mut st));
        assert!(!view.contains(&[4, 2], &mut st));
        assert!(st.delta_probes > 0);
    }
}
