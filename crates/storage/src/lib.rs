//! Ordered relation storage for the Minesweeper join algorithm.
//!
//! This crate implements the *model of indexes* from Section 2.1 of
//! "Beyond Worst-case Analysis for Joins with Minesweeper" (Ngo, Nguyen, Ré,
//! Rudra; PODS 2014). Every relation is stored as an ordered search tree
//! (a sorted trie, the in-memory analogue of a B-tree indexed on all columns)
//! whose search key is consistent with a global attribute order (GAO).
//!
//! The central access primitive is [`TrieRelation::find_gap`], the paper's
//! `R.FindGap(x, a)`: given an index tuple `x` identifying a trie node and a
//! value `a`, it returns the pair of 1-based coordinates `(x⁻, x⁺)` with
//! `R[(x, x⁻)] ≤ a ≤ R[(x, x⁺)]`, `x⁻` maximal and `x⁺` minimal, using the
//! out-of-range conventions (1)/(2) of the paper (`R[.., 0] = −∞`,
//! `R[.., len+1] = +∞`).
//!
//! The crate also provides:
//! * [`RelationBuilder`] — sorts and deduplicates tuples into a trie,
//! * [`Database`] — a catalog of named relations,
//! * [`ExecStats`] — operation counters; the number of `FindGap` calls is the
//!   empirical certificate-size proxy used in the paper's Section 5.2,
//! * [`TrieCursor`] — a leapfrog-style positional iterator used by the
//!   baseline worst-case-optimal algorithms,
//! * [`VersionedRelation`] + [`MergeView`] — the write path: immutable base
//!   tries with sorted in-memory deltas, merged lazily under the same
//!   cursor contract (see `docs/STORAGE.md`),
//! * [`TrieStorage`] — the node-level read trait every physical trie layout
//!   implements,
//! * [`BitLeafRelation`] — the hybrid dense-leaf layout: child runs that
//!   pass a density test become packed `u64` bitsets with a rank
//!   directory, selected per [`LeafPolicy`] at load/compaction time.

#![warn(missing_docs)]

pub mod backend;
pub mod bitleaf;
pub mod builder;
pub mod cursor;
pub mod database;
pub mod dict;
pub mod error;
pub mod gap_cursor;
pub mod merge;
pub mod shard;
pub mod sorted;
pub mod stats;
pub mod trie;
pub mod value;
pub mod versioned;

pub use backend::TrieStorage;
pub use bitleaf::{BitLeafRelation, LeafPolicy, StorageRef, DENSE_MIN_RUN, DENSE_SPAN_FACTOR};
pub use builder::RelationBuilder;
pub use cursor::TrieCursor;
pub use database::{Database, RelId};
pub use dict::{ColumnType, Dictionary, Value};
pub use error::StorageError;
pub use gap_cursor::GapCursor;
pub use merge::{MergeCursor, MergeIter, MergeNode, MergeView};
pub use shard::{
    equi_depth_shards, nested_shards, second_level_profile, shard_relation, GaoOrder, ShardBounds,
    ShardSpec,
};
pub use stats::ExecStats;
pub use trie::{Gap, NodeId, TrieRelation};
pub use value::{Tuple, Val, NEG_INF, POS_INF};
pub use versioned::{VersionedRelation, WriteOp, WriteOutcome, COMPACT_DELTA_RATIO};
