//! Domain sharding for parallel execution.
//!
//! The Minesweeper probe loop is independent across disjoint intervals of
//! the *first* GAO attribute: constraints discovered while probing inside
//! one interval never exclude points of another, so each interval can be
//! swept by its own probe loop with its own constraint store. This module
//! provides the value-domain partitioning that makes those intervals: an
//! **equi-depth** split of `(−∞, +∞)` into at most `k` contiguous
//! [`ShardBounds`], weighted by how many tuples of the primary relation
//! fall under each distinct first-column value
//! ([`TrieRelation::first_level_tuple_counts`]).
//!
//! Skew degrades gracefully by construction: a shard is never emitted
//! empty — when the distinct-value count (or one giant duplicate run
//! concentrated under a single value) cannot feed `k` shards, fewer shards
//! come back, down to a single unbounded shard.

use crate::trie::TrieRelation;
use crate::value::{Val, NEG_INF, POS_INF};

/// One contiguous, inclusive interval `[lo, hi]` of the first GAO
/// attribute's domain (`lo = −∞` / `hi = +∞` at the outer shards). Shards
/// returned by [`equi_depth_shards`] are disjoint, sorted, and cover the
/// whole domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBounds {
    /// Inclusive lower endpoint ([`NEG_INF`] for the first shard).
    pub lo: Val,
    /// Inclusive upper endpoint ([`POS_INF`] for the last shard).
    pub hi: Val,
}

impl ShardBounds {
    /// The single shard covering the entire domain.
    pub fn unbounded() -> Self {
        ShardBounds {
            lo: NEG_INF,
            hi: POS_INF,
        }
    }

    /// True when the shard covers the entire domain (serial execution).
    pub fn is_unbounded(&self) -> bool {
        self.lo == NEG_INF && self.hi == POS_INF
    }

    /// True when `v` lies inside the (inclusive) interval.
    pub fn contains(&self, v: Val) -> bool {
        self.lo <= v && v <= self.hi
    }
}

impl std::fmt::Display for ShardBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}]",
            crate::value::fmt_val(self.lo),
            crate::value::fmt_val(self.hi)
        )
    }
}

/// Splits the domain into at most `k` equi-depth shards.
///
/// `values` are the distinct first-column values of the primary relation
/// (sorted ascending, as [`TrieRelation::first_column`] returns them) and
/// `weights[i]` is the number of tuples under `values[i]`. The split is
/// greedy equi-depth: cut whenever the running weight reaches the next
/// multiple of `total / k`, so every shard holds at least one distinct
/// value and roughly `total / k` tuples. Fewer than `k` shards come back
/// when there are fewer than `k` distinct values or when skew concentrates
/// the weight (one giant run under a single value fills a whole shard on
/// its own) — never an empty shard, never a panic.
pub fn equi_depth_shards(values: &[Val], weights: &[usize], k: usize) -> Vec<ShardBounds> {
    assert_eq!(values.len(), weights.len(), "one weight per value");
    debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "values sorted");
    let k = k.max(1);
    if k == 1 || values.len() <= 1 {
        return vec![ShardBounds::unbounded()];
    }
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    if total == 0 {
        return vec![ShardBounds::unbounded()];
    }
    let k = k.min(values.len()) as u64;
    // Interior cut points: shard j ends before the first value whose
    // cumulative weight crosses j·total/k. Greedy from the left; a heavy
    // value can swallow several targets, yielding fewer shards.
    let mut cuts: Vec<Val> = Vec::with_capacity(k as usize - 1);
    let mut acc: u64 = 0;
    let mut next_target = 1u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w as u64;
        // `acc * k >= target * total` ⇔ acc >= target·total/k, exactly.
        while next_target < k && acc * k >= next_target * total {
            next_target += 1;
            if i + 1 < values.len() {
                cuts.push(values[i + 1]);
            }
        }
    }
    cuts.dedup();
    let mut shards = Vec::with_capacity(cuts.len() + 1);
    let mut lo = NEG_INF;
    for &c in &cuts {
        shards.push(ShardBounds { lo, hi: c - 1 });
        lo = c;
    }
    shards.push(ShardBounds { lo, hi: POS_INF });
    shards
}

/// [`equi_depth_shards`] over a primary relation: distinct first-column
/// values weighted by their subtree tuple counts.
pub fn shard_relation(rel: &TrieRelation, k: usize) -> Vec<ShardBounds> {
    equi_depth_shards(rel.first_column(), &rel.first_level_tuple_counts(), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(shards: &[ShardBounds]) {
        assert!(!shards.is_empty());
        assert_eq!(shards[0].lo, NEG_INF);
        assert_eq!(shards.last().unwrap().hi, POS_INF);
        for w in shards.windows(2) {
            assert_eq!(w[0].hi + 1, w[1].lo, "contiguous: {} {}", w[0], w[1]);
        }
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let values: Vec<Val> = (0..8).collect();
        let weights = vec![1usize; 8];
        let shards = equi_depth_shards(&values, &weights, 4);
        check_cover(&shards);
        assert_eq!(shards.len(), 4);
        // Each shard holds exactly two of the eight values.
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(values.iter().filter(|&&v| s.contains(v)).count(), 2, "{i}");
        }
    }

    #[test]
    fn skewed_weight_fills_a_shard_alone() {
        // One value carries 90% of the tuples: it must own a shard by
        // itself and the split must fall back to fewer, non-empty shards.
        let values: Vec<Val> = vec![1, 2, 3, 4];
        let weights = vec![1usize, 90, 1, 1];
        let shards = equi_depth_shards(&values, &weights, 4);
        check_cover(&shards);
        assert!(shards.len() <= 4);
        for s in &shards {
            assert!(
                values.iter().any(|&v| s.contains(v)),
                "no shard may be empty of primary values: {s}"
            );
        }
    }

    #[test]
    fn giant_duplicate_run_degrades_to_one_shard() {
        // All tuples share one first value (the duplicate-run skew case):
        // a single unbounded shard, no panic.
        let shards = equi_depth_shards(&[7], &[1_000_000], 8);
        assert_eq!(shards, vec![ShardBounds::unbounded()]);
    }

    #[test]
    fn more_shards_than_values_caps_at_values() {
        let values: Vec<Val> = vec![10, 20, 30];
        let shards = equi_depth_shards(&values, &[5, 5, 5], 64);
        check_cover(&shards);
        assert_eq!(shards.len(), 3);
        for (s, &v) in shards.iter().zip(&values) {
            assert!(s.contains(v));
        }
    }

    #[test]
    fn k_one_and_empty_are_unbounded() {
        assert_eq!(
            equi_depth_shards(&[1, 2, 3], &[1, 1, 1], 1),
            vec![ShardBounds::unbounded()]
        );
        assert_eq!(
            equi_depth_shards(&[], &[], 4),
            vec![ShardBounds::unbounded()]
        );
        assert_eq!(
            equi_depth_shards(&[5], &[0], 3),
            vec![ShardBounds::unbounded()],
            "zero total weight"
        );
    }

    #[test]
    fn shard_relation_weighs_by_tuple_count() {
        // First value 1 has 4 tuples, values 2 and 3 have 1 each: with two
        // shards the cut must isolate value 1.
        let rel = TrieRelation::from_tuples(
            "R",
            2,
            vec![
                vec![1, 1],
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 1],
                vec![3, 1],
            ],
        )
        .unwrap();
        let shards = shard_relation(&rel, 2);
        check_cover(&shards);
        assert_eq!(shards.len(), 2);
        assert!(shards[0].contains(1) && !shards[0].contains(2));
        assert!(shards[1].contains(2) && shards[1].contains(3));
    }

    #[test]
    fn bounds_display_and_contains() {
        let s = ShardBounds { lo: 3, hi: 9 };
        assert!(s.contains(3) && s.contains(9) && !s.contains(10));
        assert_eq!(s.to_string(), "[3, 9]");
        assert_eq!(ShardBounds::unbounded().to_string(), "[-inf, +inf]");
    }
}
