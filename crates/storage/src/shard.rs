//! Domain sharding for parallel execution.
//!
//! The Minesweeper probe loop is independent across disjoint intervals of
//! the *first* GAO attribute: constraints discovered while probing inside
//! one interval never exclude points of another, so each interval can be
//! swept by its own probe loop with its own constraint store. This module
//! provides the value-domain partitioning that makes those intervals: an
//! **equi-depth** split of `(−∞, +∞)` into at most `k` contiguous
//! [`ShardBounds`], weighted by how many tuples of the primary relation
//! fall under each distinct first-column value
//! ([`crate::TrieRelation::first_level_tuple_counts`]).
//!
//! Skew is handled in two stages. First, [`equi_depth_shards`] **isolates
//! heavy values**: a value whose weight alone reaches twice the ideal
//! per-shard depth is cut out into its own single-value interval, so the
//! light remainder still splits evenly around it. Second, a single-value
//! interval is the unit a caller can split *again* on the **second** GAO
//! attribute — a [`ShardSpec`] pairs the first-attribute interval with an
//! optional second-attribute interval, which is how one giant duplicate
//! run (every tuple sharing one first value) still becomes many parallel
//! tasks instead of a serial fallback. A shard is never emitted empty:
//! when the data cannot feed `k` shards, fewer come back, down to a
//! single unbounded shard.

use std::cmp::Ordering;

use crate::backend::TrieStorage;
use crate::trie::NodeId;
use crate::value::{Tuple, Val, NEG_INF, POS_INF};

/// One contiguous, inclusive interval `[lo, hi]` of the first GAO
/// attribute's domain (`lo = −∞` / `hi = +∞` at the outer shards). Shards
/// returned by [`equi_depth_shards`] are disjoint, sorted, and cover the
/// whole domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBounds {
    /// Inclusive lower endpoint ([`NEG_INF`] for the first shard).
    pub lo: Val,
    /// Inclusive upper endpoint ([`POS_INF`] for the last shard).
    pub hi: Val,
}

impl ShardBounds {
    /// The single shard covering the entire domain.
    pub fn unbounded() -> Self {
        ShardBounds {
            lo: NEG_INF,
            hi: POS_INF,
        }
    }

    /// True when the shard covers the entire domain (serial execution).
    pub fn is_unbounded(&self) -> bool {
        self.lo == NEG_INF && self.hi == POS_INF
    }

    /// True when `v` lies inside the (inclusive) interval.
    pub fn contains(&self, v: Val) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True when the interval holds exactly one value.
    pub fn is_single_value(&self) -> bool {
        self.lo == self.hi
    }
}

impl std::fmt::Display for ShardBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}]",
            crate::value::fmt_val(self.lo),
            crate::value::fmt_val(self.hi)
        )
    }
}

/// One parallel probe-loop task: an interval of the first GAO attribute
/// plus, for **nested** shards, an interval of the *second* GAO attribute.
///
/// A nested shard's first interval always contains exactly one value of
/// the primary relation's first column: it is one slice of a heavy
/// duplicate run that a plain first-attribute split could not divide
/// (the second-attribute interval does the dividing). Ordering specs by
/// `(bounds, second)` is ordering the output space lexicographically, so
/// concatenating per-spec outputs in spec order reproduces the serial
/// GAO-lexicographic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Interval of the first GAO attribute (single-valued when nested).
    pub bounds: ShardBounds,
    /// Interval of the second GAO attribute; `None` for plain shards.
    pub second: Option<ShardBounds>,
}

impl ShardSpec {
    /// A plain (non-nested) shard over a first-attribute interval.
    pub fn plain(bounds: ShardBounds) -> Self {
        ShardSpec {
            bounds,
            second: None,
        }
    }

    /// The single spec covering the entire output space.
    pub fn unbounded() -> Self {
        ShardSpec::plain(ShardBounds::unbounded())
    }

    /// True when this spec restricts the second GAO attribute as well.
    pub fn is_nested(&self) -> bool {
        self.second.is_some()
    }

    /// The smallest `(first, second)` GAO coordinate pair any tuple of
    /// this spec's slice can carry — the **watermark** a streaming merge
    /// compares buffered tuples against: a tuple whose [`GaoOrder::key2`]
    /// is strictly below a still-silent spec's lower corner cannot be
    /// out-ordered by anything that spec will ever emit, because spec
    /// slices are disjoint in the `(first, second)` plane.
    pub fn lower_corner(&self) -> (Val, Val) {
        (self.bounds.lo, self.second.map_or(NEG_INF, |b| b.lo))
    }

    /// True when `(a0, a1)` — the first two GAO coordinates of a tuple —
    /// falls inside this spec's slice of the output space.
    pub fn contains(&self, a0: Val, a1: Val) -> bool {
        self.bounds.contains(a0)
            && match self.second {
                None => true,
                Some(b2) => b2.contains(a1),
            }
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.second {
            None => write!(f, "{}", self.bounds),
            Some(b2) => write!(f, "{}×{}", self.bounds, b2),
        }
    }
}

/// The GAO-lexicographic comparison key over tuples already **translated**
/// to the caller's attribute numbering.
///
/// `order[i]` names the original attribute sitting at GAO position `i`,
/// so comparing two translated tuples coordinate-by-coordinate *through*
/// `order` reproduces the execution-side (GAO) lexicographic order — the
/// global order every Minesweeper probe loop certifies tuples in. This is
/// the key a parallel merge needs once shard workers emit translated
/// tuples: per-shard streams are sorted under [`GaoOrder::cmp_tuples`],
/// and a k-way merge keyed by it reproduces the serial stream exactly,
/// with no post-hoc translation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaoOrder {
    /// `order[i]` = original attribute at GAO position `i`.
    order: Vec<usize>,
}

impl GaoOrder {
    /// Wraps a GAO permutation (`order[i]` = original attribute at GAO
    /// position `i`). The identity permutation is valid and means the
    /// stored numbering already is the GAO.
    pub fn new(order: Vec<usize>) -> Self {
        debug_assert!(
            {
                let mut seen = vec![false; order.len()];
                order
                    .iter()
                    .all(|&a| a < seen.len() && !std::mem::replace(&mut seen[a], true))
            },
            "GAO order must be a permutation: {order:?}"
        );
        GaoOrder { order }
    }

    /// The identity order over `n` attributes (stored numbering == GAO).
    pub fn identity(n: usize) -> Self {
        GaoOrder::new((0..n).collect())
    }

    /// Number of attributes the order covers.
    pub fn n_attrs(&self) -> usize {
        self.order.len()
    }

    /// Compares two translated tuples in GAO-lexicographic order.
    pub fn cmp_tuples(&self, a: &[Val], b: &[Val]) -> Ordering {
        for &c in &self.order {
            match a[c].cmp(&b[c]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// The first two GAO coordinates of a translated tuple — the
    /// projection shard slices are defined over ([`NEG_INF`] stands in
    /// for a missing second attribute). Comparable against
    /// [`ShardSpec::lower_corner`]: a tuple key strictly below a spec's
    /// lower corner provably precedes everything that spec can emit.
    pub fn key2(&self, t: &[Val]) -> (Val, Val) {
        (
            t[self.order[0]],
            self.order.get(1).map_or(NEG_INF, |&c| t[c]),
        )
    }

    /// True when `tuples` is sorted (strictly, duplicates excluded) under
    /// the GAO order — the invariant merged parallel output must satisfy.
    pub fn is_strictly_sorted(&self, tuples: &[Tuple]) -> bool {
        tuples
            .windows(2)
            .all(|w| self.cmp_tuples(&w[0], &w[1]) == Ordering::Less)
    }
}

/// Splits the domain into at most `k` equi-depth shards, isolating heavy
/// values.
///
/// `values` are the distinct first-column values of the primary relation
/// (sorted ascending, as [`crate::TrieRelation::first_column`] returns them) and
/// `weights[i]` is the number of tuples under `values[i]`. The split is
/// greedy equi-depth: cut whenever the running weight reaches the next
/// multiple of `total / k`, so every shard holds at least one distinct
/// value and roughly `total / k` tuples. A **heavy** value — one whose
/// weight alone reaches `2 · total / k` — is additionally cut out into an
/// interval of its own, so callers can split it further on the second GAO
/// attribute ([`ShardSpec`]) instead of letting it drag neighbours into an
/// oversized shard. Fewer than `k` shards come back when there are fewer
/// than `k` distinct values or when skew concentrates the weight — never
/// an empty shard, never a panic.
pub fn equi_depth_shards(values: &[Val], weights: &[usize], k: usize) -> Vec<ShardBounds> {
    assert_eq!(values.len(), weights.len(), "one weight per value");
    debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "values sorted");
    let k = k.max(1);
    if k == 1 || values.len() <= 1 {
        return vec![ShardBounds::unbounded()];
    }
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    if total == 0 {
        return vec![ShardBounds::unbounded()];
    }
    // Heaviness is judged against the *requested* split (the ideal
    // per-shard depth total/k), while the cut budget below is clamped to
    // the distinct-value count — with few distinct values a dominant run
    // must still be isolated so callers can nested-split it.
    let requested = k as u64;
    let heavy = |w: usize| (w as u64) * requested >= 2 * total;
    let k = k.min(values.len()) as u64;
    // Interior cut points: shard j ends before the first value whose
    // cumulative weight crosses j·total/k. Greedy from the left; a heavy
    // value can swallow several targets, which is exactly what funds the
    // two isolation cuts placed around it.
    let mut cuts: Vec<Val> = Vec::with_capacity(k as usize - 1);
    let mut acc: u64 = 0;
    let mut next_target = 1u64;
    for (i, &w) in weights.iter().enumerate() {
        if heavy(w) && i > 0 {
            // Close the light prefix before the heavy value.
            cuts.push(values[i]);
        }
        acc += w as u64;
        // `acc * k >= target * total` ⇔ acc >= target·total/k, exactly.
        while next_target < k && acc * k >= next_target * total {
            next_target += 1;
            if i + 1 < values.len() {
                cuts.push(values[i + 1]);
            }
        }
        if heavy(w) && i + 1 < values.len() {
            // Close the heavy value's own interval after it.
            cuts.push(values[i + 1]);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    // A heavy value consumes at least two equi-depth targets, so its two
    // isolation cuts are already funded; enforce the ≤ k contract anyway.
    cuts.truncate(k as usize - 1);
    let mut shards = Vec::with_capacity(cuts.len() + 1);
    let mut lo = NEG_INF;
    for &c in &cuts {
        shards.push(ShardBounds { lo, hi: c - 1 });
        lo = c;
    }
    shards.push(ShardBounds { lo, hi: POS_INF });
    shards
}

/// [`equi_depth_shards`] over a primary relation: distinct first-column
/// values weighted by their subtree tuple counts. Generic over
/// [`TrieStorage`], so sharding profiles come off whichever physical
/// layout the executor probes.
pub fn shard_relation<S: TrieStorage>(rel: &S, k: usize) -> Vec<ShardBounds> {
    let root = rel.root();
    equi_depth_shards(rel.child_values(root), &rel.child_tuple_counts(root), k)
}

/// Splits one heavy duplicate run on the **second** attribute: `bounds`
/// is a first-attribute interval containing exactly one primary value,
/// and `child_values` / `child_weights` profile the second attribute
/// inside that run. Returns up to `k` nested [`ShardSpec`]s sharing
/// `bounds`, whose second-attribute intervals partition `(−∞, +∞)` — or
/// a single plain spec when the children cannot feed more than one
/// shard.
pub fn nested_shards(
    bounds: ShardBounds,
    child_values: &[Val],
    child_weights: &[usize],
    k: usize,
) -> Vec<ShardSpec> {
    let sub = equi_depth_shards(child_values, child_weights, k);
    if sub.len() <= 1 {
        return vec![ShardSpec::plain(bounds)];
    }
    sub.into_iter()
        .map(|b2| ShardSpec {
            bounds,
            second: Some(b2),
        })
        .collect()
}

/// The sorted second-level values under the trie node reached by
/// descending `[v]` from the root, paired with their subtree tuple
/// counts — the weight vector [`nested_shards`] consumes. Empty when `v`
/// is not a first-column value or the relation is unary.
pub fn second_level_profile<S: TrieStorage>(rel: &S, v: Val) -> (Vec<Val>, Vec<usize>) {
    if rel.arity() < 2 {
        return (Vec::new(), Vec::new());
    }
    let (node, matched) = rel.descend(&[v]);
    if matched != 1 {
        return (Vec::new(), Vec::new());
    }
    profile_of(rel, node)
}

fn profile_of<S: TrieStorage>(rel: &S, node: NodeId) -> (Vec<Val>, Vec<usize>) {
    (
        rel.child_values(node).to_vec(),
        rel.child_tuple_counts(node),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::TrieRelation;

    fn check_cover(shards: &[ShardBounds]) {
        assert!(!shards.is_empty());
        assert_eq!(shards[0].lo, NEG_INF);
        assert_eq!(shards.last().unwrap().hi, POS_INF);
        for w in shards.windows(2) {
            assert_eq!(w[0].hi + 1, w[1].lo, "contiguous: {} {}", w[0], w[1]);
        }
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let values: Vec<Val> = (0..8).collect();
        let weights = vec![1usize; 8];
        let shards = equi_depth_shards(&values, &weights, 4);
        check_cover(&shards);
        assert_eq!(shards.len(), 4);
        // Each shard holds exactly two of the eight values.
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(values.iter().filter(|&&v| s.contains(v)).count(), 2, "{i}");
        }
    }

    #[test]
    fn skewed_weight_is_isolated_in_its_own_shard() {
        // One value carries 90% of the tuples: it must own a single-value
        // shard so callers can nested-split it, and the split must stay at
        // most k with no empty shard.
        let values: Vec<Val> = vec![1, 2, 3, 4];
        let weights = vec![1usize, 90, 1, 1];
        let shards = equi_depth_shards(&values, &weights, 4);
        check_cover(&shards);
        assert!(shards.len() <= 4);
        let own = shards
            .iter()
            .find(|s| s.contains(2))
            .expect("heavy value covered");
        assert!(
            own.is_single_value(),
            "heavy value must sit alone, got {own}"
        );
        for s in &shards {
            assert!(
                values.iter().any(|&v| s.contains(v)),
                "no shard may be empty of primary values: {s}"
            );
        }
    }

    #[test]
    fn giant_duplicate_run_degrades_to_one_shard() {
        // All tuples share one first value (the duplicate-run skew case):
        // a single unbounded shard, no panic — nesting happens upstream.
        let shards = equi_depth_shards(&[7], &[1_000_000], 8);
        assert_eq!(shards, vec![ShardBounds::unbounded()]);
    }

    #[test]
    fn more_shards_than_values_caps_at_values() {
        let values: Vec<Val> = vec![10, 20, 30];
        let shards = equi_depth_shards(&values, &[5, 5, 5], 64);
        check_cover(&shards);
        assert_eq!(shards.len(), 3);
        for (s, &v) in shards.iter().zip(&values) {
            assert!(s.contains(v));
        }
    }

    #[test]
    fn k_one_and_empty_are_unbounded() {
        assert_eq!(
            equi_depth_shards(&[1, 2, 3], &[1, 1, 1], 1),
            vec![ShardBounds::unbounded()]
        );
        assert_eq!(
            equi_depth_shards(&[], &[], 4),
            vec![ShardBounds::unbounded()]
        );
        assert_eq!(
            equi_depth_shards(&[5], &[0], 3),
            vec![ShardBounds::unbounded()],
            "zero total weight"
        );
    }

    #[test]
    fn heavy_isolation_never_exceeds_k() {
        // Two heavy values still respect the ≤ k contract, and at a k
        // where both are heavy (weight ≥ 2·total/k) each sits alone.
        let values: Vec<Val> = (0..6).collect();
        let weights = vec![100usize, 100, 1, 1, 1, 1];
        for k in 2..=6 {
            let shards = equi_depth_shards(&values, &weights, k);
            check_cover(&shards);
            assert!(shards.len() <= k, "k={k}: {}", shards.len());
        }
        let shards = equi_depth_shards(&values, &weights, 6);
        for heavy in [0, 1] {
            let own = shards.iter().find(|s| s.contains(heavy)).unwrap();
            assert!(
                values
                    .iter()
                    .filter(|&&v| own.contains(v))
                    .all(|&v| v == heavy),
                "heavy value {heavy} shares {own}"
            );
        }
    }

    #[test]
    fn shard_relation_weighs_by_tuple_count() {
        // First value 1 has 4 tuples, values 2 and 3 have 1 each: with two
        // shards the cut must isolate value 1.
        let rel = TrieRelation::from_tuples(
            "R",
            2,
            vec![
                vec![1, 1],
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 1],
                vec![3, 1],
            ],
        )
        .unwrap();
        let shards = shard_relation(&rel, 2);
        check_cover(&shards);
        assert_eq!(shards.len(), 2);
        assert!(shards[0].contains(1) && !shards[0].contains(2));
        assert!(shards[1].contains(2) && shards[1].contains(3));
    }

    #[test]
    fn nested_shards_split_a_heavy_run() {
        let run = ShardBounds { lo: 7, hi: 7 };
        let children: Vec<Val> = (0..10).collect();
        let weights = vec![3usize; 10];
        let specs = nested_shards(run, &children, &weights, 4);
        assert_eq!(specs.len(), 4);
        for s in &specs {
            assert_eq!(s.bounds, run);
            assert!(s.is_nested());
        }
        // The second-attribute intervals cover the whole domain.
        let seconds: Vec<ShardBounds> = specs.iter().map(|s| s.second.unwrap()).collect();
        check_cover(&seconds);
        // A run with a single child cannot split: one plain spec.
        let single = nested_shards(run, &[4], &[100], 4);
        assert_eq!(single, vec![ShardSpec::plain(run)]);
    }

    #[test]
    fn second_level_profile_reads_the_subtree() {
        let rel = TrieRelation::from_tuples(
            "R",
            3,
            vec![vec![7, 1, 1], vec![7, 1, 2], vec![7, 4, 1], vec![9, 2, 2]],
        )
        .unwrap();
        let (vals, weights) = second_level_profile(&rel, 7);
        assert_eq!(vals, vec![1, 4]);
        assert_eq!(weights, vec![2, 1]);
        let (vals, weights) = second_level_profile(&rel, 8);
        assert!(vals.is_empty() && weights.is_empty(), "absent value");
        let unary = TrieRelation::from_tuples("U", 1, vec![vec![7]]).unwrap();
        assert!(second_level_profile(&unary, 7).0.is_empty());
    }

    #[test]
    fn spec_display_and_contains() {
        let s = ShardSpec::plain(ShardBounds { lo: 3, hi: 9 });
        assert!(s.contains(3, NEG_INF) && !s.contains(10, 0));
        assert_eq!(s.to_string(), "[3, 9]");
        let n = ShardSpec {
            bounds: ShardBounds { lo: 7, hi: 7 },
            second: Some(ShardBounds { lo: 2, hi: 5 }),
        };
        assert!(n.contains(7, 2) && n.contains(7, 5));
        assert!(!n.contains(7, 6) && !n.contains(6, 3));
        assert_eq!(n.to_string(), "[7, 7]×[2, 5]");
        assert!(ShardSpec::unbounded().contains(0, 0));
    }

    #[test]
    fn gao_order_compares_translated_tuples_in_gao_order() {
        // GAO [2, 0, 1]: translated tuples compare by column 2 first.
        let o = GaoOrder::new(vec![2, 0, 1]);
        assert_eq!(o.n_attrs(), 3);
        assert_eq!(o.cmp_tuples(&[9, 9, 1], &[0, 0, 2]), Ordering::Less);
        assert_eq!(o.cmp_tuples(&[1, 5, 4], &[1, 3, 4]), Ordering::Greater);
        assert_eq!(o.cmp_tuples(&[1, 2, 3], &[1, 2, 3]), Ordering::Equal);
        assert_eq!(o.key2(&[7, 8, 9]), (9, 7), "first two GAO coordinates");
        // Identity order degrades to plain lexicographic comparison.
        let id = GaoOrder::identity(2);
        assert_eq!(id.cmp_tuples(&[1, 9], &[2, 0]), Ordering::Less);
        assert_eq!(id.key2(&[1, 9]), (1, 9));
        // Unary: the missing second coordinate reads as −∞.
        assert_eq!(GaoOrder::identity(1).key2(&[5]), (5, NEG_INF));
        assert!(o.is_strictly_sorted(&[vec![9, 9, 1], vec![0, 0, 2], vec![1, 0, 2]]));
        assert!(!o.is_strictly_sorted(&[vec![0, 0, 2], vec![9, 9, 1]]));
    }

    #[test]
    fn lower_corner_orders_disjoint_specs() {
        let plain = ShardSpec::plain(ShardBounds { lo: 3, hi: 9 });
        assert_eq!(plain.lower_corner(), (3, NEG_INF));
        let nested = ShardSpec {
            bounds: ShardBounds { lo: 7, hi: 7 },
            second: Some(ShardBounds { lo: 2, hi: 5 }),
        };
        assert_eq!(nested.lower_corner(), (7, 2));
        // A tuple key from an earlier slice is strictly below a later
        // spec's corner — the watermark property the merge relies on.
        let o = GaoOrder::identity(2);
        assert!(o.key2(&[2, 100]) < plain.lower_corner());
        assert!(o.key2(&[7, 1]) < nested.lower_corner());
        assert!(o.key2(&[7, 2]) >= nested.lower_corner());
        assert_eq!(ShardSpec::unbounded().lower_corner(), (NEG_INF, NEG_INF));
    }

    #[test]
    fn bounds_display_and_contains() {
        let s = ShardBounds { lo: 3, hi: 9 };
        assert!(s.contains(3) && s.contains(9) && !s.contains(10));
        assert_eq!(s.to_string(), "[3, 9]");
        assert_eq!(ShardBounds::unbounded().to_string(), "[-inf, +inf]");
    }
}
