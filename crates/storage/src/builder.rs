//! Incremental relation builder.

use crate::error::StorageError;
use crate::trie::TrieRelation;
use crate::value::{Tuple, Val, MAX_DOMAIN_VALUE};

/// Accumulates tuples and produces a [`TrieRelation`].
///
/// ```
/// use minesweeper_storage::RelationBuilder;
/// let r = RelationBuilder::new("R", 2)
///     .tuple(&[1, 2])
///     .tuple(&[1, 3])
///     .build()
///     .unwrap();
/// assert_eq!(r.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    name: String,
    arity: usize,
    tuples: Vec<Tuple>,
    error: Option<StorageError>,
}

impl RelationBuilder {
    /// Starts a builder for a relation with the given name and arity.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        assert!(arity >= 1, "relations must have arity >= 1");
        RelationBuilder {
            name: name.into(),
            arity,
            tuples: Vec::new(),
            error: None,
        }
    }

    /// Adds one tuple (by slice). Errors are deferred to [`build`].
    ///
    /// [`build`]: RelationBuilder::build
    pub fn tuple(mut self, t: &[Val]) -> Self {
        self.push(t);
        self
    }

    /// Adds one tuple in place (for loops where the builder is owned).
    pub fn push(&mut self, t: &[Val]) {
        if self.error.is_some() {
            return;
        }
        if t.len() != self.arity {
            self.error = Some(StorageError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity,
                got: t.len(),
            });
            return;
        }
        if let Some(&v) = t.iter().find(|&&v| !(0..=MAX_DOMAIN_VALUE).contains(&v)) {
            self.error = Some(StorageError::ValueOutOfDomain {
                relation: self.name.clone(),
                value: v,
            });
            return;
        }
        self.tuples.push(t.to_vec());
    }

    /// Adds many tuples.
    pub fn extend<'a>(mut self, it: impl IntoIterator<Item = &'a [Val]>) -> Self {
        for t in it {
            self.push(t);
        }
        self
    }

    /// Number of tuples added so far (before deduplication).
    pub fn staged(&self) -> usize {
        self.tuples.len()
    }

    /// Sorts, deduplicates, and freezes the relation.
    pub fn build(self) -> Result<TrieRelation, StorageError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut tuples = self.tuples;
        tuples.sort_unstable();
        tuples.dedup();
        Ok(TrieRelation::from_sorted_unique(
            self.name, self.arity, &tuples,
        ))
    }
}

/// Builds a unary relation from a value iterator.
pub fn unary(name: impl Into<String>, values: impl IntoIterator<Item = Val>) -> TrieRelation {
    let mut b = RelationBuilder::new(name, 1);
    for v in values {
        b.push(&[v]);
    }
    b.build().expect("unary relation build")
}

/// Builds a binary relation from a pair iterator.
pub fn binary(
    name: impl Into<String>,
    pairs: impl IntoIterator<Item = (Val, Val)>,
) -> TrieRelation {
    let mut b = RelationBuilder::new(name, 2);
    for (x, y) in pairs {
        b.push(&[x, y]);
    }
    b.build().expect("binary relation build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_and_dedups() {
        let r = RelationBuilder::new("R", 2)
            .tuple(&[5, 5])
            .tuple(&[1, 2])
            .tuple(&[5, 5])
            .build()
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.to_tuples(), vec![vec![1, 2], vec![5, 5]]);
    }

    #[test]
    fn builder_reports_first_error() {
        let err = RelationBuilder::new("R", 2)
            .tuple(&[1, 2])
            .tuple(&[1])
            .tuple(&[3, 4])
            .build()
            .unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { got: 1, .. }));
    }

    #[test]
    fn unary_and_binary_helpers() {
        let u = unary("U", [3, 1, 2]);
        assert_eq!(u.first_column(), &[1, 2, 3]);
        let b = binary("B", [(2, 1), (1, 9)]);
        assert_eq!(b.to_tuples(), vec![vec![1, 9], vec![2, 1]]);
    }

    #[test]
    fn extend_and_staged() {
        let rows: Vec<Vec<Val>> = vec![vec![1, 1], vec![2, 2]];
        let b = RelationBuilder::new("R", 2).extend(rows.iter().map(|r| r.as_slice()));
        assert_eq!(b.staged(), 2);
        assert_eq!(b.build().unwrap().len(), 2);
    }
}
