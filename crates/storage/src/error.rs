//! Error types for relation construction and catalog lookups.

use std::fmt;

/// Errors raised while building relations or resolving catalog entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple's length did not match the relation arity.
    ArityMismatch {
        /// Relation being built.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Offending tuple length.
        got: usize,
    },
    /// A tuple contained a value outside the permitted domain
    /// (`0..=MAX_DOMAIN_VALUE`; sentinels and negatives are reserved).
    ValueOutOfDomain {
        /// Relation being built.
        relation: String,
        /// Offending value.
        value: i64,
    },
    /// A relation name was not present in the database catalog.
    UnknownRelation(String),
    /// A relation with this name already exists in the catalog.
    DuplicateRelation(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation}: tuple of length {got} does not match arity {expected}"
            ),
            StorageError::ValueOutOfDomain { relation, value } => {
                write!(f, "relation {relation}: value {value} outside domain")
            }
            StorageError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            StorageError::DuplicateRelation(name) => {
                write!(f, "relation {name} already exists")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("arity 2"));
        assert!(StorageError::UnknownRelation("S".into())
            .to_string()
            .contains("unknown relation S"));
        assert!(StorageError::DuplicateRelation("S".into())
            .to_string()
            .contains("already exists"));
        assert!(StorageError::ValueOutOfDomain {
            relation: "R".into(),
            value: -7
        }
        .to_string()
        .contains("-7"));
    }
}
