//! Value and tuple types.
//!
//! The paper assumes all attribute domains are ℕ. We model domain values as
//! `i64` so that the sentinel probe value `−1` (used by `getProbePoint` when
//! no constraint applies yet, cf. Appendix D.1) and the `±∞` endpoints of gap
//! constraints have natural representations. Workload generators only emit
//! values in `0..=MAX_DOMAIN_VALUE`.

/// A domain value. The paper's domains are ℕ; we use a signed 64-bit integer
/// so `−1` (the initial probe sentinel) and the infinity sentinels fit.
pub type Val = i64;

/// Sentinel for `−∞` (the value of an index tuple with coordinate `0`,
/// convention (1) of the paper).
pub const NEG_INF: Val = Val::MIN;

/// Sentinel for `+∞` (the value of an index tuple with coordinate `len+1`,
/// convention (2) of the paper).
pub const POS_INF: Val = Val::MAX;

/// Largest domain value workload generators are allowed to produce. Keeping
/// a gap below [`POS_INF`] lets interval arithmetic use plain `+1`/`−1`
/// without overflow checks on the hot path.
pub const MAX_DOMAIN_VALUE: Val = Val::MAX / 4;

/// A tuple of domain values. Tuples are always materialized in the
/// relation's own attribute order (which is consistent with the GAO).
pub type Tuple = Vec<Val>;

/// Returns `true` if `v` is one of the two infinity sentinels.
#[inline]
pub fn is_infinite(v: Val) -> bool {
    v == NEG_INF || v == POS_INF
}

/// Formats a value, rendering the sentinels as `-inf` / `+inf`.
pub fn fmt_val(v: Val) -> String {
    if v == NEG_INF {
        "-inf".to_string()
    } else if v == POS_INF {
        "+inf".to_string()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_order_around_domain() {
        // Evaluated through variables so the relationships are checked as
        // data, not constant-folded assertions.
        let (lo, hi, max_dom) = (NEG_INF, POS_INF, MAX_DOMAIN_VALUE);
        assert!(lo < -1);
        assert!(max_dom < hi);
        assert!(lo < hi);
    }

    #[test]
    fn sentinel_formatting() {
        assert_eq!(fmt_val(NEG_INF), "-inf");
        assert_eq!(fmt_val(POS_INF), "+inf");
        assert_eq!(fmt_val(42), "42");
        assert_eq!(fmt_val(-1), "-1");
    }

    #[test]
    fn infinity_predicate() {
        assert!(is_infinite(NEG_INF));
        assert!(is_infinite(POS_INF));
        assert!(!is_infinite(0));
        assert!(!is_infinite(MAX_DOMAIN_VALUE));
    }
}
