//! Dictionary encoding: interning typed values into the `i64` domain.
//!
//! The paper's model (Section 2.1) — and every index, cursor, and
//! constraint structure in this workspace — speaks the totally ordered
//! integer domain [`Val`]. Real workloads also carry strings. Rather than
//! teach the hot path about a second value kind, an engine-level
//! [`Dictionary`] interns each distinct string to a dense [`Val`] id once,
//! at load/prepare time, and decodes ids back to strings only at the
//! output boundary. Joins are equality joins, so any *injective* mapping
//! preserves their semantics exactly: running the join over the encoded
//! `i64` relations and decoding the result equals running a string-level
//! join directly (the dictionary round-trip property tested in
//! `tests/engine.rs`).
//!
//! Ids are assigned in first-intern order starting at `0`, which keeps
//! them inside `0..=MAX_DOMAIN_VALUE` like every workload-generated value,
//! far away from the `±∞` sentinels and the `−1` probe sentinel.
//!
//! Ordering note: encoded order is *id* order (first-appearance), not
//! lexicographic string order — deliberately, so encoding is a single
//! hash-map hit. Results are therefore sorted the way an equivalent
//! integer-relabelled instance would sort, which is the contract the
//! engine's output guarantees are written against.

use std::collections::HashMap;

use crate::value::Val;

/// The kind of values a relation column holds. The storage layer itself
/// always stores [`Val`]; the type records how the engine boundary
/// encodes/decodes the column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Values are native integers, stored as themselves.
    Int,
    /// Values are strings, interned through the engine's [`Dictionary`].
    Str,
}

impl std::fmt::Display for ColumnType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnType::Int => write!(f, "int"),
            ColumnType::Str => write!(f, "str"),
        }
    }
}

/// A typed value at the engine boundary. Inside the storage and join
/// layers every value is a [`Val`]; `Value` exists only on the way in
/// (encode/intern) and the way out (decode).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A native integer, encoded as itself.
    Int(Val),
    /// A string, encoded via the per-engine [`Dictionary`].
    Str(String),
}

impl Value {
    /// The column type this value belongs to.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Str(_) => ColumnType::Str,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<Val> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<Val> for Value {
    fn from(v: Val) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// A string-interning dictionary: each distinct string maps to a dense
/// [`Val`] id (`0, 1, 2, …` in first-intern order) and back.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    by_string: HashMap<String, Val>,
    by_id: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id (allocating the next dense id on
    /// first sight).
    pub fn intern(&mut self, s: &str) -> Val {
        if let Some(&id) = self.by_string.get(s) {
            return id;
        }
        let id = self.by_id.len() as Val;
        self.by_string.insert(s.to_string(), id);
        self.by_id.push(s.to_string());
        id
    }

    /// The id of `s` if it has been interned. A string never interned
    /// cannot appear in any stored relation, so a `None` here means a
    /// query literal matches nothing.
    pub fn id_of(&self, s: &str) -> Option<Val> {
        self.by_string.get(s).copied()
    }

    /// Decodes an id back to its string. `None` for ids this dictionary
    /// never produced.
    pub fn resolve(&self, id: Val) -> Option<&str> {
        usize::try_from(id)
            .ok()
            .and_then(|i| self.by_id.get(i))
            .map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dictionary::new();
        let a = d.intern("amsterdam");
        let b = d.intern("berlin");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(d.intern("amsterdam"), a, "re-intern returns the same id");
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = Dictionary::new();
        let id = d.intern("query");
        assert_eq!(d.resolve(id), Some("query"));
        assert_eq!(d.id_of("query"), Some(id));
        assert_eq!(d.id_of("missing"), None);
        assert_eq!(d.resolve(99), None);
        assert_eq!(d.resolve(-1), None, "negative ids never decode");
    }

    #[test]
    fn value_accessors_and_display() {
        let i = Value::Int(42);
        let s = Value::from("x");
        assert_eq!(i.column_type(), ColumnType::Int);
        assert_eq!(s.column_type(), ColumnType::Str);
        assert_eq!(i.as_int(), Some(42));
        assert_eq!(i.as_str(), None);
        assert_eq!(s.as_str(), Some("x"));
        assert_eq!(s.as_int(), None);
        assert_eq!(i.to_string(), "42");
        assert_eq!(s.to_string(), "x");
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from("a".to_string()), Value::Str("a".into()));
        assert_eq!(ColumnType::Int.to_string(), "int");
        assert_eq!(ColumnType::Str.to_string(), "str");
    }
}
