//! A positional cursor over any [`TrieStorage`] backend, in the style
//! required by Leapfrog Triejoin (Veldhuizen 2014, reference \[53\] of the
//! paper).
//!
//! The cursor maintains a root-to-current-node path. At each depth it
//! supports the linear-iterator interface `key / next / seek / at_end`, and
//! the trie interface `open / up`. `seek` goes through
//! [`TrieStorage::seek_ge`]: the canonical layout gallops, so a full sweep
//! over a level costs time proportional to the number of distinct landing
//! positions times `log` of the jump distances — this is what makes LFTJ
//! worst-case optimal and is also the "leapfrogging" idea the paper credits
//! to Hwang–Lin — while the hybrid bitset layout answers the same seek with
//! a rank lookup over its packed run.

use crate::backend::TrieStorage;
use crate::stats::ExecStats;
use crate::trie::{NodeId, TrieRelation};
use crate::value::Val;

/// Cursor state for one relation (defaults to the canonical
/// [`TrieRelation`] backend).
pub struct TrieCursor<'a, S: TrieStorage = TrieRelation> {
    rel: &'a S,
    /// For each open depth `d ≥ 1`: the parent node, its fanout, and the
    /// current 0-based sibling index.
    frames: Vec<Frame>,
}

struct Frame {
    parent: NodeId,
    n: usize,
    cur: usize,
}

impl<'a, S: TrieStorage> TrieCursor<'a, S> {
    /// Creates a cursor positioned at the root with no open level.
    pub fn new(rel: &'a S) -> Self {
        TrieCursor {
            rel,
            frames: Vec::new(),
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &'a S {
        self.rel
    }

    /// Current depth (number of open levels).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    fn current_node(&self) -> NodeId {
        match self.frames.last() {
            None => self.rel.root(),
            Some(f) => {
                assert!(f.cur < f.n, "cursor at end");
                self.rel.child(f.parent, f.cur + 1)
            }
        }
    }

    /// Opens the next trie level, positioning at the first child of the
    /// current node. Returns `false` (and does not open) if the current node
    /// has no children (only possible at the root of an empty relation).
    pub fn open(&mut self) -> bool {
        let node = self.current_node();
        assert!(node.depth() < self.rel.arity(), "cannot open past a leaf");
        let n = self.rel.child_count(node);
        if n == 0 {
            return false;
        }
        self.frames.push(Frame {
            parent: node,
            n,
            cur: 0,
        });
        true
    }

    /// Closes the current level, returning to the parent node.
    pub fn up(&mut self) {
        let f = self.frames.pop().expect("no open level");
        debug_assert!(f.cur <= f.n);
    }

    /// True if the cursor has moved past the last sibling at this level.
    pub fn at_end(&self) -> bool {
        let f = self.frames.last().expect("no open level");
        f.cur >= f.n
    }

    /// The key (value) at the current position. Panics when [`at_end`].
    ///
    /// [`at_end`]: TrieCursor::at_end
    pub fn key(&self) -> Val {
        self.rel.value(self.current_node())
    }

    /// Advances to the next sibling.
    pub fn next(&mut self, stats: &mut ExecStats) {
        stats.seeks += 1;
        let f = self.frames.last_mut().expect("no open level");
        assert!(f.cur < f.n, "advancing past end");
        f.cur += 1;
    }

    /// Seeks forward to the least sibling with `key ≥ target`. Seeks are
    /// monotone: a target below the current key leaves the cursor in
    /// place.
    pub fn seek(&mut self, target: Val, stats: &mut ExecStats) {
        stats.seeks += 1;
        let f = self.frames.last_mut().expect("no open level");
        let (parent, from) = (f.parent, f.cur);
        let landed = self.rel.seek_ge(parent, from, target, stats);
        self.frames.last_mut().expect("no open level").cur = landed;
    }

    /// Remaining keys at the current level from the current position.
    pub fn remaining(&self) -> &'a [Val] {
        let f = self.frames.last().expect("no open level");
        &self.rel.child_values(f.parent)[f.cur..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitleaf::{BitLeafRelation, LeafPolicy, StorageRef};
    use std::sync::Arc;

    fn rel() -> TrieRelation {
        TrieRelation::from_tuples(
            "R",
            2,
            vec![vec![1, 10], vec![1, 20], vec![3, 5], vec![7, 1], vec![7, 9]],
        )
        .unwrap()
    }

    #[test]
    fn open_next_up_walks_levels() {
        let r = rel();
        let mut st = ExecStats::new();
        let mut c = TrieCursor::new(&r);
        assert!(c.open());
        assert_eq!(c.key(), 1);
        c.next(&mut st);
        assert_eq!(c.key(), 3);
        assert!(c.open());
        assert_eq!(c.key(), 5);
        c.next(&mut st);
        assert!(c.at_end());
        c.up();
        assert_eq!(c.key(), 3);
        c.next(&mut st);
        assert_eq!(c.key(), 7);
        assert!(c.open());
        assert_eq!(c.remaining(), &[1, 9]);
    }

    #[test]
    fn seek_gallops_within_group() {
        let r = rel();
        let mut st = ExecStats::new();
        let mut c = TrieCursor::new(&r);
        c.open();
        c.seek(2, &mut st);
        assert_eq!(c.key(), 3);
        c.seek(7, &mut st);
        assert_eq!(c.key(), 7);
        c.open();
        c.seek(2, &mut st);
        assert_eq!(c.key(), 9);
        c.seek(100, &mut st);
        assert!(c.at_end());
        assert_eq!(st.seeks, 4);
    }

    #[test]
    fn seek_is_monotone_only_forward() {
        let r = rel();
        let mut st = ExecStats::new();
        let mut c = TrieCursor::new(&r);
        c.open();
        c.seek(7, &mut st);
        assert_eq!(c.key(), 7);
        // Seeking backwards does not move the cursor back.
        c.seek(0, &mut st);
        assert_eq!(c.key(), 7);
    }

    #[test]
    fn sibling_bounds_respected() {
        // Group of first root child is [10, 20]; seeking 15 inside the group
        // must not run into the next group's [5].
        let r = rel();
        let mut st = ExecStats::new();
        let mut c = TrieCursor::new(&r);
        c.open();
        c.open();
        assert_eq!(c.key(), 10);
        c.seek(15, &mut st);
        assert_eq!(c.key(), 20);
        c.seek(21, &mut st);
        assert!(c.at_end());
        c.up();
        // Parent untouched.
        assert_eq!(c.key(), 1);
    }

    #[test]
    fn empty_relation_open_fails() {
        let r = TrieRelation::from_tuples("E", 1, vec![]).unwrap();
        let mut c = TrieCursor::new(&r);
        assert!(!c.open());
    }

    /// The same walk over the hybrid backend (forced dense) must visit the
    /// same keys with the same seek accounting.
    #[test]
    fn walks_hybrid_backend_identically() {
        let base = Arc::new(rel());
        let h = BitLeafRelation::build(base.clone(), LeafPolicy::Dense).unwrap();
        let sref = StorageRef::Hybrid(&h);
        let mut st_s = ExecStats::new();
        let mut st_h = ExecStats::new();
        let mut cs = TrieCursor::new(base.as_ref());
        let mut ch = TrieCursor::new(&sref);
        assert_eq!(cs.open(), ch.open());
        for target in [0, 2, 3, 7, 8] {
            cs.seek(target, &mut st_s);
            ch.seek(target, &mut st_h);
            assert_eq!(cs.at_end(), ch.at_end());
            if !cs.at_end() {
                assert_eq!(cs.key(), ch.key());
            }
        }
        assert_eq!(st_s.seeks, st_h.seeks);
    }
}
