//! A positional cursor over a [`TrieRelation`], in the style required by
//! Leapfrog Triejoin (Veldhuizen 2014, reference \[53\] of the paper).
//!
//! The cursor maintains a root-to-current-node path. At each depth it
//! supports the linear-iterator interface `key / next / seek / at_end`, and
//! the trie interface `open / up`. `seek` uses galloping search so that a
//! full sweep over a level costs time proportional to the number of distinct
//! landing positions times `log` of the jump distances — this is what makes
//! LFTJ worst-case optimal and is also the "leapfrogging" idea the paper
//! credits to Hwang–Lin.

use crate::sorted;
use crate::stats::ExecStats;
use crate::trie::{NodeId, TrieRelation};
use crate::value::Val;

/// Cursor state for one relation.
pub struct TrieCursor<'a> {
    rel: &'a TrieRelation,
    /// For each open depth `d ≥ 1`: the global sibling range in level `d−1`
    /// and the current global position within it.
    frames: Vec<Frame>,
}

struct Frame {
    lo: usize,
    hi: usize,
    cur: usize,
}

impl<'a> TrieCursor<'a> {
    /// Creates a cursor positioned at the root with no open level.
    pub fn new(rel: &'a TrieRelation) -> Self {
        TrieCursor {
            rel,
            frames: Vec::new(),
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &'a TrieRelation {
        self.rel
    }

    /// Current depth (number of open levels).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    fn current_node(&self) -> NodeId {
        match self.frames.last() {
            None => self.rel.root(),
            Some(f) => {
                assert!(f.cur < f.hi, "cursor at end");
                node_at(self.frames.len(), f.cur)
            }
        }
    }

    /// Opens the next trie level, positioning at the first child of the
    /// current node. Returns `false` (and does not open) if the current node
    /// has no children (only possible at the root of an empty relation).
    pub fn open(&mut self) -> bool {
        let node = self.current_node();
        assert!(node.depth() < self.rel.arity(), "cannot open past a leaf");
        let n = self.rel.child_count(node);
        if n == 0 {
            return false;
        }
        let lo = self.rel.child(node, 1).into_pos();
        self.frames.push(Frame {
            lo,
            hi: lo + n,
            cur: lo,
        });
        true
    }

    /// Closes the current level, returning to the parent node.
    pub fn up(&mut self) {
        let f = self.frames.pop().expect("no open level");
        debug_assert!(f.lo <= f.hi);
    }

    /// True if the cursor has moved past the last sibling at this level.
    pub fn at_end(&self) -> bool {
        let f = self.frames.last().expect("no open level");
        f.cur >= f.hi
    }

    /// The key (value) at the current position. Panics when [`at_end`].
    ///
    /// [`at_end`]: TrieCursor::at_end
    pub fn key(&self) -> Val {
        self.rel.value(self.current_node())
    }

    /// Advances to the next sibling.
    pub fn next(&mut self, stats: &mut ExecStats) {
        stats.seeks += 1;
        let f = self.frames.last_mut().expect("no open level");
        assert!(f.cur < f.hi, "advancing past end");
        f.cur += 1;
    }

    /// Seeks forward to the least sibling with `key ≥ target` (galloping).
    /// Seeks are monotone: a target below the current key leaves the cursor
    /// in place.
    pub fn seek(&mut self, target: Val, stats: &mut ExecStats) {
        stats.seeks += 1;
        let depth = self.frames.len();
        let col = self.rel.level_column(depth - 1);
        let f = self.frames.last_mut().expect("no open level");
        f.cur = sorted::gallop_ge(&col[..f.hi], f.cur, target);
    }

    /// Remaining keys at the current level from the current position.
    pub fn remaining(&self) -> &'a [Val] {
        let depth = self.frames.len();
        let f = self.frames.last().expect("no open level");
        &self.rel.level_column(depth - 1)[f.cur..f.hi]
    }
}

fn node_at(depth: usize, pos: usize) -> NodeId {
    NodeId::at(depth, pos)
}

impl NodeId {
    pub(crate) fn at(depth: usize, pos: usize) -> NodeId {
        NodeId { depth, pos }
    }

    pub(crate) fn into_pos(self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> TrieRelation {
        TrieRelation::from_tuples(
            "R",
            2,
            vec![vec![1, 10], vec![1, 20], vec![3, 5], vec![7, 1], vec![7, 9]],
        )
        .unwrap()
    }

    #[test]
    fn open_next_up_walks_levels() {
        let r = rel();
        let mut st = ExecStats::new();
        let mut c = TrieCursor::new(&r);
        assert!(c.open());
        assert_eq!(c.key(), 1);
        c.next(&mut st);
        assert_eq!(c.key(), 3);
        assert!(c.open());
        assert_eq!(c.key(), 5);
        c.next(&mut st);
        assert!(c.at_end());
        c.up();
        assert_eq!(c.key(), 3);
        c.next(&mut st);
        assert_eq!(c.key(), 7);
        assert!(c.open());
        assert_eq!(c.remaining(), &[1, 9]);
    }

    #[test]
    fn seek_gallops_within_group() {
        let r = rel();
        let mut st = ExecStats::new();
        let mut c = TrieCursor::new(&r);
        c.open();
        c.seek(2, &mut st);
        assert_eq!(c.key(), 3);
        c.seek(7, &mut st);
        assert_eq!(c.key(), 7);
        c.open();
        c.seek(2, &mut st);
        assert_eq!(c.key(), 9);
        c.seek(100, &mut st);
        assert!(c.at_end());
        assert_eq!(st.seeks, 4);
    }

    #[test]
    fn seek_is_monotone_only_forward() {
        let r = rel();
        let mut st = ExecStats::new();
        let mut c = TrieCursor::new(&r);
        c.open();
        c.seek(7, &mut st);
        assert_eq!(c.key(), 7);
        // Seeking backwards does not move the cursor back.
        c.seek(0, &mut st);
        assert_eq!(c.key(), 7);
    }

    #[test]
    fn sibling_bounds_respected() {
        // Group of first root child is [10, 20]; seeking 15 inside the group
        // must not run into the next group's [5].
        let r = rel();
        let mut st = ExecStats::new();
        let mut c = TrieCursor::new(&r);
        c.open();
        c.open();
        assert_eq!(c.key(), 10);
        c.seek(15, &mut st);
        assert_eq!(c.key(), 20);
        c.seek(21, &mut st);
        assert!(c.at_end());
        c.up();
        // Parent untouched.
        assert_eq!(c.key(), 1);
    }

    #[test]
    fn empty_relation_open_fails() {
        let r = TrieRelation::from_tuples("E", 1, vec![]).unwrap();
        let mut c = TrieCursor::new(&r);
        assert!(!c.open());
    }
}
