//! Database catalog: a set of named, versioned relations.
//!
//! Each relation lives behind a [`VersionedRelation`] (immutable base +
//! write delta + version counter). The read path is unchanged from the
//! load-once days: [`Database::relation`] hands executors a plain
//! [`TrieRelation`] — the relation's materialized snapshot, built lazily at
//! most once per version. Because snapshots are `Arc`-shared,
//! `Database::clone()` is O(relations) regardless of data size; the engine
//! exploits this for copy-on-write (`Arc::make_mut`) so that readers
//! holding an older `Arc<Database>` keep their versions alive — snapshot
//! isolation, documented in `docs/STORAGE.md`.

use std::collections::BTreeMap;

use crate::bitleaf::{LeafPolicy, StorageRef};
use crate::error::StorageError;
use crate::trie::TrieRelation;
use crate::versioned::{VersionedRelation, WriteOp, WriteOutcome};

/// Opaque handle to a relation inside a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub usize);

/// A catalog of relations. Query atoms refer to relations by [`RelId`], so
/// the same physical index can back several atoms (e.g. the three `S` atoms
/// of the paper's star query all share one index).
#[derive(Debug, Clone)]
pub struct Database {
    relations: Vec<VersionedRelation>,
    by_name: BTreeMap<String, RelId>,
    policy: LeafPolicy,
}

impl Default for Database {
    /// An empty database under [`LeafPolicy::from_env`].
    fn default() -> Self {
        Self::with_leaf_policy(LeafPolicy::from_env())
    }
}

impl Database {
    /// An empty database. The leaf-representation policy is read from the
    /// `MSJ_LEAF` environment variable (defaulting to [`LeafPolicy::Auto`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database with an explicit leaf-representation policy,
    /// applied to every relation added afterwards.
    pub fn with_leaf_policy(policy: LeafPolicy) -> Self {
        Database {
            relations: Vec::new(),
            by_name: BTreeMap::new(),
            policy,
        }
    }

    /// The leaf-representation policy relations are loaded and compacted
    /// under.
    pub fn leaf_policy(&self) -> LeafPolicy {
        self.policy
    }

    /// Switches the leaf-representation policy and rebuilds every
    /// relation's hybrid index under it (existing bases are re-scanned; the
    /// logical content and all version counters are untouched).
    pub fn set_leaf_policy(&mut self, policy: LeafPolicy) {
        if policy == self.policy {
            return;
        }
        self.policy = policy;
        for rel in &mut self.relations {
            rel.set_leaf_policy(policy);
        }
    }

    /// Adds a relation (as version 0 of a fresh versioned relation); its
    /// name must be unique within the catalog.
    pub fn add(&mut self, rel: TrieRelation) -> Result<RelId, StorageError> {
        if self.by_name.contains_key(rel.name()) {
            return Err(StorageError::DuplicateRelation(rel.name().to_string()));
        }
        let id = RelId(self.relations.len());
        self.by_name.insert(rel.name().to_string(), id);
        self.relations
            .push(VersionedRelation::from_base_with_policy(rel, self.policy));
        Ok(id)
    }

    /// Looks a relation up by name.
    pub fn id_of(&self, name: &str) -> Result<RelId, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Fetches a relation's current snapshot by handle. With no pending
    /// writes this is the immutable base; otherwise the materialized merge,
    /// built lazily once per version.
    pub fn relation(&self, id: RelId) -> &TrieRelation {
        self.relations[id.0].snapshot()
    }

    /// Fetches a relation's current snapshot by name.
    pub fn relation_by_name(&self, name: &str) -> Result<&TrieRelation, StorageError> {
        Ok(self.relation(self.id_of(name)?))
    }

    /// The storage backend executors should probe for this relation: the
    /// hybrid dense-leaf index when one exists *and* covers the current
    /// logical content (empty delta), otherwise the sorted snapshot. Both
    /// answer the identical [`crate::TrieStorage`] read contract.
    pub fn probe_target(&self, id: RelId) -> StorageRef<'_> {
        let rel = &self.relations[id.0];
        match rel.hybrid() {
            Some(h) if rel.delta_is_empty() => StorageRef::Hybrid(h),
            _ => StorageRef::Sorted(rel.snapshot()),
        }
    }

    /// The versioned relation behind a handle (delta introspection, lazy
    /// merge views).
    pub fn versioned(&self, id: RelId) -> &VersionedRelation {
        &self.relations[id.0]
    }

    /// Current version counter of a relation.
    pub fn version(&self, id: RelId) -> u64 {
        self.relations[id.0].version()
    }

    /// `(id, version)` for every relation, in id order — the cache key the
    /// engine snapshots to detect staleness.
    pub fn versions(&self) -> Vec<(RelId, u64)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i), r.version()))
            .collect()
    }

    /// Restores a persisted version counter onto a freshly added relation
    /// (see [`VersionedRelation::restore_version`]) — used by crash
    /// recovery so the rebuilt catalog continues the version clock the
    /// checkpoint manifest pinned instead of restarting from 0.
    pub fn restore_version(&mut self, id: RelId, version: u64) {
        self.relations[id.0].restore_version(version);
    }

    /// Applies a write batch to one relation (see
    /// [`VersionedRelation::apply`] for semantics).
    pub fn apply(&mut self, id: RelId, ops: &[WriteOp]) -> Result<WriteOutcome, StorageError> {
        self.relations[id.0].apply(ops)
    }

    /// Folds one relation's delta into its base; false when there was
    /// nothing to fold.
    pub fn compact(&mut self, id: RelId) -> bool {
        self.relations[id.0].compact()
    }

    /// Compacts every relation with a non-empty delta; returns how many were
    /// folded.
    pub fn compact_all(&mut self) -> usize {
        self.relations
            .iter_mut()
            .map(|r| r.compact() as usize)
            .sum()
    }

    /// Number of relations in the catalog.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of (logical) tuples across all relations — the paper's
    /// input size `N`.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Iterates `(id, snapshot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &TrieRelation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i), &**r.snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{binary, unary};

    #[test]
    fn catalog_roundtrip() {
        let mut db = Database::new();
        let r = db.add(unary("R", [1, 2, 3])).unwrap();
        let s = db.add(binary("S", [(1, 2)])).unwrap();
        assert_eq!(db.id_of("R").unwrap(), r);
        assert_eq!(db.id_of("S").unwrap(), s);
        assert_eq!(db.relation(r).len(), 3);
        assert_eq!(db.relation_by_name("S").unwrap().arity(), 2);
        assert_eq!(db.total_tuples(), 4);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = Database::new();
        db.add(unary("R", [1])).unwrap();
        let err = db.add(unary("R", [2])).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateRelation(_)));
    }

    #[test]
    fn unknown_relation_lookup_fails() {
        let db = Database::new();
        assert!(matches!(
            db.id_of("nope"),
            Err(StorageError::UnknownRelation(_))
        ));
    }

    #[test]
    fn writes_flow_through_the_catalog() {
        let mut db = Database::new();
        let r = db.add(unary("R", [1, 5])).unwrap();
        assert_eq!(db.version(r), 0);
        let out = db.apply(r, &[WriteOp::Insert(vec![3])]).unwrap();
        assert_eq!(out.inserted, 1);
        assert_eq!(db.version(r), 1);
        assert_eq!(db.relation(r).to_tuples(), vec![vec![1], vec![3], vec![5]]);
        assert_eq!(db.versions(), vec![(r, 1)]);
        assert!(db.compact(r));
        assert_eq!(db.version(r), 1, "compaction is content-neutral");
        assert!(db.versioned(r).delta_is_empty());
        assert_eq!(db.compact_all(), 0);
    }

    #[test]
    fn probe_target_tracks_delta_and_policy() {
        use crate::backend::TrieStorage;
        let mut db = Database::with_leaf_policy(LeafPolicy::Dense);
        assert_eq!(db.leaf_policy(), LeafPolicy::Dense);
        let r = db.add(unary("R", 0..16)).unwrap();
        assert!(matches!(db.probe_target(r), StorageRef::Hybrid(_)));
        // A pending write hides the hybrid (it covers the base only).
        db.apply(r, &[WriteOp::Insert(vec![100])]).unwrap();
        assert!(matches!(db.probe_target(r), StorageRef::Sorted(_)));
        assert_eq!(db.probe_target(r).len(), 17);
        // Compaction folds the delta and re-selects.
        assert!(db.compact(r));
        assert!(matches!(db.probe_target(r), StorageRef::Hybrid(_)));
        assert_eq!(db.probe_target(r).len(), 17);
        // Forcing sorted drops every hybrid.
        db.set_leaf_policy(LeafPolicy::Sorted);
        assert!(matches!(db.probe_target(r), StorageRef::Sorted(_)));
        db.set_leaf_policy(LeafPolicy::Dense);
        assert!(matches!(db.probe_target(r), StorageRef::Hybrid(_)));
    }

    #[test]
    fn clone_preserves_old_snapshots() {
        let mut db = Database::new();
        let r = db.add(unary("R", [1])).unwrap();
        let reader = db.clone();
        db.apply(r, &[WriteOp::Insert(vec![2])]).unwrap();
        assert_eq!(reader.relation(r).to_tuples(), vec![vec![1]]);
        assert_eq!(db.relation(r).to_tuples(), vec![vec![1], vec![2]]);
    }
}
