//! Database catalog: a set of named, indexed relations.

use std::collections::BTreeMap;

use crate::error::StorageError;
use crate::trie::TrieRelation;

/// Opaque handle to a relation inside a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub usize);

/// A catalog of relations. Query atoms refer to relations by [`RelId`], so
/// the same physical index can back several atoms (e.g. the three `S` atoms
/// of the paper's star query all share one index).
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: Vec<TrieRelation>,
    by_name: BTreeMap<String, RelId>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation; its name must be unique within the catalog.
    pub fn add(&mut self, rel: TrieRelation) -> Result<RelId, StorageError> {
        if self.by_name.contains_key(rel.name()) {
            return Err(StorageError::DuplicateRelation(rel.name().to_string()));
        }
        let id = RelId(self.relations.len());
        self.by_name.insert(rel.name().to_string(), id);
        self.relations.push(rel);
        Ok(id)
    }

    /// Looks a relation up by name.
    pub fn id_of(&self, name: &str) -> Result<RelId, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Fetches a relation by handle.
    pub fn relation(&self, id: RelId) -> &TrieRelation {
        &self.relations[id.0]
    }

    /// Fetches a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Result<&TrieRelation, StorageError> {
        Ok(self.relation(self.id_of(name)?))
    }

    /// Number of relations in the catalog.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations — the paper's input size
    /// `N`.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Iterates `(id, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &TrieRelation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{binary, unary};

    #[test]
    fn catalog_roundtrip() {
        let mut db = Database::new();
        let r = db.add(unary("R", [1, 2, 3])).unwrap();
        let s = db.add(binary("S", [(1, 2)])).unwrap();
        assert_eq!(db.id_of("R").unwrap(), r);
        assert_eq!(db.id_of("S").unwrap(), s);
        assert_eq!(db.relation(r).len(), 3);
        assert_eq!(db.relation_by_name("S").unwrap().arity(), 2);
        assert_eq!(db.total_tuples(), 4);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut db = Database::new();
        db.add(unary("R", [1])).unwrap();
        let err = db.add(unary("R", [2])).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateRelation(_)));
    }

    #[test]
    fn unknown_relation_lookup_fails() {
        let db = Database::new();
        assert!(matches!(
            db.id_of("nope"),
            Err(StorageError::UnknownRelation(_))
        ));
    }
}
