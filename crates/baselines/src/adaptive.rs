//! Adaptive set intersection in the style of Demaine–López-Ortiz–Munro
//! (SODA 2000) — the "leapfrogging" strategy the paper traces back to
//! Hwang–Lin (Section 6.2, Appendix K).
//!
//! Round-robin galloping: maintain a candidate value (the eliminator);
//! cycle through the sets seeking the candidate with exponential search.
//! A set that lacks the candidate yields a larger value, which becomes the
//! new candidate; `m` consecutive hits emit an output. Runs in
//! `O(Σ log(gaps))` — proportional to a DLM proof / Barbay–Kenyon
//! partition certificate of the instance.

use minesweeper_core::JoinResult;
use minesweeper_storage::{sorted, ExecStats, TrieRelation, Val};

/// Intersects `m ≥ 1` unary relations by round-robin galloping.
pub fn adaptive_intersection(sets: &[&TrieRelation]) -> JoinResult {
    assert!(!sets.is_empty(), "need at least one set");
    assert!(
        sets.iter().all(|s| s.arity() == 1),
        "adaptive intersection expects unary relations"
    );
    let mut stats = ExecStats::new();
    let mut tuples = Vec::new();
    let arrays: Vec<&[Val]> = sets.iter().map(|s| s.first_column()).collect();
    let m = arrays.len();
    if arrays.iter().any(|a| a.is_empty()) {
        return JoinResult { tuples, stats };
    }
    let mut pos = vec![0usize; m];
    let mut candidate = arrays[0][0];
    let mut agree = 1usize; // arrays known to contain the candidate
    let mut turn = 1usize % m;
    loop {
        if agree == m {
            tuples.push(vec![candidate]);
            stats.outputs += 1;
            // Advance past the emitted value in the current array.
            let a = arrays[turn];
            let p = sorted::gallop_gt(a, pos[turn], candidate);
            stats.seeks += 1;
            pos[turn] = p;
            if p == a.len() {
                break;
            }
            candidate = a[p];
            agree = 1;
            turn = (turn + 1) % m;
            continue;
        }
        let a = arrays[turn];
        let p = sorted::gallop_ge(a, pos[turn], candidate);
        stats.seeks += 1;
        stats.comparisons += 1;
        pos[turn] = p;
        if p == a.len() {
            break; // some set is exhausted: no further output possible
        }
        if a[p] == candidate {
            agree += 1;
        } else {
            candidate = a[p];
            agree = 1;
        }
        turn = (turn + 1) % m;
    }
    JoinResult { tuples, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::set_intersection;
    use minesweeper_storage::builder::unary;

    fn vals(r: &JoinResult) -> Vec<Val> {
        r.tuples.iter().map(|t| t[0]).collect()
    }

    #[test]
    fn three_way_intersection() {
        let a = unary("A", [1, 3, 5, 7, 9]);
        let b = unary("B", [3, 4, 7, 10]);
        let c = unary("C", [0, 3, 7, 11]);
        let res = adaptive_intersection(&[&a, &b, &c]);
        assert_eq!(vals(&res), vec![3, 7]);
    }

    #[test]
    fn agrees_with_minesweeper_on_random_sets() {
        let mut seed = 0x600dcafe1111u64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..25 {
            let k = 2 + rng(3) as usize;
            let sets: Vec<_> = (0..k)
                .map(|i| unary(format!("S{i}"), (0..rng(30)).map(|_| rng(40) as Val)))
                .collect();
            let refs: Vec<&TrieRelation> = sets.iter().collect();
            let fast = adaptive_intersection(&refs);
            let ms = set_intersection(&refs);
            assert_eq!(vals(&fast), vals(&ms));
        }
    }

    #[test]
    fn disjoint_ranges_finish_in_logarithmic_seeks() {
        let n: Val = 4096;
        let a = unary("A", 0..n);
        let b = unary("B", n..2 * n);
        let res = adaptive_intersection(&[&a, &b]);
        assert!(res.tuples.is_empty());
        assert!(res.stats.seeks <= 6, "seeks = {}", res.stats.seeks);
    }

    #[test]
    fn single_set_copies() {
        let a = unary("A", [4, 8]);
        let res = adaptive_intersection(&[&a]);
        assert_eq!(vals(&res), vec![4, 8]);
    }

    #[test]
    fn empty_set_short_circuits() {
        let a = unary("A", []);
        let b = unary("B", 0..10);
        let res = adaptive_intersection(&[&a, &b]);
        assert!(res.tuples.is_empty());
        assert_eq!(res.stats.seeks, 0);
    }
}
