//! Materialized intermediate relations for the tuple-at-a-time baselines
//! (Yannakakis and the binary plans).

use std::collections::HashMap;

use minesweeper_storage::{ExecStats, Tuple, Val};

/// A materialized relation over an arbitrary attribute set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intermediate {
    /// GAO positions of the columns, in column order (not necessarily
    /// sorted — intermediates are not indexed).
    pub attrs: Vec<usize>,
    /// The tuples.
    pub tuples: Vec<Tuple>,
}

impl Intermediate {
    /// Builds from attribute positions and tuples.
    pub fn new(attrs: Vec<usize>, tuples: Vec<Tuple>) -> Self {
        debug_assert!(tuples.iter().all(|t| t.len() == attrs.len()));
        Intermediate { attrs, tuples }
    }

    /// The shared attributes with another intermediate, as
    /// `(self column, other column)` pairs.
    pub fn shared_columns(&self, other: &Intermediate) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, a) in self.attrs.iter().enumerate() {
            if let Some(j) = other.attrs.iter().position(|b| b == a) {
                out.push((i, j));
            }
        }
        out
    }

    /// Key of a tuple on the given columns.
    fn key(t: &[Val], cols: &[usize]) -> Vec<Val> {
        cols.iter().map(|&c| t[c]).collect()
    }

    /// Semijoin reduce: keep tuples whose shared-attribute key appears in
    /// `other` (`self ⋉ other`). Counts probed tuples as comparisons.
    pub fn semijoin(&mut self, other: &Intermediate, stats: &mut ExecStats) {
        let shared = self.shared_columns(other);
        if shared.is_empty() {
            if other.tuples.is_empty() {
                self.tuples.clear();
            }
            return;
        }
        let (mine, theirs): (Vec<usize>, Vec<usize>) = shared.into_iter().unzip();
        let mut keys: HashMap<Vec<Val>, ()> = HashMap::with_capacity(other.tuples.len());
        for t in &other.tuples {
            keys.insert(Self::key(t, &theirs), ());
        }
        stats.comparisons += self.tuples.len() as u64 + other.tuples.len() as u64;
        self.tuples
            .retain(|t| keys.contains_key(&Self::key(t, &mine)));
    }

    /// Hash join on the shared attributes; output columns are `self`'s
    /// followed by `other`'s non-shared columns. Counts built and emitted
    /// tuples.
    pub fn hash_join(&self, other: &Intermediate, stats: &mut ExecStats) -> Intermediate {
        let shared = self.shared_columns(other);
        let (mine, theirs): (Vec<usize>, Vec<usize>) = shared.iter().copied().unzip();
        let other_extra: Vec<usize> = (0..other.attrs.len())
            .filter(|j| !theirs.contains(j))
            .collect();
        let mut table: HashMap<Vec<Val>, Vec<&Tuple>> = HashMap::with_capacity(other.tuples.len());
        for t in &other.tuples {
            table.entry(Self::key(t, &theirs)).or_default().push(t);
        }
        stats.comparisons += self.tuples.len() as u64 + other.tuples.len() as u64;
        let mut attrs = self.attrs.clone();
        attrs.extend(other_extra.iter().map(|&j| other.attrs[j]));
        let mut tuples = Vec::new();
        for t in &self.tuples {
            if let Some(matches) = table.get(&Self::key(t, &mine)) {
                for m in matches {
                    let mut out = t.clone();
                    out.extend(other_extra.iter().map(|&j| m[j]));
                    tuples.push(out);
                }
            }
        }
        stats.intermediate_tuples += tuples.len() as u64;
        Intermediate::new(attrs, tuples)
    }

    /// Sort-merge join on the shared attributes (same output schema as
    /// [`hash_join`]). Counts merge comparisons.
    ///
    /// [`hash_join`]: Intermediate::hash_join
    pub fn sort_merge_join(&self, other: &Intermediate, stats: &mut ExecStats) -> Intermediate {
        let shared = self.shared_columns(other);
        let (mine, theirs): (Vec<usize>, Vec<usize>) = shared.iter().copied().unzip();
        let other_extra: Vec<usize> = (0..other.attrs.len())
            .filter(|j| !theirs.contains(j))
            .collect();
        let mut left: Vec<(Vec<Val>, &Tuple)> = self
            .tuples
            .iter()
            .map(|t| (Self::key(t, &mine), t))
            .collect();
        let mut right: Vec<(Vec<Val>, &Tuple)> = other
            .tuples
            .iter()
            .map(|t| (Self::key(t, &theirs), t))
            .collect();
        left.sort();
        right.sort();
        stats.comparisons += (left.len() as u64).saturating_add(right.len() as u64);
        let mut attrs = self.attrs.clone();
        attrs.extend(other_extra.iter().map(|&j| other.attrs[j]));
        let mut tuples = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            match left[i].0.cmp(&right[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Emit the cross product of the two equal-key runs.
                    let key = left[i].0.clone();
                    let i_end = left[i..].iter().take_while(|(k, _)| *k == key).count() + i;
                    let j_end = right[j..].iter().take_while(|(k, _)| *k == key).count() + j;
                    for (_, lt) in &left[i..i_end] {
                        for (_, rt) in &right[j..j_end] {
                            let mut out = (*lt).clone();
                            out.extend(other_extra.iter().map(|&c| rt[c]));
                            tuples.push(out);
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        stats.intermediate_tuples += tuples.len() as u64;
        Intermediate::new(attrs, tuples)
    }

    /// Projects onto the full GAO tuple layout `(0, …, n−1)`; panics if a
    /// position is missing.
    pub fn into_gao_tuples(self, n_attrs: usize) -> Vec<Tuple> {
        let mut col_of = vec![usize::MAX; n_attrs];
        for (c, &a) in self.attrs.iter().enumerate() {
            col_of[a] = c;
        }
        assert!(
            col_of.iter().all(|&c| c != usize::MAX),
            "intermediate does not cover all attributes"
        );
        let mut out: Vec<Tuple> = self
            .tuples
            .into_iter()
            .map(|t| col_of.iter().map(|&c| t[c]).collect())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inter(attrs: &[usize], tuples: &[&[Val]]) -> Intermediate {
        Intermediate::new(attrs.to_vec(), tuples.iter().map(|t| t.to_vec()).collect())
    }

    #[test]
    fn shared_columns_found() {
        let a = inter(&[0, 1], &[]);
        let b = inter(&[1, 2], &[]);
        assert_eq!(a.shared_columns(&b), vec![(1, 0)]);
        let c = inter(&[3], &[]);
        assert!(a.shared_columns(&c).is_empty());
    }

    #[test]
    fn semijoin_filters() {
        let mut st = ExecStats::new();
        let mut a = inter(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
        let b = inter(&[1, 2], &[&[2, 9], &[6, 9]]);
        a.semijoin(&b, &mut st);
        assert_eq!(a.tuples, vec![vec![1, 2], vec![5, 6]]);
    }

    #[test]
    fn semijoin_disjoint_attrs_is_emptiness_test() {
        let mut st = ExecStats::new();
        let mut a = inter(&[0], &[&[1]]);
        let b = inter(&[1], &[]);
        a.semijoin(&b, &mut st);
        assert!(a.tuples.is_empty());
        let mut a = inter(&[0], &[&[1]]);
        let b = inter(&[1], &[&[7]]);
        a.semijoin(&b, &mut st);
        assert_eq!(a.tuples.len(), 1);
    }

    #[test]
    fn hash_and_sort_merge_agree() {
        let mut st = ExecStats::new();
        let a = inter(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2], &[4, 9]]);
        let b = inter(&[1, 2], &[&[2, 7], &[2, 8], &[3, 5]]);
        let mut h = a.hash_join(&b, &mut st).tuples;
        let mut s = a.sort_merge_join(&b, &mut st).tuples;
        h.sort();
        s.sort();
        assert_eq!(h, s);
        assert_eq!(h.len(), 2 + 2 + 1); // (1,2)→2, (2,2)→2, (1,3)→1
    }

    #[test]
    fn cross_product_when_no_shared_attrs() {
        let mut st = ExecStats::new();
        let a = inter(&[0], &[&[1], &[2]]);
        let b = inter(&[1], &[&[8], &[9]]);
        let j = a.hash_join(&b, &mut st);
        assert_eq!(j.attrs, vec![0, 1]);
        assert_eq!(j.tuples.len(), 4);
        let j2 = a.sort_merge_join(&b, &mut st);
        assert_eq!(j2.tuples.len(), 4);
    }

    #[test]
    fn gao_projection_reorders() {
        let i = inter(&[2, 0, 1], &[&[30, 10, 20]]);
        assert_eq!(i.into_gao_tuples(3), vec![vec![10, 20, 30]]);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn gao_projection_requires_coverage() {
        inter(&[0], &[&[1]]).into_gao_tuples(2);
    }
}
