//! The m-way merge intersection — the *non*-adaptive comparison point of
//! Appendix H.2: "the algorithm becomes the minimum-comparison method in
//! \[20\] and it is the same as a typical m-way merge join algorithm".
//! Always Θ(N) comparisons, regardless of how easy the instance is.

use minesweeper_core::JoinResult;
use minesweeper_storage::{ExecStats, TrieRelation, Val};

/// Intersects `m ≥ 1` unary relations by a plain synchronized scan.
pub fn merge_intersection(sets: &[&TrieRelation]) -> JoinResult {
    assert!(!sets.is_empty(), "need at least one set");
    assert!(
        sets.iter().all(|s| s.arity() == 1),
        "merge intersection expects unary relations"
    );
    let mut stats = ExecStats::new();
    let arrays: Vec<&[Val]> = sets.iter().map(|s| s.first_column()).collect();
    let mut pos = vec![0usize; arrays.len()];
    let mut tuples = Vec::new();
    'outer: loop {
        // Current maximum among the heads.
        let mut max = Val::MIN;
        for (a, &p) in arrays.iter().zip(&pos) {
            if p >= a.len() {
                break 'outer;
            }
            stats.comparisons += 1;
            max = max.max(a[p]);
        }
        // Advance every list to ≥ max, one element at a time (the
        // non-galloping merge).
        let mut all_equal = true;
        for (i, a) in arrays.iter().enumerate() {
            while pos[i] < a.len() && a[pos[i]] < max {
                pos[i] += 1;
                stats.comparisons += 1;
            }
            if pos[i] >= a.len() {
                break 'outer;
            }
            if a[pos[i]] != max {
                all_equal = false;
            }
        }
        if all_equal {
            tuples.push(vec![max]);
            stats.outputs += 1;
            for p in &mut pos {
                *p += 1;
            }
        }
    }
    JoinResult { tuples, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::adaptive_intersection;
    use minesweeper_storage::builder::unary;

    fn vals(r: &JoinResult) -> Vec<Val> {
        r.tuples.iter().map(|t| t[0]).collect()
    }

    #[test]
    fn agrees_with_adaptive() {
        let mut seed = 0x33aa55u64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..20 {
            let a = unary("A", (0..rng(40)).map(|_| rng(60) as Val));
            let b = unary("B", (0..rng(40)).map(|_| rng(60) as Val));
            let c = unary("C", (0..rng(40)).map(|_| rng(60) as Val));
            let refs = vec![&a, &b, &c];
            assert_eq!(
                vals(&merge_intersection(&refs)),
                vals(&adaptive_intersection(&refs))
            );
        }
    }

    #[test]
    fn merge_pays_linear_even_on_easy_instances() {
        // Disjoint ranges: adaptive finishes in O(1) seeks; the merge must
        // scan one entire list — the non-adaptivity Appendix H contrasts.
        let n: Val = 5_000;
        let a = unary("A", 0..n);
        let b = unary("B", n..2 * n);
        let refs = vec![&a, &b];
        let merge = merge_intersection(&refs);
        let adaptive = adaptive_intersection(&refs);
        assert!(merge.tuples.is_empty() && adaptive.tuples.is_empty());
        assert!(merge.stats.comparisons as i64 >= n);
        assert!(adaptive.stats.seeks <= 6);
    }

    #[test]
    fn outputs_every_common_value() {
        let a = unary("A", [1, 2, 3, 4, 5]);
        let b = unary("B", [2, 4, 6]);
        assert_eq!(vals(&merge_intersection(&[&a, &b])), vec![2, 4]);
    }

    #[test]
    fn empty_set_terminates_immediately() {
        let a = unary("A", []);
        let b = unary("B", 0..10);
        let res = merge_intersection(&[&a, &b]);
        assert!(res.tuples.is_empty());
        assert!(res.stats.comparisons <= 2);
    }
}
