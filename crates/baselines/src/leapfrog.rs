//! Leapfrog Triejoin (Veldhuizen 2014; reference \[53\]).
//!
//! Attribute-at-a-time worst-case optimal join: at each GAO attribute, the
//! cursors of all atoms containing the attribute perform a leapfrog
//! intersection — repeatedly galloping the lowest cursor up to the current
//! maximum key until all cursors agree — and the join recurses on each
//! agreed value. The paper shows (Appendix J) that LFTJ is worst-case
//! optimal but not certificate-optimal: on the hidden-certificate path
//! instances it explores `Ω(mM²)` prefixes while `|C| = O(mM)`.

use minesweeper_core::{JoinResult, Query, QueryError};
use minesweeper_storage::{Database, ExecStats, StorageRef, TrieCursor, Tuple};

/// Runs Leapfrog Triejoin over the query's GAO. Each atom walks the
/// relation's probe target — the hybrid bitset index when one covers the
/// current content, the sorted snapshot otherwise.
pub fn leapfrog_triejoin(db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
    query.validate(db)?;
    let mut stats = ExecStats::new();
    let targets: Vec<StorageRef<'_>> = query.atoms.iter().map(|a| db.probe_target(a.rel)).collect();
    stats.dense_leaves = targets.iter().map(|t| t.dense_runs()).sum();
    let mut cursors: Vec<TrieCursor<StorageRef<'_>>> =
        targets.iter().map(TrieCursor::new).collect();
    // participants[i] = atoms whose attribute list contains GAO attr i.
    let participants: Vec<Vec<usize>> = (0..query.n_attrs)
        .map(|i| {
            (0..query.atoms.len())
                .filter(|&a| query.atoms[a].attrs.contains(&i))
                .collect()
        })
        .collect();
    let mut tuples = Vec::new();
    let mut binding: Tuple = Vec::with_capacity(query.n_attrs);
    lftj_rec(
        query,
        &participants,
        &mut cursors,
        &mut binding,
        &mut tuples,
        &mut stats,
    );
    stats.outputs = tuples.len() as u64;
    Ok(JoinResult { tuples, stats })
}

fn lftj_rec(
    query: &Query,
    participants: &[Vec<usize>],
    cursors: &mut [TrieCursor<StorageRef<'_>>],
    binding: &mut Tuple,
    out: &mut Vec<Tuple>,
    stats: &mut ExecStats,
) {
    let depth = binding.len();
    if depth == query.n_attrs {
        out.push(binding.clone());
        return;
    }
    let parts = &participants[depth];
    debug_assert!(!parts.is_empty(), "validated queries cover all attributes");
    // Open this level on every participating cursor.
    for &a in parts {
        if !cursors[a].open() {
            // Empty relation: nothing joins anywhere below.
            for &b in parts {
                if b == a {
                    break;
                }
                cursors[b].up();
            }
            return;
        }
    }
    // Leapfrog intersection.
    'search: loop {
        // Find max key among participants.
        let mut max_key = i64::MIN;
        for &a in parts {
            if cursors[a].at_end() {
                break 'search;
            }
            stats.comparisons += 1;
            max_key = max_key.max(cursors[a].key());
        }
        // Seek all to max; if all land exactly, we have a match.
        let mut all_equal = true;
        for &a in parts {
            if cursors[a].key() < max_key {
                cursors[a].seek(max_key, stats);
                if cursors[a].at_end() {
                    break 'search;
                }
                stats.comparisons += 1;
                if cursors[a].key() != max_key {
                    all_equal = false;
                }
            }
        }
        if !all_equal {
            continue;
        }
        binding.push(max_key);
        lftj_rec(query, participants, cursors, binding, out, stats);
        binding.pop();
        // Advance the first participant past the match.
        let lead = parts[0];
        if cursors[lead].at_end() {
            break;
        }
        cursors[lead].next(stats);
        if cursors[lead].at_end() {
            break;
        }
    }
    for &a in parts {
        cursors[a].up();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::naive_join;
    use minesweeper_storage::{builder, Database, Val};

    fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
        v.sort();
        v
    }

    #[test]
    fn unary_intersection() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 3, 5, 9])).unwrap();
        let s = db.add(builder::unary("S", [2, 3, 9])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let res = leapfrog_triejoin(&db, &q).unwrap();
        assert_eq!(sorted(res.tuples), vec![vec![3], vec![9]]);
    }

    #[test]
    fn triangle_query() {
        let mut db = Database::new();
        let edges = [(1, 2), (2, 3), (1, 3), (3, 4), (2, 4), (1, 4)];
        let e = db.add(builder::binary("E", edges)).unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let res = leapfrog_triejoin(&db, &q).unwrap();
        let got = sorted(res.tuples);
        assert_eq!(got, naive_join(&db, &q).unwrap());
        assert_eq!(got.len(), 4); // (1,2,3),(1,2,4),(1,3,4),(2,3,4)
    }

    #[test]
    fn path_query_with_unaries() {
        let mut db = Database::new();
        let s = db
            .add(builder::binary("S", [(1, 2), (2, 3), (3, 4), (4, 5)]))
            .unwrap();
        let ra = db.add(builder::unary("RA", [1, 2, 3])).unwrap();
        let rb = db.add(builder::unary("RB", [2, 3, 4])).unwrap();
        let q = Query::new(2).atom(s, &[0, 1]).atom(ra, &[0]).atom(rb, &[1]);
        let res = leapfrog_triejoin(&db, &q).unwrap();
        assert_eq!(sorted(res.tuples), naive_join(&db, &q).unwrap());
    }

    #[test]
    fn empty_participant_short_circuits() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [])).unwrap();
        let s = db.add(builder::unary("S", 0..100)).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let res = leapfrog_triejoin(&db, &q).unwrap();
        assert!(res.tuples.is_empty());
    }

    #[test]
    fn random_cross_check_with_naive() {
        let mut seed = 0xabcdef9876u64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..10 {
            let mut db = Database::new();
            let e1 = db
                .add(builder::binary(
                    "E1",
                    (0..20).map(|_| (rng(8) as Val, rng(8) as Val)),
                ))
                .unwrap();
            let e2 = db
                .add(builder::binary(
                    "E2",
                    (0..20).map(|_| (rng(8) as Val, rng(8) as Val)),
                ))
                .unwrap();
            let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
            let res = leapfrog_triejoin(&db, &q).unwrap();
            assert_eq!(sorted(res.tuples), naive_join(&db, &q).unwrap());
        }
    }
}
