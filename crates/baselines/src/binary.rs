//! Classical left-deep binary join plans (hash join and sort-merge join) —
//! the traditional RDBMS execution strategies that both the worst-case
//! optimal algorithms and Minesweeper improve upon. Atoms are joined in
//! the order given by the query; every intermediate is fully materialized.

use minesweeper_core::{JoinResult, Query, QueryError};
use minesweeper_storage::{Database, ExecStats};

use crate::intermediate::Intermediate;

/// Which pairwise operator the plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairwiseOp {
    Hash,
    SortMerge,
}

fn run_plan(db: &Database, query: &Query, op: PairwiseOp) -> Result<JoinResult, QueryError> {
    query.validate(db)?;
    let mut stats = ExecStats::new();
    let mut acc: Option<Intermediate> = None;
    for atom in &query.atoms {
        let rel = db.relation(atom.rel);
        stats.intermediate_tuples += rel.len() as u64;
        let right = Intermediate::new(atom.attrs.clone(), rel.to_tuples());
        acc = Some(match acc {
            None => right,
            Some(left) => match op {
                PairwiseOp::Hash => left.hash_join(&right, &mut stats),
                PairwiseOp::SortMerge => left.sort_merge_join(&right, &mut stats),
            },
        });
    }
    let tuples = acc
        .expect("validated query has atoms")
        .into_gao_tuples(query.n_attrs);
    stats.outputs = tuples.len() as u64;
    Ok(JoinResult { tuples, stats })
}

/// Left-deep hash join plan in atom order.
pub fn hash_join_plan(db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
    run_plan(db, query, PairwiseOp::Hash)
}

/// Left-deep sort-merge join plan in atom order.
pub fn sort_merge_plan(db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
    run_plan(db, query, PairwiseOp::SortMerge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::naive_join;
    use minesweeper_storage::{builder, Database};

    #[test]
    fn both_plans_match_naive_on_path() {
        let mut db = Database::new();
        let e1 = db
            .add(builder::binary("E1", [(1, 2), (2, 3), (9, 9)]))
            .unwrap();
        let e2 = db.add(builder::binary("E2", [(2, 5), (3, 6)])).unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        let expect = naive_join(&db, &q).unwrap();
        assert_eq!(hash_join_plan(&db, &q).unwrap().tuples, expect);
        assert_eq!(sort_merge_plan(&db, &q).unwrap().tuples, expect);
    }

    #[test]
    fn triangle_via_binary_plans() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary("E", [(1, 2), (2, 3), (1, 3), (2, 4)]))
            .unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let expect = naive_join(&db, &q).unwrap();
        assert_eq!(hash_join_plan(&db, &q).unwrap().tuples, expect);
        assert_eq!(sort_merge_plan(&db, &q).unwrap().tuples, expect);
        assert_eq!(expect, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn intermediate_blowup_is_visible_in_stats() {
        // Two relations sharing no attributes until the third atom closes
        // the join: the binary plan materializes the cross product, which
        // the stats must reveal.
        let mut db = Database::new();
        let a = db.add(builder::unary("A", 0..30)).unwrap();
        let b = db.add(builder::unary("B", 0..30)).unwrap();
        let c = db.add(builder::binary("C", [(0, 0)])).unwrap();
        let q = Query::new(2).atom(a, &[0]).atom(b, &[1]).atom(c, &[0, 1]);
        let res = hash_join_plan(&db, &q).unwrap();
        assert_eq!(res.tuples, vec![vec![0, 0]]);
        assert!(
            res.stats.intermediate_tuples >= 900,
            "cross product must be counted: {}",
            res.stats.intermediate_tuples
        );
    }

    #[test]
    fn bowtie_plans() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2])).unwrap();
        let s = db
            .add(builder::binary("S", [(1, 5), (2, 6), (3, 5)]))
            .unwrap();
        let t = db.add(builder::unary("T", [5])).unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
        let expect = naive_join(&db, &q).unwrap();
        assert_eq!(hash_join_plan(&db, &q).unwrap().tuples, expect);
        assert_eq!(sort_merge_plan(&db, &q).unwrap().tuples, expect);
    }
}
