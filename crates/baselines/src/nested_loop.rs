//! Index nested-loop join — the classical B-tree-backed strategy from the
//! paper's introduction ("index-nested-loop join, sort-merge join, hash
//! join, grace join, block-nested loop join" are the comparison-based
//! algorithms certificates lower-bound).
//!
//! Atoms are processed left to right; every partial binding probes the
//! next atom's trie, descending on bound columns and scanning unbound
//! ones. Each index descent is counted as a seek.

use minesweeper_core::{JoinResult, Query, QueryError};
use minesweeper_storage::{Database, ExecStats, NodeId, TrieRelation, Tuple, Val};

/// Runs the index nested-loop join in atom order.
pub fn index_nested_loop(db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
    query.validate(db)?;
    let mut stats = ExecStats::new();
    // Bindings over the attribute space; usize::MAX-sentinel via Option.
    let mut bindings: Vec<Vec<Option<Val>>> = vec![vec![None; query.n_attrs]];
    for atom in &query.atoms {
        let rel = db.relation(atom.rel);
        let mut next: Vec<Vec<Option<Val>>> = Vec::new();
        for binding in &bindings {
            stats.seeks += 1;
            let mut row = Vec::new();
            probe(
                rel,
                rel.root(),
                &atom.attrs,
                binding,
                &mut row,
                &mut next,
                &mut stats,
            );
        }
        stats.intermediate_tuples += next.len() as u64;
        bindings = next;
        if bindings.is_empty() {
            break;
        }
    }
    let mut tuples: Vec<Tuple> = bindings
        .into_iter()
        .map(|b| {
            b.into_iter()
                .map(|v| v.expect("covered attribute"))
                .collect()
        })
        .collect();
    tuples.sort();
    tuples.dedup();
    stats.outputs = tuples.len() as u64;
    Ok(JoinResult { tuples, stats })
}

/// Walks the atom's trie; bound columns are looked up, unbound columns are
/// enumerated. Extends `out` with every consistent completed binding.
fn probe(
    rel: &TrieRelation,
    node: NodeId,
    attrs: &[usize],
    binding: &[Option<Val>],
    row: &mut Vec<Val>,
    out: &mut Vec<Vec<Option<Val>>>,
    stats: &mut ExecStats,
) {
    let depth = row.len();
    if depth == attrs.len() {
        let mut b = binding.to_vec();
        for (i, &a) in attrs.iter().enumerate() {
            b[a] = Some(row[i]);
        }
        out.push(b);
        return;
    }
    match binding[attrs[depth]] {
        Some(v) => {
            stats.comparisons += 1;
            let (child, matched) = descend_one(rel, node, v);
            if matched {
                row.push(v);
                probe(rel, child, attrs, binding, row, out, stats);
                row.pop();
            }
        }
        None => {
            let count = rel.child_count(node);
            for c in 1..=count {
                let child = rel.child(node, c);
                row.push(rel.value(child));
                probe(rel, child, attrs, binding, row, out, stats);
                row.pop();
            }
        }
    }
}

fn descend_one(rel: &TrieRelation, node: NodeId, v: Val) -> (NodeId, bool) {
    let vals = rel.child_values(node);
    let cnt = minesweeper_storage::sorted::count_le(vals, v);
    if cnt >= 1 && vals[cnt - 1] == v {
        (rel.child(node, cnt), true)
    } else {
        (node, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::naive_join;
    use minesweeper_storage::builder;

    #[test]
    fn matches_naive_on_path() {
        let mut db = Database::new();
        let e1 = db
            .add(builder::binary("E1", [(1, 2), (2, 3), (9, 9)]))
            .unwrap();
        let e2 = db
            .add(builder::binary("E2", [(2, 5), (3, 6), (9, 1)]))
            .unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        let res = index_nested_loop(&db, &q).unwrap();
        assert_eq!(res.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn matches_naive_on_triangle() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary(
                "E",
                [(1, 2), (2, 3), (1, 3), (2, 4), (3, 4)],
            ))
            .unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let res = index_nested_loop(&db, &q).unwrap();
        assert_eq!(res.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn unbound_then_bound_columns() {
        // Second atom binds its SECOND column first (attr 0 unbound at
        // probe time is impossible here, so craft one where a later atom
        // has a leading unbound column): R(B), S(A, B).
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [5, 7])).unwrap();
        let s = db
            .add(builder::binary("S", [(1, 5), (2, 6), (3, 7)]))
            .unwrap();
        let q = Query::new(2).atom(r, &[1]).atom(s, &[0, 1]);
        let res = index_nested_loop(&db, &q).unwrap();
        assert_eq!(res.tuples, vec![vec![1, 5], vec![3, 7]]);
    }

    #[test]
    fn random_cross_check() {
        let mut seed = 0x1d1eu64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..10 {
            let mut db = Database::new();
            let e1 = db
                .add(builder::binary(
                    "E1",
                    (0..20).map(|_| (rng(8) as Val, rng(8) as Val)),
                ))
                .unwrap();
            let e2 = db
                .add(builder::binary(
                    "E2",
                    (0..20).map(|_| (rng(8) as Val, rng(8) as Val)),
                ))
                .unwrap();
            let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
            let res = index_nested_loop(&db, &q).unwrap();
            assert_eq!(res.tuples, naive_join(&db, &q).unwrap());
        }
    }
}
