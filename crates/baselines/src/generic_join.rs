//! The NPRR-style generic worst-case optimal join (reference \[40\]).
//!
//! Attribute-at-a-time expansion: for GAO attribute `i`, every atom
//! containing `i` offers a sorted candidate list (the child values of the
//! trie node reached by the current binding); the algorithm materializes
//! the intersection by galloping the *smallest* list against the others —
//! the `min`-based intersection at the heart of the AGM-bound-matching
//! analysis — and recurses per value. Worst-case optimal, but Appendix J
//! shows it explores `ω(|C|)` prefixes on the hidden-certificate family.

use minesweeper_core::{JoinResult, Query, QueryError};
use minesweeper_storage::{sorted, Database, ExecStats, NodeId, Tuple, Val};

/// Runs the generic join over the query's GAO.
pub fn generic_join(db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
    query.validate(db)?;
    let mut stats = ExecStats::new();
    // Current trie position per atom: None once the binding left the
    // relation (no matching child), in which case the subtree is dead.
    let mut positions: Vec<NodeId> = query
        .atoms
        .iter()
        .map(|a| db.relation(a.rel).root())
        .collect();
    let mut tuples = Vec::new();
    let mut binding: Tuple = Vec::with_capacity(query.n_attrs);
    rec(
        db,
        query,
        &mut positions,
        &mut binding,
        &mut tuples,
        &mut stats,
    );
    stats.outputs = tuples.len() as u64;
    Ok(JoinResult { tuples, stats })
}

fn rec(
    db: &Database,
    query: &Query,
    positions: &mut Vec<NodeId>,
    binding: &mut Tuple,
    out: &mut Vec<Tuple>,
    stats: &mut ExecStats,
) {
    let depth = binding.len();
    if depth == query.n_attrs {
        out.push(binding.clone());
        return;
    }
    // Atoms whose next unbound attribute is `depth`.
    let parts: Vec<usize> = (0..query.atoms.len())
        .filter(|&a| {
            let atom = &query.atoms[a];
            let bound = atom.attrs.iter().filter(|&&x| x < depth).count();
            bound < atom.attrs.len() && atom.attrs[bound] == depth
        })
        .collect();
    debug_assert!(!parts.is_empty());
    // Candidate lists; pick the smallest as the driver (NPRR's min rule).
    let lists: Vec<&[Val]> = parts
        .iter()
        .map(|&a| db.relation(query.atoms[a].rel).child_values(positions[a]))
        .collect();
    let (driver_idx, _) = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .expect("non-empty participant list");
    // Intersect driver against the rest by galloping.
    let mut values: Vec<Val> = lists[driver_idx].to_vec();
    for (j, l) in lists.iter().enumerate() {
        if j == driver_idx {
            continue;
        }
        let mut from = 0usize;
        values.retain(|&v| {
            let pos = sorted::gallop_ge(l, from, v);
            stats.comparisons += 1;
            from = pos;
            pos < l.len() && l[pos] == v
        });
    }
    for v in values {
        // Advance every participating atom's position to the v-child.
        let saved: Vec<(usize, NodeId)> = parts.iter().map(|&a| (a, positions[a])).collect();
        for &a in &parts {
            let relx = db.relation(query.atoms[a].rel);
            let vals = relx.child_values(positions[a]);
            let c = sorted::count_le(vals, v);
            debug_assert!(c >= 1 && vals[c - 1] == v);
            positions[a] = relx.child(positions[a], c);
        }
        binding.push(v);
        rec(db, query, positions, binding, out, stats);
        binding.pop();
        for (a, n) in saved {
            positions[a] = n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::naive_join;
    use minesweeper_storage::{builder, Database};

    fn sorted_t(mut v: Vec<Tuple>) -> Vec<Tuple> {
        v.sort();
        v
    }

    #[test]
    fn triangle_query_matches_naive() {
        let mut db = Database::new();
        let edges = [(1, 2), (2, 3), (1, 3), (3, 4), (2, 4)];
        let e = db.add(builder::binary("E", edges)).unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let res = generic_join(&db, &q).unwrap();
        assert_eq!(sorted_t(res.tuples), naive_join(&db, &q).unwrap());
    }

    #[test]
    fn star_with_shared_relation() {
        let mut db = Database::new();
        let s = db
            .add(builder::binary("S", [(1, 2), (1, 3), (2, 9)]))
            .unwrap();
        let r = db.add(builder::unary("R", [1])).unwrap();
        // R(A) ⋈ S(A,B) ⋈ S(A,C).
        let q = Query::new(3)
            .atom(r, &[0])
            .atom(s, &[0, 1])
            .atom(s, &[0, 2]);
        let res = generic_join(&db, &q).unwrap();
        let got = sorted_t(res.tuples);
        assert_eq!(got, naive_join(&db, &q).unwrap());
        assert_eq!(got.len(), 4); // B,C ∈ {2,3}²
    }

    #[test]
    fn empty_candidate_list() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [])).unwrap();
        let s = db.add(builder::unary("S", [1, 2])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let res = generic_join(&db, &q).unwrap();
        assert!(res.tuples.is_empty());
    }

    #[test]
    fn random_cross_check() {
        let mut seed = 0x1337_4242u64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..10 {
            let mut db = Database::new();
            let e1 = db
                .add(builder::binary(
                    "E1",
                    (0..25).map(|_| (rng(7) as i64, rng(7) as i64)),
                ))
                .unwrap();
            let e2 = db
                .add(builder::binary(
                    "E2",
                    (0..25).map(|_| (rng(7) as i64, rng(7) as i64)),
                ))
                .unwrap();
            let e3 = db
                .add(builder::binary(
                    "E3",
                    (0..25).map(|_| (rng(7) as i64, rng(7) as i64)),
                ))
                .unwrap();
            let q = Query::new(3)
                .atom(e1, &[0, 1])
                .atom(e2, &[1, 2])
                .atom(e3, &[0, 2]);
            let res = generic_join(&db, &q).unwrap();
            assert_eq!(sorted_t(res.tuples), naive_join(&db, &q).unwrap());
        }
    }
}
