//! Yannakakis' algorithm for α-acyclic queries \[55\].
//!
//! 1. Build a join tree via GYO reduction (Appendix A / Definition A.3).
//! 2. Full reducer: an upward semijoin pass (children reduce parents,
//!    leaves first) followed by a downward pass (parents reduce children).
//!    After both passes every relation is globally consistent.
//! 3. Join bottom-up along the tree; with dangling tuples removed, every
//!    intermediate joins losslessly toward the output.
//!
//! Data-complexity optimal in the worst case — `Õ(N + Z)` — but Appendix J
//! shows it is **not** certificate-optimal: each semijoin pass reads entire
//! relations, so instances with `|C| = o(N)` still cost `Ω(N)`.

use minesweeper_core::{JoinResult, Query, QueryError};
use minesweeper_hypergraph::join_tree;
use minesweeper_storage::{Database, ExecStats};

use crate::intermediate::Intermediate;

/// Errors from Yannakakis' algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YannakakisError {
    /// The query hypergraph is α-cyclic: no join tree exists.
    NotAlphaAcyclic,
    /// The query failed validation.
    Query(QueryError),
}

impl std::fmt::Display for YannakakisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            YannakakisError::NotAlphaAcyclic => write!(f, "query is not α-acyclic"),
            YannakakisError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for YannakakisError {}

/// Runs Yannakakis' algorithm. Fails on α-cyclic queries.
pub fn yannakakis(db: &Database, query: &Query) -> Result<JoinResult, YannakakisError> {
    query.validate(db).map_err(YannakakisError::Query)?;
    let h = query.hypergraph();
    let tree = join_tree(&h).ok_or(YannakakisError::NotAlphaAcyclic)?;
    let mut stats = ExecStats::new();
    // Materialize the atoms.
    let mut rels: Vec<Intermediate> = query
        .atoms
        .iter()
        .map(|a| {
            let r = db.relation(a.rel);
            stats.intermediate_tuples += r.len() as u64;
            Intermediate::new(a.attrs.clone(), r.to_tuples())
        })
        .collect();
    // Upward pass: children reduce parents (leaves first).
    for &i in &tree.bottom_up {
        if let Some(p) = tree.parent[i] {
            let child = rels[i].clone();
            rels[p].semijoin(&child, &mut stats);
        }
    }
    // Downward pass: parents reduce children (roots first).
    for &i in &tree.top_down() {
        if let Some(p) = tree.parent[i] {
            let parent = rels[p].clone();
            rels[i].semijoin(&parent, &mut stats);
        }
    }
    // Bottom-up joins: fold each node into its parent; roots are joined
    // together at the end (cross product across disconnected components).
    let mut acc: Option<Intermediate> = None;
    let mut folded: Vec<Option<Intermediate>> = rels.into_iter().map(Some).collect();
    for &i in &tree.bottom_up {
        let node = folded[i].take().expect("each node folded once");
        match tree.parent[i] {
            Some(p) => {
                let parent = folded[p].take().expect("parent not folded yet");
                folded[p] = Some(parent.hash_join(&node, &mut stats));
            }
            None => {
                acc = Some(match acc {
                    None => node,
                    Some(a) => a.hash_join(&node, &mut stats),
                });
            }
        }
    }
    let acc = acc.expect("non-empty query");
    let tuples = acc.into_gao_tuples(query.n_attrs);
    stats.outputs = tuples.len() as u64;
    Ok(JoinResult { tuples, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::naive_join;
    use minesweeper_storage::{builder, Database, Val};

    #[test]
    fn bowtie_matches_naive() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2, 4])).unwrap();
        let s = db
            .add(builder::binary("S", [(1, 5), (2, 6), (2, 7), (4, 9)]))
            .unwrap();
        let t = db.add(builder::unary("T", [5, 7, 9])).unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
        let res = yannakakis(&db, &q).unwrap();
        assert_eq!(res.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn path_query_matches_naive() {
        let mut db = Database::new();
        let e1 = db
            .add(builder::binary("E1", [(1, 2), (2, 3), (4, 5)]))
            .unwrap();
        let e2 = db
            .add(builder::binary("E2", [(2, 7), (3, 8), (5, 9)]))
            .unwrap();
        let e3 = db
            .add(builder::binary("E3", [(7, 1), (8, 1), (9, 2)]))
            .unwrap();
        let q = Query::new(4)
            .atom(e1, &[0, 1])
            .atom(e2, &[1, 2])
            .atom(e3, &[2, 3]);
        let res = yannakakis(&db, &q).unwrap();
        assert_eq!(res.tuples, naive_join(&db, &q).unwrap());
        assert_eq!(res.tuples.len(), 3);
    }

    #[test]
    fn triangle_rejected() {
        let mut db = Database::new();
        let e = db.add(builder::binary("E", [(1, 2)])).unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        assert_eq!(
            yannakakis(&db, &q).unwrap_err(),
            YannakakisError::NotAlphaAcyclic
        );
    }

    #[test]
    fn triangle_plus_universal_accepted() {
        // Q∆+U is α-acyclic (Example A.1) and must run.
        let mut db = Database::new();
        let edges = [(1, 2), (2, 3), (1, 3)];
        let e = db.add(builder::binary("E", edges)).unwrap();
        let u = db
            .add(
                minesweeper_storage::RelationBuilder::new("U", 3)
                    .tuple(&[1, 2, 3])
                    .tuple(&[2, 3, 4])
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2])
            .atom(u, &[0, 1, 2]);
        let res = yannakakis(&db, &q).unwrap();
        assert_eq!(res.tuples, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn full_reducer_removes_dangling_tuples() {
        // A long chain where only one path survives: the reducer must trim
        // all dangling tuples before the join phase, so intermediates stay
        // linear.
        let n: Val = 50;
        let mut db = Database::new();
        let e1 = db
            .add(builder::binary("E1", (0..n).map(|i| (i, i))))
            .unwrap();
        let e2 = db
            .add(builder::binary("E2", (0..n).map(|i| (i, i + 1))))
            .unwrap();
        let e3 = db.add(builder::binary("E3", [(1, 1)])).unwrap();
        let q = Query::new(4)
            .atom(e1, &[0, 1])
            .atom(e2, &[1, 2])
            .atom(e3, &[2, 3]);
        let res = yannakakis(&db, &q).unwrap();
        assert_eq!(res.tuples, vec![vec![0, 0, 1, 1]]);
        // Join-phase intermediates must not blow up past the inputs.
        assert!(res.stats.intermediate_tuples <= 3 * n as u64 + 10);
    }

    #[test]
    fn star_query_matches_naive() {
        let mut db = Database::new();
        let s = db
            .add(builder::binary("S", [(1, 2), (1, 3), (2, 2), (3, 9)]))
            .unwrap();
        let r1 = db.add(builder::unary("R1", [1, 2])).unwrap();
        let r2 = db.add(builder::unary("R2", [2, 3])).unwrap();
        let r3 = db.add(builder::unary("R3", [2, 3, 9])).unwrap();
        let q = Query::new(3)
            .atom(r1, &[0])
            .atom(s, &[0, 1])
            .atom(s, &[0, 2])
            .atom(r2, &[1])
            .atom(r3, &[2]);
        let res = yannakakis(&db, &q).unwrap();
        assert_eq!(res.tuples, naive_join(&db, &q).unwrap());
    }
}
