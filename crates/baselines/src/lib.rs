//! Baseline join algorithms the paper compares Minesweeper against
//! (Section 6, Appendix J).
//!
//! * [`yannakakis()`] — Yannakakis' algorithm for α-acyclic queries \[55\]:
//!   full semijoin reduction over a GYO join tree, then bottom-up joins.
//!   Worst-case optimal in `Õ(N + Z)` but *not* certificate-optimal
//!   (Appendix J: a pairwise semijoin touches Ω(N) tuples even when
//!   `|C| = o(N)`).
//! * [`leapfrog`] — Leapfrog Triejoin \[53\]: worst-case optimal
//!   attribute-at-a-time join with galloping seeks.
//! * [`generic_join()`] — the NPRR-style generic worst-case optimal join
//!   \[40\]: smallest-candidate-set expansion with sorted intersection.
//! * [`binary`] — classical left-deep binary join plans (hash join and
//!   sort-merge join), the "traditional" comparison point.
//! * [`adaptive`] — Demaine–López-Ortiz–Munro-style adaptive set
//!   intersection (Section 6.2), the specialized comparator for the
//!   Appendix H experiments.
//!
//! All algorithms produce tuples over the full GAO attribute space and are
//! cross-checked against `minesweeper_core::naive_join` in tests.

//! All baselines are also exposed through the unified
//! [`minesweeper_core::Algorithm`] trait via the name-based [`registry`],
//! which is how the CLI, tests, and benches dispatch to them.

pub mod adaptive;
pub mod binary;
pub mod generic_join;
pub mod intermediate;
pub mod leapfrog;
pub mod merge;
pub mod nested_loop;
pub mod registry;
pub mod yannakakis;

pub use adaptive::adaptive_intersection;
pub use binary::{hash_join_plan, sort_merge_plan};
pub use generic_join::generic_join;
pub use leapfrog::leapfrog_triejoin;
pub use merge::merge_intersection;
pub use nested_loop::index_nested_loop;
pub use registry::{algorithm_names, algorithms, lookup, lookup_configured};
pub use yannakakis::yannakakis;
