//! The name-based [`Algorithm`] registry.
//!
//! One place that knows every join evaluator in the workspace: Minesweeper
//! (via `minesweeper-core`), each baseline in this crate, and the naive
//! oracle. The CLI (`msj --algo NAME`), the cross-algorithm equivalence
//! tests, and the bench binaries all dispatch through [`lookup`] /
//! [`algorithms`] instead of hard-coding seven function signatures.
//!
//! All entries honour the [`Algorithm`] output contract: tuples over the
//! full attribute space, sorted lexicographically in the original
//! attribute numbering.

use minesweeper_core::{
    Algorithm, JoinResult, Minesweeper, MinesweeperPar, Naive, Query, QueryError,
};
use minesweeper_hypergraph::is_alpha_acyclic;
use minesweeper_storage::Database;

use crate::binary::{hash_join_plan, sort_merge_plan};
use crate::generic_join::generic_join;
use crate::leapfrog::leapfrog_triejoin;
use crate::nested_loop::index_nested_loop;
use crate::yannakakis::{yannakakis, YannakakisError};

/// Wraps a plain `fn(&Database, &Query) -> Result<JoinResult, QueryError>`
/// baseline as an [`Algorithm`], sorting its output into the contract
/// order.
macro_rules! fn_algorithm {
    ($(#[$meta:meta])* $ty:ident, $name:literal, $desc:literal, $f:path) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $ty;

        impl Algorithm for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn description(&self) -> &'static str {
                $desc
            }

            fn run(&self, db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
                let mut res = $f(db, query)?;
                res.tuples.sort_unstable();
                Ok(res)
            }
        }
    };
}

fn_algorithm!(
    /// Leapfrog Triejoin \[53\]: worst-case optimal, attribute-at-a-time.
    LeapfrogTriejoin,
    "leapfrog",
    "Leapfrog Triejoin: worst-case optimal attribute-at-a-time join with galloping seeks",
    leapfrog_triejoin
);

fn_algorithm!(
    /// The NPRR-style generic worst-case optimal join \[40\].
    GenericJoin,
    "generic",
    "NPRR generic join: smallest-candidate-set expansion with sorted intersection",
    generic_join
);

fn_algorithm!(
    /// Classical left-deep binary hash-join plan.
    HashJoinPlan,
    "hash",
    "left-deep binary hash-join plan (the traditional comparison point)",
    hash_join_plan
);

fn_algorithm!(
    /// Classical left-deep binary sort-merge plan.
    SortMergePlan,
    "sort-merge",
    "left-deep binary sort-merge-join plan",
    sort_merge_plan
);

fn_algorithm!(
    /// Index nested-loop join over the trie indexes.
    IndexNestedLoop,
    "nested-loop",
    "index nested-loop join probing the trie indexes atom by atom",
    index_nested_loop
);

/// Yannakakis' algorithm \[55\]; α-acyclic queries only.
#[derive(Debug, Clone, Copy, Default)]
pub struct Yannakakis;

impl Algorithm for Yannakakis {
    fn name(&self) -> &'static str {
        "yannakakis"
    }

    fn description(&self) -> &'static str {
        "semijoin reduction over a GYO join tree, then bottom-up joins (α-acyclic only)"
    }

    fn supports(&self, query: &Query) -> bool {
        is_alpha_acyclic(&query.hypergraph())
    }

    fn run(&self, db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
        let mut res = yannakakis(db, query).map_err(|e| match e {
            YannakakisError::Query(q) => q,
            YannakakisError::NotAlphaAcyclic => QueryError::Unsupported {
                algorithm: "yannakakis",
                reason: "query is not α-acyclic (no GYO join tree exists)".to_string(),
            },
        })?;
        res.tuples.sort_unstable();
        Ok(res)
    }
}

/// Every registered algorithm, Minesweeper first.
pub fn algorithms() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(Minesweeper),
        Box::new(MinesweeperPar::default()),
        Box::new(Yannakakis),
        Box::new(LeapfrogTriejoin),
        Box::new(GenericJoin),
        Box::new(HashJoinPlan),
        Box::new(SortMergePlan),
        Box::new(IndexNestedLoop),
        Box::new(Naive),
    ]
}

/// The canonical registry names, in [`algorithms`] order.
pub fn algorithm_names() -> Vec<&'static str> {
    algorithms().iter().map(|a| a.name()).collect()
}

/// Finds an algorithm by canonical name or a common alias
/// (case-insensitive): e.g. `lftj` → `leapfrog`, `nprr` → `generic`.
pub fn lookup(name: &str) -> Option<Box<dyn Algorithm>> {
    lookup_configured(name, None)
}

/// [`lookup`] with execution knobs applied: `threads` configures the
/// worker count of thread-aware entries (today `minesweeper-par`; every
/// other algorithm ignores it). This is the single dispatch point the
/// engine front door and the CLI route *all* evaluators through, so a
/// `--threads`-style option behaves uniformly instead of each caller
/// special-casing the parallel entry.
pub fn lookup_configured(name: &str, threads: Option<usize>) -> Option<Box<dyn Algorithm>> {
    let canonical = match name.to_ascii_lowercase().as_str() {
        "minesweeper" | "ms" | "msj" => "minesweeper",
        "minesweeper-par" | "minesweeper_par" | "ms-par" | "parallel" => "minesweeper-par",
        "yannakakis" | "yk" => "yannakakis",
        "leapfrog" | "lftj" | "leapfrog_triejoin" => "leapfrog",
        "generic" | "nprr" | "generic_join" => "generic",
        "hash" | "hash_join" | "hash-join" => "hash",
        "sort-merge" | "sort_merge" | "merge" => "sort-merge",
        "nested-loop" | "nested_loop" | "inl" | "index_nested_loop" => "nested-loop",
        "naive" => "naive",
        _ => return None,
    };
    if canonical == "minesweeper-par" {
        return Some(Box::new(match threads {
            Some(t) => MinesweeperPar::with_threads(t),
            None => MinesweeperPar::default(),
        }));
    }
    algorithms().into_iter().find(|a| a.name() == canonical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::naive_join;
    use minesweeper_storage::builder;

    #[test]
    fn every_entry_resolves_by_its_own_name() {
        for algo in algorithms() {
            let found = lookup(algo.name()).expect("name resolves");
            assert_eq!(found.name(), algo.name());
        }
        assert!(lookup("LFTJ").is_some(), "aliases are case-insensitive");
        assert!(lookup("no-such-algorithm").is_none());
    }

    #[test]
    fn configured_lookup_applies_threads() {
        let par = lookup_configured("minesweeper-par", Some(3)).unwrap();
        assert_eq!(par.name(), "minesweeper-par");
        let serial = lookup_configured("minesweeper", Some(3)).unwrap();
        assert_eq!(serial.name(), "minesweeper", "threads ignored elsewhere");
        assert!(lookup_configured("nope", Some(2)).is_none());
        // The configured entry still honours the output contract.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [2, 1, 3])).unwrap();
        let q = Query::new(1).atom(r, &[0]);
        assert_eq!(
            par.run(&db, &q).unwrap().tuples,
            vec![vec![1], vec![2], vec![3]]
        );
    }

    #[test]
    fn all_supported_entries_agree_on_a_bowtie() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2, 4, 7])).unwrap();
        let s = db
            .add(builder::binary("S", [(1, 5), (2, 7), (4, 9), (6, 1)]))
            .unwrap();
        let t = db.add(builder::unary("T", [5, 9])).unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
        let expect = naive_join(&db, &q).unwrap();
        for algo in algorithms() {
            assert!(algo.supports(&q), "{} must support a bowtie", algo.name());
            let got = algo.run(&db, &q).unwrap().tuples;
            assert_eq!(got, expect, "{} output", algo.name());
        }
    }

    #[test]
    fn yannakakis_refuses_cyclic_queries() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary("E", [(1, 2), (2, 3), (1, 3)]))
            .unwrap();
        // 4-cycle hypergraph: α-cyclic.
        let f = db.add(builder::binary("F", [(1, 2)])).unwrap();
        let g = db.add(builder::binary("G", [(1, 2)])).unwrap();
        let h = db.add(builder::binary("H", [(1, 2)])).unwrap();
        let q = Query::new(4)
            .atom(e, &[0, 1])
            .atom(f, &[1, 2])
            .atom(g, &[2, 3])
            .atom(h, &[0, 3]);
        let yk = Yannakakis;
        assert!(!yk.supports(&q));
        assert!(matches!(
            yk.run(&db, &q),
            Err(QueryError::Unsupported {
                algorithm: "yannakakis",
                ..
            })
        ));
    }
}
