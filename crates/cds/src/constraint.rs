//! Constraints (Section 3.1).
//!
//! A constraint `c = ⟨c₁, …, c_{i−1}, (l, r), ˚, …⟩` consists of a pattern
//! prefix (equality and wildcard components), exactly one open-interval
//! component, and implicit trailing wildcards. A tuple *satisfies* the
//! constraint when its prefix matches the pattern and its `i`-th coordinate
//! lies strictly inside `(l, r)`; a tuple is *active* when it satisfies no
//! stored constraint.

use std::fmt;

use crate::pattern::{Pattern, PatternComp};
use crate::{Val, NEG_INF, POS_INF};

/// A gap constraint: `pattern` (length `i−1`), then the open interval
/// `(lo, hi)` on attribute position `pattern.len()`, then wildcards.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Components before the interval.
    pub pattern: Pattern,
    /// Open lower endpoint (`−∞` allowed).
    pub lo: Val,
    /// Open upper endpoint (`+∞` allowed).
    pub hi: Val,
}

impl Constraint {
    /// Builds a constraint from a pattern prefix and an open interval.
    pub fn new(pattern: Pattern, lo: Val, hi: Val) -> Self {
        Constraint { pattern, lo, hi }
    }

    /// The constraint ruling out exactly the output tuple `t` at its last
    /// coordinate: `⟨t₁, …, t_{n−1}, (t_n − 1, t_n + 1)⟩` (Algorithm 2,
    /// line 13).
    pub fn point_exclusion(t: &[Val]) -> Self {
        let (last, prefix) = t.split_last().expect("tuple must be non-empty");
        Constraint {
            pattern: Pattern::all_eq(prefix),
            lo: last - 1,
            hi: last + 1,
        }
    }

    /// The backtracking constraint of Algorithm 3 line 15: rules out value
    /// `p̄_{i₀}` at position `i₀` under the prefix `p̄₁ … p̄_{i₀−1}`.
    pub fn backtrack(bottom: &Pattern, i0: usize) -> Self {
        assert!(i0 >= 1 && i0 <= bottom.len());
        let v = match bottom.0[i0 - 1] {
            PatternComp::Eq(v) => v,
            PatternComp::Star => panic!("backtrack position must be an equality"),
        };
        Constraint {
            pattern: bottom.prefix(i0 - 1),
            lo: v - 1,
            hi: v + 1,
        }
    }

    /// 0-based attribute position of the interval component.
    pub fn depth(&self) -> usize {
        self.pattern.len()
    }

    /// True when the open interval contains no integer (such constraints
    /// are no-ops; the pseudocode notes "the constraint is empty if
    /// `R[i^{v,ℓ}] = R[i^{v,h}]`").
    pub fn is_empty_interval(&self) -> bool {
        let lo = if self.lo == NEG_INF {
            NEG_INF + 1
        } else {
            self.lo + 1
        };
        let hi = if self.hi == POS_INF {
            POS_INF - 1
        } else {
            self.hi - 1
        };
        lo > hi
    }

    /// Does tuple `t` satisfy this constraint (i.e. is it covered /
    /// excluded)? `t` may be longer than `depth() + 1`; trailing wildcards
    /// always match.
    pub fn covers(&self, t: &[Val]) -> bool {
        if t.len() <= self.depth() {
            return false;
        }
        self.pattern.matches_prefix(&t[..self.depth()])
            && self.lo < t[self.depth()]
            && t[self.depth()] < self.hi
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for c in &self.pattern.0 {
            match c {
                PatternComp::Eq(v) => write!(f, "{v},")?,
                PatternComp::Star => write!(f, "*,")?,
            }
        }
        let lo = if self.lo == NEG_INF {
            "-inf".to_string()
        } else {
            self.lo.to_string()
        };
        let hi = if self.hi == POS_INF {
            "+inf".to_string()
        } else {
            self.hi.to_string()
        };
        write!(f, "({lo},{hi})⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PatternComp::{Eq, Star};

    #[test]
    fn point_exclusion_covers_only_that_tuple() {
        let c = Constraint::point_exclusion(&[1, 2, 3]);
        assert!(c.covers(&[1, 2, 3]));
        assert!(!c.covers(&[1, 2, 4]));
        assert!(!c.covers(&[1, 2, 2]));
        assert!(!c.covers(&[1, 3, 3]));
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn gap_constraint_semantics() {
        // ⟨˚, (20, 28)⟩: no output has B strictly between 20 and 28
        // (Section 3.2 example).
        let c = Constraint::new(Pattern(vec![Star]), 20, 28);
        assert!(c.covers(&[5, 21]));
        assert!(c.covers(&[5, 27]));
        assert!(!c.covers(&[5, 20]));
        assert!(!c.covers(&[5, 28]));
        // Matches any first coordinate.
        assert!(c.covers(&[999, 25]));
    }

    #[test]
    fn equality_pattern_restricts() {
        // ⟨1, ˚, (2, 5)⟩ — the strip inside plane A₁=1 (Section 3.1).
        let c = Constraint::new(Pattern(vec![Eq(1), Star]), 2, 5);
        assert!(c.covers(&[1, 7, 3]));
        assert!(!c.covers(&[2, 7, 3]));
        assert!(!c.covers(&[1, 7, 5]));
    }

    #[test]
    fn empty_intervals_detected() {
        assert!(Constraint::new(Pattern::empty(), 5, 5).is_empty_interval());
        assert!(Constraint::new(Pattern::empty(), 5, 6).is_empty_interval());
        assert!(!Constraint::new(Pattern::empty(), 5, 7).is_empty_interval());
        assert!(!Constraint::new(Pattern::empty(), NEG_INF, 0).is_empty_interval());
        assert!(!Constraint::new(Pattern::empty(), NEG_INF, POS_INF).is_empty_interval());
    }

    #[test]
    fn backtrack_constraint_shape() {
        // Bottom pattern ⟨˚, 7, 3⟩ with i₀ = 3 → ⟨˚, 7, (2, 4)⟩.
        let bottom = Pattern(vec![Star, Eq(7), Eq(3)]);
        let c = Constraint::backtrack(&bottom, 3);
        assert_eq!(c.pattern, Pattern(vec![Star, Eq(7)]));
        assert_eq!((c.lo, c.hi), (2, 4));
        // With i₀ = 2 → ⟨˚, (6, 8)⟩.
        let c = Constraint::backtrack(&bottom, 2);
        assert_eq!(c.pattern, Pattern(vec![Star]));
        assert_eq!((c.lo, c.hi), (6, 8));
    }

    #[test]
    fn display() {
        let c = Constraint::new(Pattern(vec![Eq(1), Star]), NEG_INF, 9);
        assert_eq!(c.to_string(), "⟨1,*,(-inf,9)⟩");
    }

    #[test]
    fn short_tuples_never_covered() {
        let c = Constraint::new(Pattern(vec![Star, Star]), 0, 10);
        assert!(!c.covers(&[1, 2]));
        assert!(c.covers(&[1, 2, 5]));
    }
}
