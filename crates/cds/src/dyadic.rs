//! The dyadic interval tree of Appendix L.1.1.
//!
//! Let the `B` domain be `[0, 2^d)`. Tree nodes are indexed by
//! `(level, idx)` with `level ∈ 0..=d` and `idx ∈ [0, 2^level)`; node
//! `(ℓ, i)` represents the dyadic `B`-range
//! `[i·2^{d−ℓ}, (i+1)·2^{d−ℓ})`, the root `(0, 0)` covering everything and
//! leaves `(d, b)` covering single values. Every node carries an interval
//! set over the `C` domain (`I(˚, x)` in the paper's notation), maintained
//! under the invariant (7):
//!
//! ```text
//!     I(˚, x) = I(˚, x·0) ∩ I(˚, x·1)
//! ```
//!
//! i.e. a `C` value is covered at an internal node iff it is covered for
//! *every* leaf below — which is what lets the triangle `getProbePoint`
//! prune whole `B`-subtrees in one `Next` call. Insertions happen at
//! leaves (constraints `⟨˚, b, (c₁, c₂)⟩`) and propagate upward lazily:
//! only the *newly covered* pieces are intersected with the sibling's
//! coverage, so the total propagation work is amortized against insertions
//! (Proposition L.1).

use std::collections::BTreeMap;

use crate::interval::IntervalSet;
use crate::Val;

/// A node address: `(level, idx)`.
pub type DyadicNode = (u32, i64);

/// The dyadic tree over `B`-domain `[0, 2^bits)` with `C`-interval sets at
/// every node (lazily allocated).
#[derive(Debug, Clone)]
pub struct DyadicIntervalTree {
    bits: u32,
    nodes: BTreeMap<DyadicNode, IntervalSet>,
}

impl DyadicIntervalTree {
    /// Creates a tree whose leaves are `0..2^bits`.
    pub fn new(bits: u32) -> Self {
        assert!(bits <= 40, "dyadic domain limited to 2^40");
        DyadicIntervalTree {
            bits,
            nodes: BTreeMap::new(),
        }
    }

    /// Smallest tree covering values `0..domain_size`.
    pub fn for_domain(domain_size: Val) -> Self {
        let mut bits = 0u32;
        while (1i64 << bits) < domain_size.max(1) {
            bits += 1;
        }
        Self::new(bits)
    }

    /// `d`: the number of levels below the root.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of leaves, `2^d`.
    pub fn domain_size(&self) -> Val {
        1i64 << self.bits
    }

    /// The `B`-range `[lo, hi]` (closed) represented by a node.
    pub fn range_of(&self, node: DyadicNode) -> (Val, Val) {
        let (level, idx) = node;
        assert!(level <= self.bits && idx >= 0 && idx < (1i64 << level));
        let size = 1i64 << (self.bits - level);
        (idx * size, (idx + 1) * size - 1)
    }

    /// The leaf of value `b`.
    pub fn leaf_of(&self, b: Val) -> DyadicNode {
        assert!((0..self.domain_size()).contains(&b), "b={b} outside domain");
        (self.bits, b)
    }

    /// The root-to-leaf path of `b`: `(0, 0), (1, _), …, (bits, b)`.
    pub fn path_to(&self, b: Val) -> impl Iterator<Item = DyadicNode> + '_ {
        assert!((0..self.domain_size()).contains(&b), "b={b} outside domain");
        (0..=self.bits).map(move |level| (level, b >> (self.bits - level)))
    }

    /// The `C`-interval set at a node, if allocated.
    pub fn set(&self, node: DyadicNode) -> Option<&IntervalSet> {
        self.nodes.get(&node)
    }

    /// `Next` over a node's `C` set (absent set ⇒ identity).
    pub fn next_at(&self, node: DyadicNode, v: Val) -> Val {
        self.nodes.get(&node).map_or(v, |s| s.next(v))
    }

    /// Inserts the closed `C`-range `[lo, hi]` at leaf `b` and propagates
    /// newly covered pieces upward, maintaining invariant (7). Returns the
    /// number of `IntervalSet` insertions performed (diagnostics for the
    /// amortization claim of Proposition L.1).
    pub fn insert_leaf_closed(&mut self, b: Val, lo: Val, hi: Val) -> usize {
        if lo > hi {
            return 0;
        }
        let leaf = self.leaf_of(b);
        let mut ops = 1usize;
        let mut newly = self
            .nodes
            .entry(leaf)
            .or_default()
            .insert_closed_returning_new(lo, hi);
        let (mut level, mut idx) = leaf;
        while level > 0 && !newly.is_empty() {
            let sibling = (level, idx ^ 1);
            // Pieces covered at BOTH children propagate to the parent.
            let mut up: Vec<(Val, Val)> = Vec::new();
            if let Some(sib) = self.nodes.get(&sibling) {
                for &(plo, phi) in &newly {
                    up.extend(sib.covered_within(plo, phi));
                }
            }
            if up.is_empty() {
                break;
            }
            level -= 1;
            idx >>= 1;
            let parent = self.nodes.entry((level, idx)).or_default();
            let mut parent_new = Vec::new();
            for (plo, phi) in up {
                ops += 1;
                parent_new.extend(parent.insert_closed_returning_new(plo, phi));
            }
            newly = parent_new;
        }
        ops
    }

    /// Inserts the *open* `C`-interval `(l, r)` at leaf `b` (paper syntax).
    pub fn insert_leaf_open(&mut self, b: Val, l: Val, r: Val) -> usize {
        let lo = l.saturating_add(1);
        let hi = r.saturating_sub(1);
        if lo > hi {
            0
        } else {
            self.insert_leaf_closed(b, lo, hi)
        }
    }

    /// Verifies invariant (7) at every allocated internal node over the
    /// given `C`-window (test helper; cost is linear in tree size ×
    /// window).
    pub fn check_invariant(&self, c_lo: Val, c_hi: Val) -> bool {
        for (&(level, idx), set) in &self.nodes {
            if level == self.bits {
                continue;
            }
            let l = self.nodes.get(&(level + 1, idx * 2));
            let r = self.nodes.get(&(level + 1, idx * 2 + 1));
            for c in c_lo..=c_hi {
                let both = l.is_some_and(|s| s.covers(c)) && r.is_some_and(|s| s.covers(c));
                if set.covers(c) != both {
                    return false;
                }
            }
        }
        // Also: unallocated internal nodes must genuinely cover nothing,
        // i.e. no pair of allocated children may jointly cover a value.
        for (&(level, idx), set) in &self.nodes {
            if level == 0 || set.is_empty() {
                continue;
            }
            let parent = (level - 1, idx >> 1);
            if self.nodes.contains_key(&parent) {
                continue;
            }
            let sib = self.nodes.get(&(level, idx ^ 1));
            for c in c_lo..=c_hi {
                if set.covers(c) && sib.is_some_and(|s| s.covers(c)) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of allocated nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let t = DyadicIntervalTree::new(3);
        assert_eq!(t.domain_size(), 8);
        assert_eq!(t.range_of((0, 0)), (0, 7));
        assert_eq!(t.range_of((1, 1)), (4, 7));
        assert_eq!(t.range_of((3, 5)), (5, 5));
        let path: Vec<_> = t.path_to(5).collect();
        assert_eq!(path, vec![(0, 0), (1, 1), (2, 2), (3, 5)]);
        assert_eq!(t.leaf_of(5), (3, 5));
    }

    #[test]
    fn for_domain_rounds_up() {
        assert_eq!(DyadicIntervalTree::for_domain(1).bits(), 0);
        assert_eq!(DyadicIntervalTree::for_domain(2).bits(), 1);
        assert_eq!(DyadicIntervalTree::for_domain(5).bits(), 3);
        assert_eq!(DyadicIntervalTree::for_domain(8).bits(), 3);
        assert_eq!(DyadicIntervalTree::for_domain(9).bits(), 4);
    }

    #[test]
    fn propagation_to_parent_requires_both_children() {
        let mut t = DyadicIntervalTree::new(2); // leaves 0..4
        t.insert_leaf_closed(0, 10, 20);
        // Parent (1,0) has no coverage yet — sibling leaf 1 is empty.
        assert!(t.set((1, 0)).is_none() || t.set((1, 0)).unwrap().is_empty());
        t.insert_leaf_closed(1, 15, 25);
        // Now [15,20] is covered at both leaves → parent gets [15,20].
        let p = t.set((1, 0)).unwrap();
        assert!(p.covers(15) && p.covers(20));
        assert!(!p.covers(14) && !p.covers(21));
        // Root still empty (right half uncovered).
        assert!(t.set((0, 0)).is_none() || t.set((0, 0)).unwrap().is_empty());
        assert!(t.check_invariant(0, 40));
    }

    #[test]
    fn full_cover_reaches_root() {
        let mut t = DyadicIntervalTree::new(2);
        for b in 0..4 {
            t.insert_leaf_closed(b, 5, 9);
        }
        let root = t.set((0, 0)).unwrap();
        assert!(root.covers_range(5, 9));
        assert!(t.check_invariant(0, 20));
        assert_eq!(t.next_at((0, 0), 5), 10);
        assert_eq!(t.next_at((0, 0), 4), 4);
    }

    #[test]
    fn open_insert_translates() {
        let mut t = DyadicIntervalTree::new(1);
        assert_eq!(t.insert_leaf_open(0, 5, 6), 0, "(5,6) is empty");
        t.insert_leaf_open(0, 5, 8); // covers {6,7}
        assert!(t.set((1, 0)).unwrap().covers(6));
        assert!(!t.set((1, 0)).unwrap().covers(5));
    }

    #[test]
    fn randomized_invariant_check() {
        let mut seed = 0xdeadbeefcafeu64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        let mut t = DyadicIntervalTree::new(3);
        for _ in 0..120 {
            let b = rng(8) as Val;
            let lo = rng(24) as Val;
            let hi = lo + rng(6) as Val;
            t.insert_leaf_closed(b, lo, hi);
            assert!(t.check_invariant(0, 32));
        }
        // Cross-check root coverage against the intersection of all leaves.
        for c in 0..32 {
            let all = (0..8).all(|b| t.set((3, b)).is_some_and(|s| s.covers(c)));
            let root = t.set((0, 0)).is_some_and(|s| s.covers(c));
            assert_eq!(root, all, "c={c}");
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn leaf_out_of_domain_panics() {
        DyadicIntervalTree::new(2).leaf_of(4);
    }
}
