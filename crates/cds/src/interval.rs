//! The `IntervalList` building block (Appendix E.2, Proposition E.3).
//!
//! An [`IntervalSet`] stores a union of integer ranges over `i64`. The
//! paper's intervals are *open* `(l, r)` with `l, r ∈ ℤ ∪ {−∞, +∞}`; over an
//! integer domain the open interval `(l, r)` covers exactly the closed
//! integer range `[l+1, r−1]`, which is how we store them. Overlapping and
//! adjacent ranges are merged eagerly, so the structure always holds
//! pairwise-disjoint, non-adjacent closed ranges — giving `O(log W)`
//! `covers`/`next` and amortized `O(log W)` `insert` (each merge consumes a
//! previously inserted range, Prop E.3).

use std::collections::BTreeMap;

use crate::{Val, NEG_INF, POS_INF};

/// A set of disjoint closed integer ranges, keyed by their low endpoint.
///
/// ```
/// use minesweeper_cds::IntervalSet;
/// let mut s = IntervalSet::new();
/// s.insert_open(2, 7);        // the paper's open gap (2, 7) = {3,…,6}
/// assert!(s.covers(3) && !s.covers(7));
/// assert_eq!(s.next(3), 7);   // smallest uncovered value ≥ 3
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// `lo → hi` with `lo ≤ hi`; ranges pairwise disjoint and separated by
    /// at least one free integer.
    map: BTreeMap<Val, Val>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no range is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of maximal ranges currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates the maximal ranges in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = (Val, Val)> + '_ {
        self.map.iter().map(|(&lo, &hi)| (lo, hi))
    }

    /// The paper's `covers(v)`: is `v` inside some stored range?
    pub fn covers(&self, v: Val) -> bool {
        self.map
            .range(..=v)
            .next_back()
            .is_some_and(|(_, &hi)| hi >= v)
    }

    /// The paper's `Next(v)`: the smallest `v' ≥ v` not covered by any
    /// range. Saturates at [`POS_INF`], which callers treat as "no free
    /// value".
    pub fn next(&self, v: Val) -> Val {
        let mut v = v;
        while let Some((_, &hi)) = self.map.range(..=v).next_back() {
            if hi < v {
                break;
            }
            if hi == POS_INF {
                return POS_INF;
            }
            v = hi + 1;
        }
        v
    }

    /// Inserts the *open* interval `(l, r)` (paper syntax). Empty open
    /// intervals — those containing no integer — are ignored and return
    /// `false`. Returns `true` if coverage grew.
    pub fn insert_open(&mut self, l: Val, r: Val) -> bool {
        let lo = if l == NEG_INF {
            NEG_INF.saturating_add(1)
        } else {
            l.saturating_add(1)
        };
        let hi = if r == POS_INF {
            POS_INF.saturating_sub(1)
        } else {
            r.saturating_sub(1)
        };
        if lo > hi {
            return false;
        }
        self.insert_closed(lo, hi)
    }

    /// Inserts the closed range `[lo, hi]`, merging as needed. Returns
    /// `true` if any previously-free integer became covered.
    pub fn insert_closed(&mut self, lo: Val, hi: Val) -> bool {
        !self.insert_closed_returning_new(lo, hi).is_empty()
    }

    /// Inserts `[lo, hi]` and returns the maximal sub-ranges of `[lo, hi]`
    /// that were *not* covered before (the "newly covered" pieces). The
    /// dyadic tree of Appendix L uses these to drive upward propagation.
    pub fn insert_closed_returning_new(&mut self, lo: Val, hi: Val) -> Vec<(Val, Val)> {
        assert!(lo <= hi, "insert_closed requires lo <= hi");
        // Find the merge window: every stored range that overlaps or is
        // adjacent to [lo, hi].
        let mut new_lo = lo;
        let mut new_hi = hi;
        let mut absorbed: Vec<Val> = Vec::new();
        // Scan only the ranges that can touch [lo−1, hi+1]: start from the
        // last range beginning at or before `lo` (it may reach into the
        // window) and stop past `hi+1`.
        let right_probe = if hi == POS_INF { POS_INF } else { hi + 1 };
        let scan_start = self
            .map
            .range(..=lo)
            .next_back()
            .map(|(&s, _)| s)
            .unwrap_or(lo);
        if scan_start <= right_probe {
            for (&s, &e) in self.map.range(scan_start..=right_probe) {
                // Adjacent-or-overlapping: e ≥ lo − 1.
                if e >= lo.saturating_sub(1) {
                    absorbed.push(s);
                    new_lo = new_lo.min(s);
                    new_hi = new_hi.max(e);
                }
            }
        }
        // Compute newly covered pieces of [lo, hi] (complement of old
        // coverage restricted to [lo, hi]).
        let mut newly = Vec::new();
        let mut cursor = lo;
        for &s in &absorbed {
            let e = self.map[&s];
            // Overlap of [s, e] with [lo, hi].
            let os = s.max(lo);
            let oe = e.min(hi);
            if os > oe {
                continue; // merely adjacent, no overlap
            }
            if cursor < os {
                newly.push((cursor, os - 1));
            }
            cursor = cursor.max(oe.saturating_add(1));
            if cursor > hi {
                break;
            }
        }
        if cursor <= hi {
            newly.push((cursor, hi));
        }
        for s in absorbed {
            self.map.remove(&s);
        }
        self.map.insert(new_lo, new_hi);
        newly
    }

    /// Returns the parts of `[lo, hi]` covered by this set, in order. Used
    /// for sibling intersection in the dyadic tree.
    pub fn covered_within(&self, lo: Val, hi: Val) -> Vec<(Val, Val)> {
        assert!(lo <= hi);
        let mut out = Vec::new();
        // Start from the last range with start ≤ lo (it may reach into the
        // window), then walk forward.
        let first = self.map.range(..=lo).next_back().map(|(&s, _)| s);
        let start = first.unwrap_or(lo);
        for (&s, &e) in self.map.range(start..) {
            if s > hi {
                break;
            }
            let os = s.max(lo);
            let oe = e.min(hi);
            if os <= oe {
                out.push((os, oe));
            }
        }
        out
    }

    /// True if `[lo, hi]` is fully covered.
    pub fn covers_range(&self, lo: Val, hi: Val) -> bool {
        match self.map.range(..=lo).next_back() {
            Some((_, &e)) => e >= hi,
            None => false,
        }
    }

    /// Total count of covered integers, saturating (diagnostics/tests).
    pub fn covered_count(&self) -> u128 {
        self.map
            .iter()
            .map(|(&lo, &hi)| (hi as i128 - lo as i128 + 1) as u128)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_covers_nothing() {
        let s = IntervalSet::new();
        assert!(!s.covers(0));
        assert_eq!(s.next(-5), -5);
        assert!(s.is_empty());
    }

    #[test]
    fn open_interval_semantics() {
        let mut s = IntervalSet::new();
        // (2, 5) covers {3, 4} only.
        assert!(s.insert_open(2, 5));
        assert!(!s.covers(2));
        assert!(s.covers(3));
        assert!(s.covers(4));
        assert!(!s.covers(5));
        // (5, 6) is empty over the integers.
        assert!(!s.insert_open(5, 6));
        // (5, 5) is empty as well.
        assert!(!s.insert_open(5, 5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn next_skips_over_ranges() {
        let mut s = IntervalSet::new();
        s.insert_closed(3, 4);
        s.insert_closed(6, 9);
        assert_eq!(s.next(0), 0);
        assert_eq!(s.next(3), 5);
        assert_eq!(s.next(5), 5);
        assert_eq!(s.next(6), 10);
        // Chained ranges are crossed in one call.
        s.insert_closed(5, 5);
        assert_eq!(s.next(3), 10);
        assert_eq!(s.len(), 1, "adjacent ranges merged");
    }

    #[test]
    fn infinities() {
        let mut s = IntervalSet::new();
        // (−∞, 3): covers everything below 3.
        s.insert_open(NEG_INF, 3);
        assert!(s.covers(NEG_INF + 1));
        assert!(s.covers(2));
        assert!(!s.covers(3));
        assert_eq!(s.next(-100), 3);
        // (10, +∞).
        s.insert_open(10, POS_INF);
        assert!(s.covers(11));
        assert!(s.covers(POS_INF - 1));
        assert_eq!(s.next(11), POS_INF);
        // Close the hole [3, 10].
        s.insert_closed(3, 10);
        assert_eq!(s.next(-50), POS_INF, "entire line covered");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merging_overlaps_and_adjacency() {
        let mut s = IntervalSet::new();
        s.insert_closed(10, 20);
        s.insert_closed(30, 40);
        assert_eq!(s.len(), 2);
        // Overlap both.
        s.insert_closed(15, 35);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next(), Some((10, 40)));
        // Adjacent on the left merges.
        s.insert_closed(5, 9);
        assert_eq!(s.iter().next(), Some((5, 40)));
        // Contained insert changes nothing.
        assert!(!s.insert_closed(6, 7));
    }

    #[test]
    fn newly_covered_pieces() {
        let mut s = IntervalSet::new();
        s.insert_closed(5, 10);
        s.insert_closed(20, 25);
        let new = s.insert_closed_returning_new(0, 30);
        assert_eq!(new, vec![(0, 4), (11, 19), (26, 30)]);
        let new = s.insert_closed_returning_new(0, 30);
        assert!(new.is_empty());
    }

    #[test]
    fn covered_within_window() {
        let mut s = IntervalSet::new();
        s.insert_closed(5, 10);
        s.insert_closed(20, 25);
        assert_eq!(s.covered_within(0, 30), vec![(5, 10), (20, 25)]);
        assert_eq!(s.covered_within(7, 22), vec![(7, 10), (20, 22)]);
        assert_eq!(s.covered_within(11, 19), vec![]);
        assert!(s.covers_range(6, 9));
        assert!(!s.covers_range(6, 11));
        assert!(!s.covers_range(15, 16));
    }

    #[test]
    fn covered_count_saturates_correctly() {
        let mut s = IntervalSet::new();
        s.insert_closed(0, 9);
        s.insert_closed(100, 100);
        assert_eq!(s.covered_count(), 11);
    }

    /// Randomized cross-check against a naive bit-set model on a small
    /// domain.
    #[test]
    fn model_check_small_domain() {
        const DOM: i64 = 64;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let mut s = IntervalSet::new();
            let mut model = [false; DOM as usize];
            for _ in 0..20 {
                let a = (rng() % DOM as u64) as i64;
                let b = (rng() % DOM as u64) as i64;
                let (lo, hi) = (a.min(b), a.max(b));
                s.insert_closed(lo, hi);
                for v in lo..=hi {
                    model[v as usize] = true;
                }
                for v in 0..DOM {
                    assert_eq!(s.covers(v), model[v as usize], "covers({v})");
                }
                for v in 0..DOM {
                    let expect = (v..DOM).find(|&u| !model[u as usize]).unwrap_or(DOM);
                    let got = s.next(v).min(DOM);
                    assert_eq!(got, expect, "next({v})");
                }
            }
        }
    }
}
