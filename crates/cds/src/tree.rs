//! The `ConstraintTree` CDS (Section 3.3, Figure 1, Appendix E.3) and the
//! `getProbePoint` search (Algorithms 3–4 for β-acyclic GAOs, Algorithms
//! 6–7 for general GAOs).
//!
//! Every node corresponds to a pattern (the labels on its root path); it
//! carries a sorted list of equality children, at most one `˚` child, and an
//! interval list. Two invariants are maintained:
//!
//! 1. intervals at a node are disjoint and merged ([`IntervalSet`]);
//! 2. no equality-child label is covered by an interval at the same node
//!    (Algorithm 5 deletes such children — their subtrees are subsumed).
//!
//! `getProbePoint` builds a candidate tuple coordinate by coordinate. At
//! depth `i` it collects the *principal filter* `G(t₁, …, t_i)` — matching
//! nodes with non-empty interval lists. For β-acyclic queries under a
//! nested elimination order, `G` is a chain (Proposition 4.2) and
//! `nextChainVal` walks it bottom-up, memoizing inferred gaps so repeated
//! work is amortized (Lemma 4.3). For general queries the filter need not
//! be a chain; Algorithm 6 linearizes it and takes suffix *meets* to build a
//! chain of **shadow** nodes, then runs the same walk over
//! (shadow, original) pairs.
//!
//! Deviation from the paper's pseudocode (documented in DESIGN.md): the
//! memoized constraint of Algorithm 7 line 11 is inserted at the *shadow*
//! pattern `P̄(u)` rather than `P(u)`; inserting at the more general `P(u)`
//! would claim the exclusion for tuples that do not match the rest of the
//! sub-chain. For chains the two coincide, so Algorithm 4 is unaffected.

use crate::constraint::Constraint;
use crate::interval::IntervalSet;
use crate::pattern::{Pattern, PatternComp};
use crate::sorted_list::SortedList;
use crate::{Val, POS_INF, PROBE_START};

/// How `getProbePoint` should treat the principal filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// β-acyclic / nested-elimination-order mode (Algorithm 3): asserts the
    /// filter is a chain (Proposition 4.2) in debug builds; shadows
    /// degenerate to the original nodes.
    Chain,
    /// General mode (Algorithm 6): builds shadow chains from suffix meets.
    General,
}

/// Counters for CDS work, merged into the caller's execution statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProbeStats {
    /// Constraints passed to `insert_constraint` (including subsumed and
    /// empty ones).
    pub constraints_inserted: u64,
    /// Probe points returned.
    pub probe_points: u64,
    /// `IntervalSet::next` calls issued by the chain walks.
    pub next_calls: u64,
    /// Backtracking steps (Algorithm 3 line 16).
    pub backtracks: u64,
    /// Nodes allocated in the tree (incl. shadow nodes).
    pub nodes_created: u64,
}

struct Node {
    pattern: Pattern,
    equalities: SortedList<usize>,
    star: Option<usize>,
    intervals: IntervalSet,
}

/// The constraint data structure.
///
/// ```
/// use minesweeper_cds::{Constraint, ConstraintTree, Pattern, ProbeMode, ProbeStats};
/// let mut cds = ConstraintTree::new(2, ProbeMode::Chain);
/// let mut st = ProbeStats::default();
/// // No constraints yet: the sentinel probe comes back.
/// assert_eq!(cds.get_probe_point(&mut st), Some(vec![-1, -1]));
/// // Cover everything: ⟨(−∞, +∞)⟩ at depth 0.
/// cds.insert_constraint(
///     &Constraint::new(Pattern::empty(), minesweeper_cds::NEG_INF, minesweeper_cds::POS_INF),
///     &mut st,
/// );
/// assert_eq!(cds.get_probe_point(&mut st), None);
/// ```
pub struct ConstraintTree {
    n_attrs: usize,
    nodes: Vec<Node>,
    mode: ProbeMode,
    /// Whether chain walks memoize inferred gaps (Algorithm 4 line 13 /
    /// Algorithm 7 line 11). Disabling this is an *ablation*: correctness
    /// is unaffected (the underlying constraints remain), but the
    /// amortization of Lemma 4.3 is lost and Example 4.1-style workloads
    /// degrade from `Õ(N²)` to `Ω(N³)`.
    memoize: bool,
}

const ROOT: usize = 0;

impl ConstraintTree {
    /// Creates a CDS over an `n_attrs`-dimensional output space.
    pub fn new(n_attrs: usize, mode: ProbeMode) -> Self {
        Self::with_options(n_attrs, mode, true)
    }

    /// Creates a CDS with explicit options; `memoize = false` disables the
    /// chain-walk memoization (ablation only — see DESIGN.md).
    pub fn with_options(n_attrs: usize, mode: ProbeMode, memoize: bool) -> Self {
        assert!(n_attrs >= 1);
        ConstraintTree {
            n_attrs,
            nodes: vec![Node {
                pattern: Pattern::empty(),
                equalities: SortedList::new(),
                star: None,
                intervals: IntervalSet::new(),
            }],
            mode,
            memoize,
        }
    }

    /// Number of attributes of the output space.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Number of allocated nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// `InsConstraint` (Algorithm 5). Empty-interval constraints are
    /// dropped; constraints whose equality path is already covered by an
    /// ancestor interval are subsumed and dropped.
    pub fn insert_constraint(&mut self, c: &Constraint, stats: &mut ProbeStats) {
        stats.constraints_inserted += 1;
        assert!(c.depth() < self.n_attrs, "interval position out of range");
        if c.is_empty_interval() {
            return;
        }
        let mut v = ROOT;
        for comp in &c.pattern.0 {
            match comp {
                PatternComp::Eq(val) => {
                    if self.nodes[v].intervals.covers(*val) {
                        return; // subsumed by an existing constraint
                    }
                    v = match self.nodes[v].equalities.find(*val) {
                        Some(&c) => c,
                        None => {
                            let c = self.alloc_child(v, PatternComp::Eq(*val), stats);
                            self.nodes[v].equalities.insert(*val, c);
                            c
                        }
                    };
                }
                PatternComp::Star => {
                    v = match self.nodes[v].star {
                        Some(c) => c,
                        None => {
                            let c = self.alloc_child(v, PatternComp::Star, stats);
                            self.nodes[v].star = Some(c);
                            c
                        }
                    };
                }
            }
        }
        self.node_insert_open(v, c.lo, c.hi);
    }

    fn alloc_child(&mut self, parent: usize, comp: PatternComp, stats: &mut ProbeStats) -> usize {
        let mut pattern = self.nodes[parent].pattern.clone();
        pattern.0.push(comp);
        let id = self.nodes.len();
        stats.nodes_created += 1;
        self.nodes.push(Node {
            pattern,
            equalities: SortedList::new(),
            star: None,
            intervals: IntervalSet::new(),
        });
        id
    }

    /// Inserts an open interval at a node, maintaining invariant (2): any
    /// equality child whose label falls in the interval is deleted (its
    /// subtree is subsumed).
    fn node_insert_open(&mut self, v: usize, lo: Val, hi: Val) {
        if self.nodes[v].intervals.insert_open(lo, hi) {
            let clo = lo.saturating_add(1);
            let chi = hi.saturating_sub(1);
            if clo <= chi {
                self.nodes[v].equalities.delete_range_closed(clo, chi);
            }
        }
    }

    /// Inserts a closed range directly (memoization path).
    fn node_insert_closed(&mut self, v: usize, lo: Val, hi: Val) {
        if lo > hi {
            return;
        }
        if self.nodes[v].intervals.insert_closed(lo, hi) {
            self.nodes[v].equalities.delete_range_closed(lo, hi);
        }
    }

    /// Finds or creates the node for `pattern`, without attaching any
    /// interval (shadow-node creation for Algorithm 6; the paper uses a
    /// dummy `(−∞, 0)` insertion, we simply allocate an interval-free node).
    fn ensure_node(&mut self, pattern: &Pattern, stats: &mut ProbeStats) -> usize {
        let mut v = ROOT;
        for comp in &pattern.0 {
            v = match comp {
                PatternComp::Eq(val) => match self.nodes[v].equalities.find(*val) {
                    Some(&c) => c,
                    None => {
                        let c = self.alloc_child(v, PatternComp::Eq(*val), stats);
                        self.nodes[v].equalities.insert(*val, c);
                        c
                    }
                },
                PatternComp::Star => match self.nodes[v].star {
                    Some(c) => c,
                    None => {
                        let c = self.alloc_child(v, PatternComp::Star, stats);
                        self.nodes[v].star = Some(c);
                        c
                    }
                },
            };
        }
        v
    }

    /// Extends a frontier of prefix-matching nodes by one chosen value.
    fn frontier_extend(&self, frontier: &[usize], v: Val) -> Vec<usize> {
        let mut out = Vec::with_capacity(frontier.len() * 2);
        for &u in frontier {
            if let Some(&c) = self.nodes[u].equalities.find(v) {
                out.push(c);
            }
            if let Some(c) = self.nodes[u].star {
                out.push(c);
            }
        }
        out
    }

    /// Recomputes the whole frontier stack for prefix `t` (used after
    /// backtracking, when constraint insertion may have created nodes that
    /// an incrementally-maintained stack would miss).
    fn rebuild_frontiers(&self, t: &[Val]) -> Vec<Vec<usize>> {
        let mut fs = Vec::with_capacity(t.len() + 1);
        fs.push(vec![ROOT]);
        for (i, &v) in t.iter().enumerate() {
            let next = self.frontier_extend(&fs[i], v);
            fs.push(next);
        }
        fs
    }

    /// `getProbePoint` (Algorithm 3 / Algorithm 6): returns an active tuple
    /// — one satisfying no stored constraint — or `None` when the
    /// constraints cover the whole output space.
    pub fn get_probe_point(&mut self, stats: &mut ProbeStats) -> Option<Vec<Val>> {
        let n = self.n_attrs;
        let mut t: Vec<Val> = Vec::with_capacity(n);
        let mut frontiers: Vec<Vec<usize>> = vec![vec![ROOT]];
        loop {
            let i = t.len();
            if i == n {
                stats.probe_points += 1;
                return Some(t);
            }
            let mut g: Vec<usize> = frontiers[i]
                .iter()
                .copied()
                .filter(|&u| !self.nodes[u].intervals.is_empty())
                .collect();
            if g.is_empty() {
                // No constraint applies: probe the sentinel (Appendix D.1
                // probes t = (−1, −1, −1) first).
                let f = self.frontier_extend(&frontiers[i], PROBE_START);
                t.push(PROBE_START);
                frontiers.push(f);
                continue;
            }
            // Linearize: most specialized first (strict specializations have
            // strictly more equality components).
            g.sort_by(|&a, &b| {
                self.nodes[b]
                    .pattern
                    .eq_count()
                    .cmp(&self.nodes[a].pattern.eq_count())
                    .then_with(|| self.nodes[a].pattern.cmp(&self.nodes[b].pattern))
            });
            if self.mode == ProbeMode::Chain {
                debug_assert!(
                    g.windows(2).all(|w| self.nodes[w[0]]
                        .pattern
                        .specializes(&self.nodes[w[1]].pattern)),
                    "Chain mode requires the principal filter to be a chain \
                     (Proposition 4.2); use ProbeMode::General for this GAO"
                );
            }
            // Build (shadow, original) pairs via suffix meets (Algorithm 6
            // lines 9–14). For a chain every shadow equals its original.
            let chain = self.build_shadow_chain(&g, stats);
            let bottom_pattern = self.nodes[chain[0].0].pattern.clone();
            let val = self.next_shadow_chain_val(PROBE_START, 0, &chain, stats);
            if val == POS_INF {
                // Exhausted: backtrack (Algorithm 3 lines 12–16).
                let i0 = bottom_pattern.last_eq_position();
                if i0 == 0 {
                    return None;
                }
                stats.backtracks += 1;
                let c = Constraint::backtrack(&bottom_pattern, i0);
                self.insert_constraint(&c, stats);
                t.truncate(i0 - 1);
                frontiers = self.rebuild_frontiers(&t);
            } else {
                let f = self.frontier_extend(&frontiers[i], val);
                t.push(val);
                frontiers.push(f);
            }
        }
    }

    /// Builds the shadow chain for a linearized filter `g` (most
    /// specialized first): `pairs[j] = (shadow_j, g[j])` where `shadow_j`
    /// realizes `P̄(u_j) = ∧_{i ≥ j} P(u_i)`.
    fn build_shadow_chain(&mut self, g: &[usize], stats: &mut ProbeStats) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(g.len());
        let mut meet: Option<Pattern> = None;
        for &u in g.iter().rev() {
            let pu = self.nodes[u].pattern.clone();
            let m = match meet {
                None => pu.clone(),
                Some(prev) => prev
                    .meet(&pu)
                    .expect("patterns in a principal filter are compatible"),
            };
            let sh = if m == pu {
                u
            } else {
                self.ensure_node(&m, stats)
            };
            pairs.push((sh, u));
            meet = Some(m);
        }
        pairs.reverse();
        pairs
    }

    /// `nextChainVal` on the two-element chain `{shadow, original}`
    /// (Algorithm 7 line 3/9 delegating to Algorithm 4): the smallest
    /// `y ≥ x` free at both nodes; the inferred gap `[x, y−1]` is memoized
    /// at the shadow.
    fn next_pair(&mut self, x: Val, sh: usize, orig: usize, stats: &mut ProbeStats) -> Val {
        if sh == orig {
            stats.next_calls += 1;
            return self.nodes[sh].intervals.next(x);
        }
        let mut y = x;
        loop {
            stats.next_calls += 2;
            let z = self.nodes[orig].intervals.next(y);
            y = self.nodes[sh].intervals.next(z);
            if y == z {
                break;
            }
        }
        if self.memoize && y > x {
            self.node_insert_closed(sh, x, y - 1);
        }
        y
    }

    /// `nextShadowChainVal` (Algorithm 7): the smallest `y ≥ x` free at
    /// every (shadow, original) pair from position `j` up the chain.
    /// Inferred gaps are memoized at the shadow of position `j`.
    fn next_shadow_chain_val(
        &mut self,
        x: Val,
        j: usize,
        chain: &[(usize, usize)],
        stats: &mut ProbeStats,
    ) -> Val {
        let (sh, orig) = chain[j];
        if j + 1 == chain.len() {
            return self.next_pair(x, sh, orig, stats);
        }
        let mut y = x;
        loop {
            let z = self.next_shadow_chain_val(y, j + 1, chain, stats);
            y = self.next_pair(z, sh, orig, stats);
            if y == z {
                break;
            }
        }
        if self.memoize && y > x {
            self.node_insert_closed(sh, x, y - 1);
        }
        y
    }

    /// True when the tuple is covered by some stored constraint — the
    /// complement of "active" (test helper; production code relies on
    /// `get_probe_point` never returning covered tuples).
    pub fn covers_tuple(&self, t: &[Val]) -> bool {
        assert_eq!(t.len(), self.n_attrs);
        let mut frontier = vec![ROOT];
        for (i, &v) in t.iter().enumerate() {
            for &u in &frontier {
                if self.nodes[u].intervals.covers(v) {
                    return true;
                }
            }
            if i + 1 < t.len() {
                frontier = self.frontier_extend(&frontier, v);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PatternComp::{Eq, Star};

    fn stats() -> ProbeStats {
        ProbeStats::default()
    }

    /// Confine probes to `[0, dom]^n` by inserting box constraints.
    fn confine(cds: &mut ConstraintTree, n: usize, dom: Val, st: &mut ProbeStats) {
        for i in 0..n {
            let pat = Pattern::all_star(i);
            cds.insert_constraint(&Constraint::new(pat.clone(), crate::NEG_INF, 0), st);
            cds.insert_constraint(&Constraint::new(pat, dom, crate::POS_INF), st);
        }
    }

    /// Advances `t` through `[0, dom]^n` in lexicographic order.
    fn next_odometer(t: &mut [Val], dom: Val) -> bool {
        for k in (0..t.len()).rev() {
            if t[k] < dom {
                t[k] += 1;
                for x in &mut t[k + 1..] {
                    *x = 0;
                }
                return true;
            }
        }
        false
    }

    /// Drains all probe points, feeding back point exclusions — the CDS
    /// then enumerates exactly the active tuples of the box.
    fn drain(cds: &mut ConstraintTree, st: &mut ProbeStats) -> Vec<Vec<Val>> {
        let mut out = Vec::new();
        while let Some(t) = cds.get_probe_point(st) {
            assert!(!cds.covers_tuple(&t), "probe {t:?} is not active");
            cds.insert_constraint(&Constraint::point_exclusion(&t), st);
            out.push(t);
            assert!(out.len() < 100_000, "runaway probe loop");
        }
        out
    }

    #[test]
    fn empty_cds_probes_sentinels() {
        let mut cds = ConstraintTree::new(3, ProbeMode::General);
        let mut st = stats();
        let t = cds.get_probe_point(&mut st).unwrap();
        assert_eq!(t, vec![-1, -1, -1]);
    }

    #[test]
    fn full_cover_returns_none() {
        let mut cds = ConstraintTree::new(2, ProbeMode::Chain);
        let mut st = stats();
        cds.insert_constraint(
            &Constraint::new(Pattern::empty(), crate::NEG_INF, crate::POS_INF),
            &mut st,
        );
        assert_eq!(cds.get_probe_point(&mut st), None);
    }

    #[test]
    fn chain_mode_enumerates_box() {
        let mut cds = ConstraintTree::new(2, ProbeMode::Chain);
        let mut st = stats();
        confine(&mut cds, 2, 3, &mut st);
        // Exclude the strip B ∈ (0, 2) = {1}.
        cds.insert_constraint(&Constraint::new(Pattern::all_star(1), 0, 2), &mut st);
        let probes = drain(&mut cds, &mut st);
        let mut expect = Vec::new();
        for a in 0..=3 {
            for b in [0, 2, 3] {
                expect.push(vec![a, b]);
            }
        }
        let mut got = probes.clone();
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
        assert_eq!(st.probe_points, 12);
    }

    #[test]
    fn example_4_1_memoization_terminates_quickly() {
        // Example 4.1: constraints (i)–(iv) cover the whole [1,N]² × C
        // space; the lazy chain walk with memoization must finish without
        // Ω(N³) work.
        let n: Val = 12;
        let mut cds = ConstraintTree::new(3, ProbeMode::Chain);
        let mut st = stats();
        confine(&mut cds, 3, n, &mut st);
        for a in 1..=n {
            for b in 1..=n {
                // (i) ⟨a, b, (−∞, 1)⟩
                cds.insert_constraint(
                    &Constraint::new(Pattern::all_eq(&[a, b]), crate::NEG_INF, 1),
                    &mut st,
                );
            }
        }
        for b in 1..=n {
            for i in 1..=n {
                // (ii) ⟨˚, b, (2i−2, 2i)⟩ — forbids odd values.
                cds.insert_constraint(
                    &Constraint::new(Pattern(vec![Star, Eq(b)]), 2 * i - 2, 2 * i),
                    &mut st,
                );
            }
        }
        for i in 1..=n {
            // (iii) ⟨˚, ˚, (2i−1, 2i+1)⟩ — forbids even values.
            cds.insert_constraint(
                &Constraint::new(Pattern::all_star(2), 2 * i - 1, 2 * i + 1),
                &mut st,
            );
        }
        // (iv) ⟨˚, ˚, (2N, +∞)⟩.
        cds.insert_constraint(
            &Constraint::new(Pattern::all_star(2), 2 * n, crate::POS_INF),
            &mut st,
        );
        // Also rule out a=0, b=0, c=0 rows so only the paper's [1,N] grid
        // remains, and C ∈ (0,1) is empty anyway.
        cds.insert_constraint(&Constraint::new(Pattern::empty(), -1, 1), &mut st);
        cds.insert_constraint(&Constraint::new(Pattern::all_star(1), -1, 1), &mut st);
        cds.insert_constraint(&Constraint::new(Pattern::all_star(2), -1, 1), &mut st);
        let probes = drain(&mut cds, &mut st);
        assert!(probes.is_empty(), "space is fully covered: {probes:?}");
        // The whole run must be quadratic-ish, not cubic: allow a generous
        // constant but far below N³ = 1728 next-calls per (a,b) pair.
        assert!(
            st.next_calls < 40 * (n as u64) * (n as u64),
            "next_calls = {} suggests no memoization",
            st.next_calls
        );
    }

    #[test]
    fn memoization_ablation_blows_up_chain_walks() {
        // Example 4.1 with and without memoization: the constraint
        // structure is identical, so outputs agree, but the Next-call
        // count must be dramatically larger without the inferred-gap
        // inserts (Lemma 4.3's amortization).
        fn run(memoize: bool, n: Val) -> u64 {
            let mut cds = ConstraintTree::with_options(3, ProbeMode::Chain, memoize);
            let mut st = stats();
            // Confine A and B to [1, n] so every prefix hits the covered
            // grid (the paper's instance has a, b ∈ [N]).
            for d in 0..2usize {
                let p = Pattern::all_star(d);
                cds.insert_constraint(&Constraint::new(p.clone(), crate::NEG_INF, 1), &mut st);
                cds.insert_constraint(&Constraint::new(p, n, crate::POS_INF), &mut st);
            }
            // (i): ⟨a, b, (−∞, 1)⟩ — make every (a, b) pattern exist, so
            // the chain has three levels and backtracking stays per-pair.
            for a in 1..=n {
                for b in 1..=n {
                    cds.insert_constraint(
                        &Constraint::new(Pattern::all_eq(&[a, b]), crate::NEG_INF, 1),
                        &mut st,
                    );
                }
            }
            // (ii): ⟨˚, b, (2i−2, 2i)⟩ forbids the odd C values per b.
            for b in 1..=n {
                for i in 1..=n {
                    cds.insert_constraint(
                        &Constraint::new(Pattern(vec![Star, Eq(b)]), 2 * i - 2, 2 * i),
                        &mut st,
                    );
                }
            }
            // (iii): ⟨˚, ˚, (2i−1, 2i+1)⟩ forbids the even values.
            for i in 1..=n {
                cds.insert_constraint(
                    &Constraint::new(Pattern::all_star(2), 2 * i - 1, 2 * i + 1),
                    &mut st,
                );
            }
            // (iv) and the low end.
            cds.insert_constraint(
                &Constraint::new(Pattern::all_star(2), 2 * n, crate::POS_INF),
                &mut st,
            );
            cds.insert_constraint(
                &Constraint::new(Pattern::all_star(2), crate::NEG_INF, 1),
                &mut st,
            );
            assert_eq!(cds.get_probe_point(&mut st), None, "space fully covered");
            st.next_calls
        }
        let n: Val = 24;
        let with_memo = run(true, n);
        let without_memo = run(false, n);
        assert!(
            without_memo > 4 * with_memo,
            "memoization must save work: with={with_memo} without={without_memo}"
        );
    }

    #[test]
    fn general_mode_handles_incomparable_patterns() {
        // Patterns ⟨a,˚⟩ and ⟨˚,b⟩ are incomparable: the filter of (a, b)
        // is not a chain, exercising the shadow machinery.
        let mut cds = ConstraintTree::new(3, ProbeMode::General);
        let mut st = stats();
        confine(&mut cds, 3, 2, &mut st);
        // ⟨1, ˚, (−∞, 2)⟩ and ⟨˚, 1, (0, +∞)⟩ — together they kill all
        // (1, 1, c): c < 2 by the first, c > 0 by the second.
        cds.insert_constraint(
            &Constraint::new(Pattern(vec![Eq(1), Star]), crate::NEG_INF, 2),
            &mut st,
        );
        cds.insert_constraint(
            &Constraint::new(Pattern(vec![Star, Eq(1)]), 0, crate::POS_INF),
            &mut st,
        );
        let probes = drain(&mut cds, &mut st);
        for t in &probes {
            assert!(!(t[0] == 1 && t[1] == 1), "(1,1,c) must be excluded: {t:?}");
        }
        // |box| = 27; first strip covers a=1 ∧ c∈{0,1} (6 tuples), second
        // covers b=1 ∧ c∈{1,2} (6 tuples), overlapping at (1,1,1): 16 left.
        assert_eq!(probes.len(), 16);
    }

    #[test]
    fn probes_match_brute_force_on_random_constraints() {
        // Deterministic xorshift so the test is reproducible.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for trial in 0..30 {
            let n = 2 + (trial % 2); // 2 or 3 attributes
            let dom: Val = 4;
            let mut cds = ConstraintTree::new(n, ProbeMode::General);
            let mut st = stats();
            confine(&mut cds, n, dom, &mut st);
            let mut constraints = Vec::new();
            for _ in 0..8 {
                let depth = rng(n as u64) as usize;
                let pattern = Pattern(
                    (0..depth)
                        .map(|_| {
                            if rng(2) == 0 {
                                Star
                            } else {
                                Eq(rng(dom as u64 + 1) as Val)
                            }
                        })
                        .collect(),
                );
                let a = rng(dom as u64 + 2) as Val - 1;
                let b = a + rng(4) as Val;
                let c = Constraint::new(pattern, a, b);
                cds.insert_constraint(&c, &mut st);
                constraints.push(c);
            }
            let mut got = drain(&mut cds, &mut st);
            got.sort();
            // Brute force over the box.
            let mut expect = Vec::new();
            let mut t = vec![0; n];
            loop {
                if !constraints.iter().any(|c| c.covers(&t)) {
                    expect.push(t.clone());
                }
                if !next_odometer(&mut t, dom) {
                    break;
                }
            }
            expect.sort();
            assert_eq!(got, expect, "trial {trial}");
        }
    }

    #[test]
    fn subsumed_constraints_are_dropped() {
        let mut cds = ConstraintTree::new(2, ProbeMode::Chain);
        let mut st = stats();
        // Cover A ∈ (0, 10); then a constraint under A = 5 is subsumed.
        cds.insert_constraint(&Constraint::new(Pattern::empty(), 0, 10), &mut st);
        let before = cds.node_count();
        cds.insert_constraint(&Constraint::new(Pattern::all_eq(&[5]), 0, 3), &mut st);
        assert_eq!(
            cds.node_count(),
            before,
            "subsumed insert allocates nothing"
        );
    }

    #[test]
    fn equality_children_deleted_when_interval_covers_them() {
        let mut cds = ConstraintTree::new(2, ProbeMode::Chain);
        let mut st = stats();
        cds.insert_constraint(&Constraint::new(Pattern::all_eq(&[5]), 0, 3), &mut st);
        // Now cover A ∈ (4, 6) ⇒ the =5 child is subsumed and deleted.
        cds.insert_constraint(&Constraint::new(Pattern::empty(), 4, 6), &mut st);
        // Probing must never revisit A = 5; fully cover the rest and check
        // termination.
        cds.insert_constraint(
            &Constraint::new(Pattern::empty(), crate::NEG_INF, 5),
            &mut st,
        );
        cds.insert_constraint(
            &Constraint::new(Pattern::empty(), 5, crate::POS_INF),
            &mut st,
        );
        assert_eq!(cds.get_probe_point(&mut st), None);
    }

    #[test]
    fn backtracking_inserts_prefix_exclusion() {
        // Under prefix (2, ·) everything is covered; elsewhere free.
        let mut cds = ConstraintTree::new(2, ProbeMode::Chain);
        let mut st = stats();
        confine(&mut cds, 2, 3, &mut st);
        cds.insert_constraint(
            &Constraint::new(Pattern::all_eq(&[2]), crate::NEG_INF, crate::POS_INF),
            &mut st,
        );
        let probes = drain(&mut cds, &mut st);
        assert!(probes.iter().all(|t| t[0] != 2));
        assert_eq!(probes.len(), 3 * 4);
        assert!(st.backtracks >= 1);
    }

    #[test]
    fn worked_example_d1_constraint_sequence() {
        // Appendix D.1: after step 1's constraints, (1, 2, 2) is active.
        let mut cds = ConstraintTree::new(3, ProbeMode::Chain);
        let mut st = stats();
        let t0 = cds.get_probe_point(&mut st).unwrap();
        assert_eq!(t0, vec![-1, -1, -1]);
        for c in [
            Constraint::new(Pattern::empty(), crate::NEG_INF, 1), // ⟨(−∞,1),˚,˚⟩
            Constraint::new(Pattern(vec![Eq(1)]), crate::NEG_INF, 1), // ⟨1,(−∞,1),˚⟩
            Constraint::new(Pattern(vec![Star]), crate::NEG_INF, 2), // ⟨˚,(−∞,2),˚⟩
            Constraint::new(Pattern(vec![Star, Eq(2)]), crate::NEG_INF, 2), // ⟨˚,=2,(−∞,2)⟩
            Constraint::new(Pattern(vec![Star, Star]), crate::NEG_INF, 1), // ⟨˚,˚,(−∞,1)⟩
        ] {
            cds.insert_constraint(&c, &mut st);
        }
        let t1 = cds.get_probe_point(&mut st).unwrap();
        assert_eq!(t1, vec![1, 2, 2]);
        // Step 2: ⟨˚,˚,(1,3)⟩ → next probe (1,2,3).
        cds.insert_constraint(&Constraint::new(Pattern(vec![Star, Star]), 1, 3), &mut st);
        assert_eq!(cds.get_probe_point(&mut st).unwrap(), vec![1, 2, 3]);
        // Step 3: ⟨˚,=2,(2,4)⟩ → next probe (1,2,4).
        cds.insert_constraint(&Constraint::new(Pattern(vec![Star, Eq(2)]), 2, 4), &mut st);
        assert_eq!(cds.get_probe_point(&mut st).unwrap(), vec![1, 2, 4]);
        // Step 4: ⟨˚,˚,(3,+∞)⟩ → next probe (1,3,1).
        cds.insert_constraint(
            &Constraint::new(Pattern(vec![Star, Star]), 3, crate::POS_INF),
            &mut st,
        );
        assert_eq!(cds.get_probe_point(&mut st).unwrap(), vec![1, 3, 1]);
        // Step 5: the B-gap discovered around b = 3 in T (whose first-level
        // values are {2}) is (2, +∞) — the paper's D.1 prints it as
        // (3, +∞), which would leave b = 3 active; the FindGap definition
        // gives (2, +∞) — plus ⟨˚,=2,(4,+∞)⟩. After these, B is confined
        // to {2} and the b = 2 column has no free C value, so the CDS must
        // report that the whole space is covered (backtracking through an
        // all-star bottom pattern), exactly as D.1 concludes.
        cds.insert_constraint(
            &Constraint::new(Pattern(vec![Star]), 2, crate::POS_INF),
            &mut st,
        );
        cds.insert_constraint(
            &Constraint::new(Pattern(vec![Star, Eq(2)]), 4, crate::POS_INF),
            &mut st,
        );
        assert_eq!(cds.get_probe_point(&mut st), None);
        assert!(st.backtracks >= 1);
    }
}
