//! The `SortedList` building block (Appendix E.1, Proposition E.2).
//!
//! A sorted dictionary keyed by domain values, carrying an arbitrary payload
//! per key (the `ConstraintTree` stores child-node handles). Supports the
//! five operations of Prop E.2 — `Find`, `FindLub`, `insert`, `Delete`,
//! `DeleteInterval` — each in `O(log N)` (amortized for `DeleteInterval`,
//! whose cost is charged to the earlier insertions of the deleted keys).

use std::collections::BTreeMap;

use crate::Val;

/// A sorted key → payload dictionary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedList<T> {
    map: BTreeMap<Val, T>,
}

impl<T> SortedList<T> {
    /// An empty list.
    pub fn new() -> Self {
        SortedList {
            map: BTreeMap::new(),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no key is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `Find(v)`: payload stored under `v`, if any.
    pub fn find(&self, v: Val) -> Option<&T> {
        self.map.get(&v)
    }

    /// `FindLub(v)`: the smallest key `v' ≥ v`, with its payload.
    pub fn find_lub(&self, v: Val) -> Option<(Val, &T)> {
        self.map.range(v..).next().map(|(&k, t)| (k, t))
    }

    /// Largest key `v' ≤ v`, with its payload (the mirror of `FindLub`,
    /// needed by glb-style queries).
    pub fn find_glb(&self, v: Val) -> Option<(Val, &T)> {
        self.map.range(..=v).next_back().map(|(&k, t)| (k, t))
    }

    /// `insert(v)`: stores `payload` under `v`, returning the previous
    /// payload if the key existed.
    pub fn insert(&mut self, v: Val, payload: T) -> Option<T> {
        self.map.insert(v, payload)
    }

    /// `Delete(v)`: removes the key, returning its payload.
    pub fn delete(&mut self, v: Val) -> Option<T> {
        self.map.remove(&v)
    }

    /// `DeleteInterval` over the *closed* range `[lo, hi]`: removes every
    /// key inside and returns the removed entries in order. (The paper
    /// phrases this with open intervals; over integers `(l, r)` equals
    /// `[l+1, r−1]` and callers translate.)
    pub fn delete_range_closed(&mut self, lo: Val, hi: Val) -> Vec<(Val, T)> {
        if lo > hi {
            return Vec::new();
        }
        let keys: Vec<Val> = self.map.range(lo..=hi).map(|(&k, _)| k).collect();
        keys.into_iter()
            .map(|k| {
                let t = self.map.remove(&k).expect("key just seen");
                (k, t)
            })
            .collect()
    }

    /// Iterates `(key, payload)` in increasing key order.
    pub fn iter(&self) -> impl Iterator<Item = (Val, &T)> {
        self.map.iter().map(|(&k, t)| (k, t))
    }

    /// Iterates keys in increasing order.
    pub fn keys(&self) -> impl Iterator<Item = Val> + '_ {
        self.map.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_and_lub() {
        let mut l = SortedList::new();
        l.insert(5, "five");
        l.insert(9, "nine");
        l.insert(2, "two");
        assert_eq!(l.find(5), Some(&"five"));
        assert_eq!(l.find(4), None);
        assert_eq!(l.find_lub(3), Some((5, &"five")));
        assert_eq!(l.find_lub(5), Some((5, &"five")));
        assert_eq!(l.find_lub(10), None);
        assert_eq!(l.find_glb(4), Some((2, &"two")));
        assert_eq!(l.find_glb(1), None);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn delete_single_and_range() {
        let mut l = SortedList::new();
        for v in [1, 3, 5, 7, 9] {
            l.insert(v, v * 10);
        }
        assert_eq!(l.delete(5), Some(50));
        assert_eq!(l.delete(5), None);
        let removed = l.delete_range_closed(2, 8);
        assert_eq!(removed, vec![(3, 30), (7, 70)]);
        assert_eq!(l.keys().collect::<Vec<_>>(), vec![1, 9]);
        assert!(l.delete_range_closed(100, 50).is_empty());
    }

    #[test]
    fn insert_replaces_payload() {
        let mut l = SortedList::new();
        assert_eq!(l.insert(1, 'a'), None);
        assert_eq!(l.insert(1, 'b'), Some('a'));
        assert_eq!(l.find(1), Some(&'b'));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut l = SortedList::new();
        for v in [9, 1, 5] {
            l.insert(v, ());
        }
        assert_eq!(l.keys().collect::<Vec<_>>(), vec![1, 5, 9]);
        assert!(!l.is_empty());
    }
}
