//! Constraint data structures (CDS) for the Minesweeper join algorithm.
//!
//! Section 3.3 and Appendix E of "Beyond Worst-case Analysis for Joins with
//! Minesweeper" define the CDS interface: `InsConstraint(c)` stores a
//! discovered gap, and `getProbePoint()` returns a tuple of the output space
//! not covered by any stored constraint (an *active* tuple), or `null`.
//!
//! This crate provides:
//! * [`IntervalSet`] — the `IntervalList` building block (Prop E.3): merged
//!   open gaps over an integer domain with `Next` / `covers` / `insert`;
//! * [`SortedList`] — the sorted-dictionary building block (Prop E.2);
//! * [`Pattern`] / the specialization poset of Section 4.2;
//! * [`Constraint`] — an equality/wildcard pattern followed by one open
//!   interval component;
//! * [`ConstraintTree`] — the CDS proper (Figure 1, Algorithm 5), with
//!   `getProbePoint` implemented for β-acyclic GAOs (Algorithms 3–4) and
//!   general GAOs via shadow chains (Algorithms 6–7);
//! * [`TriangleCds`] — the dyadic-tree CDS of Appendix L that powers the
//!   `Õ(|C|^{3/2} + Z)` triangle join (Theorem 5.4).
//!
//! Open intervals `(l, r)` over the integer domain are stored as closed
//! integer ranges `[l+1, r−1]`; the paper's `±∞` endpoints map to the
//! sentinels of `minesweeper_storage::value` re-exported here as
//! [`NEG_INF`] / [`POS_INF`].

pub mod constraint;
pub mod dyadic;
pub mod interval;
pub mod pattern;
pub mod sorted_list;
pub mod tree;
pub mod triangle_cds;

pub use constraint::Constraint;
pub use dyadic::DyadicIntervalTree;
pub use interval::IntervalSet;
pub use pattern::{Pattern, PatternComp};
pub use sorted_list::SortedList;
pub use tree::{ConstraintTree, ProbeMode, ProbeStats};
pub use triangle_cds::TriangleCds;

/// Domain value type (shared with the storage layer: `i64` with infinity
/// sentinels).
pub type Val = i64;

/// `−∞` sentinel.
pub const NEG_INF: Val = Val::MIN;

/// `+∞` sentinel.
pub const POS_INF: Val = Val::MAX;

/// The sentinel probe value used when no constraint restricts a coordinate
/// yet; matches the `t = (−1, −1, −1)` first probe of the worked example in
/// Appendix D.1.
pub const PROBE_START: Val = -1;
