//! Patterns and the specialization partial order (Section 4.2).
//!
//! A *pattern* `p = ⟨p₁, …, p_k⟩` has components that are either equality
//! values or wildcards `˚`. Pattern `p'` is a **specialization** of `p`
//! (written `p' ⪯ p`) when `p'ᵢ = pᵢ` wherever `pᵢ` is an equality — i.e.
//! `p'` may turn wildcards into equalities but never the reverse. The
//! *principal filter* `G(t₁, …, t_i)` of a prefix consists of all CDS nodes
//! whose pattern generalizes `⟨t₁, …, t_i⟩`; Proposition 4.2 shows it is a
//! chain for β-acyclic queries under a nested elimination order.
//!
//! The **meet** `p ∧ q` (most general common specialization) exists whenever
//! `p` and `q` are *compatible* (agree on shared equality positions) and is
//! computed componentwise; Algorithm 6 uses suffix meets to build the
//! shadow chain for general queries.

use std::fmt;

use crate::Val;

/// One pattern component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternComp {
    /// Equality component `= v`.
    Eq(Val),
    /// Wildcard component `˚`.
    Star,
}

impl PatternComp {
    /// True for an equality component.
    pub fn is_eq(&self) -> bool {
        matches!(self, PatternComp::Eq(_))
    }
}

/// A pattern: a sequence of equality/wildcard components.
///
/// ```
/// use minesweeper_cds::{Pattern, PatternComp::{Eq, Star}};
/// let p = Pattern(vec![Eq(3), Star]);
/// let q = Pattern(vec![Star, Star]);
/// assert!(p.specializes(&q));                       // p ⪯ q
/// assert!(p.matches_prefix(&[3, 99]));
/// assert_eq!(p.meet(&Pattern(vec![Star, Eq(7)])),   // componentwise meet
///            Some(Pattern(vec![Eq(3), Eq(7)])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Pattern(pub Vec<PatternComp>);

impl Pattern {
    /// The empty pattern (the root of the CDS).
    pub fn empty() -> Self {
        Pattern(Vec::new())
    }

    /// A pattern of all equalities, matching exactly one prefix.
    pub fn all_eq(vals: &[Val]) -> Self {
        Pattern(vals.iter().map(|&v| PatternComp::Eq(v)).collect())
    }

    /// A pattern of `k` wildcards.
    pub fn all_star(k: usize) -> Self {
        Pattern(vec![PatternComp::Star; k])
    }

    /// Length of the pattern.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of equality components (the pattern's *size* in the credit
    /// accounting of Appendix G.2).
    pub fn eq_count(&self) -> usize {
        self.0.iter().filter(|c| c.is_eq()).count()
    }

    /// 1-based position of the last equality component, or 0 if none — the
    /// `i₀ = max{k : p̄_k ≠ ˚}` of Algorithm 3 line 11.
    pub fn last_eq_position(&self) -> usize {
        self.0
            .iter()
            .rposition(|c| c.is_eq())
            .map(|i| i + 1)
            .unwrap_or(0)
    }

    /// `self ⪯ other`: is `self` a specialization of `other`? Requires equal
    /// lengths.
    pub fn specializes(&self, other: &Pattern) -> bool {
        self.len() == other.len()
            && self.0.iter().zip(&other.0).all(|(s, o)| match o {
                PatternComp::Star => true,
                PatternComp::Eq(v) => *s == PatternComp::Eq(*v),
            })
    }

    /// `other ⪯ self`.
    pub fn generalizes(&self, other: &Pattern) -> bool {
        other.specializes(self)
    }

    /// True when the two patterns are comparable in the specialization
    /// order.
    pub fn comparable(&self, other: &Pattern) -> bool {
        self.specializes(other) || other.specializes(self)
    }

    /// Does a concrete prefix match this pattern (pattern generalizes the
    /// all-equality pattern of the prefix)?
    pub fn matches_prefix(&self, prefix: &[Val]) -> bool {
        self.len() == prefix.len()
            && self.0.iter().zip(prefix).all(|(c, &v)| match c {
                PatternComp::Star => true,
                PatternComp::Eq(u) => *u == v,
            })
    }

    /// The meet `self ∧ other` under specialization: componentwise, an
    /// equality wins over a wildcard. Returns `None` when the patterns are
    /// incompatible (two different equalities at one position) — never the
    /// case inside a principal filter.
    pub fn meet(&self, other: &Pattern) -> Option<Pattern> {
        if self.len() != other.len() {
            return None;
        }
        let mut out = Vec::with_capacity(self.len());
        for (a, b) in self.0.iter().zip(&other.0) {
            match (a, b) {
                (PatternComp::Star, x) | (x, PatternComp::Star) => out.push(*x),
                (PatternComp::Eq(u), PatternComp::Eq(v)) => {
                    if u != v {
                        return None;
                    }
                    out.push(PatternComp::Eq(*u));
                }
            }
        }
        Some(Pattern(out))
    }

    /// The prefix of this pattern of the given length.
    pub fn prefix(&self, len: usize) -> Pattern {
        Pattern(self.0[..len].to_vec())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match c {
                PatternComp::Eq(v) => write!(f, "{v}")?,
                PatternComp::Star => write!(f, "*")?,
            }
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PatternComp::{Eq, Star};

    #[test]
    fn specialization_examples_from_figure_4() {
        // P(u) = ⟨3,˚,10⟩ ⪯ P(v) = ⟨˚,˚,10⟩ (Figure 4).
        let u = Pattern(vec![Eq(3), Star, Eq(10)]);
        let v = Pattern(vec![Star, Star, Eq(10)]);
        assert!(u.specializes(&v));
        assert!(!v.specializes(&u));
        assert!(v.generalizes(&u));
        assert!(u.comparable(&v));
    }

    #[test]
    fn incomparable_patterns() {
        let a = Pattern(vec![Eq(1), Star]);
        let b = Pattern(vec![Star, Eq(2)]);
        assert!(!a.comparable(&b));
        // Their meet is ⟨1,2⟩.
        assert_eq!(a.meet(&b), Some(Pattern(vec![Eq(1), Eq(2)])));
    }

    #[test]
    fn meet_of_incompatible_is_none() {
        let a = Pattern(vec![Eq(1)]);
        let b = Pattern(vec![Eq(2)]);
        assert_eq!(a.meet(&b), None);
        assert_eq!(a.meet(&Pattern::all_star(2)), None, "length mismatch");
    }

    #[test]
    fn meet_laws_on_compatible_patterns() {
        // meet is the greatest lower bound: p∧q ⪯ p, p∧q ⪯ q; idempotent;
        // commutative.
        let p = Pattern(vec![Eq(1), Star, Star, Eq(4)]);
        let q = Pattern(vec![Eq(1), Eq(2), Star, Star]);
        let m = p.meet(&q).unwrap();
        assert!(m.specializes(&p));
        assert!(m.specializes(&q));
        assert_eq!(p.meet(&q), q.meet(&p));
        assert_eq!(p.meet(&p), Some(p.clone()));
        assert_eq!(m, Pattern(vec![Eq(1), Eq(2), Star, Eq(4)]));
    }

    #[test]
    fn prefix_matching() {
        let p = Pattern(vec![Star, Eq(7)]);
        assert!(p.matches_prefix(&[100, 7]));
        assert!(!p.matches_prefix(&[100, 8]));
        assert!(!p.matches_prefix(&[100]));
        assert!(Pattern::empty().matches_prefix(&[]));
    }

    #[test]
    fn last_eq_position_and_counts() {
        assert_eq!(Pattern::all_star(3).last_eq_position(), 0);
        assert_eq!(Pattern(vec![Star, Eq(5), Star]).last_eq_position(), 2);
        assert_eq!(Pattern::all_eq(&[1, 2]).last_eq_position(), 2);
        assert_eq!(Pattern(vec![Star, Eq(5), Star]).eq_count(), 1);
        assert_eq!(Pattern::all_eq(&[1, 2, 3]).eq_count(), 3);
    }

    #[test]
    fn display_formatting() {
        let p = Pattern(vec![Eq(2), Star, Eq(7)]);
        assert_eq!(p.to_string(), "⟨2,*,7⟩");
        assert_eq!(Pattern::empty().to_string(), "⟨⟩");
    }

    #[test]
    fn specialization_is_a_partial_order() {
        let pats = [
            Pattern(vec![Star, Star]),
            Pattern(vec![Eq(1), Star]),
            Pattern(vec![Star, Eq(2)]),
            Pattern(vec![Eq(1), Eq(2)]),
        ];
        // Reflexive.
        for p in &pats {
            assert!(p.specializes(p));
        }
        // Antisymmetric.
        for p in &pats {
            for q in &pats {
                if p.specializes(q) && q.specializes(p) {
                    assert_eq!(p, q);
                }
            }
        }
        // Transitive.
        for p in &pats {
            for q in &pats {
                for r in &pats {
                    if p.specializes(q) && q.specializes(r) {
                        assert!(p.specializes(r));
                    }
                }
            }
        }
        // ⟨1,2⟩ is the bottom of this filter.
        let bottom = &pats[3];
        for p in &pats {
            assert!(bottom.specializes(p));
        }
    }
}
