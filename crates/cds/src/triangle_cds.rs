//! The specialized CDS for the triangle query (Appendix L).
//!
//! For `Q∆ = R(A,B) ⋈ S(B,C) ⋈ T(A,C)` under GAO `(A, B, C)` the generic
//! `ConstraintTree` wastes `Ω(|C|²)` time re-discovering that many `(a, b)`
//! prefixes are dead. The triangle CDS instead stores
//!
//! * `I()`       — `A`-gaps `⟨(l,r), ˚, ˚⟩`,
//! * `I(˚)`      — `B`-gaps `⟨˚, (l,r), ˚⟩`,
//! * `I(=a)`     — `B`-gaps `⟨a, (l,r), ˚⟩` (one set per `a`),
//! * `I(=a, ˚)`  — `C`-gaps `⟨a, ˚, (l,r)⟩`,
//! * `I(˚, ˚)`   — `C`-gaps `⟨˚, ˚, (l,r)⟩` (not produced by `Q∆` itself
//!   but supported for completeness),
//! * `I(˚, =b)`  — `C`-gaps `⟨˚, b, (l,r)⟩` in a [`DyadicIntervalTree`]
//!   whose internal nodes cache intersections (invariant (7)),
//! * `I(=a, =b)` — output exclusions `⟨a, b, (c−1, c+1)⟩`,
//!
//! plus the per-`(a, dyadic node)` monotone scan caches of Algorithm 10.
//! `get_probe_point` walks `a → b → (dyadic descent) → c`; a subtree whose
//! cached scan hits `+∞` is pruned by inserting its whole `B`-range into
//! `I(=a)` — this is the step that brings the probe count down from
//! `Ω(|C|²)` pairs to `O(|C|)` explored pairs (Theorem 5.4).
//!
//! This implementation corrects two gaps in the paper's Algorithm 10
//! pseudocode (see DESIGN.md): the `b = +∞` case inserts an `A`-exclusion
//! (otherwise the algorithm would loop), and the dyadic descent follows the
//! root-to-leaf path of the currently selected *free* `b` (so the returned
//! probe is guaranteed active with respect to `B`-constraints as well).

use std::collections::BTreeMap;

use crate::constraint::Constraint;
use crate::dyadic::{DyadicIntervalTree, DyadicNode};
use crate::interval::IntervalSet;
use crate::pattern::PatternComp;
use crate::tree::ProbeStats;
use crate::{Val, NEG_INF, POS_INF, PROBE_START};

/// The triangle constraint data structure.
pub struct TriangleCds {
    /// `A`-gaps.
    a_set: IntervalSet,
    /// `B`-gaps under pattern `⟨˚⟩` (plus the domain clamp).
    b_star: IntervalSet,
    /// `B`-gaps under `⟨a⟩`.
    b_under_a: BTreeMap<Val, IntervalSet>,
    /// `C`-gaps under `⟨a, ˚⟩`.
    c_under_a: BTreeMap<Val, IntervalSet>,
    /// `C`-gaps under `⟨˚, ˚⟩`.
    c_global: IntervalSet,
    /// `C`-gaps under `⟨˚, b⟩`, with dyadic intersection caching.
    dyadic: DyadicIntervalTree,
    /// `C`-gaps under `⟨a, b⟩` (output exclusions).
    c_under_ab: BTreeMap<(Val, Val), IntervalSet>,
    /// Monotone scan cache per `(a, dyadic node)` (Algorithm 10's
    /// `GetCache`/`Cache`).
    cache: BTreeMap<(Val, DyadicNode), Val>,
}

impl TriangleCds {
    /// Creates the CDS for `B`-domain `0..b_domain` (rounded up to a power
    /// of two internally). Probes for `b` outside the domain are
    /// suppressed by clamping `I(˚)` — sound because no data value lies
    /// there, matching the paper's `N = 2^d` setup.
    pub fn new(b_domain: Val) -> Self {
        let dyadic = DyadicIntervalTree::for_domain(b_domain);
        let mut b_star = IntervalSet::new();
        b_star.insert_closed(NEG_INF + 1, -1);
        b_star.insert_closed(dyadic.domain_size(), POS_INF - 1);
        TriangleCds {
            a_set: IntervalSet::new(),
            b_star,
            b_under_a: BTreeMap::new(),
            c_under_a: BTreeMap::new(),
            c_global: IntervalSet::new(),
            dyadic,
            c_under_ab: BTreeMap::new(),
            cache: BTreeMap::new(),
        }
    }

    /// Inserts a constraint over the 3-attribute output space. Accepts
    /// exactly the pattern shapes the triangle outer algorithm produces.
    pub fn insert_constraint(&mut self, c: &Constraint, stats: &mut ProbeStats) {
        stats.constraints_inserted += 1;
        if c.is_empty_interval() {
            return;
        }
        use PatternComp::{Eq, Star};
        match c.pattern.0.as_slice() {
            [] => {
                self.a_set.insert_open(c.lo, c.hi);
            }
            [Star] => {
                self.b_star.insert_open(c.lo, c.hi);
            }
            [Eq(a)] => {
                self.b_under_a
                    .entry(*a)
                    .or_default()
                    .insert_open(c.lo, c.hi);
            }
            [Star, Star] => {
                self.c_global.insert_open(c.lo, c.hi);
            }
            [Eq(a), Star] => {
                self.c_under_a
                    .entry(*a)
                    .or_default()
                    .insert_open(c.lo, c.hi);
            }
            [Star, Eq(b)] => {
                if (0..self.dyadic.domain_size()).contains(b) {
                    self.dyadic.insert_leaf_open(*b, c.lo, c.hi);
                }
                // b outside the clamped domain: already dead, ignore.
            }
            [Eq(a), Eq(b)] => {
                self.c_under_ab
                    .entry((*a, *b))
                    .or_default()
                    .insert_open(c.lo, c.hi);
            }
            _ => panic!("triangle CDS expects 3-attribute constraints, got {c}"),
        }
    }

    /// Smallest value `≥ from` free of all the given sets.
    fn next_union(sets: &[Option<&IntervalSet>], from: Val, stats: &mut ProbeStats) -> Val {
        let mut v = from;
        loop {
            let mut moved = false;
            for s in sets.iter().flatten() {
                stats.next_calls += 1;
                let nv = s.next(v);
                if nv != v {
                    v = nv;
                    moved = true;
                }
            }
            if !moved || v == POS_INF {
                return v;
            }
        }
    }

    /// Algorithm 10 (corrected): returns an active tuple `(a, b, c)` or
    /// `None` when the constraints cover the whole output space.
    pub fn get_probe_point(&mut self, stats: &mut ProbeStats) -> Option<[Val; 3]> {
        'a_loop: loop {
            stats.next_calls += 1;
            let a = self.a_set.next(PROBE_START);
            if a == POS_INF {
                return None;
            }
            let mut b_from = PROBE_START;
            'b_loop: loop {
                let b =
                    Self::next_union(&[self.b_under_a.get(&a), Some(&self.b_star)], b_from, stats);
                if b == POS_INF {
                    // No B value viable under a: exclude a (the analogue of
                    // Algorithm 10 line 28 for the exhausted-B case).
                    stats.constraints_inserted += 1;
                    self.a_set.insert_closed(a, a);
                    continue 'a_loop;
                }
                debug_assert!(
                    (0..self.dyadic.domain_size()).contains(&b),
                    "clamping keeps b in the dyadic domain"
                );
                // Dyadic descent along the path of b; prune C-exhausted
                // subtrees.
                let path: Vec<DyadicNode> = self.dyadic.path_to(b).collect();
                for node in path {
                    let key = (a, node);
                    let z = self.cache.get(&key).copied().unwrap_or(PROBE_START);
                    let is_leaf = node.0 == self.dyadic.bits();
                    let c = Self::next_union(
                        &[
                            self.c_under_a.get(&a),
                            Some(&self.c_global),
                            self.dyadic.set(node),
                            if is_leaf {
                                self.c_under_ab.get(&(a, b))
                            } else {
                                None
                            },
                        ],
                        z,
                        stats,
                    );
                    self.cache.insert(key, c);
                    if c == POS_INF {
                        // Subtree exhausted: ⟨a, range(node), ˚⟩.
                        let (blo, bhi) = self.dyadic.range_of(node);
                        stats.constraints_inserted += 1;
                        self.b_under_a.entry(a).or_default().insert_closed(blo, bhi);
                        b_from = bhi.saturating_add(1);
                        continue 'b_loop;
                    }
                    if is_leaf {
                        stats.probe_points += 1;
                        return Some([a, b, c]);
                    }
                }
                unreachable!("descent ends at a leaf or prunes");
            }
        }
    }

    /// Test helper: is the tuple covered by some stored constraint? (The
    /// scan caches are intentionally ignored — they only ever skip covered
    /// values.)
    pub fn covers_tuple(&self, t: &[Val; 3]) -> bool {
        let [a, b, c] = *t;
        if self.a_set.covers(a) {
            return true;
        }
        if self.b_star.covers(b) || self.b_under_a.get(&a).is_some_and(|s| s.covers(b)) {
            return true;
        }
        if self.c_global.covers(c)
            || self.c_under_a.get(&a).is_some_and(|s| s.covers(c))
            || self.c_under_ab.get(&(a, b)).is_some_and(|s| s.covers(c))
        {
            return true;
        }
        (0..self.dyadic.domain_size()).contains(&b)
            && self
                .dyadic
                .set(self.dyadic.leaf_of(b))
                .is_some_and(|s| s.covers(c))
    }

    /// Diagnostics: allocated dyadic nodes.
    pub fn dyadic_node_count(&self) -> usize {
        self.dyadic.node_count()
    }

    /// Diagnostics: cached `(a, node)` scan positions.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::tree::{ConstraintTree, ProbeMode};
    use PatternComp::{Eq, Star};

    fn stats() -> ProbeStats {
        ProbeStats::default()
    }

    /// Constrain a TriangleCds and a generic General-mode ConstraintTree
    /// identically; both must enumerate the same active set.
    fn cross_check(constraints: &[Constraint], b_domain: Val, box_hi: Val) {
        let mut tri = TriangleCds::new(b_domain);
        let mut gen = ConstraintTree::new(3, ProbeMode::General);
        let mut st1 = stats();
        let mut st2 = stats();
        // Confine A and C to [0, box_hi] on both sides; B is clamped by the
        // triangle CDS itself, so clamp the generic one to the dyadic
        // domain.
        let b_max = {
            let mut bits = 0;
            while (1i64 << bits) < b_domain.max(1) {
                bits += 1;
            }
            (1i64 << bits) - 1
        };
        let boxed: Vec<Constraint> = vec![
            Constraint::new(Pattern::empty(), NEG_INF, 0),
            Constraint::new(Pattern::empty(), box_hi, POS_INF),
            Constraint::new(Pattern::all_star(1), NEG_INF, 0),
            Constraint::new(Pattern::all_star(1), b_max, POS_INF),
            Constraint::new(Pattern::all_star(2), NEG_INF, 0),
            Constraint::new(Pattern::all_star(2), box_hi, POS_INF),
        ];
        for c in boxed.iter().chain(constraints) {
            tri.insert_constraint(c, &mut st1);
            gen.insert_constraint(c, &mut st2);
        }
        let mut tri_out = Vec::new();
        while let Some(t) = tri.get_probe_point(&mut st1) {
            assert!(!tri.covers_tuple(&t), "triangle probe {t:?} not active");
            tri.insert_constraint(&Constraint::point_exclusion(&t), &mut st1);
            tri_out.push(t.to_vec());
            assert!(tri_out.len() < 50_000);
        }
        let mut gen_out = Vec::new();
        while let Some(t) = gen.get_probe_point(&mut st2) {
            gen.insert_constraint(&Constraint::point_exclusion(&t), &mut st2);
            gen_out.push(t);
            assert!(gen_out.len() < 50_000);
        }
        tri_out.sort();
        gen_out.sort();
        assert_eq!(tri_out, gen_out);
    }

    #[test]
    fn empty_enumerates_box() {
        cross_check(&[], 4, 3);
    }

    #[test]
    fn a_and_b_gaps() {
        cross_check(
            &[
                Constraint::new(Pattern::empty(), 0, 2),           // kill a=1
                Constraint::new(Pattern(vec![Star]), 1, 4),        // kill b∈{2,3}
                Constraint::new(Pattern(vec![Eq(2)]), NEG_INF, 2), // a=2: b<2 dead
            ],
            4,
            3,
        );
    }

    #[test]
    fn c_gap_shapes() {
        cross_check(
            &[
                Constraint::new(Pattern(vec![Eq(0), Star]), 0, 3), // a=0: c∈{1,2} dead
                Constraint::new(Pattern(vec![Star, Eq(1)]), NEG_INF, 2), // b=1: c<2 dead
                Constraint::new(Pattern(vec![Star, Star]), 2, POS_INF), // c>2 dead
                Constraint::new(Pattern(vec![Eq(1), Eq(1)]), 0, 2), // (1,1): c=1 dead
            ],
            4,
            3,
        );
    }

    #[test]
    fn dyadic_pruning_kicks_in() {
        // Kill all C under every b: the CDS must prune whole subtrees and
        // exclude each a after O(log N) work instead of touching every
        // (a, b) pair.
        let mut tri = TriangleCds::new(8);
        let mut st = stats();
        for b in 0..8 {
            tri.insert_constraint(
                &Constraint::new(Pattern(vec![Star, Eq(b)]), NEG_INF, POS_INF),
                &mut st,
            );
        }
        // Confine A to [0, 50].
        tri.insert_constraint(&Constraint::new(Pattern::empty(), NEG_INF, 0), &mut st);
        tri.insert_constraint(&Constraint::new(Pattern::empty(), 50, POS_INF), &mut st);
        assert_eq!(tri.get_probe_point(&mut st), None);
        // With full-C coverage propagated to the root, each of the 51
        // A-values dies after ONE root consultation: well under one scan
        // per (a, b) pair (51 × 8 = 408 would be the quadratic behaviour).
        assert!(
            st.next_calls < 51 * 8,
            "expected dyadic pruning, got {} next calls",
            st.next_calls
        );
    }

    #[test]
    fn random_cross_check() {
        let mut seed = 0x8badf00d1234u64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for trial in 0..25 {
            let mut cs = Vec::new();
            for _ in 0..6 {
                let lo = rng(5) as Val - 1;
                let hi = lo + rng(4) as Val;
                let shape = rng(7);
                let c = match shape {
                    0 => Constraint::new(Pattern::empty(), lo, hi),
                    1 => Constraint::new(Pattern(vec![Star]), lo, hi),
                    2 => Constraint::new(Pattern(vec![Eq(rng(4) as Val)]), lo, hi),
                    3 => Constraint::new(Pattern(vec![Star, Star]), lo, hi),
                    4 => Constraint::new(Pattern(vec![Eq(rng(4) as Val), Star]), lo, hi),
                    5 => Constraint::new(Pattern(vec![Star, Eq(rng(4) as Val)]), lo, hi),
                    _ => {
                        Constraint::new(Pattern(vec![Eq(rng(4) as Val), Eq(rng(4) as Val)]), lo, hi)
                    }
                };
                cs.push(c);
            }
            cross_check(&cs, 4, 3);
            let _ = trial;
        }
    }

    #[test]
    fn diagnostics_reflect_structure() {
        let mut tri = TriangleCds::new(8);
        let mut st = stats();
        assert_eq!(tri.dyadic_node_count(), 0);
        assert_eq!(tri.cache_size(), 0);
        // One leaf insert allocates the leaf (no sibling ⇒ no propagation).
        tri.insert_constraint(&Constraint::new(Pattern(vec![Star, Eq(3)]), 0, 10), &mut st);
        assert_eq!(tri.dyadic_node_count(), 1);
        // A probe populates per-(a, node) caches along one root-leaf path.
        let t = tri.get_probe_point(&mut st).unwrap();
        assert!(tri.cache_size() >= 1, "descent caches scan positions");
        assert!(!tri.covers_tuple(&t));
    }

    #[test]
    fn probe_is_active_and_progress_is_made() {
        let mut tri = TriangleCds::new(4);
        let mut st = stats();
        let t = tri.get_probe_point(&mut st).unwrap();
        // First probe: a and c unconstrained (sentinel −1), b clamped to 0.
        assert_eq!(t, [-1, 0, -1]);
        tri.insert_constraint(&Constraint::point_exclusion(&t), &mut st);
        let t2 = tri.get_probe_point(&mut st).unwrap();
        assert_ne!(t, t2);
    }
}
