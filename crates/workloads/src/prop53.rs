//! The Proposition 5.3 lower-bound family for Minesweeper itself.
//!
//! `Q_w = (⋈_{i<j ∈ [w+1]} R_{i,j}(vᵢ, v_j)) ⋈ U(v₁, …, v_{w+1})` with
//!
//! * `U = [m]^{w+1}`,
//! * `R_{i,j} = [m] × [m]` for `i < j ≤ w`,
//! * `R_{i,w+1} = [m] × {1}` for `i < w`,
//! * `R_{w,w+1} = [m] × {2}`.
//!
//! The output is empty and `|C| = O(wm)`, yet Minesweeper (under any GAO)
//! must consider all `m^w` prefixes: the only constraints that can rule a
//! prefix out force a merge in `getProbePoint` for every one of them. The
//! `prop53` harness verifies the `Ω(m^w)` probe growth.

use minesweeper_core::Query;
use minesweeper_storage::{Database, RelationBuilder, Val};

use crate::queries::Instance;

/// Builds `Q_w` with domain `[m]` (values `1..=m`). `w ≥ 2`; the instance
/// has `U` of size `m^{w+1}`, so keep `m^{w+1}` modest.
pub fn qw_instance(w: usize, m: Val) -> Instance {
    assert!(w >= 2 && m >= 2);
    let k = w + 1;
    let mut db = Database::new();
    let mut query = Query::new(k);
    for i in 1..=k {
        for j in (i + 1)..=k {
            let mut b = RelationBuilder::new(format!("R_{i}_{j}"), 2);
            if j <= w {
                for a in 1..=m {
                    for bb in 1..=m {
                        b.push(&[a, bb]);
                    }
                }
            } else if i < w {
                for a in 1..=m {
                    b.push(&[a, 1]);
                }
            } else {
                // i == w, j == w+1.
                for a in 1..=m {
                    b.push(&[a, 2]);
                }
            }
            let rel = db.add(b.build().unwrap()).unwrap();
            query = query.atom(rel, &[i - 1, j - 1]);
        }
    }
    // U = [m]^{w+1}.
    let mut ub = RelationBuilder::new("U", k);
    let mut t = vec![1 as Val; k];
    loop {
        ub.push(&t);
        let mut pos = k;
        loop {
            if pos == 0 {
                break;
            }
            pos -= 1;
            if t[pos] < m {
                t[pos] += 1;
                for x in &mut t[pos + 1..] {
                    *x = 1;
                }
                break;
            }
            if pos == 0 {
                pos = usize::MAX;
                break;
            }
        }
        if pos == usize::MAX {
            break;
        }
    }
    let u = db.add(ub.build().unwrap()).unwrap();
    let attrs: Vec<usize> = (0..k).collect();
    query = query.atom(u, &attrs);
    Instance { db, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_cds::ProbeMode;
    use minesweeper_core::{minesweeper_join, naive_join};
    use minesweeper_hypergraph::{is_alpha_acyclic, is_beta_acyclic, treewidth_exact};

    #[test]
    fn instance_shape() {
        let inst = qw_instance(2, 3);
        // 3 binary relations + U.
        assert_eq!(inst.query.num_atoms(), 4);
        let h = inst.query.hypergraph();
        assert!(is_alpha_acyclic(&h), "U makes Q_w α-acyclic");
        assert!(!is_beta_acyclic(&h), "Q_w is β-cyclic");
        assert_eq!(treewidth_exact(&h, 8), 2);
        assert_eq!(
            inst.db.relation_by_name("U").unwrap().len(),
            27,
            "U = [3]^3"
        );
    }

    #[test]
    fn output_is_empty() {
        for m in [2, 3, 4] {
            let inst = qw_instance(2, m);
            assert!(
                naive_join(&inst.db, &inst.query).unwrap().is_empty(),
                "m={m}"
            );
        }
    }

    #[test]
    fn minesweeper_merge_work_grows_quadratically() {
        // Prop 5.3 for w = 2: the paper proves "Line 17 of Algorithm 6 is
        // executed Ω(m^w) times" — every (t₁, t₂) prefix forces a merge of
        // the ⟨t₁,˚⟩ and ⟨˚,t₂⟩ constraints followed by a backtrack. The
        // probe count stays O(m) (each probe discovers a reusable gap),
        // but backtracks and chain-walk Next calls must scale ~m².
        let mut backtracks = Vec::new();
        let mut next_calls = Vec::new();
        for m in [4, 8, 16] {
            let inst = qw_instance(2, m);
            let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::General).unwrap();
            assert!(res.tuples.is_empty());
            backtracks.push(res.stats.backtracks);
            next_calls.push(res.stats.cds_next_calls);
        }
        // Doubling m should ~quadruple the merge work; accept ≥ 3×.
        assert!(
            backtracks[1] >= 3 * backtracks[0] && backtracks[2] >= 3 * backtracks[1],
            "expected quadratic backtrack growth, got {backtracks:?}"
        );
        assert!(
            next_calls[2] >= 3 * next_calls[1],
            "expected quadratic chain-walk growth, got {next_calls:?}"
        );
        // Sanity: the m = 16 run performs at least m² = 256 backtracks.
        assert!(backtracks[2] >= 256, "got {backtracks:?}");
    }
}
