//! Workload and instance generators for the Minesweeper evaluation.
//!
//! * [`graphs`] — synthetic graph generators (Erdős–Rényi, Chung–Lu
//!   power-law, preferential attachment);
//! * [`snap_like`] — scaled stand-ins for the paper's three SNAP datasets
//!   (Orkut, Epinions, LiveJournal; Section 5.2) — see DESIGN.md for the
//!   substitution argument;
//! * [`queries`] — the star / 3-path / tree queries of Section 5.2 with
//!   Bernoulli(0.001-style) vertex sampling, plus triangle and path-k
//!   query builders;
//! * [`appendix_j`] — the hidden-certificate path instances separating
//!   Minesweeper from Yannakakis/NPRR/LFTJ (Appendix J);
//! * [`prop53`] — the `Q_w` instances on which Minesweeper itself needs
//!   `Ω(|C|^w)` (Proposition 5.3);
//! * [`intersection`] — set-intersection instance families for the
//!   Appendix H experiments;
//! * [`examples`] — the concrete instances of the paper's running examples
//!   (2.1, B.3/B.4, B.6, D.1, I.3).

pub mod appendix_j;
pub mod examples;
pub mod graphs;
pub mod intersection;
pub mod prop53;
pub mod queries;
pub mod random_queries;
pub mod snap_like;

pub use appendix_j::{hidden_certificate_instance, hidden_certificate_path_k};
pub use graphs::{chung_lu, erdos_renyi, preferential_attachment, symmetrize};
pub use queries::{
    layered_path_instance, path_query, star_query, three_path_query, tree_query, triangle_instance,
};
pub use random_queries::{random_tree_instance, TreeQueryConfig};
pub use snap_like::{DatasetProfile, GraphDataset};
