//! Scaled stand-ins for the paper's SNAP datasets (Section 5.2).
//!
//! The paper evaluates on `com-Orkut` (3.07M nodes / 117M edges),
//! `soc-Epinions1` (76K / 509K) and `soc-LiveJournal1` (4.8M / 69M) from
//! <http://snap.stanford.edu/data/>. Those graphs are not available
//! offline, so — per the substitution rule in DESIGN.md — we generate
//! Chung–Lu power-law graphs with the same node:edge *ratio*, scaled down
//! by a configurable factor. What Figure 2 measures (certificate size vs
//! input size under gap-skipping joins) depends on the sortedness/skew
//! structure that power-law graphs reproduce, not on the identity of the
//! exact SNAP edges.

use minesweeper_storage::Val;

use crate::graphs::{chung_lu, symmetrize, EdgeList};

/// A named dataset profile: node and edge counts of the original SNAP
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetProfile {
    /// Dataset name as printed in Figure 2.
    pub name: &'static str,
    /// Node count of the original graph.
    pub nodes: u64,
    /// Directed edge count of the original graph.
    pub edges: u64,
}

/// `com-Orkut`: 3,072,441 nodes, 117,185,083 edges.
pub const ORKUT: DatasetProfile = DatasetProfile {
    name: "com-Orkut",
    nodes: 3_072_441,
    edges: 117_185_083,
};

/// `soc-Epinions1`: 75,879 nodes, 508,837 edges.
pub const EPINIONS: DatasetProfile = DatasetProfile {
    name: "soc-Epinions1",
    nodes: 75_879,
    edges: 508_837,
};

/// `soc-LiveJournal1`: 4,847,571 nodes, 68,993,773 edges.
pub const LIVEJOURNAL: DatasetProfile = DatasetProfile {
    name: "soc-LiveJournal1",
    nodes: 4_847_571,
    edges: 68_993_773,
};

/// The three Figure 2 datasets.
pub const FIGURE2_DATASETS: [DatasetProfile; 3] = [ORKUT, EPINIONS, LIVEJOURNAL];

/// A generated graph with its provenance.
#[derive(Debug, Clone)]
pub struct GraphDataset {
    /// Profile this graph imitates.
    pub profile: DatasetProfile,
    /// Scale divisor applied to the original size.
    pub scale: u64,
    /// Number of vertices generated.
    pub nodes: Val,
    /// Directed edges (symmetrized).
    pub edges: EdgeList,
}

impl GraphDataset {
    /// Generates a stand-in at `1/scale` of the original size with a
    /// power-law exponent of 2.3 (typical for social graphs).
    pub fn generate(profile: DatasetProfile, scale: u64, seed: u64) -> Self {
        assert!(scale >= 1);
        let nodes = ((profile.nodes / scale).max(16)) as Val;
        let m = ((profile.edges / scale).max(32) / 2) as usize; // symmetrized below
        let edges = symmetrize(&chung_lu(nodes, m, 2.3, seed));
        GraphDataset {
            profile,
            scale,
            nodes,
            edges,
        }
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_snap_metadata() {
        assert_eq!(ORKUT.nodes, 3_072_441);
        assert_eq!(EPINIONS.edges, 508_837);
        assert_eq!(LIVEJOURNAL.nodes, 4_847_571);
        assert_eq!(FIGURE2_DATASETS.len(), 3);
    }

    #[test]
    fn scaled_generation_ratios() {
        let g = GraphDataset::generate(EPINIONS, 64, 1);
        // ~1186 nodes, ~7950 symmetrized edges.
        assert!(g.nodes > 1000 && g.nodes < 1400, "{}", g.nodes);
        assert!(
            g.edge_count() > 6000 && g.edge_count() < 9000,
            "{}",
            g.edge_count()
        );
        // Symmetric closure.
        let set: std::collections::HashSet<_> = g.edges.iter().copied().collect();
        assert!(g.edges.iter().all(|&(u, v)| set.contains(&(v, u))));
    }

    #[test]
    fn tiny_scale_still_nonempty() {
        let g = GraphDataset::generate(EPINIONS, 1_000_000, 2);
        assert!(g.nodes >= 16);
        assert!(g.edge_count() >= 32);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GraphDataset::generate(ORKUT, 100_000, 9);
        let b = GraphDataset::generate(ORKUT, 100_000, 9);
        assert_eq!(a.edges, b.edges);
    }
}
