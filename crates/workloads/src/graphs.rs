//! Synthetic graph generators.
//!
//! All generators are deterministic given a seed (benchmarks must be
//! reproducible) and emit directed edge lists over vertex ids `0..n`;
//! [`symmetrize`] closes them under reversal when an undirected graph is
//! wanted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use minesweeper_storage::Val;

/// An edge list.
pub type EdgeList = Vec<(Val, Val)>;

/// Erdős–Rényi `G(n, m)`: `m` edges sampled uniformly (self-loops
/// excluded, duplicates possible and deduplicated downstream by the trie).
pub fn erdos_renyi(n: Val, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

/// Chung–Lu power-law graph: vertex `i` has weight `∝ (i+1)^(−1/(γ−1))`;
/// an edge is sampled by picking both endpoints from the weight
/// distribution. `γ ≈ 2.1–2.5` matches social-network degree profiles —
/// this is the stand-in shape for the paper's SNAP datasets.
pub fn chung_lu(n: Val, m: usize, gamma: f64, seed: u64) -> EdgeList {
    assert!(n >= 2 && gamma > 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let exponent = -1.0 / (gamma - 1.0);
    // Cumulative weight table for inverse-transform sampling.
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let mut cumulative = Vec::with_capacity(n as usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cumulative.push(acc);
    }
    let total = acc;
    let sample = |rng: &mut StdRng| -> Val {
        let x = rng.gen_range(0.0..total);
        cumulative.partition_point(|&c| c < x) as Val
    };
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = sample(&mut rng).min(n - 1);
        let v = sample(&mut rng).min(n - 1);
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

/// Preferential attachment (Barabási–Albert): each new vertex attaches
/// `k` edges to endpoints drawn from the current edge multiset.
pub fn preferential_attachment(n: Val, k: usize, seed: u64) -> EdgeList {
    assert!(n >= 2 && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: EdgeList = vec![(0, 1)];
    // Endpoint pool for degree-proportional sampling.
    let mut pool: Vec<Val> = vec![0, 1];
    for v in 2..n {
        for _ in 0..k {
            let target = pool[rng.gen_range(0..pool.len())];
            if target != v {
                edges.push((v, target));
                pool.push(v);
                pool.push(target);
            }
        }
    }
    edges
}

/// Closes an edge list under reversal (undirected view).
pub fn symmetrize(edges: &[(Val, Val)]) -> EdgeList {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        out.push((u, v));
        out.push((v, u));
    }
    out
}

/// Bernoulli vertex sample: each of `0..n` kept with probability `p` —
/// the paper's construction of the unary `Rᵢ` relations ("every vertex is
/// chosen with a probability 0.001", Section 5.2). Guarantees at least one
/// vertex so queries stay non-degenerate.
pub fn sample_vertices(n: Val, p: f64, seed: u64) -> Vec<Val> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Val> = (0..n).filter(|_| rng.gen_bool(p)).collect();
    if out.is_empty() {
        out.push(rng.gen_range(0..n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_respects_bounds() {
        let e = erdos_renyi(50, 200, 1);
        assert_eq!(e.len(), 200);
        assert!(e
            .iter()
            .all(|&(u, v)| u != v && (0..50).contains(&u) && (0..50).contains(&v)));
    }

    #[test]
    fn determinism_by_seed() {
        assert_eq!(erdos_renyi(30, 50, 7), erdos_renyi(30, 50, 7));
        assert_ne!(erdos_renyi(30, 50, 7), erdos_renyi(30, 50, 8));
        assert_eq!(chung_lu(30, 50, 2.2, 7), chung_lu(30, 50, 2.2, 7));
        assert_eq!(
            preferential_attachment(30, 2, 7),
            preferential_attachment(30, 2, 7)
        );
    }

    #[test]
    fn chung_lu_is_skewed() {
        // Low-id vertices must have noticeably higher degree than high-id
        // ones under a power-law weight profile.
        let n = 200;
        let e = chung_lu(n, 4000, 2.2, 42);
        let mut deg = vec![0usize; n as usize];
        for &(u, v) in &e {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let head: usize = deg[..10].iter().sum();
        let tail: usize = deg[(n as usize - 10)..].iter().sum();
        assert!(
            head > 4 * tail,
            "expected skew: head-10 degree {head} vs tail-10 {tail}"
        );
    }

    #[test]
    fn pa_graph_grows_linearly() {
        let e = preferential_attachment(100, 3, 3);
        assert!(e.len() <= 1 + 98 * 3);
        assert!(e.len() >= 200);
    }

    #[test]
    fn symmetrize_doubles() {
        let e = vec![(1, 2), (3, 4)];
        let s = symmetrize(&e);
        assert_eq!(s.len(), 4);
        assert!(s.contains(&(2, 1)) && s.contains(&(4, 3)));
    }

    #[test]
    fn vertex_sampling_rate() {
        let s = sample_vertices(10_000, 0.01, 5);
        assert!(s.len() > 40 && s.len() < 250, "got {}", s.len());
        let s = sample_vertices(100, 0.0, 5);
        assert_eq!(s.len(), 1, "degenerate sample bumped to one vertex");
    }
}
