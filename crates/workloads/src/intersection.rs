//! Set-intersection instance families for the Appendix H experiments.
//!
//! The interesting axis is the optimal certificate size relative to `N`:
//!
//! * [`disjoint_ranges`] — `|C| = O(m)`: one inequality chain proves
//!   emptiness;
//! * [`interleaved`] — `|C| = Θ(N)`: evens vs odds force a comparison per
//!   element;
//! * [`blocks`] — `|C| = Θ(N/b)`: alternating runs of length `b`
//!   interpolate between the two extremes;
//! * [`needle`] — one singleton set: `|C| = O(m log N)`-ish, output ≤ 1;
//! * [`random_sets`] — uniform random baselines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use minesweeper_storage::{builder::unary, TrieRelation, Val};

/// `m` sets of `n` values each occupying disjoint, increasing ranges.
pub fn disjoint_ranges(m: usize, n: Val) -> Vec<TrieRelation> {
    (0..m as Val)
        .map(|i| unary(format!("S{i}"), (i * n)..((i + 1) * n)))
        .collect()
}

/// `m` sets of `n` values interleaved mod `m`: set `i` holds
/// `{m·k + i : k < n}`. Pairwise-empty with a linear-size certificate.
pub fn interleaved(m: usize, n: Val) -> Vec<TrieRelation> {
    let mm = m as Val;
    (0..mm)
        .map(|i| unary(format!("S{i}"), (0..n).map(move |k| mm * k + i)))
        .collect()
}

/// Two sets alternating in runs of length `b` over `[0, 2n)`: set 0 takes
/// blocks `0, 2, 4, …`, set 1 blocks `1, 3, 5, …`. Certificate `Θ(n/b)`.
pub fn blocks(n: Val, b: Val) -> Vec<TrieRelation> {
    assert!(b >= 1);
    let pick = move |parity: Val| (0..2 * n).filter(move |&v| ((v / b) % 2) == parity);
    vec![unary("S0", pick(0)), unary("S1", pick(1))]
}

/// `m − 1` large sets of `n` values plus one singleton (the needle):
/// output is the needle iff it lands in all others (it does, by
/// construction).
pub fn needle(m: usize, n: Val) -> Vec<TrieRelation> {
    assert!(m >= 2);
    let hit = n / 2;
    let mut sets: Vec<TrieRelation> = (0..m - 1).map(|i| unary(format!("S{i}"), 0..n)).collect();
    sets.push(unary("needle", [hit]));
    sets
}

/// `m` uniform random subsets of `[0, universe)` with `n` draws each.
pub fn random_sets(m: usize, n: usize, universe: Val, seed: u64) -> Vec<TrieRelation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|i| {
            unary(
                format!("S{i}"),
                (0..n)
                    .map(|_| rng.gen_range(0..universe))
                    .collect::<Vec<Val>>(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_baselines::adaptive_intersection;
    use minesweeper_core::set_intersection;

    fn run(sets: &[TrieRelation]) -> (Vec<Val>, u64) {
        let refs: Vec<&TrieRelation> = sets.iter().collect();
        let res = set_intersection(&refs);
        (
            res.tuples.iter().map(|t| t[0]).collect(),
            res.stats.probe_points,
        )
    }

    #[test]
    fn disjoint_is_empty_with_constant_probes() {
        let sets = disjoint_ranges(3, 1000);
        let (out, probes) = run(&sets);
        assert!(out.is_empty());
        assert!(probes <= 4, "probes = {probes}");
    }

    #[test]
    fn interleaved_is_empty() {
        let sets = interleaved(3, 200);
        let (out, _) = run(&sets);
        assert!(out.is_empty());
    }

    #[test]
    fn blocks_certificate_scales_with_block_size() {
        let n: Val = 512;
        let (out, probes_small) = run(&blocks(n, 2));
        assert!(out.is_empty());
        let (out, probes_large) = run(&blocks(n, 64));
        assert!(out.is_empty());
        assert!(
            probes_small > 4 * probes_large,
            "larger blocks ⇒ smaller certificate: {probes_small} vs {probes_large}"
        );
    }

    #[test]
    fn needle_found() {
        let sets = needle(4, 1000);
        let (out, probes) = run(&sets);
        assert_eq!(out, vec![500]);
        assert!(probes <= 6);
    }

    #[test]
    fn random_agrees_with_adaptive_baseline() {
        for seed in 0..5 {
            let sets = random_sets(3, 60, 100, seed);
            let refs: Vec<&TrieRelation> = sets.iter().collect();
            let ms: Vec<Val> = set_intersection(&refs)
                .tuples
                .iter()
                .map(|t| t[0])
                .collect();
            let ad: Vec<Val> = adaptive_intersection(&refs)
                .tuples
                .iter()
                .map(|t| t[0])
                .collect();
            assert_eq!(ms, ad, "seed {seed}");
        }
    }
}
