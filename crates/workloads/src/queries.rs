//! The queries of the paper's evaluation (Section 5.2) and general query
//! builders.
//!
//! * Star: `Q = R₁(A) ⋈ S(A,B) ⋈ S(A,C) ⋈ S(A,D) ⋈ R₂(B) ⋈ R₃(C) ⋈ R₄(D)`
//! * 3-path: `Q = S(A,B) ⋈ S(B,C) ⋈ S(C,D) ⋈ R₅(A) ⋈ R₆(B) ⋈ R₇(C) ⋈ R₈(D)`
//! * Tree: `Q = S(A,B) ⋈ S(B,C) ⋈ S(B,D) ⋈ S(D,E) ⋈ R₉(A) ⋈ R₁₀(C) ⋈
//!   R₁₁(D) ⋈ R₁₂(E)`
//!
//! where `S` is a graph's edge relation and each `Rᵢ` samples the vertex
//! set with probability `p` (0.001 in the paper).

use minesweeper_core::Query;
use minesweeper_storage::{builder, Database, RelId, Val};

use crate::graphs::{sample_vertices, EdgeList};

/// A ready-to-run instance.
#[derive(Debug)]
pub struct Instance {
    /// The catalog.
    pub db: Database,
    /// The query over it.
    pub query: Query,
}

impl Instance {
    /// Total input size `N` (tuples across all relations).
    pub fn input_size(&self) -> usize {
        self.db.total_tuples()
    }
}

fn edge_rel(db: &mut Database, name: &str, edges: &[(Val, Val)]) -> RelId {
    db.add(builder::binary(name, edges.iter().copied()))
        .unwrap()
}

fn vertex_rel(db: &mut Database, name: &str, n: Val, p: f64, seed: u64) -> RelId {
    db.add(builder::unary(name, sample_vertices(n, p, seed)))
        .unwrap()
}

/// The star query of Section 5.2. GAO: `A, B, C, D`.
pub fn star_query(edges: &EdgeList, n_vertices: Val, p: f64, seed: u64) -> Instance {
    let mut db = Database::new();
    let s = edge_rel(&mut db, "S", edges);
    let r1 = vertex_rel(&mut db, "R1", n_vertices, p, seed);
    let r2 = vertex_rel(&mut db, "R2", n_vertices, p, seed.wrapping_add(1));
    let r3 = vertex_rel(&mut db, "R3", n_vertices, p, seed.wrapping_add(2));
    let r4 = vertex_rel(&mut db, "R4", n_vertices, p, seed.wrapping_add(3));
    let query = Query::new(4)
        .atom(r1, &[0])
        .atom(s, &[0, 1])
        .atom(s, &[0, 2])
        .atom(s, &[0, 3])
        .atom(r2, &[1])
        .atom(r3, &[2])
        .atom(r4, &[3]);
    Instance { db, query }
}

/// The 3-path query of Section 5.2. GAO: `A, B, C, D`.
pub fn three_path_query(edges: &EdgeList, n_vertices: Val, p: f64, seed: u64) -> Instance {
    let mut db = Database::new();
    let s = edge_rel(&mut db, "S", edges);
    let r5 = vertex_rel(&mut db, "R5", n_vertices, p, seed);
    let r6 = vertex_rel(&mut db, "R6", n_vertices, p, seed.wrapping_add(1));
    let r7 = vertex_rel(&mut db, "R7", n_vertices, p, seed.wrapping_add(2));
    let r8 = vertex_rel(&mut db, "R8", n_vertices, p, seed.wrapping_add(3));
    let query = Query::new(4)
        .atom(s, &[0, 1])
        .atom(s, &[1, 2])
        .atom(s, &[2, 3])
        .atom(r5, &[0])
        .atom(r6, &[1])
        .atom(r7, &[2])
        .atom(r8, &[3]);
    Instance { db, query }
}

/// The tree query of Section 5.2. GAO: `A, B, C, D, E`.
pub fn tree_query(edges: &EdgeList, n_vertices: Val, p: f64, seed: u64) -> Instance {
    let mut db = Database::new();
    let s = edge_rel(&mut db, "S", edges);
    let r9 = vertex_rel(&mut db, "R9", n_vertices, p, seed);
    let r10 = vertex_rel(&mut db, "R10", n_vertices, p, seed.wrapping_add(1));
    let r11 = vertex_rel(&mut db, "R11", n_vertices, p, seed.wrapping_add(2));
    let r12 = vertex_rel(&mut db, "R12", n_vertices, p, seed.wrapping_add(3));
    let query = Query::new(5)
        .atom(s, &[0, 1])
        .atom(s, &[1, 2])
        .atom(s, &[1, 3])
        .atom(s, &[3, 4])
        .atom(r9, &[0])
        .atom(r10, &[2])
        .atom(r11, &[3])
        .atom(r12, &[4]);
    Instance { db, query }
}

/// The triangle instance `R(A,B) ⋈ S(B,C) ⋈ T(A,C)` over one edge list.
/// Returns the database plus the three relation ids (for
/// `minesweeper_core::triangle_join`).
pub fn triangle_instance(edges: &EdgeList) -> (Database, RelId, RelId, RelId, Query) {
    let mut db = Database::new();
    let r = edge_rel(&mut db, "R", edges);
    let s = edge_rel(&mut db, "S", edges);
    let t = edge_rel(&mut db, "T", edges);
    let q = Query::new(3)
        .atom(r, &[0, 1])
        .atom(s, &[1, 2])
        .atom(t, &[0, 2]);
    (db, r, s, t, q)
}

/// The Section 4.4 layered instance: a DAG of `layers` layers of `width`
/// vertices with complete bipartite edges between consecutive layers. Its
/// longest path has `layers − 1` edges, so the path query of length
/// `layers` is empty — yet the graph contains `width^(layers−1)` maximal
/// paths, all of which the worst-case-optimal algorithms enumerate while
/// Minesweeper's certificate stays `O(ℓ·|E|)` ("both NPRR and LFTJ will
/// have to explore all ω(|E|) paths").
pub fn layered_path_instance(layers: usize, width: Val) -> Instance {
    assert!(layers >= 2 && width >= 1);
    let mut edges: EdgeList = Vec::new();
    for l in 0..(layers as Val - 1) {
        for u in 0..width {
            for v in 0..width {
                edges.push((l * width + u, (l + 1) * width + v));
            }
        }
    }
    path_query(&edges, layers)
}

/// A path query of length `m` over one shared edge relation:
/// `E(A₀,A₁) ⋈ E(A₁,A₂) ⋈ … ⋈ E(A_{m−1},A_m)` — the family the paper uses
/// to argue NPRR/LFTJ are not certificate-optimal (Section 4.4).
pub fn path_query(edges: &EdgeList, m: usize) -> Instance {
    assert!(m >= 1);
    let mut db = Database::new();
    let e = edge_rel(&mut db, "E", edges);
    let mut query = Query::new(m + 1);
    for i in 0..m {
        query = query.atom(e, &[i, i + 1]);
    }
    Instance { db, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_cds::ProbeMode;
    use minesweeper_core::{choose_gao, minesweeper_join, naive_join};
    use minesweeper_hypergraph::is_beta_acyclic;

    fn toy_edges() -> EdgeList {
        crate::graphs::symmetrize(&[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3), (0, 2)])
    }

    #[test]
    fn star_is_beta_acyclic_and_correct() {
        let inst = star_query(&toy_edges(), 5, 0.9, 42);
        assert!(is_beta_acyclic(&inst.query.hypergraph()));
        let choice = choose_gao(&inst.query, 8);
        assert_eq!(choice.mode, ProbeMode::Chain);
        // The identity GAO (A,B,C,D) is itself a NEO for the star query.
        assert!(minesweeper_hypergraph::is_nested_elimination_order(
            &inst.query.hypergraph(),
            &[0, 1, 2, 3]
        ));
        let ms = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        let mut got = ms.tuples;
        got.sort();
        assert_eq!(got, naive_join(&inst.db, &inst.query).unwrap());
    }

    #[test]
    fn three_path_is_beta_acyclic_and_correct() {
        let inst = three_path_query(&toy_edges(), 5, 0.9, 7);
        assert!(is_beta_acyclic(&inst.query.hypergraph()));
        assert!(minesweeper_hypergraph::is_nested_elimination_order(
            &inst.query.hypergraph(),
            &[0, 1, 2, 3]
        ));
        let ms = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        let mut got = ms.tuples;
        got.sort();
        assert_eq!(got, naive_join(&inst.db, &inst.query).unwrap());
    }

    #[test]
    fn tree_is_beta_acyclic_and_correct() {
        let inst = tree_query(&toy_edges(), 5, 0.9, 9);
        assert!(is_beta_acyclic(&inst.query.hypergraph()));
        let choice = choose_gao(&inst.query, 8);
        assert_eq!(choice.mode, ProbeMode::Chain);
        // Note: the identity order (A,B,C,D,E) is NOT necessarily nested
        // for the tree query; run with the chosen NEO after re-indexing.
        let (db2, q2) =
            minesweeper_core::reindex_for_gao(&inst.db, &inst.query, &choice.order).unwrap();
        let ms = minesweeper_join(&db2, &q2, ProbeMode::Chain).unwrap();
        // Map back to original attribute order for comparison.
        let mut inv = [0usize; 5];
        for (i, &a) in choice.order.iter().enumerate() {
            inv[a] = i;
        }
        let mut got: Vec<Vec<i64>> = ms
            .tuples
            .iter()
            .map(|t| (0..5).map(|a| t[inv[a]]).collect())
            .collect();
        got.sort();
        assert_eq!(got, naive_join(&inst.db, &inst.query).unwrap());
    }

    #[test]
    fn path_query_shapes() {
        let inst = path_query(&toy_edges(), 3);
        assert_eq!(inst.query.n_attrs, 4);
        assert_eq!(inst.query.num_atoms(), 3);
        assert!(is_beta_acyclic(&inst.query.hypergraph()));
        assert!(inst.input_size() > 0);
    }

    #[test]
    fn layered_instance_is_empty_and_cheap_for_minesweeper() {
        let layers = 5;
        let width = 6;
        let inst = layered_path_instance(layers, width);
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
        // Edge count: (layers−1)·width².
        assert_eq!(inst.input_size(), (layers - 1) * (width * width) as usize);
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        // Probes stay near-linear in |E|, far below width^(layers−1)
        // (= 1296 maximal paths here).
        assert!(
            (res.stats.probe_points as usize) < 2 * inst.input_size(),
            "probes {} vs |E| {}",
            res.stats.probe_points,
            inst.input_size()
        );
    }

    #[test]
    fn triangle_instance_builds() {
        let (db, r, s, t, q) = triangle_instance(&toy_edges());
        assert_eq!(q.num_atoms(), 3);
        let res = minesweeper_core::triangle_join(&db, r, s, t).unwrap();
        let mut got = res.tuples;
        got.sort();
        assert_eq!(got, naive_join(&db, &q).unwrap());
        assert!(!got.is_empty(), "toy graph has symmetrized triangles");
    }
}
