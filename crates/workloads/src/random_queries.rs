//! Random β-acyclic query instances.
//!
//! The generator draws a uniformly random tree over the attributes and
//! turns every tree edge into a binary atom (plus optional unary atoms),
//! then fills relations with random tuples. Every sub-hypergraph of a
//! forest of binary edges is a forest — hence α-acyclic — so these
//! queries are β-acyclic by construction (Appendix A), covering the
//! paper's star/path/tree evaluation class and everything between. Used
//! by the integration suite to exercise nested-elimination-order selection
//! and chain-mode probing across arbitrary tree shapes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use minesweeper_core::Query;
use minesweeper_storage::{builder, Database, Val};

use crate::queries::Instance;

/// Configuration for [`random_tree_instance`].
#[derive(Debug, Clone, Copy)]
pub struct TreeQueryConfig {
    /// Number of attributes (tree nodes), ≥ 2.
    pub n_attrs: usize,
    /// Tuples per binary relation.
    pub tuples_per_edge: usize,
    /// Value domain `[0, domain)`.
    pub domain: Val,
    /// Probability that an attribute also gets a unary predicate atom.
    pub unary_prob: f64,
    /// Fraction of the domain each unary predicate keeps.
    pub unary_selectivity: f64,
}

impl Default for TreeQueryConfig {
    fn default() -> Self {
        TreeQueryConfig {
            n_attrs: 4,
            tuples_per_edge: 30,
            domain: 12,
            unary_prob: 0.5,
            unary_selectivity: 0.6,
        }
    }
}

/// Generates a random tree-shaped (hence β-acyclic) query with a random
/// database. Deterministic per seed.
pub fn random_tree_instance(cfg: TreeQueryConfig, seed: u64) -> Instance {
    assert!(cfg.n_attrs >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut query = Query::new(cfg.n_attrs);
    // Random tree: attach each attribute k ≥ 1 to a random earlier one.
    for k in 1..cfg.n_attrs {
        let parent = rng.gen_range(0..k);
        let (lo, hi) = (parent.min(k), parent.max(k));
        let rel = db
            .add(builder::binary(
                format!("E{k}"),
                (0..cfg.tuples_per_edge)
                    .map(|_| (rng.gen_range(0..cfg.domain), rng.gen_range(0..cfg.domain))),
            ))
            .unwrap();
        query = query.atom(rel, &[lo, hi]);
    }
    // Optional unary predicates.
    for a in 0..cfg.n_attrs {
        if rng.gen_bool(cfg.unary_prob) {
            let keep: Vec<Val> = (0..cfg.domain)
                .filter(|_| rng.gen_bool(cfg.unary_selectivity))
                .collect();
            if keep.is_empty() {
                continue;
            }
            let rel = db.add(builder::unary(format!("U{a}"), keep)).unwrap();
            query = query.atom(rel, &[a]);
        }
    }
    Instance { db, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::{execute, naive_join};
    use minesweeper_hypergraph::{is_beta_acyclic, is_nested_elimination_order};

    #[test]
    fn generated_queries_are_beta_acyclic() {
        for seed in 0..30 {
            let inst = random_tree_instance(TreeQueryConfig::default(), seed);
            let h = inst.query.hypergraph();
            assert!(is_beta_acyclic(&h), "seed {seed}");
        }
    }

    #[test]
    fn execute_matches_naive_on_random_trees() {
        for seed in 0..25 {
            let cfg = TreeQueryConfig {
                n_attrs: 3 + (seed as usize % 3),
                ..TreeQueryConfig::default()
            };
            let inst = random_tree_instance(cfg, seed);
            let exec = execute(&inst.db, &inst.query).unwrap();
            // execute() must have chosen a NEO (chain mode) for these.
            assert_eq!(
                exec.gao.mode,
                minesweeper_cds::ProbeMode::Chain,
                "seed {seed}"
            );
            assert!(is_nested_elimination_order(
                &inst.query.hypergraph(),
                &exec.gao.order
            ));
            assert_eq!(
                exec.result.tuples,
                naive_join(&inst.db, &inst.query).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_tree_instance(TreeQueryConfig::default(), 5);
        let b = random_tree_instance(TreeQueryConfig::default(), 5);
        assert_eq!(a.query, b.query);
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
    }
}
