//! Concrete instances of the paper's running examples, for tests,
//! documentation, and the `certificates` harness.

use minesweeper_core::Query;
use minesweeper_storage::{builder, Database, RelationBuilder, Val};

use crate::queries::Instance;

/// Example 2.1 / Example B.1 family: `Q = R(A) ⋈ T(A,B)` with `R = [N]`
/// and `T = {(1, 2i)} ∪ {(2, 3i)}`.
pub fn example_2_1(n: Val) -> Instance {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", 1..=n)).unwrap();
    let t = db
        .add(builder::binary(
            "T",
            (1..=n)
                .map(|i| (1, 2 * i))
                .chain((1..=n).map(|i| (2, 3 * i))),
        ))
        .unwrap();
    let query = Query::new(2).atom(r, &[0]).atom(t, &[0, 1]);
    Instance { db, query }
}

/// Example B.1: constant-size certificate, empty output.
/// `R = [N]`, `S = {(N+1, i+N)}`.
pub fn example_b1(n: Val) -> Instance {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", 1..=n)).unwrap();
    let s = db
        .add(builder::binary("S", (1..=n).map(|i| (n + 1, i + n))))
        .unwrap();
    let query = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]);
    Instance { db, query }
}

/// Example B.2: `|C| ≪ Z`. `R = [N]`, `S = {(N, 10i)}`.
pub fn example_b2(n: Val) -> Instance {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", 1..=n)).unwrap();
    let s = db
        .add(builder::binary("S", (1..=n).map(|i| (n, 10 * i))))
        .unwrap();
    let query = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]);
    Instance { db, query }
}

/// Examples B.3/B.4: `Q = R(A,C) ⋈ S(B,C)` with `R = [N] × evens`,
/// `S = [N] × odds`. Under GAO `(A,B,C)` the optimal certificate is
/// `Θ(N²)`; under `(C,A,B)` it is `Θ(N)`. Attributes here: A=0, B=1, C=2.
pub fn example_b3(n: Val) -> Instance {
    let mut db = Database::new();
    let mut rb = RelationBuilder::new("R", 2);
    let mut sb = RelationBuilder::new("S", 2);
    for a in 1..=n {
        for k in 1..=n {
            rb.push(&[a, 2 * k]);
            sb.push(&[a, 2 * k - 1]);
        }
    }
    let r = db.add(rb.build().unwrap()).unwrap();
    let s = db.add(sb.build().unwrap()).unwrap();
    let query = Query::new(3).atom(r, &[0, 2]).atom(s, &[1, 2]);
    Instance { db, query }
}

/// Example B.6: `Q = R(A,B) ⋈ S(A,B)` with `R = {(i,i)}`,
/// `S = {(N+i, i)}`: `|C| = O(1)` under `(A,B)` but `Ω(N)` under `(B,A)`.
pub fn example_b6(n: Val) -> Instance {
    let mut db = Database::new();
    let r = db
        .add(builder::binary("R", (1..=n).map(|i| (i, i))))
        .unwrap();
    let s = db
        .add(builder::binary("S", (1..=n).map(|i| (n + i, i))))
        .unwrap();
    let query = Query::new(2).atom(r, &[0, 1]).atom(s, &[0, 1]);
    Instance { db, query }
}

/// The Appendix D.1 worked instance: `Q₂ = R(A₁) ⋈ S(A₁,A₂) ⋈ T(A₂,A₃) ⋈
/// U(A₃)` with `R = [N]`, `S = [N]²`, `T = {(2,2),(2,4)}`, `U = {1,3}`.
pub fn example_d1(n: Val) -> Instance {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", 1..=n)).unwrap();
    let mut sb = RelationBuilder::new("S", 2);
    for a in 1..=n {
        for b in 1..=n {
            sb.push(&[a, b]);
        }
    }
    let s = db.add(sb.build().unwrap()).unwrap();
    let t = db.add(builder::binary("T", [(2, 2), (2, 4)])).unwrap();
    let u = db.add(builder::unary("U", [1, 3])).unwrap();
    let query = Query::new(3)
        .atom(r, &[0])
        .atom(s, &[0, 1])
        .atom(t, &[1, 2])
        .atom(u, &[2]);
    Instance { db, query }
}

/// The Appendix I.3 bow-tie instance with a hidden `O(1)` certificate:
/// `R = {2}`, `T = {N+1}`, `S = {(1, N+1+i)} ∪ {(3, i)}`.
pub fn example_i3(n: Val) -> Instance {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", [2])).unwrap();
    let s = db
        .add(builder::binary(
            "S",
            (1..=n)
                .map(|i| (1, n + 1 + i))
                .chain((1..=n).map(|i| (3, i))),
        ))
        .unwrap();
    let t = db.add(builder::unary("T", [n + 1])).unwrap();
    let query = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
    Instance { db, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_cds::ProbeMode;
    use minesweeper_core::{minesweeper_join, naive_join, reindex_for_gao};

    #[test]
    fn example_2_1_outputs() {
        let inst = example_2_1(5);
        let out = naive_join(&inst.db, &inst.query).unwrap();
        // Witnesses {1,(1,i)} and {2,(2,i)}: 2N output tuples.
        assert_eq!(out.len(), 10);
        let ms = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        let mut got = ms.tuples;
        got.sort();
        assert_eq!(got, out);
    }

    #[test]
    fn b1_b2_basic() {
        assert!(naive_join(&example_b1(20).db, &example_b1(20).query)
            .unwrap()
            .is_empty());
        assert_eq!(
            naive_join(&example_b2(20).db, &example_b2(20).query)
                .unwrap()
                .len(),
            20
        );
    }

    #[test]
    fn b3_gao_dependence() {
        // Empty output either way; the GAO changes the work dramatically.
        let n: Val = 8;
        let inst = example_b3(n);
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
        // GAO (A,B,C) — identity: Θ(N²)-ish probes.
        let slow = minesweeper_join(&inst.db, &inst.query, ProbeMode::General).unwrap();
        // GAO (C,A,B): Θ(N) probes (Example B.4).
        let (db2, q2) = reindex_for_gao(&inst.db, &inst.query, &[2, 0, 1]).unwrap();
        let fast = minesweeper_join(&db2, &q2, ProbeMode::Chain).unwrap();
        assert!(fast.tuples.is_empty() && slow.tuples.is_empty());
        assert!(
            slow.stats.probe_points > 4 * fast.stats.probe_points,
            "GAO must matter: slow={} fast={}",
            slow.stats.probe_points,
            fast.stats.probe_points
        );
    }

    #[test]
    fn b6_join_empty() {
        let inst = example_b6(10);
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        // (A,B) order: constant certificate R[N] < S[1] ⇒ O(1) probes.
        assert!(res.stats.probe_points < 8);
    }

    #[test]
    fn d1_empty() {
        let inst = example_d1(6);
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
    }

    #[test]
    fn i3_empty_with_small_cert() {
        let inst = example_i3(100);
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        assert!(res.stats.probe_points < 10);
    }
}
