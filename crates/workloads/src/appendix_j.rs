//! The Appendix J counterexample family.
//!
//! Query: `Q = ⋈_{i=1..m} Rᵢ(Aᵢ, Aᵢ₊₁)` — a β-acyclic path whose identity
//! GAO is a nested elimination order. Each attribute ranges over `[m·M]`,
//! split into `m` chunks of width `M`. Relation `Rᵢ` contains
//!
//! * for every chunk `j ∉ {i, i−1}`: the full grid
//!   `[(j−1)M+2, jM] × [(j−1)M+2, jM]`,
//! * for chunk `i`: the single tuple `((i−1)M+1, (i−1)M+1)`,
//! * for chunk `i−1` (cyclically, so `R₁`'s chunk `m`): nothing.
//!
//! The output is empty and a certificate of size `O(mM)` exists ("the
//! certificate is hidden along a long path"), so Minesweeper finishes in
//! `Õ(mM)`; Yannakakis' semijoins and the worst-case-optimal algorithms
//! each touch `Ω(mM²)` tuples/prefixes. The `appendix_j` harness measures
//! exactly this separation.

use minesweeper_core::Query;
use minesweeper_storage::{Database, RelationBuilder, Val};

use crate::queries::Instance;

/// Builds the hidden-certificate instance with `m ≥ 3` relations and chunk
/// width `M ≥ 2`. Input size is `Θ(m²M²)` total.
pub fn hidden_certificate_instance(m: usize, chunk: Val) -> Instance {
    assert!(m >= 3, "the construction needs m >= 3");
    assert!(chunk >= 2);
    let mut db = Database::new();
    let mut query = Query::new(m + 1);
    for i in 1..=m {
        let mut b = RelationBuilder::new(format!("R{i}"), 2);
        for j in 1..=m {
            let j_val = j as Val;
            if j == i {
                // Single off-grid tuple.
                let v = (j_val - 1) * chunk + 1;
                b.push(&[v, v]);
            } else if j == prev_chunk(i, m) {
                // Empty chunk.
            } else {
                let lo = (j_val - 1) * chunk + 2;
                let hi = j_val * chunk;
                for a in lo..=hi {
                    for bb in lo..=hi {
                        b.push(&[a, bb]);
                    }
                }
            }
        }
        let rel = db.add(b.build().unwrap()).unwrap();
        query = query.atom(rel, &[i - 1, i]);
    }
    Instance { db, query }
}

/// The chunk index `i − 1`, cyclically (chunk `m` for `i = 1`).
fn prev_chunk(i: usize, m: usize) -> usize {
    if i == 1 {
        m
    } else {
        i - 1
    }
}

/// The generalized-arity variant of the family: `Q = ⋈ᵢ Rᵢ(Aᵢ, …,
/// A_{i+k−1})` with `k`-dimensional grid chunks `[(j−1)M+2, jM]^k` — the
/// paper's second Appendix J construction, which widens the baseline gap
/// to `Ω(mM^k)` while Minesweeper stays `Õ(mM)`. `k = 2` reduces to
/// [`hidden_certificate_instance`].
pub fn hidden_certificate_path_k(m: usize, k: usize, chunk: Val) -> Instance {
    assert!(m >= 3 && k >= 2 && chunk >= 2);
    let mut db = Database::new();
    let mut query = Query::new(m + k - 1);
    for i in 1..=m {
        let mut b = RelationBuilder::new(format!("R{i}"), k);
        for j in 1..=m {
            let j_val = j as Val;
            if j == i {
                let v = (j_val - 1) * chunk + 1;
                b.push(&vec![v; k]);
            } else if j == prev_chunk(i, m) {
                // Empty chunk.
            } else {
                let lo = (j_val - 1) * chunk + 2;
                let hi = j_val * chunk;
                // Full k-dimensional grid over [lo, hi].
                let mut t = vec![lo; k];
                loop {
                    b.push(&t);
                    let mut pos = k;
                    let mut done = true;
                    while pos > 0 {
                        pos -= 1;
                        if t[pos] < hi {
                            t[pos] += 1;
                            for x in &mut t[pos + 1..] {
                                *x = lo;
                            }
                            done = false;
                            break;
                        }
                    }
                    if done {
                        break;
                    }
                }
            }
        }
        let rel = db.add(b.build().unwrap()).unwrap();
        let attrs: Vec<usize> = (i - 1..i - 1 + k).collect();
        query = query.atom(rel, &attrs);
    }
    Instance { db, query }
}

/// Backwards-compatible alias for the `k = 2` family.
pub fn hidden_certificate_path(m: usize, chunk: Val) -> Instance {
    hidden_certificate_instance(m, chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_cds::ProbeMode;
    use minesweeper_core::{minesweeper_join, naive_join};
    use minesweeper_hypergraph::{is_beta_acyclic, is_nested_elimination_order};

    #[test]
    fn instance_shape() {
        let m = 4;
        let chunk: Val = 5;
        let inst = hidden_certificate_instance(m, chunk);
        assert_eq!(inst.query.num_atoms(), m);
        assert_eq!(inst.query.n_attrs, m + 1);
        // Each relation: (m−2) chunks of (M−1)² plus one singleton.
        let expect = (m - 2) * ((chunk - 1) * (chunk - 1)) as usize + 1;
        for (_, rel) in inst.db.iter() {
            assert_eq!(rel.len(), expect);
        }
        let h = inst.query.hypergraph();
        assert!(is_beta_acyclic(&h));
        let gao: Vec<usize> = (0..=m).collect();
        assert!(is_nested_elimination_order(&h, &gao));
    }

    #[test]
    fn output_is_empty() {
        let inst = hidden_certificate_instance(3, 4);
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
        let inst = hidden_certificate_instance(4, 3);
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
    }

    #[test]
    fn arity_k_instance_shape() {
        let m = 3;
        let k = 3;
        let chunk: Val = 3;
        let inst = hidden_certificate_path_k(m, k, chunk);
        assert_eq!(inst.query.n_attrs, m + k - 1);
        assert_eq!(inst.query.max_arity(), k);
        let h = inst.query.hypergraph();
        assert!(is_beta_acyclic(&h));
        let gao: Vec<usize> = (0..m + k - 1).collect();
        assert!(is_nested_elimination_order(&h, &gao));
        // Each relation: (m−2) chunks of (M−1)^k plus one singleton.
        let expect = (m - 2) * ((chunk - 1).pow(k as u32)) as usize + 1;
        for (_, rel) in inst.db.iter() {
            assert_eq!(rel.len(), expect);
        }
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
        assert_eq!(
            hidden_certificate_path_k(4, 2, 5).db.total_tuples(),
            hidden_certificate_instance(4, 5).db.total_tuples(),
            "k = 2 reduces to the base family"
        );
    }

    #[test]
    fn arity_k_minesweeper_stays_fast() {
        // k = 3: baselines pay Ω(M³) per grid; Minesweeper's probes stay
        // linear in M.
        let mut probes = Vec::new();
        for chunk in [4i64, 8, 16] {
            let inst = hidden_certificate_path_k(3, 3, chunk);
            let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
            assert!(res.tuples.is_empty());
            probes.push(res.stats.probe_points);
        }
        assert!(
            probes[2] < 3 * probes[1],
            "superlinear probe growth: {probes:?}"
        );
    }

    #[test]
    fn minesweeper_is_subquadratic_in_chunk_width() {
        // Probe counts must scale ~linearly with M (certificate size
        // Θ(mM)), far below the Θ(M²) grid sizes.
        let m = 4;
        let mut probes = Vec::new();
        for chunk in [8, 16, 32] {
            let inst = hidden_certificate_instance(m, chunk);
            let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
            assert!(res.tuples.is_empty());
            probes.push(res.stats.probe_points);
        }
        // Doubling M should roughly double the probes, not quadruple them.
        assert!(probes[2] < 3 * probes[1], "superlinear growth: {probes:?}");
        let chunk = 32;
        let inst = hidden_certificate_instance(m, chunk);
        let grid = (chunk - 1) * (chunk - 1);
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        assert!(
            (res.stats.probe_points as i64) < grid,
            "probes {} should be well below one grid {grid}",
            res.stats.probe_points
        );
    }
}
