//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this crate implements
//! the subset of proptest's API that our property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `prop::collection::{vec, btree_set}`, `prop::bool::ANY`,
//! the [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Inputs are drawn from a deterministic SplitMix64 stream seeded from the
//! test's name and case index, so every failure is reproducible by simply
//! re-running the test. There is **no shrinking**: the failing case number
//! is reported instead.

use std::ops::{Range, RangeInclusive};

/// Error type carried by a failing property (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Harness configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream for input generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test name and case index (FNV-1a hash).
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)))
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64 + 1;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A collection length range; built from `a..b` or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
        }
    }

    /// `Vec` of values with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of values; duplicates are retried a bounded number of
    /// times, so the result may be smaller than the drawn size when the
    /// element domain is nearly exhausted (same contract as proptest).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Builds a [`BTreeSetStrategy`].
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.sample(rng).max(self.size.lo);
            let mut out = BTreeSet::new();
            let mut misses = 0;
            while out.len() < want && misses < 64 {
                if !out.insert(self.elem.generate(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A uniform random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual imports: strategies, config, and the macros.
pub mod prelude {
    /// proptest's prelude re-exports the crate itself as `prop`.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs `config.cases` deterministic cases; a failing
/// `prop_assert*` aborts that property with the case index in the panic
/// message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let out: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = out {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case, cfg.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property, failing the case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property, failing the case with the value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -4i64..9, n in 1usize..=6) {
            prop_assert!((-4..9).contains(&x));
            prop_assert!((1..=6).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0i64..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn flat_map_and_map_compose(
            s in (1usize..4).prop_flat_map(|n| prop::collection::vec(0usize..n, n..=n))
        ) {
            let n = s.len();
            prop_assert!((1..4).contains(&n));
            prop_assert!(s.iter().all(|&x| x < n));
        }

        #[test]
        fn btree_set_within_domain(s in prop::collection::btree_set(0usize..4, 1..=3)) {
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0i64..100, 5..=5);
        let mut r1 = crate::TestRng::for_case("x", 3);
        let mut r2 = crate::TestRng::for_case("x", 3);
        assert_eq!(
            crate::Strategy::generate(&strat, &mut r1),
            crate::Strategy::generate(&strat, &mut r2)
        );
    }
}
