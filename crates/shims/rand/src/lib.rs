//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds with no network access, so the API subset it
//! actually uses — `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `Rng::gen_bool` — is implemented here on top of a
//! deterministic xoshiro256++ generator seeded via SplitMix64. The
//! distributions are uniform and deterministic per seed, which is all the
//! workload generators need; this is **not** a cryptographic or
//! statistically audited RNG.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform sample in `[lo, hi)` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// The low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the half-open range `r`.
    fn gen_range<T: SampleUniform>(&mut self, r: Range<T>) -> T {
        assert!(r.start < r.end, "gen_range called with an empty range");
        T::sample_range(self, r.start, r.end)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, exactly like rand's `gen_bool`.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Width fits in u64 for every integer type we impl.
                let span = (hi as i128 - lo as i128) as u64;
                // Debiased multiply-shift (Lemire): reject the few low
                // words that would over-represent the first buckets.
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    let low = m as u64;
                    if low < span && low < span.wrapping_neg() % span {
                        continue;
                    }
                    return (lo as i128 + (m >> 64) as i128) as $t;
                }
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for rand's
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..7i64);
            assert!((-5..7).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "suspicious coin: {heads}");
    }
}
