//! Offline stand-in for a scoped thread-pool crate.
//!
//! The workspace builds without network access, so instead of `rayon` or
//! `scoped_threadpool` this crate implements the one primitive the
//! parallel executor needs: run a batch of closures that **borrow** the
//! caller's data on a bounded number of OS threads, and hand the results
//! back in input order. It is a thin layer over [`std::thread::scope`] —
//! workers pull jobs from a shared queue (so a skewed batch keeps every
//! thread busy), and a panic inside any job propagates to the caller
//! exactly as `std::thread::scope` propagates it.

use std::sync::Mutex;

/// Number of hardware threads, with a serial fallback of 1 when the
/// platform cannot say ([`std::thread::available_parallelism`] errors).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every job on at most `threads` scoped worker threads and returns
/// the results **in input order**.
///
/// Jobs may borrow from the caller's stack (the workers are scoped).
/// Scheduling is dynamic: workers repeatedly pop the next unstarted job,
/// so one slow job does not idle the other threads. With `threads <= 1`
/// or a single job, everything runs inline on the caller's thread — no
/// spawn cost on the serial path.
///
/// ```
/// let data = vec![1u64, 2, 3, 4, 5];
/// let squares = scoped_pool::scoped_map(
///     3,
///     data.iter().map(|&x| move || x * x).collect::<Vec<_>>(),
/// );
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn scoped_map<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let workers = threads.min(n);
    // Jobs are popped from the back; results land by index, so execution
    // order never shows in the output.
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().unwrap().pop();
                let Some((i, f)) = job else { break };
                *slots[i].lock().unwrap() = Some(f());
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every job ran exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_input_order() {
        let jobs: Vec<_> = (0..37usize).map(|i| move || i * 2).collect();
        assert_eq!(
            scoped_map(4, jobs),
            (0..37).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn serial_paths_run_inline() {
        let main_thread = std::thread::current().id();
        let ids = scoped_map(1, vec![|| std::thread::current().id()]);
        assert_eq!(ids, vec![main_thread], "threads=1 stays on the caller");
        let ids = scoped_map(8, vec![|| std::thread::current().id()]);
        assert_eq!(ids, vec![main_thread], "a single job stays on the caller");
    }

    #[test]
    fn borrows_caller_data_and_runs_concurrently() {
        let data: Vec<u64> = (0..100).collect();
        let touched = AtomicUsize::new(0);
        let sums = scoped_map(
            3,
            data.chunks(10)
                .map(|c| {
                    let touched = &touched;
                    move || {
                        touched.fetch_add(1, Ordering::Relaxed);
                        c.iter().sum::<u64>()
                    }
                })
                .collect(),
        );
        assert_eq!(touched.load(Ordering::Relaxed), 10);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(
            scoped_map(64, (0..3).map(|i| move || i).collect::<Vec<_>>()),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        scoped_map(
            2,
            vec![
                Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
                Box::new(|| panic!("boom")),
            ],
        );
    }
}
