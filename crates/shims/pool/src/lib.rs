//! Offline stand-in for a work-stealing thread-pool crate.
//!
//! The workspace builds without network access, so instead of `rayon` or
//! `crossbeam-deque` this crate implements the one primitive the
//! parallel executor needs: [`StealQueue`], a work-stealing task deque.
//! Every worker owns a deque seeded round-robin, pops its own front, and
//! when empty **steals from the back** of a victim's deque. A skewed
//! batch therefore keeps every thread busy — an idle worker drains the
//! tail of whichever deque still has work — and the queue doubles as
//! the cancellation point for early-terminating consumers.
//! [`available_threads`] reports the hardware parallelism the callers
//! size their pools by.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of hardware threads, with a serial fallback of 1 when the
/// platform cannot say ([`std::thread::available_parallelism`] errors).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A work-stealing deque of tasks shared by a fixed set of workers.
///
/// Tasks are distributed round-robin at construction so worker `w` owns
/// tasks `w, w + workers, w + 2·workers, …` and pops them front-first —
/// low task indexes start earliest across the pool, which is what lets an
/// order-preserving consumer of per-task output start draining
/// immediately. A worker whose own deque is empty steals from the **back**
/// of the first non-empty victim, so stolen work is the work farthest
/// from the consumption frontier. [`StealQueue::cancel`] flips a flag
/// that makes every subsequent [`StealQueue::take`] return `None`,
/// abandoning still-queued tasks (the cancellation path of streaming
/// consumers that stop early).
///
/// ```
/// use scoped_pool::StealQueue;
/// let q: StealQueue<usize> = StealQueue::new(2, (0..4).collect());
/// // Worker 0 owns [0, 2]; worker 1 owns [1, 3].
/// assert_eq!(q.take(0), Some((0, false)));
/// assert_eq!(q.take(0), Some((2, false)));
/// assert_eq!(q.take(0), Some((3, true)), "stolen from worker 1's back");
/// ```
pub struct StealQueue<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    steals: AtomicU64,
    /// Shared (`Arc`) so long-running task bodies can poll the flag
    /// through [`StealQueue::cancel_handle`] without borrowing the
    /// queue.
    cancelled: Arc<AtomicBool>,
}

impl<T> StealQueue<T> {
    /// Distributes `tasks` round-robin over `workers` deques.
    pub fn new(workers: usize, tasks: Vec<T>) -> Self {
        let workers = workers.max(1);
        let mut deques: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            deques[i % workers].push_back(t);
        }
        StealQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// The next task for `worker`: its own front, else a steal from the
    /// back of the first non-empty victim (scanning from `worker + 1`).
    /// Returns the task and whether it was stolen; `None` once every
    /// deque is empty or the queue was cancelled.
    pub fn take(&self, worker: usize) -> Option<(T, bool)> {
        if self.cancelled.load(Ordering::Acquire) {
            return None;
        }
        let n = self.deques.len();
        if let Some(t) = self.deques[worker % n].lock().unwrap().pop_front() {
            return Some((t, false));
        }
        for i in 1..n {
            let victim = (worker + i) % n;
            if let Some(t) = self.deques[victim].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some((t, true));
            }
        }
        None
    }

    /// Abandons every still-queued task: subsequent [`StealQueue::take`]
    /// calls return `None`. In-flight tasks are unaffected — the caller's
    /// output channel or a polled [`StealQueue::cancel_handle`] is what
    /// interrupts those.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once [`StealQueue::cancel`] ran.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// An owning handle to the cancellation flag, for task bodies that
    /// must poll it mid-task (e.g. inside a long probe loop) without
    /// borrowing the queue.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancelled)
    }

    /// Number of tasks taken from a victim's deque rather than the
    /// taker's own (a balance measure: 0 means the round-robin seed was
    /// already even).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn steal_queue_round_robins_and_steals_from_the_back() {
        let q: StealQueue<usize> = StealQueue::new(2, (0..6).collect());
        // Worker 0 owns [0, 2, 4], worker 1 owns [1, 3, 5].
        assert_eq!(q.take(0), Some((0, false)));
        assert_eq!(q.take(0), Some((2, false)));
        assert_eq!(q.take(0), Some((4, false)));
        // Worker 0's deque is empty: it steals worker 1's *back* task.
        assert_eq!(q.take(0), Some((5, true)));
        assert_eq!(q.steals(), 1);
        assert_eq!(q.take(1), Some((1, false)));
        assert_eq!(q.take(1), Some((3, false)));
        assert_eq!(q.take(1), None, "drained");
    }

    #[test]
    fn steal_queue_runs_every_task_exactly_once_across_threads() {
        use std::sync::atomic::AtomicUsize;
        let q: StealQueue<usize> = StealQueue::new(3, (0..300).collect());
        let seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for w in 0..3 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    while let Some((_, _)) = q.take(w) {
                        seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(seen.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn steal_queue_cancellation_abandons_queued_tasks() {
        let q: StealQueue<usize> = StealQueue::new(3, (0..9).collect());
        assert!(q.take(0).is_some());
        assert!(!q.is_cancelled());
        let handle = q.cancel_handle();
        assert!(!handle.load(Ordering::Acquire));
        q.cancel();
        assert!(q.is_cancelled());
        assert!(handle.load(Ordering::Acquire), "handle observes the flag");
        assert_eq!(q.take(0), None);
        assert_eq!(q.take(1), None, "every worker sees the cancellation");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let q: StealQueue<u8> = StealQueue::new(0, vec![7]);
        assert_eq!(q.workers(), 1);
        assert_eq!(q.take(0), Some((7, false)));
    }
}
