//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so the bench harnesses are
//! compiled against this minimal runner instead. It keeps criterion's
//! macro/type surface (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`) and reports a simple
//! mean-wall-clock line per benchmark — no statistics, outlier analysis, or
//! HTML reports. Timings are indicative, not rigorous.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and accumulates wall-clock time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The bench context handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn human(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if iters > 0 {
        b.elapsed / iters as u32
    } else {
        Duration::ZERO
    };
    println!("{label:<50} {:>12}/iter ({iters} iters)", human(per_iter));
}

impl Criterion {
    /// Sets the default iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a benchmark named by `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (reporting already happened eagerly).
    pub fn finish(&mut self) {}
}

/// Declares a bench group: either `criterion_group!(name, fn, ...)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        c.bench_function("flat", |b| b.iter(|| black_box("x".len())));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        trivial(&mut c);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
