//! The WAL record grammar: one checksummed, human-readable line per
//! committed batch.
//!
//! ```text
//! line   := checksum SP "W" SP lsn SP verb
//! verb   := "INSERT"  SP rel SP ver { SP cell }
//!         | "DELETE"  SP rel SP ver { SP cell }
//!         | "BATCH"   SP rel SP ver SP op { SP ";" SP op }
//!         | "COMPACT" SP ( rel | "*" )
//! op     := ( "I" | "D" ) { SP cell }
//! ```
//!
//! * `checksum` is 16 lowercase hex digits: the [FNV-1a 64] hash of every
//!   byte after the checksum's trailing space. It turns an arbitrary-
//!   byte-offset crash into a cleanly detectable torn line.
//! * `lsn` is the record's log sequence number — strictly `+1` per
//!   record across segment boundaries, which is how recovery detects a
//!   missing segment as corruption rather than silently skipping it.
//! * `ver` is the target relation's version counter **before** the batch
//!   applied — replay asserts continuity against the recovering catalog.
//! * `rel` and every `cell` are [percent-escaped](escape_cell) so tokens
//!   are always non-empty and whitespace-free; a batch whose single op is
//!   an insert (delete) is written with the `INSERT` (`DELETE`) verb to
//!   mirror the wire protocol, anything mixed or multi-row uses `BATCH`
//!   with `;`-separated ops.
//!
//! [FNV-1a 64]: fnv64

use crate::DurabilityError;

/// FNV-1a 64-bit hash — the per-line checksum. Implemented here (it is
/// eight lines) so the crate stays dependency-free.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// True for characters a cell token must not contain raw: anything that
/// would split the token (Unicode whitespace), collide with the grammar
/// (`;` op separator), the escape introducer itself (`%`), the checkpoint
/// TSV comment character (`#`), or a control character.
fn must_escape(c: char) -> bool {
    c.is_whitespace() || c.is_control() || matches!(c, '%' | ';' | '#')
}

/// Escapes one cell into a whitespace-free token. Every byte of an
/// offending character is written as `%XX` (lowercase hex, UTF-8 bytes);
/// the empty string — which would otherwise vanish between separators —
/// is written as the reserved token `%-` (unambiguous: a literal `%`
/// always escapes to `%25`, so normal escaping never emits `%-`).
pub fn escape_cell(cell: &str) -> String {
    if cell.is_empty() {
        return "%-".to_string();
    }
    let mut out = String::with_capacity(cell.len());
    for c in cell.chars() {
        if must_escape(c) {
            let mut buf = [0u8; 4];
            for b in c.encode_utf8(&mut buf).bytes() {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Decodes an [`escape_cell`] token back to the original cell.
pub fn unescape_cell(token: &str) -> Result<String, DurabilityError> {
    if token == "%-" {
        return Ok(String::new());
    }
    let bytes = token.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| corrupt_token(token, "truncated % escape"))?;
            let hex =
                std::str::from_utf8(hex).map_err(|_| corrupt_token(token, "non-ASCII % escape"))?;
            let b = u8::from_str_radix(hex, 16)
                .map_err(|_| corrupt_token(token, "non-hex % escape"))?;
            out.push(b);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| corrupt_token(token, "escape decodes to invalid UTF-8"))
}

fn corrupt_token(token: &str, why: &str) -> DurabilityError {
    DurabilityError::Corrupt(format!("cell token {token:?}: {why}"))
}

/// One row-level operation inside a logged batch, cells still text (the
/// engine types them against the schema on replay, exactly like a wire
/// `W INSERT`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOp {
    /// Add a row.
    Insert(Vec<String>),
    /// Remove a row.
    Delete(Vec<String>),
}

/// One committed `Engine::apply_batch` call, as logged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Target relation name.
    pub relation: String,
    /// The relation's version counter before the batch applied — the
    /// continuity check replay asserts against the recovering catalog.
    pub version_before: u64,
    /// The batch's operations, in order (including no-ops: replay drops
    /// them again deterministically).
    pub ops: Vec<CellOp>,
}

/// One WAL record (without its sequence number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A committed write batch.
    Batch(Batch),
    /// An explicit `W COMPACT` request (`None` = all relations).
    /// Content-neutral, but logged so an operator reading the log sees
    /// what the server was asked to do; threshold-triggered automatic
    /// compactions are *not* logged — replay re-derives them.
    Compact {
        /// The relation compacted, or `None` for a catalog-wide fold.
        relation: Option<String>,
    },
}

/// A parsed WAL record together with its log sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequencedRecord {
    /// Strictly increasing (+1 per record) across segment boundaries.
    pub lsn: u64,
    /// The payload.
    pub record: WalRecord,
}

/// Renders one record as its log line (no trailing newline).
pub fn encode_record(lsn: u64, record: &WalRecord) -> String {
    let body = match record {
        WalRecord::Compact { relation } => format!(
            "W {lsn} COMPACT {}",
            relation.as_deref().map_or("*".to_string(), escape_cell)
        ),
        WalRecord::Batch(batch) => {
            let rel = escape_cell(&batch.relation);
            let ver = batch.version_before;
            match batch.ops.as_slice() {
                [CellOp::Insert(cells)] => {
                    format!("W {lsn} INSERT {rel} {ver}{}", render_cells(cells))
                }
                [CellOp::Delete(cells)] => {
                    format!("W {lsn} DELETE {rel} {ver}{}", render_cells(cells))
                }
                ops => {
                    let mut s = format!("W {lsn} BATCH {rel} {ver}");
                    for (i, op) in ops.iter().enumerate() {
                        if i > 0 {
                            s.push_str(" ;");
                        }
                        match op {
                            CellOp::Insert(cells) => {
                                s.push_str(" I");
                                s.push_str(&render_cells(cells));
                            }
                            CellOp::Delete(cells) => {
                                s.push_str(" D");
                                s.push_str(&render_cells(cells));
                            }
                        }
                    }
                    s
                }
            }
        }
    };
    format!("{:016x} {body}", fnv64(body.as_bytes()))
}

fn render_cells(cells: &[String]) -> String {
    let mut s = String::new();
    for c in cells {
        s.push(' ');
        s.push_str(&escape_cell(c));
    }
    s
}

/// Parses one log line (no trailing newline) back into its record.
/// Checksum or grammar failures are [`DurabilityError::Corrupt`] — the
/// reader decides whether that means a torn tail or real corruption.
pub fn parse_record(line: &str) -> Result<SequencedRecord, DurabilityError> {
    let corrupt = |why: &str| DurabilityError::Corrupt(format!("wal line {line:?}: {why}"));
    let (sum, body) = line
        .split_once(' ')
        .ok_or_else(|| corrupt("missing checksum field"))?;
    if sum.len() != 16 {
        return Err(corrupt("checksum is not 16 hex digits"));
    }
    let sum = u64::from_str_radix(sum, 16).map_err(|_| corrupt("checksum is not hex"))?;
    if sum != fnv64(body.as_bytes()) {
        return Err(corrupt("checksum mismatch"));
    }
    let mut tokens = body.split_whitespace();
    if tokens.next() != Some("W") {
        return Err(corrupt("expected the W verb"));
    }
    let lsn: u64 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| corrupt("missing or non-numeric lsn"))?;
    let verb = tokens.next().ok_or_else(|| corrupt("missing action"))?;
    let record = match verb {
        "COMPACT" => {
            let target = tokens
                .next()
                .ok_or_else(|| corrupt("COMPACT needs a target"))?;
            if tokens.next().is_some() {
                return Err(corrupt("trailing tokens after COMPACT target"));
            }
            WalRecord::Compact {
                relation: if target == "*" {
                    None
                } else {
                    Some(unescape_cell(target)?)
                },
            }
        }
        "INSERT" | "DELETE" | "BATCH" => {
            let relation = unescape_cell(
                tokens
                    .next()
                    .ok_or_else(|| corrupt("missing relation name"))?,
            )?;
            let version_before: u64 = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| corrupt("missing or non-numeric version"))?;
            let rest: Vec<&str> = tokens.collect();
            let ops = match verb {
                "INSERT" => vec![CellOp::Insert(decode_cells(&rest)?)],
                "DELETE" => vec![CellOp::Delete(decode_cells(&rest)?)],
                _ => parse_batch_ops(&rest).map_err(|why| corrupt(&why))?,
            };
            WalRecord::Batch(Batch {
                relation,
                version_before,
                ops,
            })
        }
        other => return Err(corrupt(&format!("unknown action {other:?}"))),
    };
    Ok(SequencedRecord { lsn, record })
}

fn decode_cells(tokens: &[&str]) -> Result<Vec<String>, DurabilityError> {
    tokens.iter().map(|t| unescape_cell(t)).collect()
}

/// Parses the `;`-separated op list of a `BATCH` verb. The `;` separator
/// can never be a cell (cells escape it), so the split is unambiguous
/// even for cells that happen to spell `I` or `D`.
fn parse_batch_ops(tokens: &[&str]) -> Result<Vec<CellOp>, String> {
    let mut ops = Vec::new();
    for group in tokens.split(|&t| t == ";") {
        let (marker, cells) = group
            .split_first()
            .ok_or_else(|| "empty op in BATCH".to_string())?;
        let cells = decode_cells(cells).map_err(|e| e.to_string())?;
        ops.push(match *marker {
            "I" => CellOp::Insert(cells),
            "D" => CellOp::Delete(cells),
            other => return Err(format!("unknown op marker {other:?} (expected I or D)")),
        });
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_hostile_cells() {
        for cell in [
            "",
            " ",
            "plain",
            "two words",
            "tab\there",
            "new\nline",
            "%00",
            "%-",
            "\u{0}",
            "100%",
            "a;b",
            "#comment",
            "héllo wörld",
            "\u{00a0}nbsp",
            "I",
            ";",
            "*",
        ] {
            let tok = escape_cell(cell);
            assert!(!tok.is_empty(), "{cell:?} encodes non-empty");
            assert!(
                tok.split_whitespace().count() == 1 && !tok.contains(';') && !tok.contains('#'),
                "{cell:?} -> {tok:?} must be one grammar-safe token"
            );
            assert_eq!(unescape_cell(&tok).unwrap(), cell, "round trip of {cell:?}");
        }
    }

    #[test]
    fn records_round_trip() {
        let records = [
            WalRecord::Batch(Batch {
                relation: "R".into(),
                version_before: 0,
                ops: vec![CellOp::Insert(vec!["1".into(), "2".into()])],
            }),
            WalRecord::Batch(Batch {
                relation: "odd name".into(),
                version_before: 7,
                ops: vec![CellOp::Delete(vec!["a b".into(), String::new()])],
            }),
            WalRecord::Batch(Batch {
                relation: "S".into(),
                version_before: 3,
                ops: vec![
                    CellOp::Insert(vec!["I".into(), ";".into()]),
                    CellOp::Delete(vec!["x".into(), "100%".into()]),
                    CellOp::Insert(vec!["#1".into(), "D".into()]),
                ],
            }),
            WalRecord::Compact { relation: None },
            WalRecord::Compact {
                relation: Some("R".into()),
            },
        ];
        for (i, record) in records.iter().enumerate() {
            let line = encode_record(i as u64 + 1, record);
            let parsed = parse_record(&line).unwrap();
            assert_eq!(parsed.lsn, i as u64 + 1);
            assert_eq!(&parsed.record, record, "line {line:?}");
        }
    }

    #[test]
    fn single_op_batches_mirror_the_wire_verbs() {
        let ins = WalRecord::Batch(Batch {
            relation: "R".into(),
            version_before: 4,
            ops: vec![CellOp::Insert(vec!["9".into()])],
        });
        assert!(encode_record(1, &ins).contains(" INSERT R 4 9"));
        let del = WalRecord::Batch(Batch {
            relation: "R".into(),
            version_before: 5,
            ops: vec![CellOp::Delete(vec!["9".into()])],
        });
        assert!(encode_record(2, &del).contains(" DELETE R 5 9"));
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let line = encode_record(
            12,
            &WalRecord::Batch(Batch {
                relation: "R".into(),
                version_before: 2,
                ops: vec![CellOp::Insert(vec!["10".into(), "20".into()])],
            }),
        );
        assert!(parse_record(&line).is_ok());
        for i in 0..line.len() {
            let mut bytes = line.as_bytes().to_vec();
            bytes[i] = if bytes[i] == b'x' { b'y' } else { b'x' };
            if let Ok(mutated) = String::from_utf8(bytes) {
                if mutated == line {
                    continue;
                }
                assert!(
                    parse_record(&mutated).is_err(),
                    "flip at byte {i} must not parse: {mutated:?}"
                );
            }
        }
    }

    #[test]
    fn truncated_lines_are_rejected() {
        let line = encode_record(3, &WalRecord::Compact { relation: None });
        for cut in 0..line.len() {
            assert!(parse_record(&line[..cut]).is_err(), "prefix of len {cut}");
        }
    }
}
