//! Checkpoints: atomically published snapshot dumps.
//!
//! A checkpoint is a directory `ckpt-NNNNNN/` under the store's
//! `checkpoints/` root holding one escaped-TSV file per relation
//! (`rel-000.tsv`, … — the same tab-separated shape the engine's loader
//! reads, with cells percent-escaped as in [`crate::record`]) plus a
//! `MANIFEST` that pins the WAL position the dump is consistent with,
//! the next LSN, and every relation's `(name, types, version, rows)`.
//! The manifest's final line is `ok <fnv64>` over everything above it, so
//! a half-written manifest is detectable.
//!
//! Publication is atomic: everything is written and fsynced into a
//! `.tmp` directory, then renamed into place. Readers
//! ([`load_latest`]) walk checkpoints newest-first and fall back past
//! any that fail validation, collecting warnings — only running out of
//! candidates while the WAL still holds records is fatal (the store
//! decides that; this module just reports what it found).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::record::{escape_cell, fnv64, unescape_cell};
use crate::wal::WalPosition;
use crate::DurabilityError;

/// One relation's row in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationMeta {
    /// Relation name (unescaped).
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Column type tokens as the engine spells them (`int` / `str`).
    pub types: Vec<String>,
    /// The relation's version counter at dump time — recovery restores
    /// it so the version clock survives a restart.
    pub version: u64,
    /// Row count of the dump file, cross-checked on load.
    pub rows: u64,
}

/// The parsed `MANIFEST` of one checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint sequence number (monotonic per store).
    pub id: u64,
    /// The WAL position this dump is consistent with: replay starts here.
    pub wal: WalPosition,
    /// The LSN the first replayed record must carry.
    pub next_lsn: u64,
    /// Per-relation metadata, in dump-file order.
    pub relations: Vec<RelationMeta>,
}

/// One relation's full dump: what the engine hands in at checkpoint
/// time and gets back at recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDump {
    /// Relation name.
    pub name: String,
    /// Column type tokens (`int` / `str`), one per column.
    pub types: Vec<String>,
    /// Version counter at dump time.
    pub version: u64,
    /// Decoded rows, cells as text exactly as the engine renders them.
    pub rows: Vec<Vec<String>>,
}

fn ckpt_dir(root: &Path, id: u64) -> PathBuf {
    root.join(format!("ckpt-{id:06}"))
}

fn rel_file(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("rel-{idx:03}.tsv"))
}

/// Lists checkpoint ids present under `root`, ascending. Stray `.tmp`
/// directories (a crash mid-publish) are ignored here and swept by
/// [`prune_checkpoints`].
pub fn list_checkpoints(root: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(root)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

fn sync_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)?;
    f.write_all(bytes)?;
    f.sync_data()
}

fn sync_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    File::open(path)?.sync_data()?;
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Writes checkpoint `id` under `root` and atomically publishes it.
/// Returns the manifest it recorded.
pub fn write_checkpoint(
    root: &Path,
    id: u64,
    wal: WalPosition,
    next_lsn: u64,
    dumps: &[RelationDump],
) -> Result<Manifest, DurabilityError> {
    let tmp = root.join(format!("ckpt-{id:06}.tmp"));
    if tmp.exists() {
        fs::remove_dir_all(&tmp)?;
    }
    fs::create_dir_all(&tmp)?;

    let mut relations = Vec::with_capacity(dumps.len());
    for (idx, dump) in dumps.iter().enumerate() {
        let mut tsv = String::new();
        for row in &dump.rows {
            debug_assert_eq!(row.len(), dump.types.len(), "row arity matches types");
            let cells: Vec<String> = row.iter().map(|c| escape_cell(c)).collect();
            tsv.push_str(&cells.join("\t"));
            tsv.push('\n');
        }
        sync_file(&rel_file(&tmp, idx), tsv.as_bytes())?;
        relations.push(RelationMeta {
            name: dump.name.clone(),
            arity: dump.types.len(),
            types: dump.types.clone(),
            version: dump.version,
            rows: dump.rows.len() as u64,
        });
    }

    let mut body = String::new();
    body.push_str(&format!("manifest {id}\n"));
    body.push_str(&format!("wal {} {} {next_lsn}\n", wal.segment, wal.offset));
    for meta in &relations {
        body.push_str(&format!(
            "rel {} {} {} {}\n",
            escape_cell(&meta.name),
            meta.version,
            meta.rows,
            meta.types.join(" ")
        ));
    }
    body.push_str(&format!("ok {:016x}\n", fnv64(body.as_bytes())));
    sync_file(&tmp.join("MANIFEST"), body.as_bytes())?;
    sync_dir(&tmp)?;

    let dest = ckpt_dir(root, id);
    if dest.exists() {
        fs::remove_dir_all(&dest)?;
    }
    fs::rename(&tmp, &dest)?;
    sync_dir(root)?;
    Ok(Manifest {
        id,
        wal,
        next_lsn,
        relations,
    })
}

/// Parses and checksum-verifies one checkpoint's `MANIFEST`.
pub fn load_manifest(root: &Path, id: u64) -> Result<Manifest, DurabilityError> {
    let path = ckpt_dir(root, id).join("MANIFEST");
    let mut text = String::new();
    File::open(&path)?.read_to_string(&mut text)?;
    let corrupt = |msg: &str| DurabilityError::Corrupt(format!("{}: {msg}", path.display()));

    let ok_at = text
        .trim_end_matches('\n')
        .rfind("\nok ")
        .ok_or_else(|| corrupt("missing ok line"))?;
    let (body, tail) = text.split_at(ok_at + 1);
    let sum = tail
        .strip_prefix("ok ")
        .and_then(|s| u64::from_str_radix(s.trim_end(), 16).ok())
        .ok_or_else(|| corrupt("malformed ok line"))?;
    if sum != fnv64(body.as_bytes()) {
        return Err(corrupt("manifest checksum mismatch"));
    }

    let mut lines = body.lines();
    let manifest_id: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("manifest "))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| corrupt("bad manifest line"))?;
    if manifest_id != id {
        return Err(corrupt("manifest id does not match its directory"));
    }
    let wal_line = lines
        .next()
        .and_then(|l| l.strip_prefix("wal "))
        .ok_or_else(|| corrupt("bad wal line"))?;
    let mut it = wal_line.split_whitespace();
    let (seg, off, next_lsn) = match (it.next(), it.next(), it.next(), it.next()) {
        (Some(a), Some(b), Some(c), None) => (
            a.parse().map_err(|_| corrupt("bad wal segment"))?,
            b.parse().map_err(|_| corrupt("bad wal offset"))?,
            c.parse().map_err(|_| corrupt("bad next lsn"))?,
        ),
        _ => return Err(corrupt("bad wal line")),
    };

    let mut relations = Vec::new();
    for line in lines {
        let rest = line
            .strip_prefix("rel ")
            .ok_or_else(|| corrupt("unexpected manifest line"))?;
        let toks: Vec<&str> = rest.split_whitespace().collect();
        if toks.len() < 4 {
            return Err(corrupt("short rel line"));
        }
        let name =
            unescape_cell(toks[0]).map_err(|e| corrupt(&format!("bad relation name: {e}")))?;
        let version = toks[1].parse().map_err(|_| corrupt("bad version"))?;
        let rows = toks[2].parse().map_err(|_| corrupt("bad row count"))?;
        let types: Vec<String> = toks[3..].iter().map(|s| s.to_string()).collect();
        relations.push(RelationMeta {
            name,
            arity: types.len(),
            types,
            version,
            rows,
        });
    }
    Ok(Manifest {
        id,
        wal: WalPosition {
            segment: seg,
            offset: off,
        },
        next_lsn,
        relations,
    })
}

/// Loads one checkpoint's dumps, validating row counts and arities
/// against its (already verified) manifest.
pub fn load_dumps(root: &Path, manifest: &Manifest) -> Result<Vec<RelationDump>, DurabilityError> {
    let dir = ckpt_dir(root, manifest.id);
    let mut dumps = Vec::with_capacity(manifest.relations.len());
    for (idx, meta) in manifest.relations.iter().enumerate() {
        let path = rel_file(&dir, idx);
        let mut text = String::new();
        File::open(&path)?.read_to_string(&mut text)?;
        let corrupt = |msg: String| DurabilityError::Corrupt(format!("{}: {msg}", path.display()));
        let mut rows = Vec::with_capacity(meta.rows as usize);
        for (lineno, line) in text.lines().enumerate() {
            let cells: Result<Vec<String>, _> = line.split('\t').map(unescape_cell).collect();
            let cells = cells.map_err(|e| corrupt(format!("line {}: {e}", lineno + 1)))?;
            if cells.len() != meta.arity {
                return Err(corrupt(format!(
                    "line {}: {} cells, expected {}",
                    lineno + 1,
                    cells.len(),
                    meta.arity
                )));
            }
            rows.push(cells);
        }
        if rows.len() as u64 != meta.rows {
            return Err(corrupt(format!(
                "{} rows, manifest says {}",
                rows.len(),
                meta.rows
            )));
        }
        dumps.push(RelationDump {
            name: meta.name.clone(),
            types: meta.types.clone(),
            version: meta.version,
            rows,
        });
    }
    Ok(dumps)
}

/// A successfully loaded checkpoint.
#[derive(Debug)]
pub struct Loaded {
    /// Its verified manifest.
    pub manifest: Manifest,
    /// Its relation dumps, in manifest order.
    pub dumps: Vec<RelationDump>,
}

/// Walks checkpoints newest-first and returns the first that validates
/// end-to-end, with one warning per invalid checkpoint skipped.
pub fn load_latest(root: &Path) -> Result<(Option<Loaded>, Vec<String>), DurabilityError> {
    let mut warnings = Vec::new();
    for id in list_checkpoints(root)?.into_iter().rev() {
        match load_manifest(root, id).and_then(|m| {
            let dumps = load_dumps(root, &m)?;
            Ok(Loaded { manifest: m, dumps })
        }) {
            Ok(loaded) => return Ok((Some(loaded), warnings)),
            Err(e) => warnings.push(format!("skipping checkpoint {id}: {e}")),
        }
    }
    Ok((None, warnings))
}

/// Removes all but the newest `keep` checkpoints, plus any stray `.tmp`
/// directories from an interrupted publish. Returns how many went.
pub fn prune_checkpoints(root: &Path, keep: usize) -> io::Result<usize> {
    let mut removed = 0;
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            fs::remove_dir_all(entry.path())?;
            removed += 1;
        }
    }
    let ids = list_checkpoints(root)?;
    if ids.len() > keep {
        for &id in &ids[..ids.len() - keep] {
            fs::remove_dir_all(ckpt_dir(root, id))?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// The smallest WAL segment any *valid* retained checkpoint pins —
/// segments below it are prunable. Returns `None` (prune nothing) if any
/// retained manifest fails to validate, since that checkpoint may still
/// be the fallback that needs old segments.
pub fn min_pinned_segment(root: &Path) -> io::Result<Option<u64>> {
    let mut min = None;
    for id in list_checkpoints(root)? {
        match load_manifest(root, id) {
            Ok(m) => {
                min = Some(match min {
                    None => m.wal.segment,
                    Some(cur) if m.wal.segment < cur => m.wal.segment,
                    Some(cur) => cur,
                })
            }
            Err(_) => return Ok(None),
        }
    }
    Ok(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msj-ckpt-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_dumps() -> Vec<RelationDump> {
        vec![
            RelationDump {
                name: "R".into(),
                types: vec!["int".into(), "int".into()],
                version: 7,
                rows: vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
            },
            RelationDump {
                name: "weird rel".into(),
                types: vec!["str".into()],
                version: 0,
                rows: vec![
                    vec!["".into()],
                    vec!["tab\there".into()],
                    vec!["%-literal".into()],
                    vec!["# not a comment".into()],
                ],
            },
        ]
    }

    #[test]
    fn checkpoint_round_trips_hostile_data() {
        let root = tmp("round");
        let wal = WalPosition {
            segment: 3,
            offset: 99,
        };
        let written = write_checkpoint(&root, 1, wal, 42, &sample_dumps()).unwrap();
        let (loaded, warnings) = load_latest(&root).unwrap();
        let loaded = loaded.expect("checkpoint present");
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(loaded.manifest, written);
        assert_eq!(loaded.manifest.wal, wal);
        assert_eq!(loaded.manifest.next_lsn, 42);
        assert_eq!(loaded.dumps, sample_dumps());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older_with_warning() {
        let root = tmp("fallback");
        let wal = WalPosition {
            segment: 1,
            offset: 0,
        };
        write_checkpoint(&root, 1, wal, 1, &sample_dumps()).unwrap();
        write_checkpoint(
            &root,
            2,
            WalPosition {
                segment: 2,
                offset: 5,
            },
            9,
            &sample_dumps(),
        )
        .unwrap();
        // Flip one byte of checkpoint 2's manifest.
        let path = ckpt_dir(&root, 2).join("MANIFEST");
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] = bytes[10].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        let (loaded, warnings) = load_latest(&root).unwrap();
        assert_eq!(loaded.expect("fallback").manifest.id, 1);
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("skipping checkpoint 2"),
            "{warnings:?}"
        );
        // A damaged retained manifest also blocks WAL pruning.
        assert_eq!(min_pinned_segment(&root).unwrap(), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn row_count_mismatch_is_detected() {
        let root = tmp("rows");
        let wal = WalPosition {
            segment: 1,
            offset: 0,
        };
        write_checkpoint(&root, 1, wal, 1, &sample_dumps()).unwrap();
        let tsv = ckpt_dir(&root, 1).join("rel-000.tsv");
        fs::write(&tsv, b"1\t2\n").unwrap(); // manifest says 2 rows
        let (loaded, warnings) = load_latest(&root).unwrap();
        assert!(loaded.is_none());
        assert_eq!(warnings.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn prune_keeps_newest_and_sweeps_tmp() {
        let root = tmp("prune");
        let wal = WalPosition {
            segment: 1,
            offset: 0,
        };
        for id in 1..=4 {
            write_checkpoint(&root, id, wal, id, &sample_dumps()).unwrap();
        }
        fs::create_dir_all(root.join("ckpt-000099.tmp")).unwrap();
        let removed = prune_checkpoints(&root, 2).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(list_checkpoints(&root).unwrap(), vec![3, 4]);
        assert_eq!(min_pinned_segment(&root).unwrap(), Some(1));
        let _ = fs::remove_dir_all(&root);
    }
}
