//! Durability for the join engine: a human-readable write-ahead log,
//! checkpoints, and lossless crash recovery.
//!
//! This crate is deliberately **string-level and engine-agnostic**: WAL
//! records and checkpoint rows carry relation names and text cells, and
//! the engine types them against its schema catalog on replay — the same
//! code path a live `W INSERT` takes over the wire. That keeps the layer
//! below the dictionary encoder, so nothing here depends on value
//! interning order, and a recovered engine re-interns strings in replay
//! order (ids may differ; decoded query output is byte-identical).
//!
//! The pieces (full design in `docs/DURABILITY.md`):
//!
//! * [`record`] — the WAL record grammar: one checksummed line per
//!   committed batch, mirroring the `W INSERT/DELETE/COMPACT` wire verbs,
//!   with percent-escaped cells so any string value survives the
//!   whitespace-separated format;
//! * [`wal`] — the append-only segmented log: [`wal::Wal`] writes records
//!   under an [`wal::FsyncPolicy`], rotates segments by size, and
//!   [`wal::read_tail`] replays from a position, tolerating a torn final
//!   line (truncate-and-warn, never refuse);
//! * [`checkpoint`] — atomically published snapshot dumps: per-relation
//!   escaped-TSV files plus a checksummed `MANIFEST` pinning the WAL
//!   position and every relation's `(arity, types, version, rows)`;
//! * [`store`] — [`store::DurableStore`], the data-directory orchestrator
//!   the engine talks to: open-or-recover, log, checkpoint, prune, and
//!   the durability counters `STATS` reports.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod record;
pub mod store;
pub mod wal;

pub use checkpoint::{Manifest, RelationDump, RelationMeta};
pub use record::{Batch, CellOp, SequencedRecord, WalRecord};
pub use store::{
    DurabilityCounters, DurabilityOptions, DurableStore, Opened, RecoveredRelation, Recovery,
};
pub use wal::{FsyncPolicy, WalPosition};

use std::fmt;
use std::io;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A WAL record or checkpoint file is malformed in a way recovery
    /// must not paper over (corruption *before* the final record, an LSN
    /// gap, a manifest that fails its checksum with no older fallback).
    Corrupt(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::Corrupt(msg) => write!(f, "durability data corrupt: {msg}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Io(e)
    }
}
