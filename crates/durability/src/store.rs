//! [`DurableStore`]: the data-directory orchestrator the engine talks to.
//!
//! A data directory (`--data-dir`) owns two subdirectories:
//!
//! ```text
//! DIR/wal/          000001.wal, 000002.wal, …   (see crate::wal)
//! DIR/checkpoints/  ckpt-000001/, …             (see crate::checkpoint)
//! ```
//!
//! [`DurableStore::open`] is the single entry point and decides between
//! two outcomes ([`Opened`]):
//!
//! * **Fresh** — no checkpoint and an empty (or absent) log: the caller
//!   loads its initial relations and writes checkpoint 1 before
//!   accepting writes, so every later boot has a snapshot to start from;
//! * **Recovered** — a valid checkpoint exists: the store replays the
//!   WAL tail behind it and hands back the dumped relations plus the
//!   tail records for the engine to re-apply, with warnings for
//!   anything it tolerated (a torn final line, an invalid newest
//!   checkpoint it fell back past).
//!
//! A checkpoint with no valid fallback while the log still holds
//! records is refused as corruption — recovery never silently drops
//! acknowledged writes.

use std::fs;
use std::path::{Path, PathBuf};

use crate::checkpoint::{
    self, load_latest, min_pinned_segment, prune_checkpoints, write_checkpoint, Manifest,
    RelationDump,
};
use crate::record::{SequencedRecord, WalRecord};
use crate::wal::{self, read_tail, truncate_to, FsyncPolicy, Wal, WalPosition};
use crate::DurabilityError;

/// A relation as recovery reconstructs it: the checkpoint dump the
/// engine re-loads before replaying the tail.
pub use crate::checkpoint::RelationDump as RecoveredRelation;

/// Tuning for a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// When the WAL fsyncs (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Segment rotation threshold in bytes.
    pub rotate_bytes: u64,
    /// Write a checkpoint after this many WAL records (0 = only on
    /// explicit `W CHECKPOINT` / shutdown).
    pub checkpoint_every: u64,
    /// How many published checkpoints to retain (the newest is the
    /// recovery source; older ones are fallbacks). Minimum 1.
    pub keep_checkpoints: usize,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::Always,
            rotate_bytes: 4 << 20,
            checkpoint_every: 0,
            keep_checkpoints: 2,
        }
    }
}

/// The counters `STATS` reports (process-lifetime, since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityCounters {
    /// WAL records appended since open.
    pub wal_records: u64,
    /// WAL bytes appended since open.
    pub wal_bytes: u64,
    /// Checkpoints committed since open.
    pub checkpoints: u64,
    /// 1 when this boot recovered from an existing directory.
    pub recoveries: u64,
    /// WAL tail records replayed during that recovery.
    pub replayed_records: u64,
}

/// What recovery found — the engine rebuilds its catalog from
/// `relations`, then re-applies `tail` through its normal write path.
#[derive(Debug)]
pub struct Recovery {
    /// Relations from the newest valid checkpoint, in manifest order.
    pub relations: Vec<RecoveredRelation>,
    /// WAL records committed after that checkpoint, in LSN order.
    pub tail: Vec<SequencedRecord>,
    /// Conditions recovery tolerated (torn tail, skipped checkpoint).
    pub warnings: Vec<String>,
    /// The checkpoint id recovery started from.
    pub checkpoint_id: u64,
}

/// Outcome of [`DurableStore::open`].
#[derive(Debug)]
pub enum Opened {
    /// A brand-new directory: load initial data, then checkpoint.
    Fresh(DurableStore),
    /// An existing directory: rebuild from the recovery plan.
    Recovered(DurableStore, Recovery),
}

/// An open data directory: logs records, tracks checkpoint cadence,
/// commits and prunes checkpoints. One per engine; the engine wraps it
/// in a `Mutex` and holds it only inside its write lock.
#[derive(Debug)]
pub struct DurableStore {
    wal: Wal,
    wal_dir: PathBuf,
    ckpt_root: PathBuf,
    options: DurabilityOptions,
    next_ckpt_id: u64,
    records_since_ckpt: u64,
    checkpoints: u64,
    recoveries: u64,
    replayed_records: u64,
}

impl DurableStore {
    /// Opens (or initializes) the data directory at `dir`. See the
    /// module docs for the Fresh/Recovered/refuse trichotomy.
    pub fn open(dir: &Path, options: DurabilityOptions) -> Result<Opened, DurabilityError> {
        let options = DurabilityOptions {
            keep_checkpoints: options.keep_checkpoints.max(1),
            ..options
        };
        let wal_dir = dir.join("wal");
        let ckpt_root = dir.join("checkpoints");
        fs::create_dir_all(&wal_dir)?;
        fs::create_dir_all(&ckpt_root)?;

        let (loaded, mut warnings) = load_latest(&ckpt_root)?;
        let Some(loaded) = loaded else {
            let segments = wal::list_segments(&wal_dir)?;
            let log_bytes: u64 = segments
                .iter()
                .map(|&s| fs::metadata(wal::segment_file(&wal_dir, s)).map(|m| m.len()))
                .sum::<Result<u64, _>>()?;
            if !warnings.is_empty() || log_bytes > 0 {
                return Err(DurabilityError::Corrupt(format!(
                    "no valid checkpoint, but the directory is not empty \
                     ({} wal bytes, {} invalid checkpoints) — refusing to discard data",
                    log_bytes,
                    warnings.len()
                )));
            }
            let wal = if segments.is_empty() {
                Wal::create(&wal_dir, options.fsync, options.rotate_bytes)?
            } else {
                // A crash after `wal/000001.wal` was created but before
                // the initial checkpoint landed: the log is empty, reuse it.
                Wal::reopen(
                    &wal_dir,
                    WalPosition {
                        segment: segments[0],
                        offset: 0,
                    },
                    1,
                    options.fsync,
                    options.rotate_bytes,
                )?
            };
            return Ok(Opened::Fresh(DurableStore {
                wal,
                wal_dir,
                ckpt_root,
                options,
                next_ckpt_id: 1,
                records_since_ckpt: 0,
                checkpoints: 0,
                recoveries: 0,
                replayed_records: 0,
            }));
        };

        let manifest = &loaded.manifest;
        let tail = read_tail(&wal_dir, manifest.wal, manifest.next_lsn)?;
        if let Some(torn) = &tail.torn {
            truncate_to(&wal_dir, torn.truncate_at)?;
            warnings.push(format!("{} — truncated", torn.reason));
        }
        let replayed = tail.records.len() as u64;
        let wal = Wal::reopen(
            &wal_dir,
            tail.end,
            manifest.next_lsn + replayed,
            options.fsync,
            options.rotate_bytes,
        )?;
        let recovery = Recovery {
            relations: loaded.dumps,
            tail: tail.records,
            warnings,
            checkpoint_id: manifest.id,
        };
        let store = DurableStore {
            wal,
            wal_dir,
            ckpt_root,
            options,
            next_ckpt_id: manifest.id + 1,
            records_since_ckpt: replayed,
            checkpoints: 0,
            recoveries: 1,
            replayed_records: replayed,
        };
        Ok(Opened::Recovered(store, recovery))
    }

    /// Appends one committed record (the caller logs *before* swapping
    /// its in-memory state) and returns the record's LSN.
    pub fn log(&mut self, record: &WalRecord) -> Result<u64, DurabilityError> {
        let lsn = self.wal.append(record)?;
        self.records_since_ckpt += 1;
        Ok(lsn)
    }

    /// True when the periodic-checkpoint policy says it is time.
    pub fn checkpoint_due(&self) -> bool {
        self.options.checkpoint_every > 0
            && self.records_since_ckpt >= self.options.checkpoint_every
    }

    /// Fsyncs the log and returns the position + next LSN a checkpoint
    /// taken *now* must pin. Call under the same lock that freezes the
    /// state being dumped.
    pub fn sync_position(&mut self) -> Result<(WalPosition, u64), DurabilityError> {
        self.wal.sync()?;
        Ok((self.wal.position(), self.wal.next_lsn()))
    }

    /// Commits a checkpoint consistent with `(wal, next_lsn)` from
    /// [`DurableStore::sync_position`], prunes old checkpoints and any
    /// WAL segments nothing retained still pins.
    pub fn commit_checkpoint(
        &mut self,
        wal: WalPosition,
        next_lsn: u64,
        dumps: &[RelationDump],
    ) -> Result<Manifest, DurabilityError> {
        let manifest = write_checkpoint(&self.ckpt_root, self.next_ckpt_id, wal, next_lsn, dumps)?;
        self.next_ckpt_id += 1;
        self.checkpoints += 1;
        self.records_since_ckpt = 0;
        prune_checkpoints(&self.ckpt_root, self.options.keep_checkpoints)?;
        if let Some(min_seg) = min_pinned_segment(&self.ckpt_root)? {
            self.wal.prune_below(min_seg)?;
        }
        Ok(manifest)
    }

    /// The counters `STATS` reports.
    pub fn counters(&self) -> DurabilityCounters {
        DurabilityCounters {
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            checkpoints: self.checkpoints,
            recoveries: self.recoveries,
            replayed_records: self.replayed_records,
        }
    }

    /// The configured options (read-back for STATS/tests).
    pub fn options(&self) -> DurabilityOptions {
        self.options
    }

    /// The checkpoint directory root (diagnostics/tests).
    pub fn checkpoint_root(&self) -> &Path {
        &self.ckpt_root
    }

    /// The WAL directory (diagnostics/tests).
    pub fn wal_dir(&self) -> &Path {
        &self.wal_dir
    }

    /// Checkpoint ids currently retained on disk.
    pub fn checkpoint_ids(&self) -> Result<Vec<u64>, DurabilityError> {
        Ok(checkpoint::list_checkpoints(&self.ckpt_root)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Batch, CellOp};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msj-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(ver: u64, cell: &str) -> WalRecord {
        WalRecord::Batch(Batch {
            relation: "R".into(),
            version_before: ver,
            ops: vec![CellOp::Insert(vec![cell.into()])],
        })
    }

    fn dump(version: u64, rows: &[&str]) -> RelationDump {
        RelationDump {
            name: "R".into(),
            types: vec!["str".into()],
            version,
            rows: rows.iter().map(|r| vec![r.to_string()]).collect(),
        }
    }

    fn open_fresh(dir: &Path, opts: DurabilityOptions) -> DurableStore {
        match DurableStore::open(dir, opts).unwrap() {
            Opened::Fresh(s) => s,
            Opened::Recovered(..) => panic!("expected fresh"),
        }
    }

    #[test]
    fn fresh_then_log_then_recover_tail() {
        let dir = tmp("lifecycle");
        let mut store = open_fresh(&dir, DurabilityOptions::default());
        // The boot checkpoint, then three committed batches.
        let (pos, lsn) = store.sync_position().unwrap();
        store
            .commit_checkpoint(pos, lsn, &[dump(0, &["a"])])
            .unwrap();
        for (i, cell) in ["b", "c", "d"].iter().enumerate() {
            store.log(&rec(i as u64, cell)).unwrap();
        }
        drop(store);

        match DurableStore::open(&dir, DurabilityOptions::default()).unwrap() {
            Opened::Recovered(store, recovery) => {
                assert_eq!(recovery.checkpoint_id, 1);
                assert_eq!(recovery.relations, vec![dump(0, &["a"])]);
                assert_eq!(recovery.tail.len(), 3);
                assert_eq!(recovery.tail[0].lsn, 1);
                assert!(recovery.warnings.is_empty(), "{:?}", recovery.warnings);
                let c = store.counters();
                assert_eq!(c.recoveries, 1);
                assert_eq!(c.replayed_records, 3);
            }
            Opened::Fresh(_) => panic!("expected recovery"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_with_a_warning_and_log_reopens() {
        let dir = tmp("torn");
        let mut store = open_fresh(&dir, DurabilityOptions::default());
        let (pos, lsn) = store.sync_position().unwrap();
        store.commit_checkpoint(pos, lsn, &[dump(0, &[])]).unwrap();
        store.log(&rec(0, "keep")).unwrap();
        store.log(&rec(1, "lost")).unwrap();
        drop(store);
        // Tear the final record mid-line.
        let bytes = wal::read_segment_bytes(&dir.join("wal"), 1).unwrap();
        wal::write_segment_bytes(&dir.join("wal"), 1, &bytes[..bytes.len() - 3]).unwrap();

        let mut store = match DurableStore::open(&dir, DurabilityOptions::default()).unwrap() {
            Opened::Recovered(store, recovery) => {
                assert_eq!(recovery.tail.len(), 1, "only the intact record survives");
                assert_eq!(recovery.warnings.len(), 1);
                assert!(
                    recovery.warnings[0].contains("truncated"),
                    "{:?}",
                    recovery.warnings
                );
                store
            }
            Opened::Fresh(_) => panic!("expected recovery"),
        };
        // The reopened log continues the LSN sequence from the cut.
        assert_eq!(store.log(&rec(1, "next")).unwrap(), 2);
        drop(store);
        match DurableStore::open(&dir, DurabilityOptions::default()).unwrap() {
            Opened::Recovered(_, recovery) => {
                assert_eq!(recovery.tail.len(), 2);
                assert!(recovery.warnings.is_empty(), "{:?}", recovery.warnings);
            }
            Opened::Fresh(_) => panic!("expected recovery"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_records_without_any_checkpoint_is_refused() {
        let dir = tmp("refuse");
        let mut store = open_fresh(&dir, DurabilityOptions::default());
        store.log(&rec(0, "x")).unwrap();
        drop(store);
        // No checkpoint was ever committed: the schema for "R" is unknown.
        let err = DurableStore::open(&dir, DurabilityOptions::default()).unwrap_err();
        assert!(matches!(err, DurabilityError::Corrupt(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_reopens_fresh() {
        let dir = tmp("reinit");
        let store = open_fresh(&dir, DurabilityOptions::default());
        drop(store);
        // Crash before the boot checkpoint: segment 1 exists but is empty.
        let store = open_fresh(&dir, DurabilityOptions::default());
        assert_eq!(store.counters(), DurabilityCounters::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_prune_and_release_wal_segments() {
        let dir = tmp("prune");
        let opts = DurabilityOptions {
            fsync: FsyncPolicy::Never,
            rotate_bytes: 64,
            checkpoint_every: 2,
            keep_checkpoints: 2,
        };
        let mut store = open_fresh(&dir, opts);
        let (pos, lsn) = store.sync_position().unwrap();
        store.commit_checkpoint(pos, lsn, &[dump(0, &[])]).unwrap();
        assert!(!store.checkpoint_due());
        for i in 0..8 {
            store.log(&rec(i, "0123456789abcdef")).unwrap();
            if store.checkpoint_due() {
                let (pos, lsn) = store.sync_position().unwrap();
                store
                    .commit_checkpoint(pos, lsn, &[dump(i + 1, &[])])
                    .unwrap();
            }
        }
        assert_eq!(store.counters().checkpoints, 5);
        assert_eq!(store.checkpoint_ids().unwrap(), vec![4, 5]);
        let segments = wal::list_segments(store.wal_dir()).unwrap();
        assert!(
            segments[0] > 1,
            "segments below the oldest retained checkpoint are pruned: {segments:?}"
        );
        // Recovery from the pruned state still works.
        drop(store);
        match DurableStore::open(&dir, opts).unwrap() {
            Opened::Recovered(_, recovery) => {
                assert_eq!(recovery.checkpoint_id, 5);
                assert!(recovery.warnings.is_empty(), "{:?}", recovery.warnings);
            }
            Opened::Fresh(_) => panic!("expected recovery"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
