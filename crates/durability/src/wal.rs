//! The segmented, append-only write-ahead log.
//!
//! A log lives in one directory as numbered segment files
//! (`000001.wal`, `000002.wal`, …), each holding newline-terminated
//! [record lines](crate::record). [`Wal`] appends — one record per
//! committed batch, fsynced per [`FsyncPolicy`] — and rotates to a fresh
//! segment when the current one passes the configured size. Reading
//! happens once, at recovery: [`read_tail`] replays every record from a
//! [`WalPosition`] (the newest checkpoint manifest pins it) and
//! classifies whatever ends the log:
//!
//! * a clean end — every line parsed, LSNs contiguous;
//! * a **torn tail** — the final line of the final segment fails its
//!   checksum or lacks its newline (a crash mid-`write(2)`): the reader
//!   reports the byte offset to truncate back to and recovery proceeds
//!   with a warning, never a refusal;
//! * **corruption** — a bad line *with valid data after it*, an LSN gap,
//!   or a missing segment: recovery refuses, because silently dropping
//!   committed records the log still acknowledges would be data loss.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::record::{encode_record, parse_record, SequencedRecord, WalRecord};
use crate::DurabilityError;

/// When `fsync(2)` runs relative to record appends — the knob trading
/// durability of the last few batches against write latency (policy
/// table in `docs/DURABILITY.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record (the default): a crash loses at most a
    /// torn final line, never an acknowledged batch.
    Always,
    /// Sync after every `n` records: a crash loses at most the last
    /// `n-1` acknowledged batches.
    EveryN(u64),
    /// Never sync explicitly (the OS flushes when it pleases): fastest,
    /// bounded only by the page cache. Checkpoints still sync.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag syntax: `always`, `never`, `every=N`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n: u64 = s.strip_prefix("every=")?.parse().ok()?;
                Some(FsyncPolicy::EveryN(n.max(1)))
            }
        }
    }
}

/// A byte position in the log: segment sequence number + offset within
/// that segment's file. Checkpoint manifests pin one; replay starts
/// there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WalPosition {
    /// 1-based segment sequence number.
    pub segment: u64,
    /// Byte offset within the segment file.
    pub offset: u64,
}

/// The file name of segment `seq`.
pub fn segment_file(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:06}.wal"))
}

/// Lists the segment sequence numbers present in `dir`, ascending.
pub fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name.strip_suffix(".wal") {
            if let Ok(seq) = stem.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// The append half of the log (see the module docs).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    segment: u64,
    offset: u64,
    next_lsn: u64,
    policy: FsyncPolicy,
    rotate_bytes: u64,
    unsynced: u64,
    records: u64,
    bytes: u64,
}

impl Wal {
    /// Creates a fresh log (segment 1, LSN 1) in `dir`, which must exist
    /// and hold no segments.
    pub fn create(dir: &Path, policy: FsyncPolicy, rotate_bytes: u64) -> io::Result<Wal> {
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_file(dir, 1))?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            segment: 1,
            offset: 0,
            next_lsn: 1,
            policy,
            rotate_bytes,
            unsynced: 0,
            records: 0,
            bytes: 0,
        })
    }

    /// Reopens an existing log for appending at `end` (the position
    /// [`read_tail`] reported, after any torn-tail truncation was
    /// applied), with the next record taking `next_lsn`.
    pub fn reopen(
        dir: &Path,
        end: WalPosition,
        next_lsn: u64,
        policy: FsyncPolicy,
        rotate_bytes: u64,
    ) -> io::Result<Wal> {
        let path = segment_file(dir, end.segment);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        if len != end.offset {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "segment {} is {len} bytes but the log ends at {}",
                    path.display(),
                    end.offset
                ),
            ));
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            segment: end.segment,
            offset: end.offset,
            next_lsn,
            policy,
            rotate_bytes,
            unsynced: 0,
            records: 0,
            bytes: 0,
        })
    }

    /// Appends one record (rotating first when the current segment is
    /// full), applies the fsync policy, and returns the record's LSN.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        if self.offset >= self.rotate_bytes && self.rotate_bytes > 0 {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let mut line = encode_record(lsn, record);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.offset += line.len() as u64;
        self.next_lsn += 1;
        self.records += 1;
        self.bytes += line.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Forces any unsynced records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        self.segment += 1;
        self.file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_file(&self.dir, self.segment))?;
        self.offset = 0;
        Ok(())
    }

    /// The position one past the last appended byte — what a checkpoint
    /// pins after [`Wal::sync`].
    pub fn position(&self) -> WalPosition {
        WalPosition {
            segment: self.segment,
            offset: self.offset,
        }
    }

    /// The LSN the next appended record will take.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Records appended through this handle (not lifetime-of-log).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes appended through this handle.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Deletes every segment strictly below `segment` — safe once no
    /// retained checkpoint needs them. Returns how many files went.
    pub fn prune_below(&self, segment: u64) -> io::Result<usize> {
        let mut removed = 0;
        for seq in list_segments(&self.dir)? {
            if seq < segment {
                fs::remove_file(segment_file(&self.dir, seq))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Where and why a torn tail was found (see [`read_tail`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The position the log must be truncated back to.
    pub truncate_at: WalPosition,
    /// Human-readable diagnosis for the recovery warning.
    pub reason: String,
}

/// Everything [`read_tail`] learned from one replay pass.
#[derive(Debug)]
pub struct WalTail {
    /// The complete, checksum-valid, LSN-contiguous records from the
    /// start position to the end of the log.
    pub records: Vec<SequencedRecord>,
    /// The clean end of the log — after truncating any torn tail, this
    /// is where the reopened [`Wal`] appends.
    pub end: WalPosition,
    /// `Some` when the final line was torn (the caller truncates the
    /// file and warns).
    pub torn: Option<TornTail>,
}

/// Replays the log from `start` (exclusive of anything before it),
/// expecting the first record to carry `expect_lsn`. See the module docs
/// for the torn-tail / corruption distinction.
pub fn read_tail(
    dir: &Path,
    start: WalPosition,
    mut expect_lsn: u64,
) -> Result<WalTail, DurabilityError> {
    let segments: Vec<u64> = list_segments(dir)?
        .into_iter()
        .filter(|&s| s >= start.segment)
        .collect();
    if segments.is_empty() || segments[0] != start.segment {
        return Err(DurabilityError::Corrupt(format!(
            "wal segment {:06} (pinned by the checkpoint manifest) is missing",
            start.segment
        )));
    }
    if let Some(gap) = segments.windows(2).find(|w| w[1] != w[0] + 1) {
        return Err(DurabilityError::Corrupt(format!(
            "wal segments jump from {:06} to {:06}",
            gap[0], gap[1]
        )));
    }
    let mut records = Vec::new();
    let mut end = start;
    let mut torn = None;
    let last_seg = *segments.last().expect("non-empty");
    for &seq in &segments {
        let path = segment_file(dir, seq);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let mut pos = if seq == start.segment {
            if bytes.len() < start.offset as usize {
                return Err(DurabilityError::Corrupt(format!(
                    "segment {:06} is shorter than the checkpoint's pinned offset",
                    seq
                )));
            }
            start.offset as usize
        } else {
            0
        };
        end = WalPosition {
            segment: seq,
            offset: pos as u64,
        };
        while pos < bytes.len() {
            let nl = bytes[pos..].iter().position(|&b| b == b'\n');
            let (line_bytes, complete) = match nl {
                Some(n) => (&bytes[pos..pos + n], true),
                None => (&bytes[pos..], false),
            };
            let parsed = std::str::from_utf8(line_bytes)
                .map_err(|_| DurabilityError::Corrupt("wal line is not UTF-8".into()))
                .and_then(parse_record_checked(expect_lsn));
            match parsed {
                Ok(rec) if complete => {
                    records.push(rec);
                    expect_lsn += 1;
                    pos += line_bytes.len() + 1;
                    end.offset = pos as u64;
                }
                // An incomplete-but-valid line still lacks its newline:
                // the crash hit between the payload and the terminator.
                // It is the final line or nothing follows it — torn.
                Ok(_) | Err(_) if seq == last_seg && nl.is_none() => {
                    torn = Some(TornTail {
                        truncate_at: end,
                        reason: format!(
                            "torn final wal line at segment {seq:06} byte {}: {}",
                            end.offset,
                            match parsed {
                                Ok(_) => "record missing its newline".to_string(),
                                Err(e) => e.to_string(),
                            }
                        ),
                    });
                    pos = bytes.len();
                }
                Ok(_) | Err(_) if seq == last_seg => {
                    // A newline-terminated line failed to parse in the
                    // last segment. If only garbage follows (no further
                    // valid record), treat the whole suffix as torn;
                    // a valid record *after* it means real corruption.
                    let rest = &bytes[pos + line_bytes.len() + 1..];
                    if suffix_has_valid_record(rest) {
                        return Err(DurabilityError::Corrupt(format!(
                            "segment {seq:06} byte {}: invalid record with valid records after it",
                            end.offset
                        )));
                    }
                    torn = Some(TornTail {
                        truncate_at: end,
                        reason: format!(
                            "invalid trailing wal data at segment {seq:06} byte {}: {}",
                            end.offset,
                            match parsed {
                                Ok(_) => "unexpected lsn".to_string(),
                                Err(e) => e.to_string(),
                            }
                        ),
                    });
                    pos = bytes.len();
                }
                Ok(_) => {
                    return Err(DurabilityError::Corrupt(format!(
                        "segment {seq:06} byte {}: lsn discontinuity mid-log",
                        end.offset
                    )));
                }
                Err(e) => {
                    return Err(DurabilityError::Corrupt(format!(
                        "segment {seq:06} byte {}: {e} (mid-log, not a tail)",
                        end.offset
                    )));
                }
            }
        }
    }
    Ok(WalTail { records, end, torn })
}

/// A parse that also enforces the expected LSN, as a closure usable in a
/// `Result` chain.
fn parse_record_checked(
    expect_lsn: u64,
) -> impl Fn(&str) -> Result<SequencedRecord, DurabilityError> {
    move |line| {
        let rec = parse_record(line)?;
        if rec.lsn != expect_lsn {
            return Err(DurabilityError::Corrupt(format!(
                "expected lsn {expect_lsn}, found {}",
                rec.lsn
            )));
        }
        Ok(rec)
    }
}

/// True when `bytes` contains at least one newline-terminated line that
/// parses as a record — the corruption/torn-tail discriminator.
fn suffix_has_valid_record(bytes: &[u8]) -> bool {
    let mut pos = 0;
    while let Some(n) = bytes[pos..].iter().position(|&b| b == b'\n') {
        if let Ok(line) = std::str::from_utf8(&bytes[pos..pos + n]) {
            if parse_record(line).is_ok() {
                return true;
            }
        }
        pos += n + 1;
    }
    false
}

/// Truncates the log back to `pos` (applying a [`TornTail`] verdict):
/// cuts the segment file and removes any later segments.
pub fn truncate_to(dir: &Path, pos: WalPosition) -> io::Result<()> {
    for seq in list_segments(dir)? {
        if seq > pos.segment {
            fs::remove_file(segment_file(dir, seq))?;
        }
    }
    let file = OpenOptions::new()
        .write(true)
        .open(segment_file(dir, pos.segment))?;
    file.set_len(pos.offset)?;
    file.sync_data()?;
    Ok(())
}

/// Reads the raw bytes of one segment — test and tooling support for
/// crash-injection (cutting a log at an arbitrary byte offset).
pub fn read_segment_bytes(dir: &Path, seq: u64) -> io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(segment_file(dir, seq))?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Overwrites one segment with `bytes` — the other half of the
/// crash-injection toolkit.
pub fn write_segment_bytes(dir: &Path, seq: u64, bytes: &[u8]) -> io::Result<()> {
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(segment_file(dir, seq))?;
    f.write_all(bytes)?;
    f.sync_data()
}

/// Seek is unused today but keeps the import graph honest if reopen ever
/// needs positioned reads.
#[allow(dead_code)]
fn _seek_assert(f: &mut File) -> io::Result<u64> {
    f.seek(SeekFrom::End(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Batch, CellOp};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msj-wal-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ins(rel: &str, ver: u64, cell: &str) -> WalRecord {
        WalRecord::Batch(Batch {
            relation: rel.into(),
            version_before: ver,
            ops: vec![CellOp::Insert(vec![cell.into()])],
        })
    }

    #[test]
    fn append_read_round_trip_with_rotation() {
        let dir = tmp("rotate");
        let mut wal = Wal::create(&dir, FsyncPolicy::Never, 128).unwrap();
        for i in 0..20 {
            let lsn = wal.append(&ins("R", i, &format!("{i}"))).unwrap();
            assert_eq!(lsn, i + 1);
        }
        wal.sync().unwrap();
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "128-byte segments must rotate over 20 records"
        );
        let tail = read_tail(
            &dir,
            WalPosition {
                segment: 1,
                offset: 0,
            },
            1,
        )
        .unwrap();
        assert!(tail.torn.is_none());
        assert_eq!(tail.records.len(), 20);
        assert_eq!(
            tail.records[7],
            SequencedRecord {
                lsn: 8,
                record: ins("R", 7, "7")
            }
        );
        assert_eq!(tail.end, wal.position());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_at_every_byte_offset_is_tolerated() {
        let dir = tmp("torn");
        let mut wal = Wal::create(&dir, FsyncPolicy::Never, u64::MAX).unwrap();
        for i in 0..4 {
            wal.append(&ins("R", i, "x y z")).unwrap();
        }
        wal.sync().unwrap();
        let full = read_segment_bytes(&dir, 1).unwrap();
        // Boundaries of complete records, judged by newline positions.
        let mut boundaries = vec![0usize];
        boundaries.extend(
            full.iter()
                .enumerate()
                .filter(|&(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        );
        for cut in 0..=full.len() {
            write_segment_bytes(&dir, 1, &full[..cut]).unwrap();
            let tail = read_tail(
                &dir,
                WalPosition {
                    segment: 1,
                    offset: 0,
                },
                1,
            )
            .unwrap();
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(tail.records.len(), complete, "cut at {cut}");
            assert_eq!(
                tail.torn.is_some(),
                !boundaries.contains(&cut),
                "cut at {cut}"
            );
            if let Some(t) = &tail.torn {
                // Applying the verdict yields a clean log.
                truncate_to(&dir, t.truncate_at).unwrap();
                let clean = read_tail(
                    &dir,
                    WalPosition {
                        segment: 1,
                        offset: 0,
                    },
                    1,
                )
                .unwrap();
                assert!(clean.torn.is_none());
                assert_eq!(clean.records.len(), complete);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let dir = tmp("corrupt");
        let mut wal = Wal::create(&dir, FsyncPolicy::Never, u64::MAX).unwrap();
        for i in 0..3 {
            wal.append(&ins("R", i, "abcdef")).unwrap();
        }
        wal.sync().unwrap();
        let mut bytes = read_segment_bytes(&dir, 1).unwrap();
        // Flip a byte in the *first* record: valid records follow it.
        bytes[20] = bytes[20].wrapping_add(1);
        write_segment_bytes(&dir, 1, &bytes).unwrap();
        let err = read_tail(
            &dir,
            WalPosition {
                segment: 1,
                offset: 0,
            },
            1,
        )
        .unwrap_err();
        assert!(matches!(err, DurabilityError::Corrupt(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_the_sequence() {
        let dir = tmp("reopen");
        let mut wal = Wal::create(&dir, FsyncPolicy::Always, u64::MAX).unwrap();
        wal.append(&ins("R", 0, "a")).unwrap();
        wal.append(&ins("R", 1, "b")).unwrap();
        let end = wal.position();
        let next = wal.next_lsn();
        drop(wal);
        let mut wal = Wal::reopen(&dir, end, next, FsyncPolicy::Always, u64::MAX).unwrap();
        assert_eq!(wal.append(&ins("R", 2, "c")).unwrap(), 3);
        let tail = read_tail(
            &dir,
            WalPosition {
                segment: 1,
                offset: 0,
            },
            1,
        )
        .unwrap();
        assert_eq!(tail.records.len(), 3);
        assert_eq!(tail.records[2].lsn, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_below_drops_old_segments() {
        let dir = tmp("prune");
        let mut wal = Wal::create(&dir, FsyncPolicy::Never, 64).unwrap();
        for i in 0..12 {
            wal.append(&ins("R", i, "0123456789")).unwrap();
        }
        wal.sync().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        let keep_from = segs[segs.len() - 2];
        wal.prune_below(keep_from).unwrap();
        assert_eq!(list_segments(&dir).unwrap().first(), Some(&keep_from));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_flag_syntax() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every=0"), Some(FsyncPolicy::EveryN(1)));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
