//! One-call query execution: a thin materializing wrapper over the
//! plan/stream split.
//!
//! [`execute`] is `plan(db, query)?.execute(db)` — GAO selection, physical
//! re-indexing, the right probe mode, and result translation back to the
//! caller's attribute order, exactly the paper's full pipeline (nested
//! elimination order for β-acyclic queries, Theorem 2.7; minimum
//! elimination width otherwise, Theorem 5.1). Callers that want lazy
//! results, early termination, or mid-flight statistics should hold the
//! [`crate::Plan`] and call [`crate::Plan::stream`] instead.
//!
//! **Ordering guarantee:** the returned tuples are sorted
//! lexicographically in the *original* attribute numbering on every path —
//! whether or not the plan re-indexed for a non-identity GAO.

use minesweeper_storage::Database;

use crate::gao::GaoChoice;
use crate::minesweeper::JoinResult;
use crate::plan::plan;
use crate::query::{Query, QueryError};

/// The outcome of [`execute`]: the join result (tuples sorted in the
/// *original* attribute order) plus the GAO decision that produced it.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Output tuples and statistics.
    pub result: JoinResult,
    /// The chosen GAO, probe mode, and elimination width.
    pub gao: GaoChoice,
}

/// Plans and runs a query end to end.
///
/// ```
/// use minesweeper_core::{execute, Query};
/// use minesweeper_storage::{builder, Database};
///
/// let mut db = Database::new();
/// let r = db.add(builder::binary("R", [(1, 10), (2, 20)])).unwrap();
/// let s = db.add(builder::binary("S", [(10, 5), (20, 9)])).unwrap();
/// let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
/// let exec = execute(&db, &q).unwrap();
/// assert_eq!(exec.result.tuples, vec![vec![1, 10, 5], vec![2, 20, 9]]);
/// ```
pub fn execute(db: &Database, query: &Query) -> Result<Execution, QueryError> {
    plan(db, query)?.execute(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_join;
    use minesweeper_cds::ProbeMode;
    use minesweeper_storage::builder;

    #[test]
    fn execute_handles_identity_gao() {
        let mut db = Database::new();
        let e1 = db.add(builder::binary("E1", [(1, 2), (3, 4)])).unwrap();
        let e2 = db.add(builder::binary("E2", [(2, 5), (4, 6)])).unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        let exec = execute(&db, &q).unwrap();
        assert_eq!(exec.result.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn execute_reindexes_when_identity_is_not_neo() {
        // Example B.7's query: identity is not a NEO; execute must pick
        // (C,A,B)-style order, run chain mode, and still return tuples in
        // (A,B,C) order.
        let mut db = Database::new();
        let r = db
            .add(
                minesweeper_storage::RelationBuilder::new("R", 3)
                    .tuple(&[1, 2, 3])
                    .tuple(&[4, 5, 6])
                    .tuple(&[1, 5, 3])
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let s = db.add(builder::binary("S", [(1, 3), (4, 6)])).unwrap();
        let t = db.add(builder::binary("T", [(2, 3), (5, 3)])).unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        let exec = execute(&db, &q).unwrap();
        assert_eq!(exec.gao.mode, ProbeMode::Chain);
        assert_ne!(exec.gao.order, vec![0, 1, 2], "identity is not a NEO here");
        assert_eq!(exec.result.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn execute_on_cyclic_query_uses_general_mode() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary("E", [(1, 2), (2, 3), (1, 3), (3, 4)]))
            .unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let exec = execute(&db, &q).unwrap();
        assert_eq!(exec.gao.mode, ProbeMode::General);
        assert_eq!(exec.gao.width, 2);
        assert_eq!(exec.result.tuples, naive_join(&db, &q).unwrap());
    }

    /// Both the identity-GAO and the re-index path must deliver the same
    /// documented order: lexicographic in the original attribute numbering
    /// (`naive_join`'s order).
    #[test]
    fn output_is_sorted_on_every_path() {
        // Identity path.
        let mut db = Database::new();
        let e1 = db
            .add(builder::binary("E1", [(3, 1), (1, 2), (2, 2), (1, 1)]))
            .unwrap();
        let e2 = db
            .add(builder::binary("E2", [(2, 9), (1, 4), (1, 1), (2, 2)]))
            .unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        let exec = execute(&db, &q).unwrap();
        assert!(
            exec.result.tuples.windows(2).all(|w| w[0] < w[1]),
            "identity path must be sorted"
        );
        // Re-index path (Example B.7 shape with denser data).
        let mut db = Database::new();
        let mut rb = minesweeper_storage::RelationBuilder::new("R", 3);
        for a in 1..=4 {
            for b in 1..=4 {
                rb.push(&[a, b, (a + b) % 3 + 1]);
            }
        }
        let r = db.add(rb.build().unwrap()).unwrap();
        let s = db
            .add(builder::binary(
                "S",
                (1..=4).flat_map(|a| [(a, 1), (a, 2), (a, 3)]),
            ))
            .unwrap();
        let t = db
            .add(builder::binary(
                "T",
                (1..=4).flat_map(|b| [(b, 1), (b, 2), (b, 3)]),
            ))
            .unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        let exec = execute(&db, &q).unwrap();
        assert_ne!(exec.gao.order, vec![0, 1, 2]);
        assert!(!exec.result.tuples.is_empty());
        assert!(
            exec.result.tuples.windows(2).all(|w| w[0] < w[1]),
            "re-index path must be sorted too"
        );
        assert_eq!(exec.result.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn execute_random_cross_check() {
        let mut seed = 0xe8ecu64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..10 {
            let mut db = Database::new();
            let e1 = db
                .add(builder::binary(
                    "E1",
                    (0..20).map(|_| (rng(8) as i64, rng(8) as i64)),
                ))
                .unwrap();
            let e2 = db
                .add(builder::binary(
                    "E2",
                    (0..20).map(|_| (rng(8) as i64, rng(8) as i64)),
                ))
                .unwrap();
            let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
            let exec = execute(&db, &q).unwrap();
            assert_eq!(exec.result.tuples, naive_join(&db, &q).unwrap());
        }
    }
}
