//! One-call query execution: GAO selection, physical re-indexing, the
//! right probe mode, and result translation back to the caller's
//! attribute order.
//!
//! This is the paper's full pipeline: find a nested elimination order if
//! the query is β-acyclic (Theorem 2.7), otherwise a minimum elimination
//! width order (Theorem 5.1); build indexes consistent with that GAO; run
//! Minesweeper; report tuples in the original attribute numbering.

use minesweeper_storage::{Database, Tuple};

use crate::gao::{choose_gao, reindex_for_gao, GaoChoice};
use crate::minesweeper::{minesweeper_join, JoinResult};
use crate::query::{Query, QueryError};

/// The outcome of [`execute`]: the join result (tuples in the *original*
/// attribute order) plus the GAO decision that produced it.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Output tuples and statistics.
    pub result: JoinResult,
    /// The chosen GAO, probe mode, and elimination width.
    pub gao: GaoChoice,
}

/// Plans and runs a query end to end.
///
/// ```
/// use minesweeper_core::{execute, Query};
/// use minesweeper_storage::{builder, Database};
///
/// let mut db = Database::new();
/// let r = db.add(builder::binary("R", [(1, 10), (2, 20)])).unwrap();
/// let s = db.add(builder::binary("S", [(10, 5), (20, 9)])).unwrap();
/// let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
/// let exec = execute(&db, &q).unwrap();
/// assert_eq!(exec.result.tuples, vec![vec![1, 10, 5], vec![2, 20, 9]]);
/// ```
pub fn execute(db: &Database, query: &Query) -> Result<Execution, QueryError> {
    query.validate(db)?;
    let gao = choose_gao(query, 9);
    let identity: Vec<usize> = (0..query.n_attrs).collect();
    let result = if gao.order == identity {
        minesweeper_join(db, query, gao.mode)?
    } else {
        let (db2, q2) = reindex_for_gao(db, query, &gao.order)?;
        let mut res = minesweeper_join(&db2, &q2, gao.mode)?;
        // Column i of a result tuple holds original attribute
        // `gao.order[i]`; invert.
        let mut inv = vec![0usize; query.n_attrs];
        for (i, &a) in gao.order.iter().enumerate() {
            inv[a] = i;
        }
        res.tuples = res
            .tuples
            .iter()
            .map(|t| inv.iter().map(|&c| t[c]).collect::<Tuple>())
            .collect();
        res.tuples.sort();
        res
    };
    Ok(Execution { result, gao })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_join;
    use minesweeper_cds::ProbeMode;
    use minesweeper_storage::builder;

    #[test]
    fn execute_handles_identity_gao() {
        let mut db = Database::new();
        let e1 = db.add(builder::binary("E1", [(1, 2), (3, 4)])).unwrap();
        let e2 = db.add(builder::binary("E2", [(2, 5), (4, 6)])).unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        let exec = execute(&db, &q).unwrap();
        let mut got = exec.result.tuples.clone();
        got.sort();
        assert_eq!(got, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn execute_reindexes_when_identity_is_not_neo() {
        // Example B.7's query: identity is not a NEO; execute must pick
        // (C,A,B)-style order, run chain mode, and still return tuples in
        // (A,B,C) order.
        let mut db = Database::new();
        let r = db
            .add(
                minesweeper_storage::RelationBuilder::new("R", 3)
                    .tuple(&[1, 2, 3])
                    .tuple(&[4, 5, 6])
                    .tuple(&[1, 5, 3])
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let s = db.add(builder::binary("S", [(1, 3), (4, 6)])).unwrap();
        let t = db.add(builder::binary("T", [(2, 3), (5, 3)])).unwrap();
        let q = Query::new(3).atom(r, &[0, 1, 2]).atom(s, &[0, 2]).atom(t, &[1, 2]);
        let exec = execute(&db, &q).unwrap();
        assert_eq!(exec.gao.mode, ProbeMode::Chain);
        assert_ne!(exec.gao.order, vec![0, 1, 2], "identity is not a NEO here");
        assert_eq!(exec.result.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn execute_on_cyclic_query_uses_general_mode() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary("E", [(1, 2), (2, 3), (1, 3), (3, 4)]))
            .unwrap();
        let q = Query::new(3).atom(e, &[0, 1]).atom(e, &[1, 2]).atom(e, &[0, 2]);
        let exec = execute(&db, &q).unwrap();
        assert_eq!(exec.gao.mode, ProbeMode::General);
        assert_eq!(exec.gao.width, 2);
        let mut got = exec.result.tuples.clone();
        got.sort();
        assert_eq!(got, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn execute_random_cross_check() {
        let mut seed = 0xe8ecu64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..10 {
            let mut db = Database::new();
            let e1 = db
                .add(builder::binary(
                    "E1",
                    (0..20).map(|_| (rng(8) as i64, rng(8) as i64)),
                ))
                .unwrap();
            let e2 = db
                .add(builder::binary(
                    "E2",
                    (0..20).map(|_| (rng(8) as i64, rng(8) as i64)),
                ))
                .unwrap();
            let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
            let exec = execute(&db, &q).unwrap();
            let mut got = exec.result.tuples;
            got.sort();
            assert_eq!(got, naive_join(&db, &q).unwrap());
        }
    }
}
