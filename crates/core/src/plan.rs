//! Query planning, split from execution.
//!
//! [`plan`] validates a query and makes every decision that does **not**
//! require touching tuples: the global attribute order (a nested
//! elimination order when the query is β-acyclic — Theorem 2.7 — otherwise
//! a minimum elimination width order — Theorem 5.1), the probe mode that
//! order supports, and the column permutation needed to re-index the stored
//! relations when the chosen GAO differs from the identity. The resulting
//! [`Plan`] is cheap to build, inspectable ([`Plan::explain`] /
//! [`Plan::explain_plan`]), and executable any number of times against a
//! database:
//!
//! * [`Plan::stream`] — the lazy [`TupleStream`] executor (pull tuples one
//!   at a time, stop early, read stats mid-flight);
//! * [`Plan::execute`] — materialize everything, sorted in the original
//!   attribute numbering;
//! * [`Plan::prepare`] — bind to a database once (including any re-index
//!   build) and get a [`PreparedPlan`] whose `stream`/`execute` pay only
//!   probe work on every call;
//! * [`Plan::prepare_exec`] — the *owned* variant of the same bind: a
//!   [`PreparedExec`] holds the (at most one) re-indexed database itself,
//!   so an engine can cache it next to its catalog and replay executions
//!   with zero planning or re-indexing work.
//!
//! ```
//! use minesweeper_core::{plan, Query};
//! use minesweeper_storage::{builder, Database};
//!
//! let mut db = Database::new();
//! let r = db.add(builder::binary("R", [(1, 10), (2, 20)])).unwrap();
//! let s = db.add(builder::binary("S", [(10, 5), (20, 9)])).unwrap();
//! let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
//!
//! // Plan once: the planner picks a nested elimination order for this
//! // β-acyclic path query (re-indexing if it differs from the identity) …
//! let p = plan(&db, &q).unwrap();
//! assert!(p.explain().contains("chain"));
//! // … stream with early termination …
//! let first: Vec<_> = p.stream(&db).unwrap().take(1).collect();
//! assert_eq!(first, vec![vec![1, 10, 5]]);
//! // … or materialize everything.
//! let exec = p.execute(&db).unwrap();
//! assert_eq!(exec.result.tuples, vec![vec![1, 10, 5], vec![2, 20, 9]]);
//! ```

use std::sync::Arc;

use minesweeper_cds::ProbeMode;
use minesweeper_storage::{Database, ShardSpec, Tuple, Val};

use crate::execute::Execution;
use crate::explain::{ExplainAtom, ExplainPlan};
use crate::gao::{choose_gao, reindex_for_gao, GaoChoice};
use crate::minesweeper::JoinResult;
use crate::query::{Query, QueryError};
use crate::stream::{DbHandle, TupleStream};

/// Exhaustive-treewidth search limit handed to [`choose_gao`]; larger
/// queries fall back to the min-fill heuristic.
const EXACT_WIDTH_LIMIT: usize = 9;

/// A validated, executable query plan (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// The query in the caller's attribute numbering.
    query: Query,
    /// The chosen GAO, probe mode, and elimination width.
    gao: GaoChoice,
    /// `inv[a]` = GAO position of original attribute `a`; `None` when the
    /// chosen order is the identity and the stored indexes can be probed
    /// directly.
    inv: Option<Vec<usize>>,
}

/// Plans `query` against `db`: validation plus GAO / probe-mode / re-index
/// selection. No tuple is touched — the returned [`Plan`] has done no
/// execution work yet.
pub fn plan(db: &Database, query: &Query) -> Result<Plan, QueryError> {
    query.validate(db)?;
    let gao = choose_gao(query, EXACT_WIDTH_LIMIT);
    let identity: Vec<usize> = (0..query.n_attrs).collect();
    let inv = if gao.order == identity {
        None
    } else {
        let mut inv = vec![0usize; query.n_attrs];
        for (i, &a) in gao.order.iter().enumerate() {
            inv[a] = i;
        }
        Some(inv)
    };
    Ok(Plan {
        query: query.clone(),
        gao,
        inv,
    })
}

impl Plan {
    /// The planned query (original attribute numbering).
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The chosen GAO, probe mode, and elimination width.
    pub fn gao(&self) -> &GaoChoice {
        &self.gao
    }

    /// True when execution must re-index the stored relations because the
    /// chosen GAO is not the identity.
    pub fn is_reindexed(&self) -> bool {
        self.inv.is_some()
    }

    /// The paper's runtime bound for this plan's mode and width.
    pub fn runtime_bound(&self) -> String {
        match self.gao.mode {
            ProbeMode::Chain => "Õ(|C| + Z)  [Theorem 2.7]".to_string(),
            ProbeMode::General => {
                format!("Õ(|C|^{} + Z)  [Theorem 5.1]", self.gao.width + 1)
            }
        }
    }

    /// Binds the plan to a database: validation plus the (at most one)
    /// re-index build happen here, so every subsequent
    /// [`PreparedPlan::stream`] / [`PreparedPlan::execute`] call pays only
    /// probe work. This is the execute-many half of the plan-once split —
    /// use it whenever a plan will run more than once, or when
    /// `stream().take(k)` must not pay a re-index on a non-identity GAO.
    pub fn prepare<'db>(&self, db: &'db Database) -> Result<PreparedPlan<'db>, QueryError> {
        Ok(PreparedPlan {
            exec: self.prepare_exec(db)?,
            db,
        })
    }

    /// The owned form of [`Plan::prepare`]: the returned [`PreparedExec`]
    /// carries the re-indexed database (when the GAO demanded one) inside
    /// itself and borrows nothing, so it can be stored — e.g. in an
    /// engine's statement cache — and bound to the database again at each
    /// call ([`PreparedExec::stream`] / [`PreparedExec::execute`]).
    pub fn prepare_exec(&self, db: &Database) -> Result<PreparedExec, QueryError> {
        self.query.validate(db)?;
        Ok(match &self.inv {
            None => PreparedExec {
                gao: self.gao.clone(),
                exec_query: self.query.clone(),
                inv: None,
                reindexed: None,
            },
            Some(inv) => {
                let (db2, q2) = reindex_for_gao(db, &self.query, &self.gao.order)?;
                PreparedExec {
                    gao: self.gao.clone(),
                    exec_query: q2,
                    inv: Some(inv.clone()),
                    reindexed: Some(Arc::new(db2)),
                }
            }
        })
    }

    /// Opens a lazy [`TupleStream`] over `db`.
    ///
    /// Tuples are yielded *as they are certified* — lexicographically in
    /// the GAO, with values translated back to the original attribute
    /// numbering — so `stream.take(k)` pays only the probe work needed for
    /// the first `k` tuples *plus*, when the plan's GAO is not the
    /// identity, one re-index of the stored relations (owned by the
    /// stream). Amortize that re-index across runs with [`Plan::prepare`].
    ///
    /// `db` is re-validated so a plan cannot silently run against a
    /// database with different arities than the one it was built for.
    pub fn stream<'db>(&self, db: &'db Database) -> Result<TupleStream<'db>, QueryError> {
        self.query.validate(db)?;
        match &self.inv {
            None => Ok(TupleStream::new(
                DbHandle::Borrowed(db),
                self.query.clone(),
                self.gao.mode,
                None,
            )),
            Some(inv) => {
                let (db2, q2) = reindex_for_gao(db, &self.query, &self.gao.order)?;
                Ok(TupleStream::new(
                    DbHandle::Owned(Box::new(db2)),
                    q2,
                    self.gao.mode,
                    Some(inv.clone()),
                ))
            }
        }
    }

    /// Runs the plan to completion.
    ///
    /// The result's tuples are **sorted lexicographically in the original
    /// attribute numbering** regardless of the GAO the plan chose (the
    /// identity-GAO probe order already is that order; re-indexed runs are
    /// sorted after translation).
    pub fn execute(&self, db: &Database) -> Result<Execution, QueryError> {
        Ok(self.prepare(db)?.execute())
    }

    /// Runs the plan to completion on up to `threads` worker threads by
    /// sharding the first GAO attribute's domain — shorthand for
    /// [`Plan::sharded`] + [`crate::ShardedPlan::execute`]. Output is
    /// byte-identical to [`Plan::execute`]; see [`crate::ShardedPlan`] for
    /// the sharding strategy and per-shard statistics.
    pub fn execute_parallel(
        &self,
        db: &Database,
        threads: usize,
    ) -> Result<crate::ShardedExecution, QueryError> {
        self.clone().sharded(threads).execute(db)
    }

    /// Wraps the plan for parallel execution on up to `threads` workers
    /// (see [`crate::ShardedPlan`]).
    pub fn sharded(self, threads: usize) -> crate::ShardedPlan {
        crate::ShardedPlan::new(self, threads)
    }

    /// The structured form of every planning decision — serialize with
    /// [`ExplainPlan::to_json`], render with [`ExplainPlan::render`].
    /// Relation/attribute names and execution-level context (shards,
    /// cache provenance) are filled in by the layers that know them.
    pub fn explain_plan(&self) -> ExplainPlan {
        ExplainPlan {
            algorithm: "minesweeper".to_string(),
            n_attrs: self.query.n_attrs,
            attr_names: None,
            atoms: self
                .query
                .atoms
                .iter()
                .map(|a| ExplainAtom {
                    relation: None,
                    attrs: a.attrs.clone(),
                })
                .collect(),
            gao_order: self.gao.order.clone(),
            probe_mode: self.gao.mode,
            width: self.gao.width,
            reindexed: self.is_reindexed(),
            runtime_bound: self.runtime_bound(),
            shards: None,
            cache: None,
            storage: None,
        }
    }

    /// A human-readable description of the planning decisions, rendered
    /// from [`Plan::explain_plan`] (attribute names are applied by the
    /// text layer).
    pub fn explain(&self) -> String {
        self.explain_plan().render()
    }
}

/// A plan bound to a database with the re-index work already done and
/// **owned** (see [`Plan::prepare_exec`]): no borrow of the planning-time
/// database remains, so the value can live in caches. Every
/// [`PreparedExec::stream`] / [`PreparedExec::execute`] call pays probe
/// work only.
#[derive(Debug, Clone)]
pub struct PreparedExec {
    gao: GaoChoice,
    /// Execution-side query (re-indexed when the GAO demanded it).
    exec_query: Query,
    /// `inv[a]` = execution column of original attribute `a`.
    inv: Option<Vec<usize>>,
    /// The re-indexed database, when the GAO is not the identity. `None`
    /// means the caller's own database is probed directly. Shared
    /// (`Arc`) so the background workers of a parallel stream can co-own
    /// it.
    reindexed: Option<Arc<Database>>,
}

impl PreparedExec {
    /// The GAO this prepared execution runs under.
    pub fn gao(&self) -> &GaoChoice {
        &self.gao
    }

    /// True when this execution probes privately re-indexed relations.
    pub fn is_reindexed(&self) -> bool {
        self.reindexed.is_some()
    }

    /// The database the probe loop reads: the cached re-indexed copy when
    /// one was built, otherwise the caller's `db`.
    pub(crate) fn db_for<'a>(&'a self, db: &'a Database) -> &'a Database {
        match &self.reindexed {
            Some(b) => b,
            None => db,
        }
    }

    /// The shared form of [`PreparedExec::db_for`]: an owning handle to
    /// the execution database, for detached parallel-stream workers.
    pub(crate) fn shared_db(&self, db: &Arc<Database>) -> Arc<Database> {
        match &self.reindexed {
            Some(a) => Arc::clone(a),
            None => Arc::clone(db),
        }
    }

    /// The execution-side query (re-indexed numbering when applicable).
    pub(crate) fn exec_query(&self) -> &Query {
        &self.exec_query
    }

    /// `inv[a]` = execution column of original attribute `a`, when the
    /// GAO is not the identity.
    pub(crate) fn inv(&self) -> Option<&[usize]> {
        self.inv.as_deref()
    }

    /// Translates equality seeds given in the *original* attribute
    /// numbering into the execution numbering the probe loop uses.
    pub(crate) fn exec_seeds(&self, eq_seeds: &[(usize, Val)]) -> Vec<(usize, Val)> {
        eq_seeds
            .iter()
            .map(|&(a, v)| {
                (
                    match &self.inv {
                        Some(inv) => inv[a],
                        None => a,
                    },
                    v,
                )
            })
            .collect()
    }

    /// Opens a lazy [`TupleStream`]; only probe work is paid here. `db`
    /// must be the database the plan was prepared against (it is ignored
    /// when the execution re-indexed).
    pub fn stream<'a>(&'a self, db: &'a Database) -> TupleStream<'a> {
        self.stream_seeded(db, &[])
    }

    /// [`PreparedExec::stream`] with equality constraints pre-seeded into
    /// the probe loop's CDS: each `(attr, value)` pair — `attr` in the
    /// **original** numbering — pins that attribute to the constant, so
    /// the loop only certifies tuples matching every seed. This is how an
    /// engine front door evaluates query literals: no synthetic
    /// relations, no re-planning — the constraint store does the
    /// selection, and the certificate the loop pays is the one for the
    /// *restricted* output space.
    pub fn stream_seeded<'a>(
        &'a self,
        db: &'a Database,
        eq_seeds: &[(usize, Val)],
    ) -> TupleStream<'a> {
        TupleStream::with_shard(
            DbHandle::Borrowed(self.db_for(db)),
            self.exec_query.clone(),
            self.gao.mode,
            self.inv.clone(),
            ShardSpec::unbounded(),
            &self.exec_seeds(eq_seeds),
        )
    }

    /// Runs to completion with the same sorted-output guarantee as
    /// [`Plan::execute`].
    pub fn execute(&self, db: &Database) -> Execution {
        self.execute_seeded(db, &[])
    }

    /// [`PreparedExec::execute`] under equality seeds (see
    /// [`PreparedExec::stream_seeded`]).
    pub fn execute_seeded(&self, db: &Database, eq_seeds: &[(usize, Val)]) -> Execution {
        let mut stream = self.stream_seeded(db, eq_seeds);
        let mut tuples: Vec<Tuple> = stream.by_ref().collect();
        if self.inv.is_some() {
            tuples.sort_unstable();
        } else {
            debug_assert!(
                tuples.windows(2).all(|w| w[0] < w[1]),
                "identity-GAO probe order must already be lexicographic"
            );
        }
        Execution {
            result: JoinResult {
                tuples,
                stats: stream.stats(),
            },
            gao: self.gao.clone(),
        }
    }

    /// Runs across up to `threads` shard workers (see
    /// [`crate::ShardedPlan`]), optionally stopping after `limit` tuples:
    /// the global-order merge cancels queued and in-flight shards once
    /// the cap (plus a one-tuple truncation probe) is reached, so memory
    /// stays bounded at `O(tasks × channel capacity + limit)` and the
    /// suffix's probe work is skipped. The `limit` tuples are the serial
    /// stream's exact first `limit` under any GAO (see
    /// [`crate::ShardedPlan::execute_limited`]).
    pub fn execute_parallel(
        &self,
        db: &Database,
        threads: usize,
        limit: Option<usize>,
    ) -> crate::ShardedExecution {
        self.execute_parallel_seeded(db, threads, limit, &[])
    }

    /// [`PreparedExec::execute_parallel`] under equality seeds (see
    /// [`PreparedExec::stream_seeded`]); every shard's probe loop gets
    /// the same seed constraints on top of its interval bounds.
    pub fn execute_parallel_seeded(
        &self,
        db: &Database,
        threads: usize,
        limit: Option<usize>,
        eq_seeds: &[(usize, Val)],
    ) -> crate::ShardedExecution {
        crate::sharded::execute_prepared(self, db, threads, limit, &self.exec_seeds(eq_seeds))
    }

    /// Opens an incremental parallel [`crate::ShardedStream`] over up to
    /// `threads` background workers. Unlike
    /// [`PreparedExec::execute_parallel`] nothing is materialized up
    /// front: tuples are yielded as shard channels feed the global-order
    /// heap merge, byte-identical to the serial stream's sequence under
    /// any GAO, and dropping (or [`crate::ShardedStream::finish`]ing)
    /// the stream cancels the remaining work. With `limit = Some(k)` the stream yields at most
    /// `k` tuples (each shard is also capped at `k`, plus one
    /// truncation-evidence tuple that
    /// [`crate::ShardedStream::truncated`] consumes).
    pub fn stream_parallel(
        &self,
        db: &Arc<Database>,
        threads: usize,
        limit: Option<usize>,
    ) -> crate::ShardedStream {
        self.stream_parallel_seeded(db, threads, limit, &[])
    }

    /// [`PreparedExec::stream_parallel`] under equality seeds (see
    /// [`PreparedExec::stream_seeded`]).
    pub fn stream_parallel_seeded(
        &self,
        db: &Arc<Database>,
        threads: usize,
        limit: Option<usize>,
        eq_seeds: &[(usize, Val)],
    ) -> crate::ShardedStream {
        crate::sharded::open_stream(self, db, threads, limit, &self.exec_seeds(eq_seeds))
    }

    /// The shard tasks a parallel run with `threads` workers would use
    /// against `db` — what an engine's explain inspects to report the
    /// shard strategy (see [`crate::shard_strategy`]).
    pub fn shard_specs(&self, db: &Database, threads: usize) -> Vec<ShardSpec> {
        crate::sharded::compute_shard_specs(self, db, threads)
    }
}

/// A [`Plan`] bound to a borrowed database (see [`Plan::prepare`]): any
/// re-indexing is already done, so [`PreparedPlan::stream`] and
/// [`PreparedPlan::execute`] start probing immediately, however many times
/// they are called. For a cacheable, non-borrowing variant see
/// [`Plan::prepare_exec`].
pub struct PreparedPlan<'db> {
    exec: PreparedExec,
    db: &'db Database,
}

impl PreparedPlan<'_> {
    /// The bound execution state (shared with [`Plan::prepare_exec`]).
    pub fn exec(&self) -> &PreparedExec {
        &self.exec
    }

    /// The GAO this prepared plan executes under.
    pub fn gao(&self) -> &GaoChoice {
        self.exec.gao()
    }

    /// Opens a lazy [`TupleStream`]; only probe work is paid here.
    pub fn stream(&self) -> TupleStream<'_> {
        self.exec.stream(self.db)
    }

    /// Runs to completion with the same sorted-output guarantee as
    /// [`Plan::execute`].
    pub fn execute(&self) -> Execution {
        self.exec.execute(self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_join;
    use minesweeper_storage::{builder, RelationBuilder};

    fn b7_db_query() -> (Database, Query) {
        // Example B.7's query R(A,B,C) ⋈ S(A,C) ⋈ T(B,C): the identity is
        // not a NEO, so the plan must re-index.
        let mut db = Database::new();
        let r = db
            .add(
                RelationBuilder::new("R", 3)
                    .tuple(&[1, 2, 3])
                    .tuple(&[4, 5, 6])
                    .tuple(&[1, 5, 3])
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let s = db.add(builder::binary("S", [(1, 3), (4, 6)])).unwrap();
        let t = db.add(builder::binary("T", [(2, 3), (5, 3)])).unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        (db, q)
    }

    #[test]
    fn plan_is_constructible_without_executing() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed());
        assert_eq!(p.gao().mode, ProbeMode::Chain);
        // Planning happened; nothing has been executed and the plan can be
        // inspected and reused.
        assert!(p.explain().contains("gao order"));
        assert_eq!(p.query().atoms.len(), 3);
    }

    #[test]
    fn plan_executes_many_times() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        let a = p.execute(&db).unwrap();
        let b = p.execute(&db).unwrap();
        assert_eq!(a.result.tuples, b.result.tuples);
        assert_eq!(a.result.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn prepared_plan_reindexes_once_and_streams_many_times() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed());
        // One prepare = one re-index; every stream/execute after that is
        // probe work only.
        let prepared = p.prepare(&db).unwrap();
        let take_one: Vec<Tuple> = prepared.stream().take(1).collect();
        assert_eq!(take_one.len(), 1);
        let s1: Vec<Tuple> = prepared.stream().collect();
        let s2: Vec<Tuple> = prepared.stream().collect();
        assert_eq!(s1, s2);
        let exec = prepared.execute();
        assert_eq!(exec.result.tuples, naive_join(&db, &q).unwrap());
        assert_eq!(prepared.gao(), p.gao());
    }

    #[test]
    fn prepared_exec_is_owned_and_replayable() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        let exec = p.prepare_exec(&db).unwrap();
        assert!(exec.is_reindexed(), "B.7 forces a re-index");
        assert_eq!(exec.gao(), p.gao());
        // The exec can outlive the plan and be bound repeatedly.
        drop(p);
        let a = exec.execute(&db);
        let b = exec.execute(&db);
        assert_eq!(a.result.tuples, b.result.tuples);
        assert_eq!(a.result.tuples, naive_join(&db, &q).unwrap());
        let streamed: Vec<Tuple> = exec.stream(&db).take(1).collect();
        assert_eq!(streamed.len(), 1);
    }

    #[test]
    fn stream_translates_to_original_numbering() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        let mut got: Vec<Tuple> = p.stream(&db).unwrap().collect();
        got.sort();
        assert_eq!(got, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn identity_plan_streams_in_lex_order() {
        // A unary query has only one possible GAO, so the plan cannot
        // re-index and the stream's certification order *is* lexicographic
        // in the original numbering.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [9, 1, 5, 3])).unwrap();
        let s = db.add(builder::unary("S", [3, 9, 2, 5])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        assert!(!p.is_reindexed());
        let got: Vec<Tuple> = p.stream(&db).unwrap().collect();
        assert_eq!(got, naive_join(&db, &q).unwrap(), "already lex-sorted");
    }

    #[test]
    fn stream_revalidates_against_foreign_database() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2])).unwrap();
        let q = Query::new(1).atom(r, &[0]);
        let p = plan(&db, &q).unwrap();
        // A database where the planned RelId has a different arity.
        let mut other = Database::new();
        other.add(builder::binary("R2", [(1, 2)])).unwrap();
        assert!(p.stream(&other).is_err());
    }

    #[test]
    fn explain_mentions_mode_and_bound() {
        let mut db = Database::new();
        let e = db.add(builder::binary("E", [(1, 2)])).unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let p = plan(&db, &q).unwrap();
        let text = p.explain();
        assert!(text.contains("general"), "{text}");
        assert!(text.contains("|C|^3"), "width-2 triangle bound: {text}");
        // The structured form agrees with the rendered string.
        let ep = p.explain_plan();
        assert_eq!(ep.width, 2);
        assert_eq!(ep.render(), text);
        assert!(ep.to_json().contains("\"probe_mode\":\"general\""));
    }
}
