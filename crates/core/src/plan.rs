//! Query planning, split from execution.
//!
//! [`plan`] validates a query and makes every decision that does **not**
//! require touching tuples: the global attribute order (a nested
//! elimination order when the query is β-acyclic — Theorem 2.7 — otherwise
//! a minimum elimination width order — Theorem 5.1), the probe mode that
//! order supports, and the column permutation needed to re-index the stored
//! relations when the chosen GAO differs from the identity. The resulting
//! [`Plan`] is cheap to build, inspectable ([`Plan::explain`]), and
//! executable any number of times against a database:
//!
//! * [`Plan::stream`] — the lazy [`TupleStream`] executor (pull tuples one
//!   at a time, stop early, read stats mid-flight);
//! * [`Plan::execute`] — materialize everything, sorted in the original
//!   attribute numbering;
//! * [`Plan::prepare`] — bind to a database once (including any re-index
//!   build) and get a [`PreparedPlan`] whose `stream`/`execute` pay only
//!   probe work on every call.
//!
//! ```
//! use minesweeper_core::{plan, Query};
//! use minesweeper_storage::{builder, Database};
//!
//! let mut db = Database::new();
//! let r = db.add(builder::binary("R", [(1, 10), (2, 20)])).unwrap();
//! let s = db.add(builder::binary("S", [(10, 5), (20, 9)])).unwrap();
//! let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
//!
//! // Plan once: the planner picks a nested elimination order for this
//! // β-acyclic path query (re-indexing if it differs from the identity) …
//! let p = plan(&db, &q).unwrap();
//! assert!(p.explain().contains("chain"));
//! // … stream with early termination …
//! let first: Vec<_> = p.stream(&db).unwrap().take(1).collect();
//! assert_eq!(first, vec![vec![1, 10, 5]]);
//! // … or materialize everything.
//! let exec = p.execute(&db).unwrap();
//! assert_eq!(exec.result.tuples, vec![vec![1, 10, 5], vec![2, 20, 9]]);
//! ```

use minesweeper_cds::ProbeMode;
use minesweeper_storage::{Database, Tuple};

use crate::execute::Execution;
use crate::gao::{choose_gao, reindex_for_gao, GaoChoice};
use crate::minesweeper::JoinResult;
use crate::query::{Query, QueryError};
use crate::stream::{DbHandle, TupleStream};

/// Exhaustive-treewidth search limit handed to [`choose_gao`]; larger
/// queries fall back to the min-fill heuristic.
const EXACT_WIDTH_LIMIT: usize = 9;

/// A validated, executable query plan (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// The query in the caller's attribute numbering.
    query: Query,
    /// The chosen GAO, probe mode, and elimination width.
    gao: GaoChoice,
    /// `inv[a]` = GAO position of original attribute `a`; `None` when the
    /// chosen order is the identity and the stored indexes can be probed
    /// directly.
    inv: Option<Vec<usize>>,
}

/// Plans `query` against `db`: validation plus GAO / probe-mode / re-index
/// selection. No tuple is touched — the returned [`Plan`] has done no
/// execution work yet.
pub fn plan(db: &Database, query: &Query) -> Result<Plan, QueryError> {
    query.validate(db)?;
    let gao = choose_gao(query, EXACT_WIDTH_LIMIT);
    let identity: Vec<usize> = (0..query.n_attrs).collect();
    let inv = if gao.order == identity {
        None
    } else {
        let mut inv = vec![0usize; query.n_attrs];
        for (i, &a) in gao.order.iter().enumerate() {
            inv[a] = i;
        }
        Some(inv)
    };
    Ok(Plan {
        query: query.clone(),
        gao,
        inv,
    })
}

impl Plan {
    /// The planned query (original attribute numbering).
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The chosen GAO, probe mode, and elimination width.
    pub fn gao(&self) -> &GaoChoice {
        &self.gao
    }

    /// True when execution must re-index the stored relations because the
    /// chosen GAO is not the identity.
    pub fn is_reindexed(&self) -> bool {
        self.inv.is_some()
    }

    /// Binds the plan to a database: validation plus the (at most one)
    /// re-index build happen here, so every subsequent
    /// [`PreparedPlan::stream`] / [`PreparedPlan::execute`] call pays only
    /// probe work. This is the execute-many half of the plan-once split —
    /// use it whenever a plan will run more than once, or when
    /// `stream().take(k)` must not pay a re-index on a non-identity GAO.
    pub fn prepare<'db>(&self, db: &'db Database) -> Result<PreparedPlan<'db>, QueryError> {
        self.query.validate(db)?;
        Ok(match &self.inv {
            None => PreparedPlan {
                gao: self.gao.clone(),
                exec_query: self.query.clone(),
                inv: None,
                db: PreparedDb::Borrowed(db),
            },
            Some(inv) => {
                let (db2, q2) = reindex_for_gao(db, &self.query, &self.gao.order)?;
                PreparedPlan {
                    gao: self.gao.clone(),
                    exec_query: q2,
                    inv: Some(inv.clone()),
                    db: PreparedDb::Owned(Box::new(db2)),
                }
            }
        })
    }

    /// Opens a lazy [`TupleStream`] over `db`.
    ///
    /// Tuples are yielded *as they are certified* — lexicographically in
    /// the GAO, with values translated back to the original attribute
    /// numbering — so `stream.take(k)` pays only the probe work needed for
    /// the first `k` tuples *plus*, when the plan's GAO is not the
    /// identity, one re-index of the stored relations (owned by the
    /// stream). Amortize that re-index across runs with [`Plan::prepare`].
    ///
    /// `db` is re-validated so a plan cannot silently run against a
    /// database with different arities than the one it was built for.
    pub fn stream<'db>(&self, db: &'db Database) -> Result<TupleStream<'db>, QueryError> {
        self.query.validate(db)?;
        match &self.inv {
            None => Ok(TupleStream::new(
                DbHandle::Borrowed(db),
                self.query.clone(),
                self.gao.mode,
                None,
            )),
            Some(inv) => {
                let (db2, q2) = reindex_for_gao(db, &self.query, &self.gao.order)?;
                Ok(TupleStream::new(
                    DbHandle::Owned(Box::new(db2)),
                    q2,
                    self.gao.mode,
                    Some(inv.clone()),
                ))
            }
        }
    }

    /// Runs the plan to completion.
    ///
    /// The result's tuples are **sorted lexicographically in the original
    /// attribute numbering** regardless of the GAO the plan chose (the
    /// identity-GAO probe order already is that order; re-indexed runs are
    /// sorted after translation).
    pub fn execute(&self, db: &Database) -> Result<Execution, QueryError> {
        Ok(self.prepare(db)?.execute())
    }

    /// Runs the plan to completion on up to `threads` worker threads by
    /// sharding the first GAO attribute's domain — shorthand for
    /// [`Plan::sharded`] + [`crate::ShardedPlan::execute`]. Output is
    /// byte-identical to [`Plan::execute`]; see [`crate::ShardedPlan`] for
    /// the sharding strategy and per-shard statistics.
    pub fn execute_parallel(
        &self,
        db: &Database,
        threads: usize,
    ) -> Result<crate::ShardedExecution, QueryError> {
        self.clone().sharded(threads).execute(db)
    }

    /// Wraps the plan for parallel execution on up to `threads` workers
    /// (see [`crate::ShardedPlan`]).
    pub fn sharded(self, threads: usize) -> crate::ShardedPlan {
        crate::ShardedPlan::new(self, threads)
    }

    /// A human-readable description of the planning decisions, for the
    /// CLI's `--explain` (attribute names are applied by the text layer).
    pub fn explain(&self) -> String {
        let mode = match self.gao.mode {
            ProbeMode::Chain => "chain (nested elimination order, β-acyclic)",
            ProbeMode::General => "general (minimum elimination width order)",
        };
        let bound = match self.gao.mode {
            ProbeMode::Chain => "Õ(|C| + Z)  [Theorem 2.7]".to_string(),
            ProbeMode::General => {
                format!("Õ(|C|^{} + Z)  [Theorem 5.1]", self.gao.width + 1)
            }
        };
        let indexes = if self.is_reindexed() {
            format!(
                "re-index {} atom(s) to match the GAO",
                self.query.atoms.len()
            )
        } else {
            "stored indexes already consistent with the GAO".to_string()
        };
        let atoms: Vec<String> = self
            .query
            .atoms
            .iter()
            .map(|a| format!("{:?}", a.attrs))
            .collect();
        format!(
            "plan: minesweeper\n\
             attributes: {}\n\
             atoms (GAO positions): {}\n\
             gao order: {:?}\n\
             probe mode: {mode}\n\
             elimination width: {}\n\
             indexes: {indexes}\n\
             runtime bound: {bound}",
            self.query.n_attrs,
            atoms.join(" "),
            self.gao.order,
            self.gao.width,
        )
    }
}

/// The database side of a prepared plan: borrowed when the stored indexes
/// already match the GAO, owned when [`Plan::prepare`] had to re-index.
enum PreparedDb<'db> {
    Borrowed(&'db Database),
    Owned(Box<Database>),
}

/// A [`Plan`] bound to a database (see [`Plan::prepare`]): any re-indexing
/// is already done, so [`PreparedPlan::stream`] and
/// [`PreparedPlan::execute`] start probing immediately, however many times
/// they are called.
pub struct PreparedPlan<'db> {
    gao: GaoChoice,
    /// Execution-side query (re-indexed when the GAO demanded it).
    exec_query: Query,
    /// `inv[a]` = execution column of original attribute `a`.
    inv: Option<Vec<usize>>,
    db: PreparedDb<'db>,
}

impl PreparedPlan<'_> {
    pub(crate) fn db(&self) -> &Database {
        match &self.db {
            PreparedDb::Borrowed(d) => d,
            PreparedDb::Owned(b) => b,
        }
    }

    /// The execution-side query (re-indexed when the GAO demanded it);
    /// attribute positions are GAO positions.
    pub(crate) fn exec_query(&self) -> &Query {
        &self.exec_query
    }

    /// `inv[a]` = execution column of original attribute `a`, when the
    /// GAO is not the identity.
    pub(crate) fn inv(&self) -> Option<&[usize]> {
        self.inv.as_deref()
    }

    /// The GAO this prepared plan executes under.
    pub fn gao(&self) -> &GaoChoice {
        &self.gao
    }

    /// Opens a lazy [`TupleStream`]; only probe work is paid here.
    pub fn stream(&self) -> TupleStream<'_> {
        TupleStream::new(
            DbHandle::Borrowed(self.db()),
            self.exec_query.clone(),
            self.gao.mode,
            self.inv.clone(),
        )
    }

    /// Runs to completion with the same sorted-output guarantee as
    /// [`Plan::execute`].
    pub fn execute(&self) -> Execution {
        let mut stream = self.stream();
        let mut tuples: Vec<Tuple> = stream.by_ref().collect();
        if self.inv.is_some() {
            tuples.sort_unstable();
        } else {
            debug_assert!(
                tuples.windows(2).all(|w| w[0] < w[1]),
                "identity-GAO probe order must already be lexicographic"
            );
        }
        Execution {
            result: JoinResult {
                tuples,
                stats: stream.stats(),
            },
            gao: self.gao.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_join;
    use minesweeper_storage::{builder, RelationBuilder};

    fn b7_db_query() -> (Database, Query) {
        // Example B.7's query R(A,B,C) ⋈ S(A,C) ⋈ T(B,C): the identity is
        // not a NEO, so the plan must re-index.
        let mut db = Database::new();
        let r = db
            .add(
                RelationBuilder::new("R", 3)
                    .tuple(&[1, 2, 3])
                    .tuple(&[4, 5, 6])
                    .tuple(&[1, 5, 3])
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let s = db.add(builder::binary("S", [(1, 3), (4, 6)])).unwrap();
        let t = db.add(builder::binary("T", [(2, 3), (5, 3)])).unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        (db, q)
    }

    #[test]
    fn plan_is_constructible_without_executing() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed());
        assert_eq!(p.gao().mode, ProbeMode::Chain);
        // Planning happened; nothing has been executed and the plan can be
        // inspected and reused.
        assert!(p.explain().contains("gao order"));
        assert_eq!(p.query().atoms.len(), 3);
    }

    #[test]
    fn plan_executes_many_times() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        let a = p.execute(&db).unwrap();
        let b = p.execute(&db).unwrap();
        assert_eq!(a.result.tuples, b.result.tuples);
        assert_eq!(a.result.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn prepared_plan_reindexes_once_and_streams_many_times() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed());
        // One prepare = one re-index; every stream/execute after that is
        // probe work only.
        let prepared = p.prepare(&db).unwrap();
        let take_one: Vec<Tuple> = prepared.stream().take(1).collect();
        assert_eq!(take_one.len(), 1);
        let s1: Vec<Tuple> = prepared.stream().collect();
        let s2: Vec<Tuple> = prepared.stream().collect();
        assert_eq!(s1, s2);
        let exec = prepared.execute();
        assert_eq!(exec.result.tuples, naive_join(&db, &q).unwrap());
        assert_eq!(prepared.gao(), p.gao());
    }

    #[test]
    fn stream_translates_to_original_numbering() {
        let (db, q) = b7_db_query();
        let p = plan(&db, &q).unwrap();
        let mut got: Vec<Tuple> = p.stream(&db).unwrap().collect();
        got.sort();
        assert_eq!(got, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn identity_plan_streams_in_lex_order() {
        // A unary query has only one possible GAO, so the plan cannot
        // re-index and the stream's certification order *is* lexicographic
        // in the original numbering.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [9, 1, 5, 3])).unwrap();
        let s = db.add(builder::unary("S", [3, 9, 2, 5])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        assert!(!p.is_reindexed());
        let got: Vec<Tuple> = p.stream(&db).unwrap().collect();
        assert_eq!(got, naive_join(&db, &q).unwrap(), "already lex-sorted");
    }

    #[test]
    fn stream_revalidates_against_foreign_database() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2])).unwrap();
        let q = Query::new(1).atom(r, &[0]);
        let p = plan(&db, &q).unwrap();
        // A database where the planned RelId has a different arity.
        let mut other = Database::new();
        other.add(builder::binary("R2", [(1, 2)])).unwrap();
        assert!(p.stream(&other).is_err());
    }

    #[test]
    fn explain_mentions_mode_and_bound() {
        let mut db = Database::new();
        let e = db.add(builder::binary("E", [(1, 2)])).unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let p = plan(&db, &q).unwrap();
        let text = p.explain();
        assert!(text.contains("general"), "{text}");
        assert!(text.contains("|C|^3"), "width-2 triangle bound: {text}");
    }
}
