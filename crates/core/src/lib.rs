//! The Minesweeper join algorithm (Ngo, Nguyen, Ré, Rudra; PODS 2014).
//!
//! Minesweeper evaluates a natural join over relations stored in ordered
//! indexes consistent with a *global attribute order* (GAO). It repeatedly
//! asks its constraint data structure for an **active tuple** (a point of
//! the output space not yet excluded), probes every relation around that
//! tuple with `FindGap`, and either reports the tuple as output or inserts
//! the discovered gaps as constraints. Its running time is bounded by the
//! size of the smallest *certificate* for the instance (Theorem 3.2):
//! `Õ(|C| + Z)` for β-acyclic queries under a nested elimination order
//! (Theorem 2.7), `Õ(|C|^{w+1} + Z)` for elimination width `w`
//! (Theorem 5.1), and `Õ(|C|^{3/2} + Z)` for the triangle query with the
//! dyadic CDS (Theorem 5.4).
//!
//! Entry points:
//! * [`Query`] — atoms over a GAO, with hypergraph extraction;
//! * [`plan()`] — validation + GAO/probe-mode/re-index selection, producing
//!   a reusable, inspectable [`Plan`];
//! * [`Plan::stream`] — the lazy [`TupleStream`] executor: tuples are
//!   yielded as they are certified, `take(k)` stops the probe loop early,
//!   and [`TupleStream::stats`] reads counters mid-flight;
//! * [`execute()`] — the materialize-everything wrapper (sorted in the
//!   original attribute numbering);
//! * [`ShardedPlan`] / [`Plan::execute_parallel`] — parallel execution:
//!   equi-depth shards of the first GAO attribute's domain (nested
//!   second-attribute splits for heavy duplicate runs), one independent
//!   probe loop per shard task on a work-stealing deque, and an
//!   order-preserving reassembly whose output is byte-identical to the
//!   serial run; [`ShardedStream`] is the incremental form on background
//!   workers and bounded channels, with early cancellation;
//! * [`Algorithm`] — the unified evaluator trait implemented by
//!   [`Minesweeper`], [`Naive`], and every baseline (registry in
//!   `minesweeper_baselines::registry`);
//! * [`minesweeper_join`] — Algorithm 2 over the generic
//!   [`minesweeper_cds::ConstraintTree`];
//! * [`triangle_join`] — Theorem 5.4's specialization for
//!   `R(A,B) ⋈ S(B,C) ⋈ T(A,C)`;
//! * [`set_intersection()`] — the Appendix H specialization (Algorithm 8);
//! * [`bowtie_join`] — the Appendix I specialization (Algorithm 9);
//! * [`choose_gao`] / [`reindex_for_gao`] — GAO selection (nested
//!   elimination order when β-acyclic, minimum elimination width
//!   otherwise) and physical re-indexing;
//! * [`naive_join`] — nested-loop ground truth for testing;
//! * [`certificate`] — the certificate formalism of Section 2.2 with the
//!   Proposition 2.6 upper-bound construction.

#![warn(missing_docs)]

pub mod algorithm;
pub mod bowtie;
pub mod certificate;
pub mod execute;
pub mod explain;
pub mod gao;
pub mod minesweeper;
pub mod naive;
pub mod partition;
pub mod plan;
pub mod query;
pub mod set_intersection;
pub mod sharded;
pub mod stream;
pub mod triangle;

pub use algorithm::{Algorithm, Minesweeper, MinesweeperPar, Naive};
pub use bowtie::bowtie_join;
pub use certificate::{canonical_certificate_size, Argument, Comparison, VarRef};
pub use execute::{execute, Execution};
pub use explain::{
    json_string, ExplainAtom, ExplainCache, ExplainPlan, ExplainShards, ExplainStorage,
};
pub use gao::{choose_gao, private_attributes_last, reindex_for_gao, GaoChoice};
pub use minesweeper::{minesweeper_join, JoinResult};
pub use naive::naive_join;
pub use partition::{partition_certificate, PartitionCertificate, PartitionItem};
pub use plan::{plan, Plan, PreparedExec, PreparedPlan};
pub use query::{Atom, Query, QueryError};
pub use set_intersection::{set_intersection, set_intersection_galloping};
pub use sharded::{
    shard_strategy, ShardReport, ShardStats, ShardedExecution, ShardedPlan, ShardedStream,
    MAX_TASKS_PER_THREAD, MERGE_STRATEGY, OVERSPLIT,
};
pub use stream::TupleStream;
pub use triangle::triangle_join;
