//! Partition certificates for set intersection (Appendix H / Appendix K).
//!
//! Barbay–Kenyon's *partition certificate* encodes the answer to
//! `S₁ ∩ … ∩ S_m` as a sequence of items covering the whole value line:
//! either an **output** value present in every set, or a **gap** — an open
//! interval together with the index of one set having no element inside
//! it. Appendix H observes that Minesweeper's discovered gaps *are* such
//! a certificate (and relates them to DLM-style proofs); this module makes
//! the correspondence executable: [`partition_certificate`] records the
//! items during an Algorithm 8 run, and [`PartitionCertificate::verify`]
//! checks soundness (every claim true) and completeness (the items cover
//! `(−∞, +∞)`) against any instance.

use minesweeper_cds::{IntervalSet, POS_INF, PROBE_START};
use minesweeper_storage::{ExecStats, TrieRelation, Val};

/// One item of a partition certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionItem {
    /// `value` belongs to every set — an output with its witness.
    Output {
        /// The common value.
        value: Val,
    },
    /// The open interval `(lo, hi)` contains no element of set `set`.
    Gap {
        /// Index of the witnessing set.
        set: usize,
        /// Open lower endpoint.
        lo: Val,
        /// Open upper endpoint.
        hi: Val,
    },
}

/// A recorded partition certificate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionCertificate {
    /// The items, in discovery order.
    pub items: Vec<PartitionItem>,
}

impl PartitionCertificate {
    /// Number of items — comparable to the DLM proof size and to the
    /// FindGap count of the run that produced it.
    pub fn size(&self) -> usize {
        self.items.len()
    }

    /// The claimed output values, sorted.
    pub fn outputs(&self) -> Vec<Val> {
        let mut out: Vec<Val> = self
            .items
            .iter()
            .filter_map(|i| match i {
                PartitionItem::Output { value } => Some(*value),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Verifies the certificate against an instance:
    ///
    /// 1. **soundness** — every `Output` value is in every set, every
    ///    `Gap` is genuinely empty in its witnessing set;
    /// 2. **completeness** — outputs and gaps jointly cover the line, so
    ///    no value outside the claimed outputs can be in the intersection.
    pub fn verify(&self, sets: &[&TrieRelation]) -> bool {
        let mut stats = ExecStats::new();
        let mut covered = IntervalSet::new();
        for item in &self.items {
            match item {
                PartitionItem::Output { value } => {
                    if !sets.iter().all(|s| s.contains(&[*value])) {
                        return false;
                    }
                    covered.insert_closed(*value, *value);
                }
                PartitionItem::Gap { set, lo, hi } => {
                    let Some(s) = sets.get(*set) else {
                        return false;
                    };
                    // The open interval (lo, hi) must skip the set: the gap
                    // around lo+1 must reach hi.
                    let g = s.find_gap(s.root(), lo.saturating_add(1), &mut stats);
                    let empty = if g.exact() {
                        false
                    } else {
                        g.lo_val <= *lo && g.hi_val >= *hi
                    };
                    if !empty && lo.saturating_add(1) <= hi.saturating_sub(1) {
                        return false;
                    }
                    covered.insert_open(*lo, *hi);
                }
            }
        }
        covered.next(PROBE_START) == POS_INF
    }
}

/// Runs Algorithm 8 while recording a partition certificate. Returns the
/// outputs, the certificate, and the run statistics.
pub fn partition_certificate(
    sets: &[&TrieRelation],
) -> (Vec<Val>, PartitionCertificate, ExecStats) {
    assert!(!sets.is_empty());
    assert!(sets.iter().all(|s| s.arity() == 1));
    let mut stats = ExecStats::new();
    let mut cds = IntervalSet::new();
    let mut cert = PartitionCertificate::default();
    let mut outputs = Vec::new();
    loop {
        let t = cds.next(PROBE_START);
        if t == POS_INF {
            break;
        }
        stats.probe_points += 1;
        let mut all_exact = true;
        for (i, s) in sets.iter().enumerate() {
            let gap = s.find_gap(s.root(), t, &mut stats);
            if !gap.exact() {
                all_exact = false;
                if cds.insert_open(gap.lo_val, gap.hi_val) {
                    cert.items.push(PartitionItem::Gap {
                        set: i,
                        lo: gap.lo_val,
                        hi: gap.hi_val,
                    });
                }
            }
        }
        if all_exact {
            outputs.push(t);
            stats.outputs += 1;
            cds.insert_open(t - 1, t + 1);
            cert.items.push(PartitionItem::Output { value: t });
        }
    }
    (outputs, cert, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_storage::builder::unary;

    #[test]
    fn certificate_verifies_on_simple_instance() {
        let a = unary("A", [1, 3, 5, 7]);
        let b = unary("B", [3, 4, 7, 9]);
        let (out, cert, _) = partition_certificate(&[&a, &b]);
        assert_eq!(out, vec![3, 7]);
        assert_eq!(cert.outputs(), vec![3, 7]);
        assert!(cert.verify(&[&a, &b]));
    }

    #[test]
    fn certificate_size_tracks_instance_difficulty() {
        let n: Val = 2_000;
        let easy_a = unary("A", 0..n);
        let easy_b = unary("B", n..2 * n);
        let (_, easy, _) = partition_certificate(&[&easy_a, &easy_b]);
        assert!(easy.size() <= 4, "easy instance: {}", easy.size());
        assert!(easy.verify(&[&easy_a, &easy_b]));
        let hard_a = unary("A", (0..n).map(|i| 2 * i));
        let hard_b = unary("B", (0..n).map(|i| 2 * i + 1));
        let (_, hard, _) = partition_certificate(&[&hard_a, &hard_b]);
        assert!(hard.size() as i64 >= n, "hard instance: {}", hard.size());
        assert!(hard.verify(&[&hard_a, &hard_b]));
    }

    #[test]
    fn tampered_certificates_fail_verification() {
        let a = unary("A", [1, 3, 5]);
        let b = unary("B", [3, 6]);
        let (_, cert, _) = partition_certificate(&[&a, &b]);
        assert!(cert.verify(&[&a, &b]));
        // Claim an output that is not there.
        let mut forged = cert.clone();
        forged.items.push(PartitionItem::Output { value: 5 });
        assert!(!forged.verify(&[&a, &b]), "5 ∉ B");
        // Claim a gap that is not empty.
        let mut forged = cert.clone();
        forged.items.push(PartitionItem::Gap {
            set: 0,
            lo: 0,
            hi: 4,
        });
        assert!(!forged.verify(&[&a, &b]), "A has 1 and 3 inside (0,4)");
        // Drop an item: coverage breaks.
        let mut truncated = cert.clone();
        truncated.items.pop();
        assert!(!truncated.verify(&[&a, &b]), "line no longer covered");
        // Out-of-range set index.
        let mut forged = cert;
        forged.items.push(PartitionItem::Gap {
            set: 9,
            lo: 0,
            hi: 1,
        });
        assert!(!forged.verify(&[&a, &b]));
    }

    #[test]
    fn certificate_for_all_equal_sets() {
        let a = unary("A", [2, 4, 6]);
        let b = unary("B", [2, 4, 6]);
        let (out, cert, _) = partition_certificate(&[&a, &b]);
        assert_eq!(out, vec![2, 4, 6]);
        assert!(cert.verify(&[&a, &b]));
        // Outputs + surrounding gaps cover the line.
        assert!(cert.size() >= 7);
    }

    #[test]
    fn certificate_transfers_to_order_isomorphic_instance() {
        // The value-oblivious spirit of Definition 2.3: the same gap/output
        // *structure* verifies on an instance with shifted values only if
        // the endpoints still match — a stretched instance must fail.
        let a = unary("A", [1, 3]);
        let b = unary("B", [3, 9]);
        let (_, cert, _) = partition_certificate(&[&a, &b]);
        assert!(cert.verify(&[&a, &b]));
        let a2 = unary("A2", [1, 4]);
        let b2 = unary("B2", [4, 9]);
        assert!(
            !cert.verify(&[&a2, &b2]),
            "endpoints moved; claims go stale"
        );
    }
}
