//! Structured, serializable plan explanations.
//!
//! [`ExplainPlan`] is the machine-readable form of every decision a
//! [`crate::Plan`] made (GAO, probe mode, elimination width, re-index
//! need, runtime bound) plus the execution-level context an engine layers
//! on top (attribute/relation names, shard strategy, plan-cache
//! hit/miss). The human-readable string [`crate::Plan::explain`] and the
//! CLI's `--explain` output are both *rendered from* this structure
//! ([`ExplainPlan::render`]); `--explain-json` serializes it with
//! [`ExplainPlan::to_json`] (hand-rolled — this workspace builds offline,
//! so no serde).

use minesweeper_cds::ProbeMode;

/// One atom of the explained query: its GAO attribute positions, plus the
/// relation name when the explaining layer knows the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainAtom {
    /// Relation name (filled by layers that hold the catalog; `None` from
    /// a bare [`crate::Plan::explain_plan`]).
    pub relation: Option<String>,
    /// The atom's attribute positions in the *original* numbering.
    pub attrs: Vec<usize>,
}

/// The parallel strategy attached by a sharded executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainShards {
    /// Worker-thread count.
    pub threads: usize,
    /// Number of shard tasks the split produced against the bound
    /// database (tasks can exceed workers — the steal queue balances).
    pub tasks: usize,
    /// Partitioning strategy variant: `"equi-depth"` (plain first-
    /// attribute split, one task per worker), `"nested"` (a heavy
    /// duplicate run was additionally split on the second GAO
    /// attribute), or `"stolen"` (more tasks than workers, so idle
    /// workers steal). See [`crate::shard_strategy`].
    pub strategy: String,
    /// Reassembly strategy: how per-shard streams become one globally
    /// ordered output ([`crate::MERGE_STRATEGY`] — the k-way heap merge
    /// keyed by GAO-translated tuples).
    pub merge: String,
    /// Human description of the shard pipeline.
    pub detail: String,
}

/// Physical leaf-representation summary attached by layers that hold the
/// catalog (see `minesweeper_storage::LeafPolicy` and the hybrid
/// `BitLeafRelation`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainStorage {
    /// Leaf policy label: `"sorted"`, `"auto"`, or `"dense"`.
    pub leaf: String,
    /// Packed bitset runs across the relations the query touches.
    pub dense_leaves: u64,
    /// Total `u64` words those runs hold.
    pub bitset_words: u64,
}

/// Plan-cache provenance attached by an engine front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainCache {
    /// True when the plan (and any re-indexed relations) came from the
    /// engine's statement cache rather than being built for this call.
    pub hit: bool,
    /// Stable identity of the cached plan: two statements whose explain
    /// reports the same `plan_id` share one plan and one set of
    /// re-indexed indexes.
    pub plan_id: u64,
}

/// A structured description of a plan (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainPlan {
    /// Evaluator name (`"minesweeper"` for the planned engine).
    pub algorithm: String,
    /// Number of attributes in the query.
    pub n_attrs: usize,
    /// Attribute names in original-numbering order, when known.
    pub attr_names: Option<Vec<String>>,
    /// The query's atoms.
    pub atoms: Vec<ExplainAtom>,
    /// `gao_order[i]` = original attribute at GAO position `i`.
    pub gao_order: Vec<usize>,
    /// The probe mode the GAO supports.
    pub probe_mode: ProbeMode,
    /// Elimination width of the chosen order.
    pub width: usize,
    /// True when execution must build re-indexed copies of the stored
    /// relations (the GAO is not the identity).
    pub reindexed: bool,
    /// The paper's runtime bound for this plan, e.g. `Õ(|C| + Z)`.
    pub runtime_bound: String,
    /// Parallel strategy, when a sharded executor will run the plan.
    pub shards: Option<ExplainShards>,
    /// Plan-cache provenance, when an engine front door produced this.
    pub cache: Option<ExplainCache>,
    /// Leaf-representation summary, when a catalog-holding layer produced
    /// this.
    pub storage: Option<ExplainStorage>,
}

impl ExplainPlan {
    /// Short lowercase name of the probe mode (`"chain"` / `"general"`).
    pub fn probe_mode_name(&self) -> &'static str {
        match self.probe_mode {
            ProbeMode::Chain => "chain",
            ProbeMode::General => "general",
        }
    }

    /// The longer probe-mode description used in rendered output.
    pub fn probe_mode_detail(&self) -> &'static str {
        match self.probe_mode {
            ProbeMode::Chain => "chain (nested elimination order, β-acyclic)",
            ProbeMode::General => "general (minimum elimination width order)",
        }
    }

    /// Renders the human-readable explanation the CLI and
    /// [`crate::Plan::explain`] print. Without attribute names the layout
    /// is positional (the historical `Plan::explain` string); with names
    /// it leads with the `query:` / `gao:` lines and drops the positional
    /// duplicates — the shape `msj --explain` has always printed.
    pub fn render(&self) -> String {
        let named = self.attr_names.is_some();
        let name_of = |a: usize| -> String {
            match &self.attr_names {
                Some(names) => names.get(a).cloned().unwrap_or_else(|| "?".to_string()),
                None => a.to_string(),
            }
        };
        let mut lines: Vec<String> = Vec::new();
        if named {
            let atoms: Vec<String> = self
                .atoms
                .iter()
                .map(|atom| {
                    let attrs: Vec<String> = atom.attrs.iter().map(|&a| name_of(a)).collect();
                    format!(
                        "{}({})",
                        atom.relation.as_deref().unwrap_or("?"),
                        attrs.join(", ")
                    )
                })
                .collect();
            let order: Vec<String> = self.gao_order.iter().map(|&a| name_of(a)).collect();
            let reindex = if self.reindexed {
                "re-indexed copies built at execution"
            } else {
                "stored indexes used directly"
            };
            lines.push(format!("query: {}", atoms.join(" ⋈ ")));
            lines.push(format!("gao: {}  ({reindex})", order.join(", ")));
        }
        lines.push(format!("plan: {}", self.algorithm));
        lines.push(format!("attributes: {}", self.n_attrs));
        if !named {
            let atoms: Vec<String> = self
                .atoms
                .iter()
                .map(|a| format!("{:?}", a.attrs))
                .collect();
            lines.push(format!("atoms (GAO positions): {}", atoms.join(" ")));
            lines.push(format!("gao order: {:?}", self.gao_order));
        }
        lines.push(format!("probe mode: {}", self.probe_mode_detail()));
        lines.push(format!("elimination width: {}", self.width));
        if !named {
            let indexes = if self.reindexed {
                format!("re-index {} atom(s) to match the GAO", self.atoms.len())
            } else {
                "stored indexes already consistent with the GAO".to_string()
            };
            lines.push(format!("indexes: {indexes}"));
        }
        lines.push(format!("runtime bound: {}", self.runtime_bound));
        if let Some(s) = &self.storage {
            lines.push(format!(
                "storage: leaf policy {} ({} dense leaves, {} bitset words)",
                s.leaf, s.dense_leaves, s.bitset_words
            ));
        }
        if let Some(c) = &self.cache {
            lines.push(format!(
                "cache: {} (plan {})",
                if c.hit { "hit" } else { "miss" },
                c.plan_id
            ));
        }
        if let Some(s) = &self.shards {
            lines.push(format!(
                "parallel: up to {} worker(s), {} shard task(s), strategy {}, merge {} — {}",
                s.threads, s.tasks, s.strategy, s.merge, s.detail
            ));
        }
        lines.join("\n")
    }

    /// Serializes the full structure as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("algorithm", &self.algorithm);
        o.num("n_attrs", self.n_attrs as f64);
        match &self.attr_names {
            Some(names) => o.raw(
                "attr_names",
                &json_array(names.iter().map(|n| json_string(n))),
            ),
            None => o.raw("attr_names", "null"),
        }
        o.raw(
            "atoms",
            &json_array(self.atoms.iter().map(|a| {
                let mut ao = JsonObj::new();
                match &a.relation {
                    Some(r) => ao.str("relation", r),
                    None => ao.raw("relation", "null"),
                }
                ao.raw("attrs", &json_array(a.attrs.iter().map(|x| x.to_string())));
                ao.finish()
            })),
        );
        o.raw(
            "gao_order",
            &json_array(self.gao_order.iter().map(|x| x.to_string())),
        );
        o.str("probe_mode", self.probe_mode_name());
        o.num("width", self.width as f64);
        o.bool("reindexed", self.reindexed);
        o.str("runtime_bound", &self.runtime_bound);
        match &self.shards {
            Some(s) => {
                let mut so = JsonObj::new();
                so.num("threads", s.threads as f64);
                so.num("tasks", s.tasks as f64);
                so.str("strategy", &s.strategy);
                so.str("merge", &s.merge);
                so.str("detail", &s.detail);
                o.raw("shards", &so.finish());
            }
            None => o.raw("shards", "null"),
        }
        match &self.cache {
            Some(c) => {
                let mut co = JsonObj::new();
                co.bool("hit", c.hit);
                co.num("plan_id", c.plan_id as f64);
                o.raw("cache", &co.finish());
            }
            None => o.raw("cache", "null"),
        }
        match &self.storage {
            Some(s) => {
                let mut so = JsonObj::new();
                so.str("leaf", &s.leaf);
                so.num("dense_leaves", s.dense_leaves as f64);
                so.num("bitset_words", s.bitset_words as f64);
                o.raw("storage", &so.finish());
            }
            None => o.raw("storage", "null"),
        }
        o.finish()
    }
}

/// Escapes and quotes a string for JSON — shared by [`ExplainPlan::to_json`]
/// and any caller hand-assembling small JSON fragments around it (e.g. the
/// CLI's baseline `--explain-json` object).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_array(items: impl Iterator<Item = String>) -> String {
    format!("[{}]", items.collect::<Vec<_>>().join(","))
}

/// Minimal ordered JSON-object builder.
struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    fn new() -> Self {
        JsonObj { fields: Vec::new() }
    }

    fn str(&mut self, k: &str, v: &str) {
        self.fields.push((k.to_string(), json_string(v)));
    }

    fn num(&mut self, k: &str, v: f64) {
        let rendered = if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        };
        self.fields.push((k.to_string(), rendered));
    }

    fn bool(&mut self, k: &str, v: bool) {
        self.fields.push((k.to_string(), v.to_string()));
    }

    fn raw(&mut self, k: &str, v: &str) {
        self.fields.push((k.to_string(), v.to_string()));
    }

    fn finish(self) -> String {
        let body: Vec<String> = self
            .fields
            .into_iter()
            .map(|(k, v)| format!("{}:{v}", json_string(&k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExplainPlan {
        ExplainPlan {
            algorithm: "minesweeper".to_string(),
            n_attrs: 3,
            attr_names: None,
            atoms: vec![
                ExplainAtom {
                    relation: None,
                    attrs: vec![0, 1],
                },
                ExplainAtom {
                    relation: None,
                    attrs: vec![1, 2],
                },
            ],
            gao_order: vec![0, 1, 2],
            probe_mode: ProbeMode::Chain,
            width: 1,
            reindexed: false,
            runtime_bound: "Õ(|C| + Z)  [Theorem 2.7]".to_string(),
            shards: None,
            cache: None,
            storage: None,
        }
    }

    #[test]
    fn render_has_stable_line_prefixes() {
        let text = sample().render();
        for prefix in [
            "plan: ",
            "attributes: ",
            "atoms (GAO positions): ",
            "gao order: ",
            "probe mode: ",
            "elimination width: ",
            "indexes: ",
            "runtime bound: ",
        ] {
            assert!(
                text.lines().any(|l| l.starts_with(prefix)),
                "missing {prefix:?} in {text}"
            );
        }
        assert!(text.contains("chain"));
    }

    #[test]
    fn render_with_names_cache_and_shards() {
        let mut e = sample();
        e.attr_names = Some(vec!["x".into(), "y".into(), "z".into()]);
        e.atoms[0].relation = Some("R".into());
        e.atoms[1].relation = Some("S".into());
        e.cache = Some(ExplainCache {
            hit: true,
            plan_id: 7,
        });
        e.shards = Some(ExplainShards {
            threads: 4,
            tasks: 8,
            strategy: "stolen".into(),
            merge: "global-order-heap".into(),
            detail: "equi-depth shard tasks of the first GAO attribute".into(),
        });
        let text = e.render();
        assert!(text.starts_with("query: R(x, y) ⋈ S(y, z)"), "{text}");
        assert!(text.contains("gao: x, y, z"), "{text}");
        assert!(text.contains("cache: hit (plan 7)"), "{text}");
        assert!(
            text.contains(
                "parallel: up to 4 worker(s), 8 shard task(s), strategy stolen, \
                 merge global-order-heap"
            ),
            "{text}"
        );
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut e = sample();
        e.attr_names = Some(vec!["x".into(), "y\"q".into(), "z".into()]);
        e.cache = Some(ExplainCache {
            hit: false,
            plan_id: 1,
        });
        let json = e.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"algorithm\":\"minesweeper\""), "{json}");
        assert!(json.contains("\"probe_mode\":\"chain\""), "{json}");
        assert!(json.contains("\"gao_order\":[0,1,2]"), "{json}");
        assert!(json.contains("\"reindexed\":false"), "{json}");
        assert!(json.contains("\"hit\":false"), "{json}");
        assert!(json.contains("\"y\\\"q\""), "escaped quote: {json}");
        assert!(json.contains("\"shards\":null"), "{json}");
        assert!(json.contains("\"storage\":null"), "{json}");
        // Balanced braces/brackets (cheap well-formedness proxy).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn storage_field_renders_and_serializes() {
        let mut e = sample();
        e.storage = Some(ExplainStorage {
            leaf: "auto".into(),
            dense_leaves: 3,
            bitset_words: 17,
        });
        let text = e.render();
        assert!(
            text.contains("storage: leaf policy auto (3 dense leaves, 17 bitset words)"),
            "{text}"
        );
        let json = e.to_json();
        assert!(
            json.contains("\"storage\":{\"leaf\":\"auto\",\"dense_leaves\":3,\"bitset_words\":17}"),
            "{json}"
        );
    }

    #[test]
    fn probe_mode_names() {
        let mut e = sample();
        assert_eq!(e.probe_mode_name(), "chain");
        e.probe_mode = ProbeMode::General;
        assert_eq!(e.probe_mode_name(), "general");
        assert!(e.probe_mode_detail().contains("minimum elimination width"));
    }
}
