//! The Minesweeper outer algorithm (Algorithm 2, Section 3.4).
//!
//! Each iteration takes an active tuple `t` from the CDS and *explores
//! around `t`* in every relation: at atom depth `p`, for every vector
//! `v ∈ {ℓ, h}^p` of low/high branch choices whose index prefix is in
//! range, a `FindGap` at coordinate `t_{s(p+1)}` yields the bracketing pair
//! `(i^{(v,ℓ)}, i^{(v,h)})`. If the all-exact path matches `t`'s projection
//! in every relation, `t` is an output and only the point exclusion
//! `⟨t₁, …, t_{n−1}, (t_n − 1, t_n + 1)⟩` is inserted; otherwise every
//! discovered non-empty gap becomes a constraint
//! `⟨R[i^{(v₁)}], …, R[i^{(v)}], (R[i^{(v,ℓ)}], R[i^{(v,h)}])⟩` with the
//! equality components placed at the atom's GAO positions and wildcards
//! elsewhere (Theorem 3.2 charges each iteration to a certificate
//! comparison or an output tuple).
//!
//! The probe loop itself lives in [`crate::stream`] as the resumable
//! [`TupleStream`] state machine; [`minesweeper_join`] is the
//! drain-everything wrapper around it. Per DESIGN.md, branches whose
//! bracketing coordinate is out of range are skipped (their index tuples
//! are undefined), and the `ℓ`/`h` branches are deduplicated on exact hits
//! — the duplicate `FindGap` calls of the pseudocode would return identical
//! constraints.

use minesweeper_cds::ProbeMode;
use minesweeper_storage::{Database, ExecStats, Tuple};

use crate::query::{Query, QueryError};
use crate::stream::{DbHandle, TupleStream};

// The exploration engine is shared with the specialized joins
// (`triangle_join`) and re-exported for them from the stream module.
pub(crate) use crate::stream::{explore_atom, merge_probe_stats};

/// Output tuples plus execution statistics.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Output tuples in probe order (lexicographic over the GAO).
    pub tuples: Vec<Tuple>,
    /// Counters: `find_gap_calls` is the paper's empirical `|C|` measure.
    pub stats: ExecStats,
}

/// Runs Minesweeper on `query` over `db` with the given probe mode,
/// materializing the whole output.
///
/// Use [`ProbeMode::Chain`] when the GAO is a nested elimination order
/// (β-acyclic queries, Theorem 2.7) and [`ProbeMode::General`] otherwise
/// (Theorem 5.1); [`crate::choose_gao`] picks this automatically — or use
/// [`crate::plan()`] / [`crate::Plan::stream`] for the planned, lazily
/// streaming form of the same loop.
///
/// ```
/// use minesweeper_cds::ProbeMode;
/// use minesweeper_core::{minesweeper_join, Query};
/// use minesweeper_storage::{builder, Database};
///
/// let mut db = Database::new();
/// let r = db.add(builder::binary("R", [(1, 2), (4, 5)])).unwrap();
/// let s = db.add(builder::binary("S", [(2, 9), (5, 8)])).unwrap();
/// let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
/// let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
/// assert_eq!(res.tuples, vec![vec![1, 2, 9], vec![4, 5, 8]]);
/// ```
pub fn minesweeper_join(
    db: &Database,
    query: &Query,
    mode: ProbeMode,
) -> Result<JoinResult, QueryError> {
    query.validate(db)?;
    let mut stream = TupleStream::new(DbHandle::Borrowed(db), query.clone(), mode, None);
    let tuples: Vec<Tuple> = stream.by_ref().collect();
    Ok(JoinResult {
        tuples,
        stats: stream.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_storage::{builder, RelationBuilder, Val};

    fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
        v.sort();
        v
    }

    /// Appendix D.1's query Q₂: R(A₁) ⋈ S(A₁,A₂) ⋈ T(A₂,A₃) ⋈ U(A₃) with
    /// an empty output.
    #[test]
    fn worked_example_d1_empty_output() {
        let n: Val = 6;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n)).unwrap();
        let mut sb = RelationBuilder::new("S", 2);
        for a in 1..=n {
            for b in 1..=n {
                sb.push(&[a, b]);
            }
        }
        let s = db.add(sb.build().unwrap()).unwrap();
        let t = db.add(builder::binary("T", [(2, 2), (2, 4)])).unwrap();
        let u = db.add(builder::unary("U", [1, 3])).unwrap();
        let q = Query::new(3)
            .atom(r, &[0])
            .atom(s, &[0, 1])
            .atom(t, &[1, 2])
            .atom(u, &[2]);
        // GAO (A₁, A₂, A₃) is a nested elimination order for this path
        // query.
        let h = q.hypergraph();
        assert!(minesweeper_hypergraph::is_nested_elimination_order(
            &h,
            &[0, 1, 2]
        ));
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        // The run must not visit all N² S-pairs: certificate here is O(1).
        assert!(
            res.stats.probe_points < 20,
            "too many probes: {}",
            res.stats.probe_points
        );
    }

    #[test]
    fn two_way_unary_join() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 3, 5, 7])).unwrap();
        let s = db.add(builder::unary("S", [3, 4, 7, 9])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert_eq!(sorted(res.tuples), vec![vec![3], vec![7]]);
        assert_eq!(res.stats.outputs, 2);
    }

    #[test]
    fn binary_join_matches_naive() {
        let mut db = Database::new();
        let r = db
            .add(builder::binary("R", [(1, 2), (1, 5), (2, 4), (3, 1)]))
            .unwrap();
        let s = db
            .add(builder::binary("S", [(2, 7), (4, 1), (4, 9), (5, 5)]))
            .unwrap();
        // R(A,B) ⋈ S(B,C).
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        let expect = vec![vec![1, 2, 7], vec![1, 5, 5], vec![2, 4, 1], vec![2, 4, 9]];
        assert_eq!(sorted(res.tuples), expect);
    }

    #[test]
    fn empty_relation_gives_empty_output_quickly() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [])).unwrap();
        let s = db.add(builder::unary("S", 0..1000)).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        assert!(res.stats.probe_points <= 2, "constant-certificate instance");
    }

    #[test]
    fn example_b1_constant_certificate() {
        // R = [N], S = {(N+1, i+N)}: the single comparison R[N] < S[1]
        // certifies emptiness; Minesweeper must finish in O(1) probes.
        let n: Val = 500;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n)).unwrap();
        let s = db
            .add(builder::binary("S", (1..=n).map(|i| (n + 1, i + n))))
            .unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        assert!(res.stats.find_gap_calls < 12);
        assert!(res.stats.probe_points < 5);
    }

    #[test]
    fn example_b2_output_larger_than_certificate() {
        // R = [N], S = {(N, 10i)}: certificate is O(1) but Z = N.
        let n: Val = 64;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n)).unwrap();
        let s = db
            .add(builder::binary("S", (1..=n).map(|i| (n, 10 * i))))
            .unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert_eq!(res.tuples.len(), n as usize);
        assert!(res.tuples.iter().all(|t| t[0] == n));
        // Probes ≈ 2Z + O(1) (one gap probe between consecutive outputs),
        // never N·Z.
        assert!(res.stats.probe_points <= 2 * n as u64 + 8);
    }

    #[test]
    fn self_join_same_relation_twice() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary("E", [(1, 2), (2, 3), (3, 1), (2, 1)]))
            .unwrap();
        // Path of length 2 over the same edge relation: E(A,B) ⋈ E(B,C).
        let q = Query::new(3).atom(e, &[0, 1]).atom(e, &[1, 2]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        let expect = vec![
            vec![1, 2, 1],
            vec![1, 2, 3],
            vec![2, 1, 2],
            vec![2, 3, 1],
            vec![3, 1, 2],
        ];
        assert_eq!(sorted(res.tuples), expect);
    }

    #[test]
    fn general_mode_on_triangle_query() {
        let mut db = Database::new();
        let edges = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)];
        let r = db.add(builder::binary("R", edges)).unwrap();
        let s = db.add(builder::binary("S", edges)).unwrap();
        let t = db.add(builder::binary("T", edges)).unwrap();
        // Q∆ = R(A,B) ⋈ S(B,C) ⋈ T(A,C): triangles (1,2,3), (2,3,4).
        let q = Query::new(3)
            .atom(r, &[0, 1])
            .atom(s, &[1, 2])
            .atom(t, &[0, 2]);
        let res = minesweeper_join(&db, &q, ProbeMode::General).unwrap();
        assert_eq!(sorted(res.tuples), vec![vec![1, 2, 3], vec![2, 3, 4]]);
    }
}
