//! The Minesweeper outer algorithm (Algorithm 2, Section 3.4).
//!
//! Each iteration takes an active tuple `t` from the CDS and *explores
//! around `t`* in every relation: at atom depth `p`, for every vector
//! `v ∈ {ℓ, h}^p` of low/high branch choices whose index prefix is in
//! range, a `FindGap` at coordinate `t_{s(p+1)}` yields the bracketing pair
//! `(i^{(v,ℓ)}, i^{(v,h)})`. If the all-exact path matches `t`'s projection
//! in every relation, `t` is an output and only the point exclusion
//! `⟨t₁, …, t_{n−1}, (t_n − 1, t_n + 1)⟩` is inserted; otherwise every
//! discovered non-empty gap becomes a constraint
//! `⟨R[i^{(v₁)}], …, R[i^{(v)}], (R[i^{(v,ℓ)}], R[i^{(v,h)}])⟩` with the
//! equality components placed at the atom's GAO positions and wildcards
//! elsewhere (Theorem 3.2 charges each iteration to a certificate
//! comparison or an output tuple).
//!
//! Per DESIGN.md, branches whose bracketing coordinate is out of range are
//! skipped (their index tuples are undefined, matching the guard on line
//! 19), and the `ℓ`/`h` branches are deduplicated on exact hits — the
//! duplicate `FindGap` calls of the pseudocode would return identical
//! constraints.

use minesweeper_cds::{Constraint, ConstraintTree, Pattern, PatternComp, ProbeMode, ProbeStats};
use minesweeper_storage::{Database, ExecStats, NodeId, TrieRelation, Tuple, Val};

use crate::query::{Atom, Query, QueryError};

/// Output tuples plus execution statistics.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Output tuples in probe order (lexicographic over the GAO).
    pub tuples: Vec<Tuple>,
    /// Counters: `find_gap_calls` is the paper's empirical `|C|` measure.
    pub stats: ExecStats,
}

/// Runs Minesweeper on `query` over `db` with the given probe mode.
///
/// Use [`ProbeMode::Chain`] when the GAO is a nested elimination order
/// (β-acyclic queries, Theorem 2.7) and [`ProbeMode::General`] otherwise
/// (Theorem 5.1); [`crate::choose_gao`] picks this automatically.
///
/// ```
/// use minesweeper_cds::ProbeMode;
/// use minesweeper_core::{minesweeper_join, Query};
/// use minesweeper_storage::{builder, Database};
///
/// let mut db = Database::new();
/// let r = db.add(builder::binary("R", [(1, 2), (4, 5)])).unwrap();
/// let s = db.add(builder::binary("S", [(2, 9), (5, 8)])).unwrap();
/// let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
/// let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
/// assert_eq!(res.tuples, vec![vec![1, 2, 9], vec![4, 5, 8]]);
/// ```
pub fn minesweeper_join(
    db: &Database,
    query: &Query,
    mode: ProbeMode,
) -> Result<JoinResult, QueryError> {
    query.validate(db)?;
    let n = query.n_attrs;
    let mut cds = ConstraintTree::new(n, mode);
    let mut pst = ProbeStats::default();
    let mut stats = ExecStats::new();
    let mut tuples = Vec::new();
    let mut gaps: Vec<Constraint> = Vec::new();
    while let Some(t) = cds.get_probe_point(&mut pst) {
        gaps.clear();
        let mut is_output = true;
        for atom in &query.atoms {
            let rel = db.relation(atom.rel);
            let matched = explore_atom(rel, atom, n, &t, &mut gaps, &mut stats);
            is_output &= matched;
        }
        if is_output {
            cds.insert_constraint(&Constraint::point_exclusion(&t), &mut pst);
            stats.outputs += 1;
            tuples.push(t);
        } else {
            for c in &gaps {
                cds.insert_constraint(c, &mut pst);
            }
        }
    }
    merge_probe_stats(&mut stats, &pst);
    Ok(JoinResult { tuples, stats })
}

/// Folds CDS-internal counters into the execution statistics.
pub(crate) fn merge_probe_stats(stats: &mut ExecStats, pst: &ProbeStats) {
    stats.probe_points += pst.probe_points;
    stats.constraints_inserted += pst.constraints_inserted;
    stats.backtracks += pst.backtracks;
    stats.cds_next_calls += pst.next_calls;
}

/// Explores one atom around probe `t` (Algorithm 2 lines 4–10 and 15–20):
/// appends the discovered gap constraints and returns whether the all-exact
/// descent matched `t`'s projection (line 11's test for this relation).
pub(crate) fn explore_atom(
    rel: &TrieRelation,
    atom: &Atom,
    n_attrs: usize,
    t: &[Val],
    gaps: &mut Vec<Constraint>,
    stats: &mut ExecStats,
) -> bool {
    let mut matched = true;
    let mut prefix_vals: Vec<Val> = Vec::with_capacity(atom.attrs.len());
    explore_rec(
        rel,
        atom,
        n_attrs,
        t,
        rel.root(),
        true,
        &mut prefix_vals,
        gaps,
        stats,
        &mut matched,
    );
    matched
}

/// Recursive `{ℓ, h}`-branch exploration from a trie node at atom depth
/// `prefix_vals.len()`. `on_exact_path` is true when every ancestor
/// coordinate hit `t`'s projection exactly; `matched` is cleared when the
/// exact path dies.
#[allow(clippy::too_many_arguments)]
fn explore_rec(
    rel: &TrieRelation,
    atom: &Atom,
    n_attrs: usize,
    t: &[Val],
    node: NodeId,
    on_exact_path: bool,
    prefix_vals: &mut Vec<Val>,
    gaps: &mut Vec<Constraint>,
    stats: &mut ExecStats,
    matched: &mut bool,
) {
    let p = prefix_vals.len();
    let k = atom.attrs.len();
    let a = t[atom.attrs[p]];
    let gap = rel.find_gap(node, a, stats);
    if !gap.exact() {
        // The gap (R[i^{v,ℓ}], R[i^{v,h}]) strictly brackets t's coordinate.
        gaps.push(make_gap_constraint(
            atom,
            n_attrs,
            prefix_vals,
            gap.lo_val,
            gap.hi_val,
        ));
        if on_exact_path {
            *matched = false;
        }
    }
    if p + 1 == k {
        return;
    }
    // Descend into the low and high bracketing children (deduplicated when
    // equal; skipped when out of range).
    let lo_in_range = gap.lo_coord >= 1;
    let hi_in_range = gap.hi_coord <= rel.child_count(node);
    if lo_in_range {
        let child = rel.child(node, gap.lo_coord);
        prefix_vals.push(gap.lo_val);
        explore_rec(
            rel,
            atom,
            n_attrs,
            t,
            child,
            on_exact_path && gap.exact(),
            prefix_vals,
            gaps,
            stats,
            matched,
        );
        prefix_vals.pop();
    } else if on_exact_path {
        *matched = false;
    }
    if hi_in_range && gap.hi_coord != gap.lo_coord {
        let child = rel.child(node, gap.hi_coord);
        prefix_vals.push(gap.hi_val);
        explore_rec(
            rel, atom, n_attrs, t, child, false, prefix_vals, gaps, stats, matched,
        );
        prefix_vals.pop();
    }
}

/// Builds the constraint `⟨…equalities at the atom's GAO positions…,
/// (lo, hi)⟩` for a gap found at atom depth `prefix_vals.len()`.
fn make_gap_constraint(
    atom: &Atom,
    n_attrs: usize,
    prefix_vals: &[Val],
    lo: Val,
    hi: Val,
) -> Constraint {
    let p = prefix_vals.len();
    let interval_pos = atom.attrs[p];
    debug_assert!(interval_pos < n_attrs);
    let mut comps = vec![PatternComp::Star; interval_pos];
    for (j, &v) in prefix_vals.iter().enumerate() {
        comps[atom.attrs[j]] = PatternComp::Eq(v);
    }
    Constraint::new(Pattern(comps), lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_cds::{NEG_INF, POS_INF};
    use minesweeper_storage::{builder, Database, RelationBuilder};

    fn sorted(mut v: Vec<Tuple>) -> Vec<Tuple> {
        v.sort();
        v
    }

    /// Appendix D.1's query Q₂: R(A₁) ⋈ S(A₁,A₂) ⋈ T(A₂,A₃) ⋈ U(A₃) with
    /// an empty output.
    #[test]
    fn worked_example_d1_empty_output() {
        let n: Val = 6;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n)).unwrap();
        let mut sb = RelationBuilder::new("S", 2);
        for a in 1..=n {
            for b in 1..=n {
                sb.push(&[a, b]);
            }
        }
        let s = db.add(sb.build().unwrap()).unwrap();
        let t = db.add(builder::binary("T", [(2, 2), (2, 4)])).unwrap();
        let u = db.add(builder::unary("U", [1, 3])).unwrap();
        let q = Query::new(3)
            .atom(r, &[0])
            .atom(s, &[0, 1])
            .atom(t, &[1, 2])
            .atom(u, &[2]);
        // GAO (A₁, A₂, A₃) is a nested elimination order for this path
        // query.
        let h = q.hypergraph();
        assert!(minesweeper_hypergraph::is_nested_elimination_order(
            &h,
            &[0, 1, 2]
        ));
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        // The run must not visit all N² S-pairs: certificate here is O(1).
        assert!(
            res.stats.probe_points < 20,
            "too many probes: {}",
            res.stats.probe_points
        );
    }

    #[test]
    fn two_way_unary_join() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 3, 5, 7])).unwrap();
        let s = db.add(builder::unary("S", [3, 4, 7, 9])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert_eq!(sorted(res.tuples), vec![vec![3], vec![7]]);
        assert_eq!(res.stats.outputs, 2);
    }

    #[test]
    fn binary_join_matches_naive() {
        let mut db = Database::new();
        let r = db
            .add(builder::binary("R", [(1, 2), (1, 5), (2, 4), (3, 1)]))
            .unwrap();
        let s = db
            .add(builder::binary("S", [(2, 7), (4, 1), (4, 9), (5, 5)]))
            .unwrap();
        // R(A,B) ⋈ S(B,C).
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        let expect = vec![
            vec![1, 2, 7],
            vec![1, 5, 5],
            vec![2, 4, 1],
            vec![2, 4, 9],
        ];
        assert_eq!(sorted(res.tuples), expect);
    }

    #[test]
    fn empty_relation_gives_empty_output_quickly() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [])).unwrap();
        let s = db.add(builder::unary("S", 0..1000)).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        assert!(res.stats.probe_points <= 2, "constant-certificate instance");
    }

    #[test]
    fn example_b1_constant_certificate() {
        // R = [N], S = {(N+1, i+N)}: the single comparison R[N] < S[1]
        // certifies emptiness; Minesweeper must finish in O(1) probes.
        let n: Val = 500;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n)).unwrap();
        let s = db
            .add(builder::binary("S", (1..=n).map(|i| (n + 1, i + n))))
            .unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        assert!(res.stats.find_gap_calls < 12);
        assert!(res.stats.probe_points < 5);
    }

    #[test]
    fn example_b2_output_larger_than_certificate() {
        // R = [N], S = {(N, 10i)}: certificate is O(1) but Z = N.
        let n: Val = 64;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n)).unwrap();
        let s = db
            .add(builder::binary("S", (1..=n).map(|i| (n, 10 * i))))
            .unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert_eq!(res.tuples.len(), n as usize);
        assert!(res.tuples.iter().all(|t| t[0] == n));
        // Probes ≈ 2Z + O(1) (one gap probe between consecutive outputs),
        // never N·Z.
        assert!(res.stats.probe_points <= 2 * n as u64 + 8);
    }

    #[test]
    fn gap_constraint_positions() {
        // Atom over GAO positions (0, 2) of a 3-attribute query: a gap at
        // depth 1 must place its equality at position 0, a star at 1, and
        // the interval at 2.
        let atom = Atom { rel: minesweeper_storage::RelId(0), attrs: vec![0, 2] };
        let c = make_gap_constraint(&atom, 3, &[42], 5, 9);
        assert_eq!(
            c.pattern,
            Pattern(vec![PatternComp::Eq(42), PatternComp::Star])
        );
        assert_eq!((c.lo, c.hi), (5, 9));
        // Depth 0: interval at position 0, no pattern.
        let c = make_gap_constraint(&atom, 3, &[], NEG_INF, POS_INF);
        assert_eq!(c.pattern, Pattern::empty());
    }

    #[test]
    fn self_join_same_relation_twice() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary("E", [(1, 2), (2, 3), (3, 1), (2, 1)]))
            .unwrap();
        // Path of length 2 over the same edge relation: E(A,B) ⋈ E(B,C).
        let q = Query::new(3).atom(e, &[0, 1]).atom(e, &[1, 2]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        let expect = vec![
            vec![1, 2, 1],
            vec![1, 2, 3],
            vec![2, 1, 2],
            vec![2, 3, 1],
            vec![3, 1, 2],
        ];
        assert_eq!(sorted(res.tuples), expect);
    }

    #[test]
    fn general_mode_on_triangle_query() {
        let mut db = Database::new();
        let edges = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)];
        let r = db.add(builder::binary("R", edges)).unwrap();
        let s = db.add(builder::binary("S", edges)).unwrap();
        let t = db.add(builder::binary("T", edges)).unwrap();
        // Q∆ = R(A,B) ⋈ S(B,C) ⋈ T(A,C): triangles (1,2,3), (2,3,4).
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]).atom(t, &[0, 2]);
        let res = minesweeper_join(&db, &q, ProbeMode::General).unwrap();
        assert_eq!(sorted(res.tuples), vec![vec![1, 2, 3], vec![2, 3, 4]]);
    }
}
