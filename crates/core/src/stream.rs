//! The streaming Minesweeper executor.
//!
//! [`TupleStream`] runs Algorithm 2's probe loop *lazily*: each call to
//! [`Iterator::next`] resumes the loop exactly where the previous call
//! stopped — the constraint data structure **is** the resumable state, since
//! every discovered gap and every emitted output is recorded there as a
//! constraint — and returns as soon as the next tuple is certified. This
//! gives:
//!
//! * **early termination**: `stream.take(k)` performs only the probe work
//!   needed to certify `k` tuples (certificate work for the skipped suffix
//!   is never paid), which is how `msj --limit` avoids materializing `Z`
//!   tuples when `Z ≫ k`;
//! * **mid-stream statistics**: [`TupleStream::stats`] snapshots the
//!   [`ExecStats`] counters at any point, including between yields;
//! * **original-order tuples**: when the plan re-indexed for a non-identity
//!   GAO, yielded tuples are translated back to the caller's attribute
//!   numbering on the fly. Tuples are yielded in certification order, which
//!   is lexicographic in the *GAO*; it therefore coincides with
//!   lexicographic order in the original numbering exactly when the GAO is
//!   the identity (see [`mod@crate::execute`] for the sorted-collect wrapper).
//!
//! Relations are probed through [`GapCursor`]s that persist across resumed
//! probes, so a forward-moving probe sequence gallops from the previous
//! landing position instead of re-running full binary searches.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use minesweeper_cds::{Constraint, ConstraintTree, Pattern, PatternComp, ProbeMode, ProbeStats};
use minesweeper_storage::{
    Database, ExecStats, GapCursor, NodeId, ShardSpec, StorageRef, TrieStorage, Tuple, Val,
    NEG_INF, POS_INF,
};

use crate::query::{Atom, Query};

/// The database a stream probes: borrowed from the caller when the plan
/// uses the stored indexes directly, owned when execution required
/// re-indexing under a different GAO.
pub(crate) enum DbHandle<'db> {
    /// The caller's database, indexes used as stored.
    Borrowed(&'db Database),
    /// A re-indexed copy built by the plan's GAO mapping.
    Owned(Box<Database>),
}

/// A lazy stream of certified output tuples (see the module docs).
///
/// Construct via [`crate::Plan::stream`]. The stream is fused: after the
/// constraint set covers the whole output space, `next` keeps returning
/// `None`.
pub struct TupleStream<'db> {
    db: DbHandle<'db>,
    /// The execution-side query (re-indexed when the plan demanded it).
    query: Query,
    cds: ConstraintTree,
    pst: ProbeStats,
    stats: ExecStats,
    /// One positional probe cursor per atom, persisted across resumes.
    cursors: Vec<GapCursor>,
    /// Scratch buffer of gap constraints discovered around one probe.
    gaps: Vec<Constraint>,
    /// `inv[a]` = execution column holding original attribute `a`; `None`
    /// when the GAO is the identity.
    inv: Option<Vec<usize>>,
    /// Cooperative-cancellation flag, polled once per probe point: a
    /// parallel consumer tearing its pipeline down flips it so in-flight
    /// shards stop promptly even when their remaining probe work would
    /// emit nothing (a channel send alone can't observe that).
    cancel: Option<Arc<AtomicBool>>,
    done: bool,
}

impl<'db> TupleStream<'db> {
    /// Builds a stream over an already-validated execution query.
    pub(crate) fn new(
        db: DbHandle<'db>,
        query: Query,
        mode: ProbeMode,
        inv: Option<Vec<usize>>,
    ) -> Self {
        Self::with_shard(db, query, mode, inv, ShardSpec::unbounded(), &[])
    }

    /// Builds a stream whose probe loop is confined to the shard `spec`
    /// (a first-GAO-attribute interval, plus a second-attribute interval
    /// for nested shards) and to `eq_seeds` equality constraints
    /// (`(position, value)` in the *execution* numbering). All
    /// restrictions are expressed in the CDS itself, as pre-seeded
    /// constraints inserted before any probing:
    ///
    /// * `spec.bounds` becomes the depth-0 open intervals `(−∞, lo)` and
    ///   `(hi, +∞)`, so `getProbePoint` never proposes a tuple outside
    ///   `[lo, hi]` and the loop terminates once the *shard's* slice of
    ///   the output space is covered — the per-shard engine of
    ///   [`crate::ShardedPlan`]: disjoint bounds give probe loops that
    ///   share no state, and within its interval each stream yields
    ///   exactly the serial stream's tuples in the same
    ///   (GAO-lexicographic) order;
    /// * `spec.second`, when present, becomes the all-star depth-1
    ///   intervals `⟨*, (−∞, lo₂)⟩` and `⟨*, (hi₂, +∞)⟩`. A nested spec
    ///   pins the first attribute to a single heavy value, so within the
    ///   shard the star matches only that value and the pair confines the
    ///   second attribute to `[lo₂, hi₂]` — one slice of a giant
    ///   duplicate run;
    /// * each `(k, v)` seed becomes `⟨*,…,*, (−∞, v)⟩` and
    ///   `⟨*,…,*, (v, +∞)⟩` at position `k` — the same all-star-prefix
    ///   shape `explore_atom` discovers for gaps at an atom's first
    ///   attribute — pinning attribute `k` to the constant `v`. This is
    ///   how the engine front door implements query literals without
    ///   touching the catalog.
    ///
    /// Seed constraints are counted in `constraints_inserted` like any
    /// other.
    pub(crate) fn with_shard(
        db: DbHandle<'db>,
        query: Query,
        mode: ProbeMode,
        inv: Option<Vec<usize>>,
        spec: ShardSpec,
        eq_seeds: &[(usize, Val)],
    ) -> Self {
        let n = query.n_attrs;
        let mut stats = ExecStats::new();
        let cursors = {
            let dbr: &Database = match &db {
                DbHandle::Borrowed(d) => d,
                DbHandle::Owned(b) => b,
            };
            // Record, once per stream, how many packed runs back the atoms
            // this probe loop will touch (0 on the all-sorted path).
            stats.dense_leaves = query
                .atoms
                .iter()
                .map(|a| dbr.probe_target(a.rel).dense_runs())
                .sum();
            query
                .atoms
                .iter()
                .map(|a| GapCursor::new(dbr.relation(a.rel).arity()))
                .collect()
        };
        let mut cds = ConstraintTree::new(n, mode);
        let mut pst = ProbeStats::default();
        if spec.bounds.lo != NEG_INF {
            cds.insert_constraint(
                &Constraint::new(Pattern::empty(), NEG_INF, spec.bounds.lo),
                &mut pst,
            );
        }
        if spec.bounds.hi != POS_INF {
            cds.insert_constraint(
                &Constraint::new(Pattern::empty(), spec.bounds.hi, POS_INF),
                &mut pst,
            );
        }
        if let Some(b2) = spec.second {
            debug_assert!(n >= 2, "nested shards need a second GAO attribute");
            let star = Pattern(vec![PatternComp::Star]);
            if b2.lo != NEG_INF {
                cds.insert_constraint(&Constraint::new(star.clone(), NEG_INF, b2.lo), &mut pst);
            }
            if b2.hi != POS_INF {
                cds.insert_constraint(&Constraint::new(star, b2.hi, POS_INF), &mut pst);
            }
        }
        for &(k, v) in eq_seeds {
            debug_assert!(k < n, "seed position inside the attribute space");
            let stars = Pattern(vec![PatternComp::Star; k]);
            if v != NEG_INF {
                cds.insert_constraint(&Constraint::new(stars.clone(), NEG_INF, v), &mut pst);
            }
            if v != POS_INF {
                cds.insert_constraint(&Constraint::new(stars, v, POS_INF), &mut pst);
            }
        }
        TupleStream {
            db,
            query,
            cds,
            pst,
            stats,
            cursors,
            gaps: Vec::new(),
            inv,
            cancel: None,
            done: false,
        }
    }

    /// Arms cooperative cancellation: once `flag` turns true, the probe
    /// loop stops between probe points and `next` returns `None` without
    /// marking the stream exhausted. Used by the parallel executors so
    /// cancelled shards stop even when no further output would be
    /// emitted; counters stay valid for the work actually done.
    pub(crate) fn set_cancel(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// True when an armed cancellation flag has fired.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancel
            .as_deref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// A snapshot of the execution counters accumulated so far, valid at
    /// any point mid-stream. `outputs` counts tuples already yielded.
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats.clone();
        merge_probe_stats(&mut s, &self.pst);
        s
    }

    /// True once the constraint set covers the whole space (the stream has
    /// returned `None`).
    pub fn is_exhausted(&self) -> bool {
        self.done
    }

    /// Number of tuples yielded so far.
    pub fn outputs(&self) -> u64 {
        self.stats.outputs
    }
}

impl Iterator for TupleStream<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        let db: &Database = match &self.db {
            DbHandle::Borrowed(d) => d,
            DbHandle::Owned(b) => b,
        };
        while !self.is_cancelled() {
            let Some(t) = self.cds.get_probe_point(&mut self.pst) else {
                break;
            };
            self.gaps.clear();
            let mut is_output = true;
            for (atom, cursor) in self.query.atoms.iter().zip(&mut self.cursors) {
                // Dispatch once per atom into a monomorphized explorer, so
                // the sorted path keeps its direct calls and the hybrid path
                // gets its rank/select overrides.
                let matched = match db.probe_target(atom.rel) {
                    StorageRef::Sorted(rel) => explore_atom(
                        rel,
                        atom,
                        self.query.n_attrs,
                        &t,
                        cursor,
                        &mut self.gaps,
                        &mut self.stats,
                    ),
                    StorageRef::Hybrid(rel) => explore_atom(
                        rel,
                        atom,
                        self.query.n_attrs,
                        &t,
                        cursor,
                        &mut self.gaps,
                        &mut self.stats,
                    ),
                };
                is_output &= matched;
            }
            if is_output {
                self.cds
                    .insert_constraint(&Constraint::point_exclusion(&t), &mut self.pst);
                self.stats.outputs += 1;
                return Some(match &self.inv {
                    None => t,
                    Some(inv) => inv.iter().map(|&c| t[c]).collect(),
                });
            }
            for c in &self.gaps {
                self.cds.insert_constraint(c, &mut self.pst);
            }
        }
        // Fuse only on genuine exhaustion; a cancelled stream simply
        // stops yielding (the shard's accounting marks it incomplete).
        if !self.is_cancelled() {
            self.done = true;
        }
        None
    }
}

/// Folds CDS-internal counters into the execution statistics.
pub(crate) fn merge_probe_stats(stats: &mut ExecStats, pst: &ProbeStats) {
    stats.probe_points += pst.probe_points;
    stats.constraints_inserted += pst.constraints_inserted;
    stats.backtracks += pst.backtracks;
    stats.cds_next_calls += pst.next_calls;
}

/// Explores one atom around probe `t` (Algorithm 2 lines 4–10 and 15–20):
/// appends the discovered gap constraints and returns whether the all-exact
/// descent matched `t`'s projection (line 11's test for this relation).
pub(crate) fn explore_atom<S: TrieStorage>(
    rel: &S,
    atom: &Atom,
    n_attrs: usize,
    t: &[Val],
    cursor: &mut GapCursor,
    gaps: &mut Vec<Constraint>,
    stats: &mut ExecStats,
) -> bool {
    let mut matched = true;
    let mut prefix_vals: Vec<Val> = Vec::with_capacity(atom.attrs.len());
    explore_rec(
        rel,
        atom,
        n_attrs,
        t,
        rel.root(),
        true,
        &mut prefix_vals,
        cursor,
        gaps,
        stats,
        &mut matched,
    );
    matched
}

/// Recursive `{ℓ, h}`-branch exploration from a trie node at atom depth
/// `prefix_vals.len()`. `on_exact_path` is true when every ancestor
/// coordinate hit `t`'s projection exactly; `matched` is cleared when the
/// exact path dies.
#[allow(clippy::too_many_arguments)]
fn explore_rec<S: TrieStorage>(
    rel: &S,
    atom: &Atom,
    n_attrs: usize,
    t: &[Val],
    node: NodeId,
    on_exact_path: bool,
    prefix_vals: &mut Vec<Val>,
    cursor: &mut GapCursor,
    gaps: &mut Vec<Constraint>,
    stats: &mut ExecStats,
    matched: &mut bool,
) {
    let p = prefix_vals.len();
    let k = atom.attrs.len();
    let a = t[atom.attrs[p]];
    let gap = cursor.find_gap(rel, node, a, stats);
    if !gap.exact() {
        // The gap (R[i^{v,ℓ}], R[i^{v,h}]) strictly brackets t's coordinate.
        gaps.push(make_gap_constraint(
            atom,
            n_attrs,
            prefix_vals,
            gap.lo_val,
            gap.hi_val,
        ));
        if on_exact_path {
            *matched = false;
        }
    }
    if p + 1 == k {
        return;
    }
    // Descend into the low and high bracketing children (deduplicated when
    // equal; skipped when out of range).
    let lo_in_range = gap.lo_coord >= 1;
    let hi_in_range = gap.hi_coord <= rel.child_count(node);
    if lo_in_range {
        let child = rel.child(node, gap.lo_coord);
        prefix_vals.push(gap.lo_val);
        explore_rec(
            rel,
            atom,
            n_attrs,
            t,
            child,
            on_exact_path && gap.exact(),
            prefix_vals,
            cursor,
            gaps,
            stats,
            matched,
        );
        prefix_vals.pop();
    } else if on_exact_path {
        *matched = false;
    }
    if hi_in_range && gap.hi_coord != gap.lo_coord {
        let child = rel.child(node, gap.hi_coord);
        prefix_vals.push(gap.hi_val);
        explore_rec(
            rel,
            atom,
            n_attrs,
            t,
            child,
            false,
            prefix_vals,
            cursor,
            gaps,
            stats,
            matched,
        );
        prefix_vals.pop();
    }
}

/// Builds the constraint `⟨…equalities at the atom's GAO positions…,
/// (lo, hi)⟩` for a gap found at atom depth `prefix_vals.len()`.
pub(crate) fn make_gap_constraint(
    atom: &Atom,
    n_attrs: usize,
    prefix_vals: &[Val],
    lo: Val,
    hi: Val,
) -> Constraint {
    let p = prefix_vals.len();
    let interval_pos = atom.attrs[p];
    debug_assert!(interval_pos < n_attrs);
    let mut comps = vec![PatternComp::Star; interval_pos];
    for (j, &v) in prefix_vals.iter().enumerate() {
        comps[atom.attrs[j]] = PatternComp::Eq(v);
    }
    Constraint::new(Pattern(comps), lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_cds::{NEG_INF, POS_INF};
    use minesweeper_storage::{builder, RelId};

    #[test]
    fn gap_constraint_positions() {
        // Atom over GAO positions (0, 2) of a 3-attribute query: a gap at
        // depth 1 must place its equality at position 0, a star at 1, and
        // the interval at 2.
        let atom = Atom {
            rel: RelId(0),
            attrs: vec![0, 2],
        };
        let c = make_gap_constraint(&atom, 3, &[42], 5, 9);
        assert_eq!(
            c.pattern,
            Pattern(vec![PatternComp::Eq(42), PatternComp::Star])
        );
        assert_eq!((c.lo, c.hi), (5, 9));
        // Depth 0: interval at position 0, no pattern.
        let c = make_gap_constraint(&atom, 3, &[], NEG_INF, POS_INF);
        assert_eq!(c.pattern, Pattern::empty());
    }

    #[test]
    fn stream_yields_incrementally_and_is_fused() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 3, 5, 7])).unwrap();
        let s = db.add(builder::unary("S", [3, 4, 7, 9])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let mut stream = TupleStream::new(DbHandle::Borrowed(&db), q, ProbeMode::Chain, None);
        assert_eq!(stream.next(), Some(vec![3]));
        let mid = stream.stats();
        assert_eq!(mid.outputs, 1);
        assert!(mid.find_gap_calls > 0, "mid-stream stats are live");
        assert_eq!(stream.next(), Some(vec![7]));
        assert_eq!(stream.next(), None);
        assert!(stream.is_exhausted());
        assert_eq!(stream.next(), None, "fused after exhaustion");
        assert_eq!(stream.outputs(), 2);
    }

    #[test]
    fn early_termination_skips_probe_work() {
        // Example B.2's shape: |C| = O(1) but Z = N. Taking one tuple must
        // not pay for the remaining N − 1.
        let n: Val = 512;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n)).unwrap();
        let s = db
            .add(builder::binary("S", (1..=n).map(|i| (n, 10 * i))))
            .unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]);
        let mut stream =
            TupleStream::new(DbHandle::Borrowed(&db), q.clone(), ProbeMode::Chain, None);
        let first: Vec<Tuple> = stream.by_ref().take(1).collect();
        assert_eq!(first.len(), 1);
        let early = stream.stats();
        let mut full = TupleStream::new(DbHandle::Borrowed(&db), q, ProbeMode::Chain, None);
        let all: Vec<Tuple> = full.by_ref().collect();
        assert_eq!(all.len(), n as usize);
        let total = full.stats();
        assert!(
            early.probe_points * 8 < total.probe_points,
            "early stop must probe far less: {} vs {}",
            early.probe_points,
            total.probe_points
        );
    }
}
