//! Global attribute order selection and physical re-indexing.
//!
//! Theorem 2.7 requires a *nested elimination order* GAO for β-acyclic
//! queries; Theorem 5.1 wants a GAO of minimum elimination width otherwise.
//! [`choose_gao`] picks accordingly. Because certificates — and hence
//! Minesweeper's runtime — depend on the GAO (Examples B.4, B.6, B.7),
//! [`reindex_for_gao`] rebuilds a database's indexes so that a query can be
//! evaluated under a different order.

use minesweeper_cds::ProbeMode;
use minesweeper_hypergraph::{
    elimination_width, is_nested_elimination_order, min_width_order, nested_elimination_order,
};
use minesweeper_storage::{Database, RelationBuilder, Tuple};

use crate::query::{Atom, Query, QueryError};

/// A chosen GAO and the probe mode / width it supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaoChoice {
    /// Attribute permutation: `order[i]` is the original attribute placed
    /// at GAO position `i`.
    pub order: Vec<usize>,
    /// Chain mode when the order is a nested elimination order.
    pub mode: ProbeMode,
    /// Elimination width of the order (0-width means each `P_k` universe
    /// is empty; β-acyclic NEOs report their actual width too).
    pub width: usize,
}

/// Chooses a GAO for the query: a nested elimination order if one exists
/// (β-acyclic ⇒ `Õ(|C| + Z)`), otherwise an order minimizing elimination
/// width (`Õ(|C|^{w+1} + Z)`). `exact_limit` bounds the exhaustive
/// treewidth search (larger queries fall back to the min-fill heuristic).
pub fn choose_gao(query: &Query, exact_limit: usize) -> GaoChoice {
    let h = query.hypergraph();
    if let Some(order) = nested_elimination_order(&h) {
        let width = elimination_width(&h, &order);
        debug_assert!(is_nested_elimination_order(&h, &order));
        return GaoChoice {
            order,
            mode: ProbeMode::Chain,
            width,
        };
    }
    let (order, width) = min_width_order(&h, exact_limit);
    GaoChoice {
        order,
        mode: ProbeMode::General,
        width,
    }
}

/// Reorders a GAO so that *private* attributes (those occurring in a
/// single atom) come last, preserving the relative order of the rest.
///
/// Proposition B.5: moving a private attribute to the end of the GAO can
/// only shrink the optimal certificate (`|C(ρ')| ≤ |C(ρ)|`) — no
/// comparison on a private attribute is ever needed to certify the
/// output, so pushing them past the shared attributes lets the shared
/// prefix do all the certificate work.
pub fn private_attributes_last(query: &Query, order: &[usize]) -> Vec<usize> {
    let h = query.hypergraph();
    let mut shared: Vec<usize> = Vec::new();
    let mut private: Vec<usize> = Vec::new();
    for &a in order {
        if h.is_private(a) {
            private.push(a);
        } else {
            shared.push(a);
        }
    }
    shared.extend(private);
    shared
}

/// Rebuilds `db` and `query` under a new GAO.
///
/// `order[i]` is the original attribute at new position `i`. Every atom's
/// attribute list is re-sorted under the new order and its relation's
/// columns permuted to match (the paper's assumption that "the indices are
/// built or selected to be consistent with a chosen GAO"). Relations are
/// re-indexed per *atom*, since two atoms sharing a relation may need
/// different column permutations under the new order.
pub fn reindex_for_gao(
    db: &Database,
    query: &Query,
    order: &[usize],
) -> Result<(Database, Query), QueryError> {
    query.validate(db)?;
    let n = query.n_attrs;
    assert_eq!(
        order.len(),
        n,
        "order must be a permutation of the attributes"
    );
    // position[a] = new GAO position of original attribute a.
    let mut position = vec![usize::MAX; n];
    for (i, &a) in order.iter().enumerate() {
        assert!(position[a] == usize::MAX, "order must be a permutation");
        position[a] = i;
    }
    // Re-indexed copies select leaf representations under the same policy
    // as the source catalog.
    let mut new_db = Database::with_leaf_policy(db.leaf_policy());
    let mut new_query = Query::new(n);
    for (idx, atom) in query.atoms.iter().enumerate() {
        let rel = db.relation(atom.rel);
        // New attribute positions, and the column permutation that sorts
        // them.
        let mut cols: Vec<(usize, usize)> = atom
            .attrs
            .iter()
            .enumerate()
            .map(|(col, &a)| (position[a], col))
            .collect();
        cols.sort_unstable();
        let new_attrs: Vec<usize> = cols.iter().map(|&(p, _)| p).collect();
        let perm: Vec<usize> = cols.iter().map(|&(_, c)| c).collect();
        let mut b = RelationBuilder::new(format!("{}@{}", rel.name(), idx), atom.attrs.len());
        let mut buf: Tuple = vec![0; atom.attrs.len()];
        for t in rel.iter_tuples() {
            for (j, &c) in perm.iter().enumerate() {
                buf[j] = t[c];
            }
            b.push(&buf);
        }
        let new_rel = new_db
            .add(b.build().expect("re-indexed relation"))
            .expect("unique per-atom names");
        new_query.atoms.push(Atom {
            rel: new_rel,
            attrs: new_attrs,
        });
    }
    Ok((new_db, new_query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minesweeper::minesweeper_join;
    use crate::naive::naive_join;
    use minesweeper_storage::builder;

    #[test]
    fn beta_acyclic_query_gets_chain_mode() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1])).unwrap();
        let s = db.add(builder::binary("S", [(1, 2)])).unwrap();
        let t = db.add(builder::unary("T", [2])).unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
        let choice = choose_gao(&q, 8);
        assert_eq!(choice.mode, ProbeMode::Chain);
    }

    #[test]
    fn triangle_query_gets_general_mode_width_two() {
        let mut db = Database::new();
        let e = db.add(builder::binary("E", [(1, 2)])).unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let choice = choose_gao(&q, 8);
        assert_eq!(choice.mode, ProbeMode::General);
        assert_eq!(choice.width, 2);
    }

    #[test]
    fn example_b7_prefers_neo() {
        // R(A,B,C) ⋈ S(A,C) ⋈ T(B,C): β-acyclic; choose_gao must return a
        // NEO (such as (C,A,B)), not the non-nested (A,B,C).
        let mut db = Database::new();
        let r = db
            .add(
                minesweeper_storage::RelationBuilder::new("R", 3)
                    .tuple(&[1, 1, 1])
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let s = db.add(builder::binary("S", [(1, 1)])).unwrap();
        let t = db.add(builder::binary("T", [(1, 1)])).unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        let choice = choose_gao(&q, 8);
        assert_eq!(choice.mode, ProbeMode::Chain);
        let h = q.hypergraph();
        assert!(is_nested_elimination_order(&h, &choice.order));
    }

    #[test]
    fn reindex_preserves_join_semantics() {
        // Example B.4's flavor: R(A,C) ⋈ S(B,C) evaluated under GAO
        // (A,B,C) and (C,A,B) must produce the same set of (A,B,C)-facts.
        let mut db = Database::new();
        let n = 6;
        let mut rb = RelationBuilder::new("R", 2);
        let mut sb = RelationBuilder::new("S", 2);
        for a in 1..=n {
            for k in 1..=n {
                rb.push(&[a, 2 * k]);
                sb.push(&[a, 2 * k - 1]);
            }
        }
        let r = db.add(rb.build().unwrap()).unwrap();
        let s = db.add(sb.build().unwrap()).unwrap();
        // Attributes: A=0, B=1, C=2. R(A,C), S(B,C).
        let q = Query::new(3).atom(r, &[0, 2]).atom(s, &[1, 2]);
        let base = naive_join(&db, &q).unwrap();
        // Reindex to GAO (C,A,B) = order [2,0,1].
        let (db2, q2) = reindex_for_gao(&db, &q, &[2, 0, 1]).unwrap();
        let res = minesweeper_join(&db2, &q2, ProbeMode::Chain).unwrap();
        // Map back: new attr order is (C,A,B); translate tuples to (A,B,C).
        let mut mapped: Vec<_> = res.tuples.iter().map(|t| vec![t[1], t[2], t[0]]).collect();
        mapped.sort();
        assert_eq!(mapped, base);
        assert!(
            base.is_empty(),
            "example data joins to empty (odd vs even C)"
        );
    }

    #[test]
    fn private_attributes_move_to_the_back() {
        // R(A,B) ⋈ S(B,C): A and C are private, B is shared.
        let mut db = Database::new();
        let r = db.add(builder::binary("R", [(1, 2)])).unwrap();
        let s = db.add(builder::binary("S", [(2, 3)])).unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        assert_eq!(private_attributes_last(&q, &[0, 1, 2]), vec![1, 0, 2]);
        // Relative order of private attributes is preserved.
        assert_eq!(private_attributes_last(&q, &[2, 1, 0]), vec![1, 2, 0]);
    }

    #[test]
    fn proposition_b5_certificate_improves() {
        // Example B.3's data but measured as Prop B.5 predicts: pushing
        // the private attributes A and B past the shared C (GAO (C,A,B))
        // can only shrink the certificate — here from ~N² to ~N probes.
        let n: minesweeper_storage::Val = 12;
        let mut db = Database::new();
        let mut rb = minesweeper_storage::RelationBuilder::new("R", 2);
        let mut sb = minesweeper_storage::RelationBuilder::new("S", 2);
        for a in 1..=n {
            for k in 1..=n {
                rb.push(&[a, 2 * k]);
                sb.push(&[a, 2 * k - 1]);
            }
        }
        let r = db.add(rb.build().unwrap()).unwrap();
        let s = db.add(sb.build().unwrap()).unwrap();
        let q = Query::new(3).atom(r, &[0, 2]).atom(s, &[1, 2]);
        let improved = private_attributes_last(&q, &[0, 1, 2]);
        assert_eq!(improved, vec![2, 0, 1], "C is shared; A, B private");
        let baseline = minesweeper_join(&db, &q, minesweeper_cds::ProbeMode::General).unwrap();
        let (db2, q2) = reindex_for_gao(&db, &q, &improved).unwrap();
        let better = minesweeper_join(&db2, &q2, minesweeper_cds::ProbeMode::Chain).unwrap();
        assert!(
            better.stats.probe_points * 4 < baseline.stats.probe_points,
            "B.5 improvement: {} vs {}",
            better.stats.probe_points,
            baseline.stats.probe_points
        );
    }

    #[test]
    fn reindex_identity_is_noop_semantically() {
        let mut db = Database::new();
        let r = db.add(builder::binary("R", [(1, 2), (3, 4)])).unwrap();
        let s = db.add(builder::binary("S", [(2, 5), (4, 6)])).unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        let (db2, q2) = reindex_for_gao(&db, &q, &[0, 1, 2]).unwrap();
        assert_eq!(naive_join(&db, &q).unwrap(), naive_join(&db2, &q2).unwrap());
    }
}
