//! Certificates (Section 2.2, Appendix B).
//!
//! An [`Argument`] is a set of symbolic comparisons `R[x] θ S[y]` between
//! index-tuple variables (Definition 2.2); a *certificate* is an argument
//! that pins down the witnesses of the join across all instances that
//! satisfy it (Definition 2.3). Deciding whether an argument is a
//! certificate is semantic; what the library provides is
//!
//! * variable resolution and argument evaluation against a concrete
//!   database (used to replay the paper's Examples B.1–B.4), and
//! * [`canonical_certificate_size`] — the Proposition 2.6 construction
//!   bounding the optimal certificate by `r · N` comparisons, evaluated
//!   exactly on an instance (per attribute: equality chains within equal
//!   values plus one inequality chain across distinct values).
//!
//! The *measured* certificate proxy used in the paper's experiments
//! (Figure 2) is the `FindGap` count reported in
//! [`minesweeper_storage::ExecStats`].

use minesweeper_storage::{Database, NodeId, RelId, TrieRelation, Val};
use std::collections::BTreeMap;

use crate::query::{Query, QueryError};

/// A variable `R[x]`: a relation and a (1-based) index tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarRef {
    /// The relation.
    pub rel: RelId,
    /// 1-based coordinates, length `1..=arity`.
    pub index: Vec<usize>,
}

impl VarRef {
    /// Convenience constructor.
    pub fn new(rel: RelId, index: &[usize]) -> Self {
        VarRef {
            rel,
            index: index.to_vec(),
        }
    }

    /// Resolves the variable against a database: walks the trie by
    /// coordinates. Returns `None` when a coordinate is out of range (the
    /// variable does not exist in this instance — cf. Example 2.4, where
    /// `I(N+1)` defines variables `I(N)` does not).
    pub fn resolve(&self, db: &Database) -> Option<Val> {
        let rel = db.relation(self.rel);
        resolve_in(rel, &self.index)
    }
}

fn resolve_in(rel: &TrieRelation, index: &[usize]) -> Option<Val> {
    if index.is_empty() || index.len() > rel.arity() {
        return None;
    }
    let mut node: NodeId = rel.root();
    for &coord in index {
        if coord < 1 || coord > rel.child_count(node) {
            return None;
        }
        node = rel.child(node, coord);
    }
    Some(rel.value(node))
}

/// One symbolic comparison of the form (3): `lhs θ rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Comparison {
    /// `lhs < rhs`.
    Lt(VarRef, VarRef),
    /// `lhs = rhs`.
    Eq(VarRef, VarRef),
    /// `lhs > rhs`.
    Gt(VarRef, VarRef),
}

impl Comparison {
    /// Evaluates against a database; `None` when either variable does not
    /// exist in the instance.
    pub fn holds(&self, db: &Database) -> Option<bool> {
        let (l, r, f): (&VarRef, &VarRef, fn(Val, Val) -> bool) = match self {
            Comparison::Lt(l, r) => (l, r, |a, b| a < b),
            Comparison::Eq(l, r) => (l, r, |a, b| a == b),
            Comparison::Gt(l, r) => (l, r, |a, b| a > b),
        };
        Some(f(l.resolve(db)?, r.resolve(db)?))
    }
}

/// A set of comparisons (Definition 2.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Argument(pub Vec<Comparison>);

impl Argument {
    /// Number of comparisons — the argument's size.
    pub fn size(&self) -> usize {
        self.0.len()
    }

    /// Does the database instance satisfy every comparison? `None` when
    /// some comparison refers to a variable the instance does not define.
    pub fn satisfied_by(&self, db: &Database) -> Option<bool> {
        let mut all = true;
        for c in &self.0 {
            all &= c.holds(db)?;
        }
        Some(all)
    }
}

/// The Proposition 2.6 canonical certificate size for an instance: for each
/// GAO attribute, every trie node carrying a value of that attribute is a
/// variable; equal values are chained with equalities and distinct values
/// with inequalities, totalling (#variables − 1) comparisons per non-empty
/// attribute column, summed over atoms. This is an upper bound on the
/// optimal certificate size `|C| ≤ r·N`.
pub fn canonical_certificate_size(db: &Database, query: &Query) -> Result<u64, QueryError> {
    query.validate(db)?;
    // Attribute → multiset of values across all (atom, level) pairs.
    // Atoms sharing a physical relation still contribute one variable set
    // per atom occurrence (atoms(Q) is a multiset of indexed relations).
    let mut per_attr: BTreeMap<usize, u64> = BTreeMap::new(); // attr → #variables
    let mut distinct: BTreeMap<usize, std::collections::BTreeSet<Val>> = BTreeMap::new();
    for atom in &query.atoms {
        let rel = db.relation(atom.rel);
        if rel.is_empty() {
            continue;
        }
        for (level, &attr) in atom.attrs.iter().enumerate() {
            let col = rel.level_column(level);
            *per_attr.entry(attr).or_default() += col.len() as u64;
            distinct
                .entry(attr)
                .or_default()
                .extend(col.iter().copied());
        }
    }
    // Per attribute: (#variables − #distinct) equalities + (#distinct − 1)
    // inequalities = #variables − 1.
    let mut total = 0u64;
    for (attr, vars) in per_attr {
        let d = distinct[&attr].len() as u64;
        debug_assert!(d >= 1);
        total += (vars - d) + (d - 1);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use minesweeper_storage::{builder, Database};

    /// Example B.1: R = [N], S = {(N+1, i+N)}; the argument
    /// {R[N] < S\[1\]} is satisfied and certifies emptiness.
    #[test]
    fn example_b1_argument() {
        let n = 10usize;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n as Val)).unwrap();
        let s = db
            .add(builder::binary(
                "S",
                (1..=n as Val).map(|i| (n as Val + 1, i + n as Val)),
            ))
            .unwrap();
        let arg = Argument(vec![Comparison::Lt(
            VarRef::new(r, &[n]),
            VarRef::new(s, &[1]),
        )]);
        assert_eq!(arg.satisfied_by(&db), Some(true));
        assert_eq!(arg.size(), 1);
    }

    /// Example B.2: the argument {R[N] = S\[1\]} is satisfied when
    /// S = {(N, 10i)}.
    #[test]
    fn example_b2_argument() {
        let n = 10usize;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n as Val)).unwrap();
        let s = db
            .add(builder::binary(
                "S",
                (1..=n as Val).map(|i| (n as Val, 10 * i)),
            ))
            .unwrap();
        let arg = Argument(vec![Comparison::Eq(
            VarRef::new(r, &[n]),
            VarRef::new(s, &[1]),
        )]);
        assert_eq!(arg.satisfied_by(&db), Some(true));
    }

    /// Example 2.4's K instance fails the certificate {R\[1\]=T\[1\], R\[2\]=T\[2\]}.
    #[test]
    fn example_2_4_violation() {
        let n: Val = 5;
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 1..=n)).unwrap();
        // K: T = {(1, 2i)} ∪ {(3, 3i)} — T[2] = 3 ≠ R[2] = 2.
        let t = db
            .add(builder::binary(
                "T",
                (1..=n)
                    .map(|i| (1, 2 * i))
                    .chain((1..=n).map(|i| (3, 3 * i))),
            ))
            .unwrap();
        let arg = Argument(vec![
            Comparison::Eq(VarRef::new(r, &[1]), VarRef::new(t, &[1])),
            Comparison::Eq(VarRef::new(r, &[2]), VarRef::new(t, &[2])),
        ]);
        assert_eq!(arg.satisfied_by(&db), Some(false));
    }

    #[test]
    fn unresolved_variables_return_none() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2])).unwrap();
        assert_eq!(VarRef::new(r, &[3]).resolve(&db), None);
        assert_eq!(VarRef::new(r, &[0]).resolve(&db), None);
        let arg = Argument(vec![Comparison::Gt(
            VarRef::new(r, &[3]),
            VarRef::new(r, &[1]),
        )]);
        assert_eq!(arg.satisfied_by(&db), None);
    }

    #[test]
    fn resolve_multi_level() {
        let mut db = Database::new();
        let s = db
            .add(builder::binary("S", [(1, 10), (1, 20), (5, 7)]))
            .unwrap();
        assert_eq!(VarRef::new(s, &[1]).resolve(&db), Some(1));
        assert_eq!(VarRef::new(s, &[1, 2]).resolve(&db), Some(20));
        assert_eq!(VarRef::new(s, &[2, 1]).resolve(&db), Some(7));
        assert_eq!(VarRef::new(s, &[2, 2]).resolve(&db), None);
    }

    #[test]
    fn canonical_size_is_linear_in_input() {
        // Bow-tie R(X) ⋈ S(X,Y) ⋈ T(Y): per Prop 2.6 the canonical
        // certificate has (#vars − 1) comparisons per attribute.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2, 3])).unwrap();
        let s = db.add(builder::binary("S", [(1, 4), (2, 5)])).unwrap();
        let t = db.add(builder::unary("T", [4, 5])).unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
        // X variables: R has 3, S level-0 has 2 → 5 vars, 3 distinct values
        //   → 2 equalities + 2 inequalities = 4.
        // Y variables: S level-1 has 2, T has 2 → 4 vars, 2 distinct → 2
        //   equalities + 1 inequality = 3.
        assert_eq!(canonical_certificate_size(&db, &q).unwrap(), 7);
    }

    #[test]
    fn canonical_size_skips_empty_relations() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [])).unwrap();
        let s = db.add(builder::unary("S", [1, 2])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        assert_eq!(canonical_certificate_size(&db, &q).unwrap(), 1);
    }
}
