//! Sharded parallel execution.
//!
//! The probe loop of Algorithm 2 is embarrassingly parallel in the first
//! GAO attribute: a constraint discovered while probing inside one
//! interval of that attribute's domain can never exclude a point of a
//! disjoint interval, so the loops share no state. A [`ShardedPlan`]
//! exploits this:
//!
//! 1. **Partition** — the domain is split into at most `K` contiguous
//!    [`ShardBounds`] by [`minesweeper_storage::shard::shard_relation`]:
//!    equi-depth over the *primary* relation (the largest-fanout relation
//!    whose index starts at GAO position 0), weighted by tuples per
//!    distinct first value so skew still balances. Fewer shards come back
//!    when the data cannot feed `K` (few distinct values, or one giant
//!    duplicate run) — never an empty shard.
//! 2. **Probe** — each shard runs an independent
//!    [`crate::TupleStream`] on a scoped worker pool
//!    ([`scoped_pool::scoped_map`]), with its own `ConstraintTree`, its
//!    own [`minesweeper_storage::GapCursor`]s, and its own
//!    [`ExecStats`]. The confinement is two pre-seeded depth-0
//!    constraints `(−∞, lo)` / `(hi, +∞)` — the CDS then terminates the
//!    loop once the shard's slice of the output space is covered.
//! 3. **Concatenate** — shards are ordered intervals, so appending their
//!    outputs in shard order *is* the order-preserving K-way merge: the
//!    concatenation equals the serial stream's GAO-lexicographic
//!    sequence, and after the usual original-numbering translation (and
//!    sort, when the plan re-indexed) the materialized result is
//!    **byte-identical** to [`crate::Plan::execute`].
//!
//! Statistics: per-shard counters are kept in [`ShardStats`] and their sum
//! (plus the ≤ 2·K seed constraints) is the aggregate [`ExecStats`] — in
//! particular `outputs` sums exactly to the tuple count. Total probe work
//! slightly exceeds the serial run's because each shard pays its own
//! warm-up probes around the boundaries; that is the usual
//! parallel-speedup trade, bounded by `O(K)` extra probes per relation.

use minesweeper_storage::{shard::shard_relation, Database, ExecStats, ShardBounds, Tuple};

use crate::gao::GaoChoice;
use crate::minesweeper::JoinResult;
use crate::plan::{Plan, PreparedExec};
use crate::query::QueryError;
use crate::stream::{DbHandle, TupleStream};

/// A [`Plan`] wrapped for parallel execution on up to `threads` workers
/// (see the module docs for the sharding strategy). Build with
/// [`Plan::sharded`] or [`ShardedPlan::new`]; run with
/// [`ShardedPlan::execute`] or [`ShardedPlan::stream`].
#[derive(Debug, Clone)]
pub struct ShardedPlan {
    plan: Plan,
    threads: usize,
}

/// One shard's interval and the execution counters its probe loop
/// accumulated.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard's inclusive interval of the first GAO attribute.
    pub bounds: ShardBounds,
    /// Counters of this shard's probe loop only.
    pub stats: ExecStats,
}

/// The outcome of a sharded run: the same sorted [`JoinResult`] a serial
/// [`crate::Plan::execute`] produces (aggregate statistics inside), plus
/// the per-shard breakdown.
#[derive(Debug, Clone)]
pub struct ShardedExecution {
    /// Output tuples (sorted in the original attribute numbering) and the
    /// aggregate statistics summed over all shards.
    pub result: JoinResult,
    /// The chosen GAO, probe mode, and elimination width.
    pub gao: GaoChoice,
    /// Per-shard intervals and counters, in domain order.
    pub shards: Vec<ShardStats>,
    /// True only when a [`ShardedPlan::execute_limited`] cap actually cut
    /// tuples — some shard stopped before exhaustion, or the final
    /// truncation dropped collected tuples. A result that merely *equals*
    /// the limit is not truncated.
    pub truncated: bool,
}

impl ShardedPlan {
    /// Wraps `plan` for execution on up to `threads` workers (`0` is
    /// treated as `1`; the shard count actually used is data-dependent
    /// and never exceeds `threads`).
    pub fn new(plan: Plan, threads: usize) -> Self {
        ShardedPlan {
            plan,
            threads: threads.max(1),
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The worker / maximum shard count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The serial plan description plus the parallel strategy line.
    pub fn explain(&self) -> String {
        format!(
            "{}\nparallel: up to {} equi-depth shard(s) of GAO attribute 0, \
             one probe loop per shard, order-preserving concatenation",
            self.plan.explain(),
            self.threads
        )
    }

    /// The shard intervals this plan would use against `db` (equi-depth
    /// over the primary relation — data-dependent, hence a method, not a
    /// plan field). Mostly for inspection and tests; `execute` computes
    /// the same split internally.
    pub fn shard_bounds(&self, db: &Database) -> Result<Vec<ShardBounds>, QueryError> {
        let prepared = self.plan.prepare_exec(db)?;
        Ok(compute_shards(&prepared, db, self.threads))
    }

    /// Runs the plan to completion across the worker pool.
    ///
    /// The returned tuples are byte-identical to the serial
    /// [`crate::Plan::execute`]: sorted lexicographically in the original
    /// attribute numbering.
    pub fn execute(&self, db: &Database) -> Result<ShardedExecution, QueryError> {
        self.execute_limited(db, None)
    }

    /// [`ShardedPlan::execute`] with a per-shard materialization cap.
    ///
    /// With `limit = Some(k)` each shard's probe loop stops after `k`
    /// tuples, bounding peak memory at `O(shards × k)` instead of the
    /// full `Z`, and the returned result is truncated to the first `k`
    /// tuples. **Probe work is still paid on every shard** (each runs
    /// until its own cap or exhaustion — unlike the serial stream's
    /// `take(k)` pushdown, which never starts the suffix); the cap bounds
    /// memory, not work. Under an identity GAO the `k` tuples are exactly
    /// the first `k` of the full sorted result. Under a re-indexed GAO
    /// each shard contributes its GAO-order prefix of up to `k` tuples;
    /// the collected set is translated, sorted in the original numbering,
    /// and cut to `k` — a deterministic size-`k` subset of the full
    /// result, but not necessarily the globally smallest `k` tuples (use
    /// the serial stream when a specific prefix is required).
    pub fn execute_limited(
        &self,
        db: &Database,
        limit: Option<usize>,
    ) -> Result<ShardedExecution, QueryError> {
        let prepared = self.plan.prepare_exec(db)?;
        Ok(execute_prepared(&prepared, db, self.threads, limit, &[]))
    }

    /// Opens a [`ShardedStream`] over `db`.
    ///
    /// Unlike the serial [`crate::Plan::stream`], the probe work is paid
    /// **eagerly and in parallel** when the stream is opened (scoped
    /// workers cannot outlive this call); iteration then yields the
    /// already-certified tuples in the same order the serial stream would
    /// — GAO-lexicographic, translated to the original attribute
    /// numbering on the fly. Use the serial stream when `take(k)` must
    /// skip probe work; use this one when the full result is wanted fast.
    pub fn stream(&self, db: &Database) -> Result<ShardedStream, QueryError> {
        let prepared = self.plan.prepare_exec(db)?;
        let (tuples, shards, _) = run_shards(&prepared, db, self.threads, None, &[]);
        let mut agg = ExecStats::new();
        for s in &shards {
            agg.merge(&s.stats);
        }
        Ok(ShardedStream {
            tuples: tuples.into_iter(),
            inv: prepared.inv().map(|s| s.to_vec()),
            stats: agg,
            shards,
        })
    }
}

/// The shared shard → probe → aggregate step behind [`ShardedPlan`] and
/// [`PreparedExec::execute_parallel`]: runs the already-prepared
/// execution across the pool and assembles the sorted, optionally
/// truncated result (see [`ShardedPlan::execute_limited`] for the limit
/// semantics).
pub(crate) fn execute_prepared(
    prepared: &PreparedExec,
    db: &Database,
    threads: usize,
    limit: Option<usize>,
    eq_seeds: &[(usize, minesweeper_storage::Val)],
) -> ShardedExecution {
    let (tuples, shards, any_capped) = run_shards(prepared, db, threads, limit, eq_seeds);
    let mut agg = ExecStats::new();
    for s in &shards {
        agg.merge(&s.stats);
    }
    // Translate to the original numbering and sort, exactly as the serial
    // `PreparedExec::execute` does.
    let mut tuples = match prepared.inv() {
        None => tuples,
        Some(inv) => {
            let mut translated: Vec<Tuple> = tuples
                .into_iter()
                .map(|t| inv.iter().map(|&c| t[c]).collect())
                .collect();
            translated.sort_unstable();
            translated
        }
    };
    let collected = tuples.len();
    if let Some(k) = limit {
        tuples.truncate(k);
    }
    ShardedExecution {
        truncated: any_capped || collected > tuples.len(),
        result: JoinResult { tuples, stats: agg },
        gao: prepared.gao().clone(),
        shards,
    }
}

/// Picks the primary relation (largest root fanout among atoms indexed on
/// GAO position 0 — query validation guarantees at least one) and splits
/// its first column equi-depth.
fn compute_shards(prepared: &PreparedExec, db: &Database, threads: usize) -> Vec<ShardBounds> {
    let db = prepared.db_for(db);
    let primary = prepared
        .exec_query()
        .atoms
        .iter()
        .filter(|a| a.attrs.first() == Some(&0))
        .map(|a| db.relation(a.rel))
        .max_by_key(|r| r.root_fanout());
    match primary {
        Some(rel) => shard_relation(rel, threads),
        None => vec![ShardBounds::unbounded()],
    }
}

/// Runs one probe loop per shard on the pool (stopping each shard after
/// `limit` tuples when set) and concatenates the GAO-order outputs in
/// shard order (still GAO-lexicographic overall). Tuples stay in the
/// *execution* numbering; the caller translates/sorts. The returned flag
/// reports whether any shard actually stopped at its cap (verified by a
/// one-tuple peek whose work is excluded from the shard's stats).
fn run_shards(
    prepared: &PreparedExec,
    db: &Database,
    threads: usize,
    limit: Option<usize>,
    eq_seeds: &[(usize, minesweeper_storage::Val)],
) -> (Vec<Tuple>, Vec<ShardStats>, bool) {
    let exec_db = prepared.db_for(db);
    let bounds = compute_shards(prepared, db, threads);
    let cap = limit.unwrap_or(usize::MAX);
    let jobs: Vec<_> = bounds
        .iter()
        .map(|&b| {
            move || {
                let mut stream = TupleStream::with_bounds(
                    DbHandle::Borrowed(exec_db),
                    prepared.exec_query().clone(),
                    prepared.gao().mode,
                    None,
                    b,
                    eq_seeds,
                );
                let tuples: Vec<Tuple> = stream.by_ref().take(cap).collect();
                let stats = stream.stats();
                let capped = tuples.len() == cap && stream.next().is_some();
                (tuples, stats, capped)
            }
        })
        .collect();
    let per_shard = scoped_pool::scoped_map(threads, jobs);
    let mut tuples = Vec::with_capacity(per_shard.iter().map(|(t, _, _)| t.len()).sum());
    let mut shards = Vec::with_capacity(per_shard.len());
    let mut any_capped = false;
    for (b, (shard_tuples, stats, capped)) in bounds.into_iter().zip(per_shard) {
        debug_assert!(shard_tuples.iter().all(|t| b.contains(t[0])));
        tuples.extend(shard_tuples);
        any_capped |= capped;
        shards.push(ShardStats { bounds: b, stats });
    }
    debug_assert!(
        tuples.windows(2).all(|w| w[0] < w[1]),
        "shard concatenation must be lexicographic in the execution numbering"
    );
    (tuples, shards, any_capped)
}

/// The iterator returned by [`ShardedPlan::stream`]: already-certified
/// tuples in GAO-lexicographic order, translated to the original
/// attribute numbering lazily. Aggregate and per-shard statistics are
/// complete from the moment the stream is opened.
pub struct ShardedStream {
    tuples: std::vec::IntoIter<Tuple>,
    inv: Option<Vec<usize>>,
    stats: ExecStats,
    shards: Vec<ShardStats>,
}

impl ShardedStream {
    /// Aggregate counters summed over every shard's probe loop.
    pub fn stats(&self) -> ExecStats {
        self.stats.clone()
    }

    /// Per-shard intervals and counters, in domain order.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.shards
    }

    /// Number of tuples not yet yielded.
    pub fn remaining(&self) -> usize {
        self.tuples.len()
    }
}

impl Iterator for ShardedStream {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let t = self.tuples.next()?;
        Some(match &self.inv {
            None => t,
            Some(inv) => inv.iter().map(|&c| t[c]).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_join;
    use crate::plan::plan;
    use crate::query::Query;
    use minesweeper_storage::{builder, RelationBuilder};

    fn path_db(n: i64) -> (Database, Query) {
        let mut db = Database::new();
        let e1 = db
            .add(builder::binary("E1", (0..n).map(|i| (i, (i * 7) % n))))
            .unwrap();
        let e2 = db
            .add(builder::binary("E2", (0..n).map(|i| ((i * 3) % n, i))))
            .unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        (db, q)
    }

    #[test]
    fn parallel_matches_serial_identity_gao() {
        let (db, q) = path_db(40);
        let p = plan(&db, &q).unwrap();
        let serial = p.execute(&db).unwrap();
        for k in [1, 2, 3, 8] {
            let par = p.execute_parallel(&db, k).unwrap();
            assert_eq!(par.result.tuples, serial.result.tuples, "k={k}");
            assert_eq!(par.gao, serial.gao);
            assert!(par.shards.len() <= k.max(1));
        }
    }

    #[test]
    fn parallel_matches_serial_reindexed_gao() {
        // Example B.7's shape forces a non-identity GAO (re-index path).
        let mut db = Database::new();
        let mut rb = RelationBuilder::new("R", 3);
        for a in 1..=6 {
            for b in 1..=6 {
                rb.push(&[a, b, (a * b) % 4 + 1]);
            }
        }
        let r = db.add(rb.build().unwrap()).unwrap();
        let s = db
            .add(builder::binary(
                "S",
                (1..=6).flat_map(|a| [(a, 1), (a, 2), (a, 3), (a, 4)]),
            ))
            .unwrap();
        let t = db
            .add(builder::binary("T", (1..=6).flat_map(|b| [(b, 1), (b, 3)])))
            .unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed());
        let serial = p.execute(&db).unwrap();
        assert!(!serial.result.tuples.is_empty());
        for k in [2, 4, 16] {
            let par = p.execute_parallel(&db, k).unwrap();
            assert_eq!(par.result.tuples, serial.result.tuples, "k={k}");
        }
    }

    #[test]
    fn parallel_matches_serial_cyclic_general_mode() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary(
                "E",
                (0..60).map(|i: i64| (i % 12, (i * 5 + 1) % 12)),
            ))
            .unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let p = plan(&db, &q).unwrap();
        let serial = p.execute(&db).unwrap();
        let par = p.execute_parallel(&db, 4).unwrap();
        assert_eq!(par.result.tuples, serial.result.tuples);
        assert_eq!(par.result.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn shard_stats_sum_to_aggregate() {
        let (db, q) = path_db(50);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 4).unwrap();
        assert!(par.shards.len() >= 2, "enough distinct values to shard");
        let mut sum = ExecStats::new();
        for s in &par.shards {
            sum.merge(&s.stats);
        }
        assert_eq!(sum, par.result.stats);
        assert_eq!(sum.outputs as usize, par.result.tuples.len());
        // Shards are disjoint, contiguous, and cover the domain.
        for w in par.shards.windows(2) {
            assert_eq!(w[0].bounds.hi + 1, w[1].bounds.lo);
        }
    }

    #[test]
    fn more_threads_than_distinct_values() {
        // The primary is the largest-fanout attr-0 relation (S, 4 values):
        // 64 requested workers must cap at 4 shards, all non-empty.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [2, 5, 9])).unwrap();
        let s = db.add(builder::unary("S", [1, 2, 5, 9])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 64).unwrap();
        assert_eq!(par.result.tuples, vec![vec![2], vec![5], vec![9]]);
        assert_eq!(
            par.shards.len(),
            4,
            "capped at the primary's distinct values"
        );
    }

    #[test]
    fn giant_duplicate_run_degrades_to_one_shard() {
        // Every relation that could be primary holds a single distinct
        // first value (one giant duplicate run): the split must fall back
        // to a single unbounded shard — no empty shard, no panic.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [7])).unwrap();
        let s = db.add(builder::unary("S", [7])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 8).unwrap();
        assert_eq!(par.shards.len(), 1);
        assert!(par.shards[0].bounds.is_unbounded());
        assert_eq!(par.result.tuples, vec![vec![7]]);
    }

    #[test]
    fn skewed_first_attribute_still_matches_serial() {
        // R's first column is one giant duplicate run; whatever GAO and
        // primary the planner picks, the parallel result must equal the
        // serial one and every shard must be non-trivial.
        let mut db = Database::new();
        let r = db
            .add(builder::binary("R", (0..30).map(|i| (7, i))))
            .unwrap();
        let s = db
            .add(builder::binary("S", (0..30).map(|i| (i, i % 5))))
            .unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 8).unwrap();
        assert!(!par.shards.is_empty() && par.shards.len() <= 8);
        assert_eq!(par.result.tuples, p.execute(&db).unwrap().result.tuples);
        assert_eq!(
            par.result.stats.outputs as usize,
            par.result.tuples.len(),
            "aggregated outputs match the materialized count"
        );
    }

    #[test]
    fn empty_primary_relation() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [])).unwrap();
        let s = db.add(builder::unary("S", [])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 4).unwrap();
        assert!(par.result.tuples.is_empty());
        assert_eq!(par.shards.len(), 1, "no values ⇒ one unbounded shard");
    }

    #[test]
    fn limited_execution_truncates_to_the_sorted_prefix() {
        // A unary intersection has a single attribute, so the plan cannot
        // re-index and the cap yields exactly the first k of the full
        // sorted result.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 0..40)).unwrap();
        let s = db.add(builder::unary("S", (0..40).map(|i| i * 2))).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        assert!(!p.is_reindexed());
        let full = p.execute(&db).unwrap().result.tuples;
        assert!(full.len() > 5);
        let sp = p.clone().sharded(4);
        let limited = sp.execute_limited(&db, Some(5)).unwrap();
        assert_eq!(limited.result.tuples, full[..5]);
        // Every shard materialized at most the cap.
        for s in &limited.shards {
            assert!(s.stats.outputs <= 5, "shard over cap: {:?}", s.stats);
        }
        // A limit beyond Z changes nothing and is not "truncated".
        let all = sp.execute_limited(&db, Some(full.len() + 10)).unwrap();
        assert_eq!(all.result.tuples, full);
        assert!(!all.truncated);
        assert!(limited.truncated, "the 5-cap really cut tuples");
        // A limit exactly equal to Z returns everything, un-truncated.
        let exact = sp.execute_limited(&db, Some(full.len())).unwrap();
        assert_eq!(exact.result.tuples, full);
        assert!(!exact.truncated, "equal-to-limit results are complete");
        // The unlimited path never reports truncation.
        assert!(!sp.execute(&db).unwrap().truncated);
    }

    #[test]
    fn limited_execution_on_a_reindexed_plan_stays_within_budget() {
        // Re-indexed plans translate + sort the per-shard prefixes; the
        // cap still bounds materialization and the truncated result is a
        // subset of the full one, sorted.
        let (db, q) = path_db(40);
        let p = plan(&db, &q).unwrap();
        let full = p.execute(&db).unwrap().result.tuples;
        let limited = p.clone().sharded(4).execute_limited(&db, Some(5)).unwrap();
        assert_eq!(limited.result.tuples.len(), 5);
        assert!(limited.result.tuples.windows(2).all(|w| w[0] < w[1]));
        for t in &limited.result.tuples {
            assert!(full.contains(t));
        }
        for s in &limited.shards {
            assert!(s.stats.outputs <= 5);
        }
    }

    #[test]
    fn prepared_exec_parallel_matches_sharded_plan() {
        let (db, q) = path_db(30);
        let p = plan(&db, &q).unwrap();
        let via_plan = p.execute_parallel(&db, 3).unwrap();
        let prepared = p.prepare_exec(&db).unwrap();
        let via_exec = prepared.execute_parallel(&db, 3, None);
        assert_eq!(via_exec.result.tuples, via_plan.result.tuples);
        assert_eq!(via_exec.shards.len(), via_plan.shards.len());
    }

    #[test]
    fn sharded_stream_yields_serial_stream_order() {
        let (db, q) = path_db(30);
        let p = plan(&db, &q).unwrap();
        let serial: Vec<Tuple> = p.stream(&db).unwrap().collect();
        let sharded = p.clone().sharded(3);
        let mut stream = sharded.stream(&db).unwrap();
        assert_eq!(stream.stats().outputs as usize, serial.len());
        assert_eq!(stream.remaining(), serial.len());
        let got: Vec<Tuple> = stream.by_ref().collect();
        assert_eq!(got, serial);
        assert!(stream.shard_stats().len() >= 2);
    }

    #[test]
    fn explain_and_accessors() {
        let (db, q) = path_db(10);
        let p = plan(&db, &q).unwrap();
        let sp = p.clone().sharded(0);
        assert_eq!(sp.threads(), 1, "0 workers clamps to 1");
        let sp = p.clone().sharded(4);
        assert_eq!(sp.threads(), 4);
        assert_eq!(sp.plan().gao(), p.gao());
        assert!(sp.explain().contains("parallel: up to 4"));
        let bounds = sp.shard_bounds(&db).unwrap();
        assert!(!bounds.is_empty() && bounds.len() <= 4);
    }
}
