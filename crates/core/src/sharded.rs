//! Sharded parallel execution: nested splits, work stealing, and an
//! incremental parallel stream.
//!
//! The probe loop of Algorithm 2 is embarrassingly parallel in the first
//! GAO attribute: a constraint discovered while probing inside one
//! interval of that attribute's domain can never exclude a point of a
//! disjoint interval, so the loops share no state. A [`ShardedPlan`]
//! exploits this:
//!
//! 1. **Partition** — the domain is split into contiguous
//!    [`ShardSpec`]s: equi-depth over the *primary* relation (the
//!    largest-fanout relation whose index starts at GAO position 0),
//!    weighted by tuples per distinct first value so skew still
//!    balances, with an **oversplit** of [`OVERSPLIT`] tasks per worker
//!    so the steal queue has depth. A heavy value — one duplicate run
//!    holding at least twice the per-task depth — is isolated and then
//!    **nested-split on the second GAO attribute** (single-value first
//!    interval × equi-depth second intervals), so one giant duplicate
//!    run becomes many parallel tasks instead of a serial fallback.
//! 2. **Probe** — the specs become tasks on a work-stealing deque
//!    ([`scoped_pool::StealQueue`]): each worker pops its own share
//!    front-first and steals from the back of busy peers, so shards
//!    whose certificates turn out unbalanced no longer gate wall-clock
//!    on the slowest worker. Each task runs an independent
//!    [`crate::TupleStream`] with its own `ConstraintTree`, its own
//!    [`minesweeper_storage::GapCursor`]s, and its own [`ExecStats`];
//!    the confinement is the pre-seeded constraint pairs of
//!    [`crate::TupleStream`]'s shard constructor — depth-0 intervals for
//!    the first attribute, all-star depth-1 intervals for a nested
//!    shard's second attribute.
//! 3. **Merge** — every worker translates its certified tuples to the
//!    caller's attribute numbering *inside the shard task* (the
//!    [`crate::TupleStream`] does it on the fly), so the per-task
//!    channels carry directly comparable tuples, and the consumer runs a
//!    **global-order k-way merge**: a binary heap keyed by
//!    [`minesweeper_storage::GaoOrder`] — the GAO-lexicographic
//!    comparison of translated tuples — with one *frontier watermark*
//!    rule deciding when the heap's minimum is safe to emit (a buffered
//!    tuple whose [`minesweeper_storage::GaoOrder::key2`] lies strictly
//!    below the first still-silent shard's
//!    [`ShardSpec::lower_corner`] cannot be out-ordered by anything that
//!    shard will produce, because spec slices are disjoint in the
//!    first-two-GAO-coordinate plane). The merged sequence equals the
//!    serial stream's **global attribute order** exactly — the output
//!    contract of the paper's §2 — for every consumer: the incremental
//!    [`ShardedStream`], [`ShardedPlan::execute_limited`], and the
//!    unlimited [`ShardedPlan::execute`] (which sorts the merged
//!    sequence into the original-numbering order when the plan
//!    re-indexed, exactly like the serial path, and is therefore
//!    **byte-identical** to [`crate::Plan::execute`]). An unlimited
//!    `execute` still lets every worker materialize its shard
//!    concurrently (one batch per task — no worker ever stalls on the
//!    in-order consumer); limited and streaming runs send per-tuple
//!    batches through bounded channels, giving the merge
//!    `O(tasks × channel capacity)` memory, and the cancellation flag
//!    fires as soon as the heap has emitted the cap (plus a one-tuple
//!    truncation probe), so in-flight and queued shards stop promptly.
//!
//! Statistics: per-shard counters are kept in [`ShardStats`] and their
//! sum is the aggregate [`ExecStats`] — in particular, on an uncancelled
//! run `outputs` sums exactly to the tuple count. Total probe work
//! slightly exceeds the serial run's because each shard pays its own
//! warm-up probes around the boundaries; that is the usual
//! parallel-speedup trade, bounded by `O(tasks)` extra probes per
//! relation.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};

use minesweeper_cds::ProbeMode;
use minesweeper_storage::{
    equi_depth_shards, nested_shards, second_level_profile, Database, ExecStats, GaoOrder,
    ShardSpec, Tuple, Val,
};
use scoped_pool::StealQueue;

use crate::gao::GaoChoice;
use crate::minesweeper::JoinResult;
use crate::plan::{Plan, PreparedExec};
use crate::query::{Query, QueryError};
use crate::stream::{DbHandle, TupleStream};

/// Shard tasks created per worker thread (beyond one worker): the deque
/// depth that makes work stealing effective. More tasks smooth unbalanced
/// certificates at the cost of `O(1)` warm-up probes per extra task.
pub const OVERSPLIT: usize = 2;

/// Hard ceiling on shard tasks per requested worker: the equi-depth pass
/// makes at most `OVERSPLIT` tasks per worker and each nested split of a
/// heavy value at most doubles its share, so `tasks ≤ threads ×
/// MAX_TASKS_PER_THREAD` always holds (tests pin this contract).
pub const MAX_TASKS_PER_THREAD: usize = 2 * OVERSPLIT;

/// Bounded per-shard channel capacity: the backpressure that keeps an
/// incremental parallel stream's memory at `O(tasks × CHANNEL_CAP)`
/// instead of `O(Z)` — a shard task can probe ahead of the global-order
/// merge by at most this many tuples before its sender parks.
const CHANNEL_CAP: usize = 64;

/// The reassembly strategy label explains report for every parallel run:
/// a k-way binary heap over per-shard streams, keyed by the
/// GAO-lexicographic comparison of worker-translated tuples.
pub const MERGE_STRATEGY: &str = "global-order-heap";

/// A [`Plan`] wrapped for parallel execution on up to `threads` workers
/// (see the module docs for the sharding strategy). Build with
/// [`Plan::sharded`] or [`ShardedPlan::new`]; run with
/// [`ShardedPlan::execute`], [`ShardedPlan::execute_limited`], or
/// [`ShardedPlan::stream`].
#[derive(Debug, Clone)]
pub struct ShardedPlan {
    plan: Plan,
    threads: usize,
}

/// One shard task's slice of the output space and the execution counters
/// its probe loop accumulated.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard's slice: a first-attribute interval, plus a
    /// second-attribute interval when the shard is a nested slice of a
    /// heavy duplicate run.
    pub spec: ShardSpec,
    /// Counters of this shard's probe loop only (excluding the one-tuple
    /// truncation probe a capped shard runs).
    pub stats: ExecStats,
    /// True when a worker other than the task's round-robin owner ran it
    /// (it was stolen from the owner's deque).
    pub stolen: bool,
    /// True when the probe loop ran to exhaustion: the shard's slice of
    /// the output space is fully certified. False for shards stopped at a
    /// cap, cancelled mid-flight, or abandoned in the queue (those report
    /// zero counters).
    pub completed: bool,
}

impl ShardStats {
    fn unrun(spec: ShardSpec) -> Self {
        ShardStats {
            spec,
            stats: ExecStats::new(),
            stolen: false,
            completed: false,
        }
    }
}

/// The outcome of a sharded run: the same sorted [`JoinResult`] a serial
/// [`crate::Plan::execute`] produces (aggregate statistics inside), plus
/// the per-shard breakdown.
#[derive(Debug, Clone)]
pub struct ShardedExecution {
    /// Output tuples (sorted in the original attribute numbering) and the
    /// aggregate statistics summed over all shards.
    pub result: JoinResult,
    /// The chosen GAO, probe mode, and elimination width.
    pub gao: GaoChoice,
    /// Per-shard slices and counters, in output-space order. Shards the
    /// limit cancelled before they started are present with zero
    /// counters (`completed == false`), so the list always covers the
    /// whole domain and the counter sum still reconciles.
    pub shards: Vec<ShardStats>,
    /// Number of shard tasks executed by a worker other than their
    /// round-robin owner — how much the steal queue rebalanced.
    pub steals: u64,
    /// True only when a [`ShardedPlan::execute_limited`] cap actually cut
    /// tuples. A result that merely *equals* the limit is not truncated.
    pub truncated: bool,
}

/// Final accounting of an incremental parallel stream (see
/// [`ShardedStream::finish`]).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Aggregate counters summed over every shard's probe loop.
    pub stats: ExecStats,
    /// Per-shard slices and counters, in output-space order (cancelled
    /// shards report zero counters).
    pub shards: Vec<ShardStats>,
    /// Number of stolen shard tasks.
    pub steals: u64,
}

impl ShardedPlan {
    /// Wraps `plan` for execution on up to `threads` workers (`0` is
    /// treated as `1`; the shard-task count actually used is
    /// data-dependent, between 1 and `threads ×`
    /// [`MAX_TASKS_PER_THREAD`]).
    pub fn new(plan: Plan, threads: usize) -> Self {
        ShardedPlan {
            plan,
            threads: threads.max(1),
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The serial plan description plus the parallel strategy line.
    pub fn explain(&self) -> String {
        format!(
            "{}\nparallel: up to {} worker(s) over equi-depth shard tasks of GAO attribute 0 \
             (nested second-attribute splits for heavy runs) on a work-stealing deque, \
             global-order k-way heap merge",
            self.plan.explain(),
            self.threads
        )
    }

    /// The shard tasks this plan would use against `db` (equi-depth over
    /// the primary relation plus nested splits — data-dependent, hence a
    /// method, not a plan field). Mostly for inspection and tests;
    /// `execute` computes the same split internally.
    pub fn shard_specs(&self, db: &Database) -> Result<Vec<ShardSpec>, QueryError> {
        let prepared = self.plan.prepare_exec(db)?;
        Ok(compute_shard_specs(&prepared, db, self.threads))
    }

    /// Runs the plan to completion across the worker pool.
    ///
    /// The returned tuples are byte-identical to the serial
    /// [`crate::Plan::execute`]: sorted lexicographically in the original
    /// attribute numbering.
    pub fn execute(&self, db: &Database) -> Result<ShardedExecution, QueryError> {
        self.execute_limited(db, None)
    }

    /// [`ShardedPlan::execute`] with a global materialization cap.
    ///
    /// With `limit = Some(k)` the global-order merge stops after `k`
    /// tuples plus a one-tuple truncation probe, then **cancels**:
    /// queued shards never start and in-flight shards stop at their next
    /// probe point (a cooperative flag polled inside the loop), so —
    /// unlike the PR 2 behavior this API replaced — probe work for the
    /// untaken suffix is not paid once the cap is known to be exceeded.
    /// Peak memory is `O(tasks × channel capacity + k)` instead of the
    /// full `Z`. Because the merge emits the serial stream's global
    /// attribute order exactly, the `k` tuples are the serial stream's
    /// first `k` under **any** GAO — identity or re-indexed — returned
    /// sorted in the original numbering, byte-identical to running the
    /// serial `stream().take(k)` and sorting.
    pub fn execute_limited(
        &self,
        db: &Database,
        limit: Option<usize>,
    ) -> Result<ShardedExecution, QueryError> {
        let prepared = self.plan.prepare_exec(db)?;
        Ok(execute_prepared(&prepared, db, self.threads, limit, &[]))
    }

    /// Opens an incremental [`ShardedStream`] over `db`.
    ///
    /// The database is taken as an [`Arc`] because the probe work runs on
    /// detached background workers that must co-own it; the handle clone
    /// is `O(1)`. See [`ShardedStream`] for the channel pipeline and the
    /// cancellation contract.
    pub fn stream(&self, db: &Arc<Database>) -> Result<ShardedStream, QueryError> {
        let prepared = self.plan.prepare_exec(db)?;
        Ok(open_stream(&prepared, db, self.threads, None, &[]))
    }
}

/// The shared shard → probe → reassemble step behind [`ShardedPlan`] and
/// [`PreparedExec::execute_parallel`]: runs the already-prepared
/// execution across the pool and assembles the sorted, optionally
/// truncated result (see [`ShardedPlan::execute_limited`] for the limit
/// semantics).
pub(crate) fn execute_prepared(
    prepared: &PreparedExec,
    db: &Database,
    threads: usize,
    limit: Option<usize>,
    eq_seeds: &[(usize, Val)],
) -> ShardedExecution {
    let run = run_shards(prepared, db, threads, limit, eq_seeds);
    let mut agg = ExecStats::new();
    for s in &run.shards {
        agg.merge(&s.stats);
    }
    // Workers already translated to the original numbering and the merge
    // delivered the global (GAO) order, so only the serial path's final
    // sort remains when the plan re-indexed. Under a limit the merged
    // prefix is the serial stream's exact first-k, so the sorted result
    // is the serial sorted prefix byte for byte.
    let mut tuples = run.tuples;
    if prepared.inv().is_some() {
        tuples.sort_unstable();
    }
    if let Some(k) = limit {
        tuples.truncate(k);
    }
    ShardedExecution {
        truncated: run.saw_extra,
        result: JoinResult { tuples, stats: agg },
        gao: prepared.gao().clone(),
        shards: run.shards,
        steals: run.steals,
    }
}

/// Picks the primary relation (largest root fanout among atoms indexed on
/// GAO position 0 — query validation guarantees at least one), splits its
/// first column equi-depth into up to `threads ×` [`OVERSPLIT`] tasks,
/// and nested-splits any isolated heavy value on the second GAO
/// attribute.
pub(crate) fn compute_shard_specs(
    prepared: &PreparedExec,
    db: &Database,
    threads: usize,
) -> Vec<ShardSpec> {
    let db = prepared.db_for(db);
    let threads = threads.max(1);
    let query = prepared.exec_query();
    let primary = query
        .atoms
        .iter()
        .filter(|a| a.attrs.first() == Some(&0))
        .map(|a| db.relation(a.rel))
        .max_by_key(|r| (r.root_fanout(), r.len()));
    let Some(rel) = primary else {
        return vec![ShardSpec::unbounded()];
    };
    let tasks = if threads == 1 { 1 } else { threads * OVERSPLIT };
    let values = rel.first_column();
    let weights = rel.first_level_tuple_counts();
    let bounds = equi_depth_shards(values, &weights, tasks);
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    if threads == 1 || total == 0 || query.n_attrs < 2 {
        return bounds.into_iter().map(ShardSpec::plain).collect();
    }
    // The same per-task depth the equi-depth pass aimed for; a
    // single-value shard holding at least twice that is worth splitting
    // again on the second attribute.
    let target = (total / tasks as u64).max(1);
    let mut specs = Vec::with_capacity(bounds.len());
    for b in bounds {
        let heavy = single_value_in(values, &weights, b).filter(|&(_, w)| w as u64 >= 2 * target);
        match heavy {
            Some((v, w)) => {
                let sub_k = (w as u64).div_ceil(target).min(tasks as u64) as usize;
                let (child_vals, child_weights) = second_attr_profile(query, db, v);
                if child_vals.len() >= 2 && sub_k >= 2 {
                    specs.extend(nested_shards(b, &child_vals, &child_weights, sub_k));
                } else {
                    specs.push(ShardSpec::plain(b));
                }
            }
            None => specs.push(ShardSpec::plain(b)),
        }
    }
    debug_assert!(specs.len() <= threads * MAX_TASKS_PER_THREAD);
    specs
}

/// The single primary-column value covered by `b`, with its weight, if
/// there is exactly one.
fn single_value_in(
    values: &[Val],
    weights: &[usize],
    b: minesweeper_storage::ShardBounds,
) -> Option<(Val, usize)> {
    let lo = values.partition_point(|&v| v < b.lo);
    let hi = values.partition_point(|&v| v <= b.hi);
    if hi - lo == 1 {
        Some((values[lo], weights[lo]))
    } else {
        None
    }
}

/// Distinct values (and tuple weights) available for splitting the
/// *second* GAO attribute inside the heavy first value `v`: preferably
/// the second trie level of a relation indexed `(0, 1, …)` — conditioned
/// on `v` — otherwise the first level of a relation indexed on attribute
/// 1. Empty when no relation can anchor the split.
fn second_attr_profile(query: &Query, db: &Database, v: Val) -> (Vec<Val>, Vec<usize>) {
    let conditioned = query
        .atoms
        .iter()
        .filter(|a| a.attrs.len() >= 2 && a.attrs[0] == 0 && a.attrs[1] == 1)
        .map(|a| db.relation(a.rel))
        .max_by_key(|r| r.root_fanout());
    if let Some(rel) = conditioned {
        let profile = second_level_profile(rel, v);
        if !profile.0.is_empty() {
            return profile;
        }
    }
    let anchored = query
        .atoms
        .iter()
        .filter(|a| a.attrs.first() == Some(&1))
        .map(|a| db.relation(a.rel))
        .max_by_key(|r| r.root_fanout());
    match anchored {
        Some(rel) => (rel.first_column().to_vec(), rel.first_level_tuple_counts()),
        None => (Vec::new(), Vec::new()),
    }
}

/// Runs one confined probe loop, handing each certified tuple —
/// **translated to the caller's attribute numbering inside the worker**,
/// so the consumer's merge can compare tuples without a post-hoc
/// translation pass — to `emit`. Stops when the shard is exhausted, when
/// `emit` returns `false` (the consumer went away), when the `cancel`
/// flag fires (polled inside the probe loop, so a cancelled shard stops
/// even if its remaining work would emit nothing), or after `cap` tuples
/// — in which case the stats are snapshotted first and **one** extra
/// tuple, if it exists, is still emitted as truncation evidence whose
/// probe work is excluded from the returned counters. Returns the
/// counters and whether the loop ran to exhaustion.
fn probe_shard<F: FnMut(Tuple) -> bool>(
    ctx: &RunCtx<'_>,
    spec: ShardSpec,
    cap: usize,
    cancel: Option<&Arc<std::sync::atomic::AtomicBool>>,
    mut emit: F,
) -> (ExecStats, bool) {
    let mut stream = TupleStream::with_shard(
        DbHandle::Borrowed(ctx.db),
        ctx.query.clone(),
        ctx.mode,
        ctx.inv.map(<[usize]>::to_vec),
        spec,
        ctx.eq_seeds,
    );
    if let Some(flag) = cancel {
        stream.set_cancel(Arc::clone(flag));
    }
    let mut produced = 0usize;
    loop {
        if produced == cap {
            let stats = stream.stats();
            return match stream.next() {
                Some(t) => {
                    let _ = emit(t);
                    (stats, false)
                }
                None => (stats, !stream.is_cancelled()),
            };
        }
        match stream.next() {
            Some(t) => {
                produced += 1;
                if !emit(t) {
                    return (stream.stats(), false);
                }
            }
            None => return (stream.stats(), !stream.is_cancelled()),
        }
    }
}

/// One shard task on the steal queue: spec index, output-space slice,
/// and the channel its output batches flow through.
type ShardTask = (usize, ShardSpec, SyncSender<Vec<Tuple>>);

/// The probe-loop context shared by every task of one sharded run: the
/// execution database, the execution-side query, the probe mode, the
/// original-numbering translation (`inv[a]` = execution column of
/// original attribute `a`, applied inside the worker), the pre-seeded
/// equality constraints, and the per-shard tuple cap.
struct RunCtx<'a> {
    db: &'a Database,
    query: &'a Query,
    mode: ProbeMode,
    inv: Option<&'a [usize]>,
    eq_seeds: &'a [(usize, Val)],
    cap: usize,
}

/// How a worker hands tuples to the consumer.
#[derive(Clone, Copy, PartialEq)]
enum EmitMode {
    /// Send each tuple as it is certified (singleton batches): the
    /// incremental pipeline with channel backpressure — for limited
    /// runs and streams, where early cancellation matters.
    Incremental,
    /// Buffer the whole shard and send one batch at completion: full
    /// concurrency for unlimited materializing runs — no worker ever
    /// stalls on the in-order consumer.
    Materialize,
}

/// The worker loop shared by the scoped (`run_shards`) and detached
/// (`open_stream`) pipelines: pop tasks — own deque front first, then
/// steals — run each confined probe loop, and record its accounting.
fn drive_worker(
    w: usize,
    queue: &StealQueue<ShardTask>,
    slots: &Mutex<Vec<Option<ShardStats>>>,
    ctx: &RunCtx<'_>,
    emit_mode: EmitMode,
) {
    let cancel = queue.cancel_handle();
    while let Some(((idx, spec, tx), stolen)) = queue.take(w) {
        let (stats, completed) = match emit_mode {
            EmitMode::Incremental => probe_shard(ctx, spec, ctx.cap, Some(&cancel), |t| {
                if tx.send(vec![t]).is_err() {
                    // The consumer tore the pipeline down: stop queued
                    // tasks too.
                    queue.cancel();
                    false
                } else {
                    true
                }
            }),
            EmitMode::Materialize => {
                let mut buf: Vec<Tuple> = Vec::new();
                let out = probe_shard(ctx, spec, ctx.cap, Some(&cancel), |t| {
                    buf.push(t);
                    true
                });
                let _ = tx.send(buf);
                out
            }
        };
        slots.lock().unwrap()[idx] = Some(ShardStats {
            spec,
            stats,
            stolen,
            completed,
        });
    }
}

/// One buffered head inside the merge heap: a worker-translated tuple
/// plus the shard it came from. Ordered by the GAO-lexicographic
/// comparison of the tuples (shard index only as a deterministic
/// tiebreak — disjoint spec slices make genuine ties impossible).
struct HeapEntry {
    order: Arc<GaoOrder>,
    shard: usize,
    tuple: Tuple,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order
            .cmp_tuples(&self.tuple, &other.tuple)
            .then(self.shard.cmp(&other.shard))
    }
}

/// One shard's end of the merge: its receiver (`None` once the channel
/// closed), the remainder of the batch most recently received, and
/// whether its next tuple currently sits in the heap.
struct ShardSource {
    rx: Option<Receiver<Vec<Tuple>>>,
    buf: std::vec::IntoIter<Tuple>,
    in_heap: bool,
}

/// The global-order k-way merge at the consumer end of every parallel
/// pipeline (see the module docs, step 3).
///
/// Invariants:
///
/// * each source's stream is sorted under `order` (a shard's probe loop
///   certifies in GAO order and the worker's translation preserves it);
/// * spec slices are disjoint and ordered in the first-two-GAO-coordinate
///   plane, so a buffered tuple whose [`GaoOrder::key2`] is strictly
///   below the **frontier watermark** — the
///   [`ShardSpec::lower_corner`] of the first shard that is still open
///   but has nothing buffered — precedes everything that shard (and
///   every later one) can emit.
///
/// Each [`GlobalOrderMerge::next`] therefore: lifts every available head
/// into the heap (non-blocking, which also drains channels early and
/// releases sender backpressure), emits the heap minimum when the
/// watermark rule allows, and otherwise blocks on the frontier shard's
/// channel — the only stream that can still own the global minimum.
/// Memory stays at one in-flight batch per shard plus the bounded
/// channels: `O(tasks × channel capacity)` on per-tuple pipelines.
struct GlobalOrderMerge {
    sources: Vec<ShardSource>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    order: Arc<GaoOrder>,
    /// Per-shard [`ShardSpec::lower_corner`] watermarks, in spec order.
    corners: Vec<(Val, Val)>,
    /// Number of sources whose channel is still open. Once it hits zero
    /// no new data can arrive, every remaining tuple is buffered (the
    /// popped-source refill keeps each non-empty source's head in the
    /// heap), and `next` collapses to a plain heap pop — the steady
    /// state of the one-batch-per-shard materializing pipeline, whose
    /// senders close right after their single send.
    open: usize,
}

impl GlobalOrderMerge {
    fn new(rxs: Vec<Receiver<Vec<Tuple>>>, specs: &[ShardSpec], order: GaoOrder) -> Self {
        let open = rxs.len();
        GlobalOrderMerge {
            sources: rxs
                .into_iter()
                .map(|rx| ShardSource {
                    rx: Some(rx),
                    buf: Vec::new().into_iter(),
                    in_heap: false,
                })
                .collect(),
            heap: BinaryHeap::new(),
            order: Arc::new(order),
            corners: specs.iter().map(ShardSpec::lower_corner).collect(),
            open,
        }
    }

    /// Lifts source `s`'s next tuple into the heap if one is available
    /// without blocking (buffered batch first, then `try_recv`, which
    /// also notices a closed channel).
    fn refill(&mut self, s: usize) {
        let src = &mut self.sources[s];
        if src.in_heap {
            return;
        }
        loop {
            if let Some(t) = src.buf.next() {
                src.in_heap = true;
                self.heap.push(Reverse(HeapEntry {
                    order: Arc::clone(&self.order),
                    shard: s,
                    tuple: t,
                }));
                return;
            }
            match &src.rx {
                None => return,
                Some(rx) => match rx.try_recv() {
                    Ok(batch) => src.buf = batch.into_iter(),
                    Err(TryRecvError::Empty) => return,
                    Err(TryRecvError::Disconnected) => {
                        src.rx = None;
                        self.open -= 1;
                        return;
                    }
                },
            }
        }
    }

    /// Pops the heap minimum and immediately lifts the popped source's
    /// next buffered tuple back in, so every non-empty source always has
    /// its head in the heap when `next` returns.
    fn pop_and_refill(&mut self) -> Option<Tuple> {
        let Reverse(e) = self.heap.pop()?;
        self.sources[e.shard].in_heap = false;
        self.refill(e.shard);
        Some(e.tuple)
    }

    /// The next tuple of the globally merged (GAO-ordered) sequence, or
    /// `None` once every shard stream is closed and drained.
    fn next(&mut self) -> Option<Tuple> {
        loop {
            if self.open == 0 {
                // Every channel closed: the heap minimum is the global
                // minimum, no frontier to guard, no channels to probe.
                return self.pop_and_refill();
            }
            // Lift every available head (which also drains channels
            // early, releasing sender backpressure); the first shard
            // that stays both open and silent is the frontier the
            // watermark guards.
            let mut frontier = None;
            for s in 0..self.sources.len() {
                self.refill(s);
                let src = &self.sources[s];
                if frontier.is_none() && !src.in_heap && src.rx.is_some() {
                    frontier = Some(s);
                }
            }
            if let Some(Reverse(top)) = self.heap.peek() {
                let emittable = match frontier {
                    None => true,
                    Some(f) => self.order.key2(&top.tuple) < self.corners[f],
                };
                if emittable {
                    return self.pop_and_refill();
                }
            }
            // Nothing emittable: only the frontier can own the global
            // minimum now, so block for its next batch (or its close).
            let f = frontier?;
            let rx = self.sources[f].rx.as_ref().expect("frontier is open");
            match rx.recv() {
                Ok(batch) => self.sources[f].buf = batch.into_iter(),
                Err(_) => {
                    self.sources[f].rx = None;
                    self.open -= 1;
                }
            }
        }
    }

    /// Drops every receiver (erroring all parked senders) and clears the
    /// buffered heads — the teardown half of a cancelled pipeline.
    fn close(&mut self) {
        for src in &mut self.sources {
            src.rx = None;
            src.buf = Vec::new().into_iter();
        }
        self.heap.clear();
        self.open = 0;
    }
}

/// What [`run_shards`] hands back: worker-translated tuples in the
/// global (GAO-lexicographic) order, the per-shard accounting, and
/// whether the consumer saw a tuple beyond the cap.
struct RunOutcome {
    tuples: Vec<Tuple>,
    shards: Vec<ShardStats>,
    steals: u64,
    saw_extra: bool,
}

/// The scoped (borrowing) pipeline behind `execute` / `execute_limited`:
/// shard tasks on a steal queue, one channel per task, and an in-scope
/// consumer that drains them in spec order. Without a limit, workers
/// materialize their shards concurrently and send one batch each (no
/// backpressure, full parallelism); with a limit, workers stream
/// singleton batches and the consumer stops at the cap (+ one truncation
/// probe) and cancels the rest.
fn run_shards(
    prepared: &PreparedExec,
    db: &Database,
    threads: usize,
    limit: Option<usize>,
    eq_seeds: &[(usize, Val)],
) -> RunOutcome {
    let specs = compute_shard_specs(prepared, db, threads);
    let cap = limit.unwrap_or(usize::MAX);
    let ctx = RunCtx {
        db: prepared.db_for(db),
        query: prepared.exec_query(),
        mode: prepared.gao().mode,
        inv: prepared.inv(),
        eq_seeds,
        cap,
    };
    if threads <= 1 || specs.len() <= 1 {
        return run_serial(&ctx, &specs);
    }
    let emit_mode = match limit {
        None => EmitMode::Materialize,
        Some(_) => EmitMode::Incremental,
    };
    let mut rxs: Vec<Receiver<Vec<Tuple>>> = Vec::with_capacity(specs.len());
    let mut tasks: Vec<ShardTask> = Vec::with_capacity(specs.len());
    for (i, &spec) in specs.iter().enumerate() {
        let (tx, rx) = sync_channel::<Vec<Tuple>>(CHANNEL_CAP);
        tasks.push((i, spec, tx));
        rxs.push(rx);
    }
    let workers = threads.min(specs.len());
    let queue = StealQueue::new(workers, tasks);
    let slots: Mutex<Vec<Option<ShardStats>>> = Mutex::new(vec![None; specs.len()]);
    let order = GaoOrder::new(prepared.gao().order.clone());
    let mut merge = GlobalOrderMerge::new(rxs, &specs, order);
    let mut tuples: Vec<Tuple> = Vec::new();
    let mut saw_extra = false;
    std::thread::scope(|s| {
        for w in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let ctx = &ctx;
            s.spawn(move || {
                drive_worker(w, queue, slots, ctx, emit_mode);
            });
        }
        // Consumer (this thread): the global-order heap merge, with the
        // global cap and a one-tuple truncation probe; cancellation fires
        // the moment the heap has emitted the cap.
        while let Some(t) = merge.next() {
            if tuples.len() == cap {
                saw_extra = true;
                break;
            }
            tuples.push(t);
        }
        queue.cancel();
        merge.close(); // unblock workers parked on full channels
    });
    let shards = specs
        .iter()
        .zip(slots.into_inner().unwrap())
        .map(|(&spec, slot)| slot.unwrap_or_else(|| ShardStats::unrun(spec)))
        .collect();
    debug_assert!(
        GaoOrder::new(prepared.gao().order.clone()).is_strictly_sorted(&tuples),
        "merged reassembly must be GAO-lexicographic"
    );
    RunOutcome {
        tuples,
        shards,
        steals: queue.steals(),
        saw_extra,
    }
}

/// The inline path for one worker or one shard: same cap-and-probe
/// semantics as the parallel pipeline, without threads or channels.
fn run_serial(ctx: &RunCtx<'_>, specs: &[ShardSpec]) -> RunOutcome {
    let mut tuples: Vec<Tuple> = Vec::new();
    let mut shards: Vec<ShardStats> = Vec::with_capacity(specs.len());
    let mut saw_extra = false;
    for &spec in specs {
        if saw_extra {
            shards.push(ShardStats::unrun(spec));
            continue;
        }
        let budget = ctx.cap - tuples.len();
        let mut local = 0usize;
        let (stats, completed) = probe_shard(ctx, spec, budget, None, |t| {
            if local == budget {
                saw_extra = true;
                return false;
            }
            local += 1;
            tuples.push(t);
            true
        });
        shards.push(ShardStats {
            spec,
            stats,
            stolen: false,
            completed,
        });
    }
    RunOutcome {
        tuples,
        shards,
        steals: 0,
        saw_extra,
    }
}

/// An incremental, order-preserving parallel tuple stream.
///
/// Opened by [`ShardedPlan::stream`] or
/// [`PreparedExec::stream_parallel`]: shard tasks run on detached
/// background workers (co-owning the database through an [`Arc`]), each
/// sending its certified tuples — already translated to the caller's
/// attribute numbering — through a bounded channel, and the iterator
/// runs the same global-order k-way heap merge as the scoped pipeline
/// — so tuples arrive **incrementally**, in exactly the serial stream's
/// global attribute order (byte-identical to
/// [`crate::Plan::stream`], re-indexed GAO or not), while later shards
/// probe ahead no further than their channel capacity allows. Memory
/// therefore stays at `O(tasks × channel capacity)` regardless of `Z`.
///
/// Cancellation: dropping the stream cancels the task queue and closes
/// every channel, so queued shards never start and in-flight shards stop
/// at their next probe point (a cooperative flag polled inside the probe
/// loop — a shard whose remaining work would emit nothing still stops
/// promptly). A consumer that takes `k` tuples and drops the stream pays
/// nowhere near the full probe work (the contract `msj --threads
/// --limit` relies on). Call [`ShardedStream::finish`] instead of
/// dropping to also join the workers and read the final, stable
/// counters.
///
/// A `limit` (from [`PreparedExec::stream_parallel`]) is enforced by
/// the stream itself: the iterator yields at most `limit` tuples — the
/// exact global-order prefix the heap merge emits — while each shard
/// task is also capped at `limit` certified tuples plus one
/// truncation-evidence tuple whose probe work is excluded from the
/// counters. After the limit is exhausted, [`ShardedStream::truncated`]
/// probes exactly one tuple further to report whether the result was
/// cut.
pub struct ShardedStream {
    /// The global-order heap merge over the per-shard channels.
    merge: GlobalOrderMerge,
    /// Tuples the iterator may still yield (the global `limit`).
    remaining: usize,
    specs: Vec<ShardSpec>,
    queue: Arc<StealQueue<ShardTask>>,
    slots: Arc<Mutex<Vec<Option<ShardStats>>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Builds the detached-worker pipeline behind [`ShardedStream`].
pub(crate) fn open_stream(
    prepared: &PreparedExec,
    db: &Arc<Database>,
    threads: usize,
    limit: Option<usize>,
    eq_seeds: &[(usize, Val)],
) -> ShardedStream {
    let shared = prepared.shared_db(db);
    let specs = compute_shard_specs(prepared, db, threads);
    let query = prepared.exec_query().clone();
    let mode = prepared.gao().mode;
    let inv = prepared.inv().map(<[usize]>::to_vec);
    let cap = limit.unwrap_or(usize::MAX);
    let mut rxs: Vec<Receiver<Vec<Tuple>>> = Vec::with_capacity(specs.len());
    let mut tasks: Vec<ShardTask> = Vec::with_capacity(specs.len());
    for (idx, &spec) in specs.iter().enumerate() {
        let (tx, rx) = sync_channel::<Vec<Tuple>>(CHANNEL_CAP);
        tasks.push((idx, spec, tx));
        rxs.push(rx);
    }
    let workers = threads.max(1).min(specs.len());
    let queue = Arc::new(StealQueue::new(workers, tasks));
    let slots: Arc<Mutex<Vec<Option<ShardStats>>>> = Arc::new(Mutex::new(vec![None; specs.len()]));
    let seeds: Vec<(usize, Val)> = eq_seeds.to_vec();
    let handles = (0..workers)
        .map(|w| {
            let queue = Arc::clone(&queue);
            let slots = Arc::clone(&slots);
            let db = Arc::clone(&shared);
            let query = query.clone();
            let seeds = seeds.clone();
            let inv = inv.clone();
            std::thread::spawn(move || {
                let ctx = RunCtx {
                    db: &db,
                    query: &query,
                    mode,
                    inv: inv.as_deref(),
                    eq_seeds: &seeds,
                    cap,
                };
                drive_worker(w, &queue, &slots, &ctx, EmitMode::Incremental);
            })
        })
        .collect();
    let order = GaoOrder::new(prepared.gao().order.clone());
    ShardedStream {
        merge: GlobalOrderMerge::new(rxs, &specs, order),
        remaining: cap,
        specs,
        queue,
        slots,
        handles,
    }
}

impl ShardedStream {
    /// A live snapshot of the aggregate counters: the sum over shards
    /// whose probe loops have finished so far. Complete (and stable) only
    /// after the stream is exhausted or [`ShardedStream::finish`] ran —
    /// mid-flight it undercounts by the shards still probing.
    pub fn stats(&self) -> ExecStats {
        let mut agg = ExecStats::new();
        for s in self.slots.lock().unwrap().iter().flatten() {
            agg.merge(&s.stats);
        }
        agg
    }

    /// Snapshot of the per-shard accounting recorded so far (finished
    /// shards only), in output-space order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.slots
            .lock()
            .unwrap()
            .iter()
            .flatten()
            .cloned()
            .collect()
    }

    /// The shard tasks this stream runs, in output-space order.
    pub fn specs(&self) -> &[ShardSpec] {
        &self.specs
    }

    /// Cancels outstanding work, joins the workers, and returns the
    /// final accounting: every spec is represented (cancelled shards
    /// with zero counters), the aggregate is the exact per-shard sum,
    /// and nothing mutates afterwards — what the cancellation tests
    /// assert work bounds against.
    pub fn finish(mut self) -> ShardReport {
        self.queue.cancel();
        self.merge.close(); // close every channel: unblock parked senders
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        let recorded = self.slots.lock().unwrap();
        let shards: Vec<ShardStats> = self
            .specs
            .iter()
            .zip(recorded.iter())
            .map(|(&spec, slot)| match slot {
                Some(s) => s.clone(),
                None => ShardStats::unrun(spec),
            })
            .collect();
        drop(recorded);
        let mut stats = ExecStats::new();
        for s in &shards {
            stats.merge(&s.stats);
        }
        ShardReport {
            stats,
            shards,
            steals: self.queue.steals(),
        }
    }
}

impl ShardedStream {
    /// The next tuple off the merge, ignoring the global limit (shared
    /// by `next` and the truncation probe). Workers translated already,
    /// so the merged tuple is returned as-is.
    fn pull(&mut self) -> Option<Tuple> {
        self.merge.next()
    }

    /// After the iterator has yielded its `limit` tuples, reports
    /// whether at least one more existed — the truthfulness probe behind
    /// truncation markers. Bypasses the limit to pull exactly one tuple
    /// further (shard workers emit one tuple of truncation evidence
    /// beyond their cap for exactly this call).
    pub fn truncated(&mut self) -> bool {
        self.pull().is_some()
    }
}

impl Iterator for ShardedStream {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.remaining == 0 {
            return None;
        }
        let t = self.pull()?;
        self.remaining -= 1;
        Some(t)
    }
}

impl Drop for ShardedStream {
    fn drop(&mut self) {
        // Idempotent teardown (also runs after `finish`): abandon queued
        // tasks; the merge's receivers drop with it, erroring every
        // in-flight send. Workers are detached but co-own all their
        // data, so not joining is safe.
        self.queue.cancel();
    }
}

/// The `strategy` value an explain reports for a shard split: `"nested"`
/// when any task is a second-attribute slice of a heavy run, `"stolen"`
/// when there are more tasks than workers (idle workers will steal), and
/// `"equi-depth"` for a plain one-task-per-worker split.
pub fn shard_strategy(specs: &[ShardSpec], threads: usize) -> &'static str {
    if specs.iter().any(|s| s.is_nested()) {
        "nested"
    } else if specs.len() > threads {
        "stolen"
    } else {
        "equi-depth"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_join;
    use crate::plan::plan;
    use crate::query::Query;
    use minesweeper_storage::{builder, RelationBuilder};

    fn path_db(n: i64) -> (Database, Query) {
        let mut db = Database::new();
        let e1 = db
            .add(builder::binary("E1", (0..n).map(|i| (i, (i * 7) % n))))
            .unwrap();
        let e2 = db
            .add(builder::binary("E2", (0..n).map(|i| ((i * 3) % n, i))))
            .unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        (db, q)
    }

    #[test]
    fn parallel_matches_serial_identity_gao() {
        let (db, q) = path_db(40);
        let p = plan(&db, &q).unwrap();
        let serial = p.execute(&db).unwrap();
        for k in [1, 2, 3, 8] {
            let par = p.execute_parallel(&db, k).unwrap();
            assert_eq!(par.result.tuples, serial.result.tuples, "k={k}");
            assert_eq!(par.gao, serial.gao);
            assert!(par.shards.len() <= k.max(1) * MAX_TASKS_PER_THREAD);
        }
    }

    #[test]
    fn parallel_matches_serial_reindexed_gao() {
        // Example B.7's shape forces a non-identity GAO (re-index path).
        let mut db = Database::new();
        let mut rb = RelationBuilder::new("R", 3);
        for a in 1..=6 {
            for b in 1..=6 {
                rb.push(&[a, b, (a * b) % 4 + 1]);
            }
        }
        let r = db.add(rb.build().unwrap()).unwrap();
        let s = db
            .add(builder::binary(
                "S",
                (1..=6).flat_map(|a| [(a, 1), (a, 2), (a, 3), (a, 4)]),
            ))
            .unwrap();
        let t = db
            .add(builder::binary("T", (1..=6).flat_map(|b| [(b, 1), (b, 3)])))
            .unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed());
        let serial = p.execute(&db).unwrap();
        assert!(!serial.result.tuples.is_empty());
        for k in [2, 4, 16] {
            let par = p.execute_parallel(&db, k).unwrap();
            assert_eq!(par.result.tuples, serial.result.tuples, "k={k}");
        }
    }

    #[test]
    fn parallel_matches_serial_cyclic_general_mode() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary(
                "E",
                (0..60).map(|i: i64| (i % 12, (i * 5 + 1) % 12)),
            ))
            .unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let p = plan(&db, &q).unwrap();
        let serial = p.execute(&db).unwrap();
        let par = p.execute_parallel(&db, 4).unwrap();
        assert_eq!(par.result.tuples, serial.result.tuples);
        assert_eq!(par.result.tuples, naive_join(&db, &q).unwrap());
    }

    #[test]
    fn shard_stats_sum_to_aggregate() {
        let (db, q) = path_db(50);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 4).unwrap();
        assert!(par.shards.len() >= 2, "enough distinct values to shard");
        let mut sum = ExecStats::new();
        for s in &par.shards {
            assert!(s.completed, "an unlimited run exhausts every shard");
            sum.merge(&s.stats);
        }
        assert_eq!(sum, par.result.stats);
        assert_eq!(sum.outputs as usize, par.result.tuples.len());
        // Specs are disjoint, contiguous, and cover the output space.
        check_spec_cover(&par.shards);
    }

    /// Asserts the shard list tiles the output space: plain shards are
    /// contiguous on the first attribute; a nested group shares one
    /// single-value first interval and tiles the second attribute.
    fn check_spec_cover(shards: &[ShardStats]) {
        for w in shards.windows(2) {
            let (a, b) = (w[0].spec, w[1].spec);
            if a.bounds == b.bounds {
                let (s1, s2) = (a.second.unwrap(), b.second.unwrap());
                assert_eq!(s1.hi + 1, s2.lo, "nested slices contiguous: {a} {b}");
            } else {
                assert_eq!(
                    a.bounds.hi + 1,
                    b.bounds.lo,
                    "first-attr contiguous: {a} {b}"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_distinct_values() {
        // The primary is the largest-fanout attr-0 relation (S, 4 values):
        // 64 requested workers must cap at 4 shards, all non-empty.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [2, 5, 9])).unwrap();
        let s = db.add(builder::unary("S", [1, 2, 5, 9])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 64).unwrap();
        assert_eq!(par.result.tuples, vec![vec![2], vec![5], vec![9]]);
        assert_eq!(
            par.shards.len(),
            4,
            "capped at the primary's distinct values"
        );
    }

    #[test]
    fn unary_duplicate_run_stays_one_shard() {
        // Every relation that could be primary holds a single distinct
        // first value and there is no second attribute to nest on: the
        // split must fall back to a single unbounded shard — no empty
        // shard, no panic.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [7])).unwrap();
        let s = db.add(builder::unary("S", [7])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 8).unwrap();
        assert_eq!(par.shards.len(), 1);
        assert!(par.shards[0].spec.bounds.is_unbounded());
        assert!(!par.shards[0].spec.is_nested());
        assert_eq!(par.result.tuples, vec![vec![7]]);
    }

    #[test]
    fn giant_duplicate_run_splits_on_the_second_attribute() {
        // One giant duplicate run on the first *GAO* attribute: the
        // planner's (data-blind) nested elimination order for this path
        // shape is [2, 1, 0], so concentrating every S tuple on one value
        // of attribute 2 puts the run at execution position 0. PR 2
        // degraded this to a single serial shard; the nested split must
        // now divide the run on the second execution attribute and still
        // match the serial output byte for byte.
        let mut db = Database::new();
        let r = db
            .add(builder::binary("R", (0..200).map(|i| ((i * 7) % 200, i))))
            .unwrap();
        let s = db
            .add(builder::binary("S", (0..200).map(|i| (i, 9))))
            .unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed(), "precondition: the run sits at GAO 0");
        let par = p.execute_parallel(&db, 4).unwrap();
        assert!(
            par.shards.len() > 1,
            "nested split must engage: {:?}",
            par.shards.iter().map(|s| s.spec).collect::<Vec<_>>()
        );
        assert!(par.shards.iter().all(|s| s.spec.is_nested()));
        assert_eq!(par.result.tuples, p.execute(&db).unwrap().result.tuples);
        check_spec_cover(&par.shards);
        let mut sum = ExecStats::new();
        for s in &par.shards {
            sum.merge(&s.stats);
        }
        assert_eq!(sum, par.result.stats, "nested shards still reconcile");
    }

    #[test]
    fn skewed_first_attribute_still_matches_serial() {
        // One heavy first value among light ones; whatever GAO and
        // primary the planner picks, the parallel result must equal the
        // serial one.
        let mut db = Database::new();
        let r = db
            .add(builder::binary(
                "R",
                (0..30).map(|i| (7, i)).chain([(1, 3), (2, 5)]),
            ))
            .unwrap();
        let s = db
            .add(builder::binary("S", (0..30).map(|i| (i, i % 5))))
            .unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 8).unwrap();
        assert!(!par.shards.is_empty());
        assert_eq!(par.result.tuples, p.execute(&db).unwrap().result.tuples);
        assert_eq!(
            par.result.stats.outputs as usize,
            par.result.tuples.len(),
            "aggregated outputs match the materialized count"
        );
    }

    #[test]
    fn empty_primary_relation() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [])).unwrap();
        let s = db.add(builder::unary("S", [])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        let par = p.execute_parallel(&db, 4).unwrap();
        assert!(par.result.tuples.is_empty());
        assert_eq!(par.shards.len(), 1, "no values ⇒ one unbounded shard");
    }

    #[test]
    fn limited_execution_truncates_to_the_sorted_prefix() {
        // A unary intersection has a single attribute, so the plan cannot
        // re-index and the cap yields exactly the first k of the full
        // sorted result.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 0..40)).unwrap();
        let s = db.add(builder::unary("S", (0..40).map(|i| i * 2))).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        assert!(!p.is_reindexed());
        let full = p.execute(&db).unwrap().result.tuples;
        assert!(full.len() > 5);
        let sp = p.clone().sharded(4);
        let limited = sp.execute_limited(&db, Some(5)).unwrap();
        assert_eq!(limited.result.tuples, full[..5]);
        // Every shard certified at most the cap (the truncation probe is
        // excluded from the counters).
        for s in &limited.shards {
            assert!(s.stats.outputs <= 5, "shard over cap: {:?}", s.stats);
        }
        // A limit beyond Z changes nothing and is not "truncated".
        let all = sp.execute_limited(&db, Some(full.len() + 10)).unwrap();
        assert_eq!(all.result.tuples, full);
        assert!(!all.truncated);
        assert!(limited.truncated, "the 5-cap really cut tuples");
        // A limit exactly equal to Z returns everything, un-truncated.
        let exact = sp.execute_limited(&db, Some(full.len())).unwrap();
        assert_eq!(exact.result.tuples, full);
        assert!(!exact.truncated, "equal-to-limit results are complete");
        // The unlimited path never reports truncation.
        assert!(!sp.execute(&db).unwrap().truncated);
    }

    #[test]
    fn limited_execution_on_a_reindexed_plan_is_the_serial_sorted_prefix() {
        // The global-order merge makes the limited parallel result exact
        // under a re-indexed GAO: the same tuples the serial stream's
        // first k are, sorted in the original numbering — not merely some
        // deterministic k-subset.
        let (db, q) = path_db(40);
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed(), "path query re-indexes (GAO [2,1,0])");
        let full = p.execute(&db).unwrap().result.tuples;
        for k in [1, 5, 17] {
            let mut serial_prefix: Vec<Tuple> = p.stream(&db).unwrap().take(k).collect();
            serial_prefix.sort_unstable();
            let limited = p.clone().sharded(4).execute_limited(&db, Some(k)).unwrap();
            assert_eq!(
                limited.result.tuples, serial_prefix,
                "k={k}: parallel limit must equal the serial sorted prefix"
            );
            for s in &limited.shards {
                assert!(s.stats.outputs <= k as u64);
            }
        }
        let limited = p.clone().sharded(4).execute_limited(&db, Some(5)).unwrap();
        for t in &limited.result.tuples {
            assert!(full.contains(t));
        }
    }

    #[test]
    fn sharded_stream_limit_is_the_exact_serial_stream_prefix_reindexed() {
        // Byte-identity of the *sequence* (content and order) between the
        // parallel stream under a limit and the serial stream's take(k),
        // on a re-indexed GAO — the tentpole contract of the merge.
        let (db, q) = path_db(60);
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed());
        let prepared = p.prepare_exec(&db).unwrap();
        let db = Arc::new(db);
        for threads in [2, 4, 7] {
            for k in [1, 3, 11, 40] {
                let serial: Vec<Tuple> = p.stream(&db).unwrap().take(k).collect();
                let par: Vec<Tuple> = prepared.stream_parallel(&db, threads, Some(k)).collect();
                assert_eq!(par, serial, "threads={threads} k={k}");
            }
        }
    }

    #[test]
    fn merge_handles_nested_shards_in_global_order() {
        // A giant duplicate run forces nested specs; the stream's merge
        // must still reproduce the serial sequence across the
        // second-attribute slices.
        let mut db = Database::new();
        let r = db
            .add(builder::binary("R", (0..200).map(|i| ((i * 7) % 200, i))))
            .unwrap();
        let s = db
            .add(builder::binary("S", (0..200).map(|i| (i, 9))))
            .unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        let p = plan(&db, &q).unwrap();
        assert!(p.is_reindexed());
        let specs = p.clone().sharded(4).shard_specs(&db).unwrap();
        assert!(specs.iter().any(|s| s.is_nested()), "nested split engages");
        let serial: Vec<Tuple> = p.stream(&db).unwrap().collect();
        let prepared = p.prepare_exec(&db).unwrap();
        let db = Arc::new(db);
        let par: Vec<Tuple> = prepared.stream_parallel(&db, 4, None).collect();
        assert_eq!(par, serial);
        let k = serial.len() / 3;
        let prefix: Vec<Tuple> = prepared.stream_parallel(&db, 4, Some(k)).collect();
        assert_eq!(prefix, serial[..k]);
    }

    #[test]
    fn limited_execution_cancels_the_suffix() {
        // With a tiny cap on a large result, shards after the truncation
        // probe must be abandoned: zero counters, not completed.
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 0..4000)).unwrap();
        let s = db.add(builder::unary("S", 0..4000)).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        let full = p.execute_parallel(&db, 4).unwrap();
        let limited = p.clone().sharded(4).execute_limited(&db, Some(1)).unwrap();
        assert!(limited.truncated);
        assert!(
            limited.result.stats.probe_points * 2 < full.result.stats.probe_points,
            "cancellation must skip most probe work: {} vs {}",
            limited.result.stats.probe_points,
            full.result.stats.probe_points
        );
        assert!(
            limited.shards.iter().any(|s| !s.completed),
            "some shard was cancelled or capped"
        );
    }

    #[test]
    fn prepared_exec_parallel_matches_sharded_plan() {
        let (db, q) = path_db(30);
        let p = plan(&db, &q).unwrap();
        let via_plan = p.execute_parallel(&db, 3).unwrap();
        let prepared = p.prepare_exec(&db).unwrap();
        let via_exec = prepared.execute_parallel(&db, 3, None);
        assert_eq!(via_exec.result.tuples, via_plan.result.tuples);
        assert_eq!(via_exec.shards.len(), via_plan.shards.len());
    }

    #[test]
    fn sharded_stream_yields_serial_stream_order_incrementally() {
        let (db, q) = path_db(30);
        let p = plan(&db, &q).unwrap();
        let serial: Vec<Tuple> = p.stream(&db).unwrap().collect();
        let sharded = p.clone().sharded(3);
        let db = Arc::new(db);
        let got: Vec<Tuple> = sharded.stream(&db).unwrap().collect();
        assert_eq!(got, serial);
        // Finish after full consumption: stable, reconciling accounting.
        let mut stream = sharded.stream(&db).unwrap();
        let first = stream.next().unwrap();
        assert_eq!(first, serial[0], "incremental: first tuple mid-flight");
        let rest: Vec<Tuple> = stream.by_ref().collect();
        assert_eq!(rest.len(), serial.len() - 1);
        let report = stream.finish();
        assert_eq!(report.stats.outputs as usize, serial.len());
        assert!(report.shards.iter().all(|s| s.completed));
        let mut sum = ExecStats::new();
        for s in &report.shards {
            sum.merge(&s.stats);
        }
        assert_eq!(sum, report.stats);
    }

    #[test]
    fn dropping_a_sharded_stream_cancels_the_workers() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", 0..8000)).unwrap();
        let s = db.add(builder::unary("S", 0..8000)).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        let p = plan(&db, &q).unwrap();
        let db = Arc::new(db);
        let full = p.execute_parallel(&db, 4).unwrap();
        let mut stream = p.clone().sharded(4).stream(&db).unwrap();
        assert!(stream.next().is_some());
        let report = stream.finish();
        assert!(
            report.stats.probe_points * 2 < full.result.stats.probe_points,
            "early finish must cancel most probe work: {} vs {}",
            report.stats.probe_points,
            full.result.stats.probe_points
        );
        assert!(report.shards.iter().any(|s| !s.completed));
        assert_eq!(report.shards.len(), stream_specs_len(&p, &db, 4));
    }

    fn stream_specs_len(p: &Plan, db: &Arc<Database>, threads: usize) -> usize {
        p.clone().sharded(threads).shard_specs(db).unwrap().len()
    }

    #[test]
    fn explain_and_accessors() {
        let (db, q) = path_db(10);
        let p = plan(&db, &q).unwrap();
        let sp = p.clone().sharded(0);
        assert_eq!(sp.threads(), 1, "0 workers clamps to 1");
        let sp = p.clone().sharded(4);
        assert_eq!(sp.threads(), 4);
        assert_eq!(sp.plan().gao(), p.gao());
        assert!(sp.explain().contains("parallel: up to 4"));
        let specs = sp.shard_specs(&db).unwrap();
        assert!(!specs.is_empty() && specs.len() <= 4 * MAX_TASKS_PER_THREAD);
        assert_eq!(shard_strategy(&specs, 4), "stolen");
        assert_eq!(shard_strategy(&specs[..1], 4), "equi-depth");
    }
}
