//! The triangle query with the dyadic CDS (Section 5.3, Appendix L,
//! Theorem 5.4).
//!
//! `Q∆ = R(A,B) ⋈ S(B,C) ⋈ T(A,C)` under GAO `(A, B, C)`. The outer
//! exploration is the generic Algorithm 2 (its constraints have exactly the
//! seven shapes the [`TriangleCds`] stores); the probe-point search is the
//! corrected Algorithm 10, whose dyadic subtree pruning explores `O(|C|)`
//! `(a, b)` prefixes instead of the generic CDS's `Ω(|C|²)` — total
//! runtime `Õ(|C|^{3/2} + Z)`.

use minesweeper_cds::{Constraint, ProbeStats, TriangleCds};
use minesweeper_storage::{Database, ExecStats, GapCursor, RelId, StorageRef, TrieRelation};

use crate::minesweeper::{explore_atom, merge_probe_stats, JoinResult};
use crate::query::{Query, QueryError};

/// Evaluates `R(A,B) ⋈ S(B,C) ⋈ T(A,C)` with the triangle CDS. The three
/// relations must be binary.
pub fn triangle_join(
    db: &Database,
    r: RelId,
    s: RelId,
    t: RelId,
) -> Result<JoinResult, QueryError> {
    let query = Query::new(3)
        .atom(r, &[0, 1])
        .atom(s, &[1, 2])
        .atom(t, &[0, 2]);
    query.validate(db)?;
    let b_domain = b_domain_bound(db.relation(r), db.relation(s));
    let mut cds = TriangleCds::new(b_domain);
    let mut pst = ProbeStats::default();
    let mut stats = ExecStats::new();
    let mut tuples = Vec::new();
    let mut gaps: Vec<Constraint> = Vec::new();
    let mut cursors: Vec<GapCursor> = query
        .atoms
        .iter()
        .map(|a| GapCursor::new(db.relation(a.rel).arity()))
        .collect();
    stats.dense_leaves = query
        .atoms
        .iter()
        .map(|a| db.probe_target(a.rel).dense_runs())
        .sum();
    while let Some(probe) = cds.get_probe_point(&mut pst) {
        gaps.clear();
        let mut is_output = true;
        for (atom, cursor) in query.atoms.iter().zip(&mut cursors) {
            let matched = match db.probe_target(atom.rel) {
                StorageRef::Sorted(rel) => {
                    explore_atom(rel, atom, 3, &probe, cursor, &mut gaps, &mut stats)
                }
                StorageRef::Hybrid(rel) => {
                    explore_atom(rel, atom, 3, &probe, cursor, &mut gaps, &mut stats)
                }
            };
            is_output &= matched;
        }
        if is_output {
            stats.outputs += 1;
            cds.insert_constraint(&Constraint::point_exclusion(&probe), &mut pst);
            tuples.push(probe.to_vec());
        } else {
            for c in &gaps {
                cds.insert_constraint(c, &mut pst);
            }
        }
    }
    merge_probe_stats(&mut stats, &pst);
    Ok(JoinResult { tuples, stats })
}

/// The `B` domain must cover every `B` value occurring in the data
/// (`R`'s second column, `S`'s first column); the dyadic tree rounds up to
/// a power of two.
fn b_domain_bound(r: &TrieRelation, s: &TrieRelation) -> i64 {
    let r_max = r.iter_tuples().map(|t| t[1]).max().unwrap_or(0);
    let s_max = s.first_column().last().copied().unwrap_or(0);
    r_max.max(s_max) + 1
}

/// Convenience: the triangle query as a generic [`Query`] (for running the
/// baseline generic Minesweeper on the same instance).
pub fn triangle_query(r: RelId, s: RelId, t: RelId) -> Query {
    Query::new(3)
        .atom(r, &[0, 1])
        .atom(s, &[1, 2])
        .atom(t, &[0, 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minesweeper::minesweeper_join;
    use crate::naive::naive_join;
    use minesweeper_cds::ProbeMode;
    use minesweeper_storage::{builder, Database, Val};

    fn triangle_db(edges: &[(Val, Val)]) -> (Database, RelId, RelId, RelId) {
        let mut db = Database::new();
        let r = db.add(builder::binary("R", edges.iter().copied())).unwrap();
        let s = db.add(builder::binary("S", edges.iter().copied())).unwrap();
        let t = db.add(builder::binary("T", edges.iter().copied())).unwrap();
        (db, r, s, t)
    }

    #[test]
    fn small_graph_triangles() {
        let (db, r, s, t) = triangle_db(&[(1, 2), (2, 3), (1, 3), (3, 4), (2, 4)]);
        let res = triangle_join(&db, r, s, t).unwrap();
        let mut got = res.tuples.clone();
        got.sort();
        assert_eq!(got, vec![vec![1, 2, 3], vec![2, 3, 4]]);
    }

    #[test]
    fn no_triangles_bipartite() {
        // Bipartite graphs have no directed (a<b<c) triangles.
        let edges: Vec<(Val, Val)> = (0..10).map(|i| (i, i + 10)).collect();
        let (db, r, s, t) = triangle_db(&edges);
        let res = triangle_join(&db, r, s, t).unwrap();
        assert!(res.tuples.is_empty());
    }

    #[test]
    fn agrees_with_generic_and_naive_on_random_graphs() {
        let mut seed = 0xfeedface2468u64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..15 {
            let edges: Vec<(Val, Val)> = (0..rng(40) + 5)
                .map(|_| (rng(12) as Val, rng(12) as Val))
                .collect();
            let (db, r, s, t) = triangle_db(&edges);
            let mut fast = triangle_join(&db, r, s, t).unwrap().tuples;
            fast.sort();
            let q = triangle_query(r, s, t);
            let mut generic = minesweeper_join(&db, &q, ProbeMode::General)
                .unwrap()
                .tuples;
            generic.sort();
            let brute = naive_join(&db, &q).unwrap();
            assert_eq!(fast, brute);
            assert_eq!(generic, brute);
        }
    }

    #[test]
    fn distinct_relations_per_atom() {
        let mut db = Database::new();
        let r = db.add(builder::binary("R", [(0, 1), (2, 3)])).unwrap();
        let s = db.add(builder::binary("S", [(1, 5), (3, 6)])).unwrap();
        let t = db.add(builder::binary("T", [(0, 5), (2, 7)])).unwrap();
        let res = triangle_join(&db, r, s, t).unwrap();
        assert_eq!(res.tuples, vec![vec![0, 1, 5]]);
    }

    #[test]
    fn rejects_non_binary_relations() {
        let mut db = Database::new();
        let u = db.add(builder::unary("U", [1])).unwrap();
        let s = db.add(builder::binary("S", [(1, 2)])).unwrap();
        let t = db.add(builder::binary("T", [(1, 2)])).unwrap();
        assert!(triangle_join(&db, u, s, t).is_err());
    }

    #[test]
    fn empty_edge_set() {
        let (db, r, s, t) = triangle_db(&[]);
        let res = triangle_join(&db, r, s, t).unwrap();
        assert!(res.tuples.is_empty());
        assert!(res.stats.probe_points <= 2);
    }
}
