//! Minesweeper specialized to set intersection (Appendix H, Algorithm 8).
//!
//! `Q∩ = S₁(A) ⋈ … ⋈ S_m(A)`. The CDS degenerates to a single interval
//! set; each iteration probes the current active value in every set,
//! outputs it when all agree, and otherwise inserts the discovered gaps
//! `(S_i[x^ℓ_i], S_i[x^h_i])`. Theorem H.4: the run takes
//! `O((|C| + Z)·m·log N)` — near instance optimality for intersection,
//! matching Demaine–López-Ortiz–Munro-style adaptive intersection
//! (Section 6.2).

use minesweeper_cds::{IntervalSet, POS_INF, PROBE_START};
use minesweeper_storage::{ExecStats, TrieRelation};

use crate::minesweeper::JoinResult;

/// Intersects `m ≥ 1` unary relations (Algorithm 8).
///
/// Panics if any relation is not unary.
///
/// ```
/// use minesweeper_core::set_intersection;
/// use minesweeper_storage::builder::unary;
/// let a = unary("A", [1, 3, 5]);
/// let b = unary("B", [3, 4, 5]);
/// let res = set_intersection(&[&a, &b]);
/// assert_eq!(res.tuples, vec![vec![3], vec![5]]);
/// ```
pub fn set_intersection(sets: &[&TrieRelation]) -> JoinResult {
    assert!(!sets.is_empty(), "need at least one set");
    assert!(
        sets.iter().all(|s| s.arity() == 1),
        "set intersection expects unary relations"
    );
    let mut stats = ExecStats::new();
    let mut cds = IntervalSet::new();
    let mut tuples = Vec::new();
    loop {
        stats.cds_next_calls += 1;
        let t = cds.next(PROBE_START);
        if t == POS_INF {
            break;
        }
        stats.probe_points += 1;
        let mut all_exact = true;
        let mut changed = false;
        for s in sets {
            let gap = s.find_gap(s.root(), t, &mut stats);
            if !gap.exact() {
                all_exact = false;
                // Gap (S[x^ℓ], S[x^h]) — insert as an exclusion interval.
                stats.constraints_inserted += 1;
                changed |= cds.insert_open(gap.lo_val, gap.hi_val);
            }
        }
        if all_exact {
            stats.outputs += 1;
            tuples.push(vec![t]);
            stats.constraints_inserted += 1;
            cds.insert_open(t - 1, t + 1);
        } else {
            debug_assert!(changed, "a non-output probe must be ruled out");
        }
    }
    JoinResult { tuples, stats }
}

/// The Remark H.5 refinement: identical probe/constraint structure to
/// [`set_intersection`], but each set is scanned with a monotone galloping
/// cursor instead of a fresh root binary search per probe — "if we
/// implement Minesweeper using the galloping/leapfrogging strategy shown
/// in \[20\] and \[53\], then we can speed up the search … those ideas in
/// fact work very well in practice!". Output and probe sequence are
/// bit-identical to Algorithm 8; only the index-access cost changes (the
/// per-set positions advance monotonically because probe points do).
pub fn set_intersection_galloping(sets: &[&TrieRelation]) -> JoinResult {
    use minesweeper_storage::sorted::gallop_ge;
    use minesweeper_storage::{NEG_INF as VNEG, POS_INF as VPOS};
    assert!(!sets.is_empty(), "need at least one set");
    assert!(
        sets.iter().all(|s| s.arity() == 1),
        "set intersection expects unary relations"
    );
    let mut stats = ExecStats::new();
    let mut cds = IntervalSet::new();
    let mut tuples = Vec::new();
    let arrays: Vec<&[minesweeper_storage::Val]> = sets.iter().map(|s| s.first_column()).collect();
    let mut pos = vec![0usize; arrays.len()];
    loop {
        stats.cds_next_calls += 1;
        let t = cds.next(PROBE_START);
        if t == POS_INF {
            break;
        }
        stats.probe_points += 1;
        let mut all_exact = true;
        for (i, a) in arrays.iter().enumerate() {
            // Gallop from the remembered position: first element ≥ t.
            stats.seeks += 1;
            let p = gallop_ge(a, pos[i], t);
            pos[i] = p.saturating_sub(1); // keep the low bracket reachable
            let lo_val = if p == 0 { VNEG } else { a[p - 1] };
            let hi_val = if p == a.len() { VPOS } else { a[p] };
            let exact = hi_val == t;
            if !exact {
                all_exact = false;
                stats.constraints_inserted += 1;
                cds.insert_open(lo_val, hi_val);
            }
        }
        if all_exact {
            stats.outputs += 1;
            tuples.push(vec![t]);
            stats.constraints_inserted += 1;
            cds.insert_open(t - 1, t + 1);
        }
    }
    JoinResult { tuples, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_storage::builder::unary;
    use minesweeper_storage::Val;

    fn vals(r: &JoinResult) -> Vec<Val> {
        r.tuples.iter().map(|t| t[0]).collect()
    }

    #[test]
    fn basic_intersection() {
        let a = unary("A", [1, 3, 5, 7, 9]);
        let b = unary("B", [3, 4, 7, 10]);
        let c = unary("C", [0, 3, 7, 11]);
        let res = set_intersection(&[&a, &b, &c]);
        assert_eq!(vals(&res), vec![3, 7]);
        assert_eq!(res.stats.outputs, 2);
    }

    #[test]
    fn single_set_streams_through() {
        let a = unary("A", [2, 4, 6]);
        let res = set_intersection(&[&a]);
        assert_eq!(vals(&res), vec![2, 4, 6]);
    }

    #[test]
    fn disjoint_ranges_constant_certificate() {
        // A ends before B begins: one gap kills everything; probes must be
        // O(1) even though both sets are large.
        let n: Val = 2000;
        let a = unary("A", 0..n);
        let b = unary("B", n..2 * n);
        let res = set_intersection(&[&a, &b]);
        assert!(res.tuples.is_empty());
        assert!(
            res.stats.probe_points <= 3,
            "probes = {}",
            res.stats.probe_points
        );
        assert!(res.stats.find_gap_calls <= 6);
    }

    #[test]
    fn interleaved_needs_linear_work() {
        // Evens vs odds: the optimal certificate is Θ(N); the algorithm
        // stays within a constant factor of it.
        let n: Val = 300;
        let a = unary("A", (0..n).map(|i| 2 * i));
        let b = unary("B", (0..n).map(|i| 2 * i + 1));
        let res = set_intersection(&[&a, &b]);
        assert!(res.tuples.is_empty());
        assert!(res.stats.probe_points as i64 <= 2 * n + 4);
    }

    #[test]
    fn empty_input_set() {
        let a = unary("A", []);
        let b = unary("B", [1, 2]);
        let res = set_intersection(&[&a, &b]);
        assert!(res.tuples.is_empty());
        assert_eq!(res.stats.probe_points, 1);
    }

    #[test]
    fn identical_sets_output_everything() {
        let a = unary("A", [5, 10, 15]);
        let b = unary("B", [5, 10, 15]);
        let res = set_intersection(&[&a, &b]);
        assert_eq!(vals(&res), vec![5, 10, 15]);
        // One gap probe between consecutive outputs: probes = 2Z + O(1).
        assert!(res.stats.probe_points <= 8);
    }

    #[test]
    fn galloping_variant_matches_binary_search_variant() {
        let mut seed = 0x9e37u64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..25 {
            let k = 2 + rng(3) as usize;
            let sets: Vec<_> = (0..k)
                .map(|i| unary(format!("S{i}"), (0..rng(40)).map(|_| rng(60) as Val)))
                .collect();
            let refs: Vec<&super::TrieRelation> = sets.iter().collect();
            let a = set_intersection(&refs);
            let b = set_intersection_galloping(&refs);
            assert_eq!(a.tuples, b.tuples);
            // Identical probe structure: same probe and constraint counts.
            assert_eq!(a.stats.probe_points, b.stats.probe_points);
            assert_eq!(a.stats.constraints_inserted, b.stats.constraints_inserted);
        }
    }

    #[test]
    fn galloping_positions_advance_monotonically() {
        // On the interleaved family the galloping cursor touches each
        // element O(1) times: seeks equal probes × sets, with short jumps.
        let n: Val = 200;
        let a = unary("A", (0..n).map(|i| 2 * i));
        let b = unary("B", (0..n).map(|i| 2 * i + 1));
        let res = set_intersection_galloping(&[&a, &b]);
        assert!(res.tuples.is_empty());
        assert_eq!(res.stats.seeks, 2 * res.stats.probe_points);
    }

    #[test]
    #[should_panic(expected = "unary")]
    fn non_unary_rejected() {
        let b = minesweeper_storage::builder::binary("B", [(1, 2)]);
        set_intersection(&[&b]);
    }
}
