//! Natural join queries over a global attribute order.
//!
//! A [`Query`] fixes `n` attributes whose index order **is** the GAO
//! (`A₀ < A₁ < … < A_{n−1}`) and a list of [`Atom`]s. Each atom binds a
//! stored relation to a strictly increasing list of attribute positions —
//! the paper's requirement that every index be consistent with the GAO
//! (Section 2.1). Two atoms may share one physical relation (the star
//! query's three `S(A, ·)` atoms all read the same index).

use minesweeper_hypergraph::Hypergraph;
use minesweeper_storage::{Database, RelId};
use std::fmt;

/// One atom `R(A_{s(1)}, …, A_{s(k)})`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The backing relation.
    pub rel: RelId,
    /// GAO positions of the atom's attributes, strictly increasing.
    pub attrs: Vec<usize>,
}

/// Errors raised by query validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An atom's attribute list was not strictly increasing — its index
    /// would not be consistent with the GAO.
    AttrsNotSorted {
        /// Index of the offending atom.
        atom: usize,
    },
    /// An atom referenced an attribute outside `0..n_attrs`.
    AttrOutOfRange {
        /// Index of the offending atom.
        atom: usize,
        /// The offending attribute position.
        attr: usize,
    },
    /// An atom's attribute count does not match its relation's arity.
    ArityMismatch {
        /// Index of the offending atom.
        atom: usize,
        /// Attribute count in the atom.
        atom_arity: usize,
        /// Column count of the backing relation.
        rel_arity: usize,
    },
    /// Some attribute occurs in no atom (its value would be unconstrained).
    UncoveredAttribute(usize),
    /// The query has no atoms.
    NoAtoms,
    /// The selected algorithm cannot evaluate this query (e.g. Yannakakis
    /// on a query that is not α-acyclic).
    Unsupported {
        /// Registry name of the algorithm that refused the query.
        algorithm: &'static str,
        /// Why the query is outside the algorithm's class.
        reason: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::AttrsNotSorted { atom } => {
                write!(f, "atom {atom}: attributes not strictly increasing in GAO")
            }
            QueryError::AttrOutOfRange { atom, attr } => {
                write!(f, "atom {atom}: attribute {attr} out of range")
            }
            QueryError::ArityMismatch {
                atom,
                atom_arity,
                rel_arity,
            } => write!(
                f,
                "atom {atom}: {atom_arity} attributes but relation has arity {rel_arity}"
            ),
            QueryError::UncoveredAttribute(a) => {
                write!(f, "attribute {a} appears in no atom")
            }
            QueryError::NoAtoms => write!(f, "query has no atoms"),
            QueryError::Unsupported { algorithm, reason } => {
                write!(
                    f,
                    "algorithm {algorithm} cannot evaluate this query: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A natural join query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Number of attributes; the GAO is `0, 1, …, n_attrs − 1`.
    pub n_attrs: usize,
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl Query {
    /// Starts a query over `n_attrs` attributes.
    pub fn new(n_attrs: usize) -> Self {
        Query {
            n_attrs,
            atoms: Vec::new(),
        }
    }

    /// Adds an atom (builder style).
    pub fn atom(mut self, rel: RelId, attrs: &[usize]) -> Self {
        self.atoms.push(Atom {
            rel,
            attrs: attrs.to_vec(),
        });
        self
    }

    /// Validates the query against a database: sorted attribute lists,
    /// arity agreement, and full attribute coverage.
    pub fn validate(&self, db: &Database) -> Result<(), QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::NoAtoms);
        }
        let mut covered = vec![false; self.n_attrs];
        for (i, atom) in self.atoms.iter().enumerate() {
            if !atom.attrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(QueryError::AttrsNotSorted { atom: i });
            }
            for &a in &atom.attrs {
                if a >= self.n_attrs {
                    return Err(QueryError::AttrOutOfRange { atom: i, attr: a });
                }
                covered[a] = true;
            }
            let rel_arity = db.relation(atom.rel).arity();
            if rel_arity != atom.attrs.len() {
                return Err(QueryError::ArityMismatch {
                    atom: i,
                    atom_arity: atom.attrs.len(),
                    rel_arity,
                });
            }
        }
        if let Some(a) = covered.iter().position(|&c| !c) {
            return Err(QueryError::UncoveredAttribute(a));
        }
        Ok(())
    }

    /// The query hypergraph: vertices are attributes, hyperedges the atoms'
    /// attribute sets (Appendix A).
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(
            self.n_attrs,
            self.atoms.iter().map(|a| a.attrs.clone()).collect(),
        )
    }

    /// Maximum atom arity — the paper's `r`.
    pub fn max_arity(&self) -> usize {
        self.atoms.iter().map(|a| a.attrs.len()).max().unwrap_or(0)
    }

    /// Number of atoms — the paper's `m`.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_storage::{builder, Database};

    fn db() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2])).unwrap();
        let s = db.add(builder::binary("S", [(1, 2)])).unwrap();
        (db, r, s)
    }

    #[test]
    fn valid_bowtie_query() {
        let (db, r, s) = db();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(r, &[1]);
        assert!(q.validate(&db).is_ok());
        assert_eq!(q.max_arity(), 2);
        assert_eq!(q.num_atoms(), 3);
        let h = q.hypergraph();
        assert_eq!(h.num_edges(), 3);
        assert!(minesweeper_hypergraph::is_beta_acyclic(&h));
    }

    #[test]
    fn unsorted_attrs_rejected() {
        let (db, _, s) = db();
        let q = Query::new(2).atom(s, &[1, 0]);
        assert_eq!(q.validate(&db), Err(QueryError::AttrsNotSorted { atom: 0 }));
    }

    #[test]
    fn out_of_range_attr_rejected() {
        let (db, _, s) = db();
        let q = Query::new(2).atom(s, &[0, 5]);
        assert_eq!(
            q.validate(&db),
            Err(QueryError::AttrOutOfRange { atom: 0, attr: 5 })
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (db, r, _) = db();
        let q = Query::new(2).atom(r, &[0, 1]);
        assert_eq!(
            q.validate(&db),
            Err(QueryError::ArityMismatch {
                atom: 0,
                atom_arity: 2,
                rel_arity: 1
            })
        );
    }

    #[test]
    fn uncovered_attribute_rejected() {
        let (db, r, _) = db();
        let q = Query::new(2).atom(r, &[0]);
        assert_eq!(q.validate(&db), Err(QueryError::UncoveredAttribute(1)));
        let q = Query::new(1);
        assert_eq!(q.validate(&db), Err(QueryError::NoAtoms));
    }

    #[test]
    fn error_messages() {
        assert!(QueryError::NoAtoms.to_string().contains("no atoms"));
        assert!(QueryError::UncoveredAttribute(3).to_string().contains("3"));
    }
}
