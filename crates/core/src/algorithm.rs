//! The unified join-algorithm interface.
//!
//! Every join evaluator in the workspace — Minesweeper itself and each
//! baseline in `minesweeper-baselines` — implements [`Algorithm`], so the
//! CLI, the equivalence harness, and the bench binaries dispatch through
//! one trait object instead of seven ad-hoc function signatures. The
//! name-based registry lives in `minesweeper_baselines::registry` (it must
//! see both this crate and the baselines).
//!
//! The output contract is deliberately strict so results are directly
//! comparable across implementations: `run` returns tuples over the full
//! attribute space, **sorted lexicographically in the original attribute
//! numbering**.

use minesweeper_storage::{Database, ExecStats};

use crate::execute::execute;
use crate::minesweeper::JoinResult;
use crate::naive::naive_join;
use crate::query::{Query, QueryError};

/// A complete join evaluator with a stable name.
pub trait Algorithm {
    /// Registry / CLI name (lowercase, stable).
    fn name(&self) -> &'static str;

    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;

    /// Whether this algorithm can evaluate `query` (e.g. Yannakakis
    /// requires α-acyclicity). `run` on an unsupported query returns
    /// [`QueryError::Unsupported`].
    fn supports(&self, query: &Query) -> bool {
        let _ = query;
        true
    }

    /// Evaluates the query to completion. Tuples are sorted
    /// lexicographically in the original attribute numbering.
    fn run(&self, db: &Database, query: &Query) -> Result<JoinResult, QueryError>;
}

/// The paper's algorithm, via [`crate::plan()`] → sorted collect.
#[derive(Debug, Clone, Copy, Default)]
pub struct Minesweeper;

impl Algorithm for Minesweeper {
    fn name(&self) -> &'static str {
        "minesweeper"
    }

    fn description(&self) -> &'static str {
        "certificate-optimal probe loop over a constraint data structure (PODS 2014)"
    }

    fn run(&self, db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
        Ok(execute(db, query)?.result)
    }
}

/// The paper's algorithm run shard-parallel: [`crate::plan()`] →
/// [`crate::ShardedPlan`] (equi-depth shards of the first GAO attribute,
/// one probe loop per worker). Output is byte-identical to
/// [`Minesweeper`]'s on every query.
#[derive(Debug, Clone, Copy)]
pub struct MinesweeperPar {
    /// Worker-thread / maximum-shard count.
    pub threads: usize,
}

impl MinesweeperPar {
    /// A parallel evaluator with an explicit worker count (`0` clamps
    /// to 1, i.e. serial).
    pub fn with_threads(threads: usize) -> Self {
        MinesweeperPar {
            threads: threads.max(1),
        }
    }
}

impl Default for MinesweeperPar {
    /// Auto-sizes to the hardware, always at least 2 workers (so the
    /// sharded path — not the serial fallback — is what registry
    /// equivalence tests exercise) and at most 8 (the probe loop is
    /// memory-bound; more buys little on typical hosts).
    fn default() -> Self {
        MinesweeperPar {
            threads: scoped_pool::available_threads().clamp(2, 8),
        }
    }
}

impl Algorithm for MinesweeperPar {
    fn name(&self) -> &'static str {
        "minesweeper-par"
    }

    fn description(&self) -> &'static str {
        "Minesweeper with per-shard parallel probe loops over an equi-depth domain partition"
    }

    fn run(&self, db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
        let exec = crate::plan(db, query)?.execute_parallel(db, self.threads)?;
        Ok(exec.result)
    }
}

/// Nested-loop ground truth; quadratic-ish, for oracles and tiny inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl Algorithm for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn description(&self) -> &'static str {
        "nested-loop evaluation used as the testing oracle"
    }

    fn run(&self, db: &Database, query: &Query) -> Result<JoinResult, QueryError> {
        let tuples = naive_join(db, query)?;
        let mut stats = ExecStats::new();
        stats.outputs = tuples.len() as u64;
        Ok(JoinResult { tuples, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_storage::builder;

    #[test]
    fn minesweeper_and_naive_agree_through_the_trait() {
        let mut db = Database::new();
        let r = db
            .add(builder::binary("R", [(1, 2), (2, 3), (5, 1)]))
            .unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(r, &[1, 2]);
        let algos: Vec<Box<dyn Algorithm>> = vec![Box::new(Minesweeper), Box::new(Naive)];
        let results: Vec<_> = algos
            .iter()
            .map(|a| {
                assert!(a.supports(&q));
                a.run(&db, &q).unwrap().tuples
            })
            .collect();
        assert_eq!(results[0], results[1]);
        assert!(
            results[0].windows(2).all(|w| w[0] < w[1]),
            "sorted contract"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Minesweeper.name(), "minesweeper");
        assert_eq!(MinesweeperPar::default().name(), "minesweeper-par");
        assert_eq!(Naive.name(), "naive");
        assert!(!Minesweeper.description().is_empty());
    }

    #[test]
    fn parallel_entry_matches_serial_through_the_trait() {
        let mut db = Database::new();
        let r = db
            .add(builder::binary(
                "R",
                (0..40).map(|i: i64| (i % 9, (i * 5 + 2) % 9)),
            ))
            .unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(r, &[1, 2]);
        let serial = Minesweeper.run(&db, &q).unwrap();
        let par = MinesweeperPar::default();
        assert!(par.threads >= 2, "registry default must actually shard");
        let got = par.run(&db, &q).unwrap();
        assert_eq!(got.tuples, serial.tuples);
        assert_eq!(got.stats.outputs, serial.stats.outputs);
        assert_eq!(
            MinesweeperPar::with_threads(0).threads,
            1,
            "explicit 0 clamps to serial"
        );
    }
}
