//! Minesweeper specialized to the bow-tie query (Appendix I, Algorithm 9).
//!
//! `Q⋈ = R(X) ⋈ S(X, Y) ⋈ T(Y)`. Each iteration issues exactly the five
//! `FindGap` probes of Algorithm 9 — around `x` in `R`, around `y` in `T`,
//! around `x` in `S`'s first level, and around `y` under both bracketing
//! `S`-children `i^ℓ_S` and `i^h_S` (Figure 8) — and inserts up to five
//! constraints. The extra exploration under *both* children is what lets
//! the analysis (Theorem I.4) charge every iteration to a certificate
//! comparison: the naive "lexicographic neighbour" gap can miss the
//! certificate entirely (the `t = (2, N+1)` example of Appendix I.3).
//!
//! The bow-tie query is β-acyclic and the GAO `(X, Y)` is a nested
//! elimination order, so the two-attribute `ConstraintTree` runs in chain
//! mode; Theorem I.4 gives `O((|C| + Z)·log N)`.

use minesweeper_cds::{Constraint, ConstraintTree, Pattern, PatternComp, ProbeMode, ProbeStats};
use minesweeper_storage::{ExecStats, TrieRelation};

use crate::minesweeper::{merge_probe_stats, JoinResult};

/// Evaluates `R(X) ⋈ S(X,Y) ⋈ T(Y)` (Algorithm 9). Panics unless `R`, `T`
/// are unary and `S` binary.
pub fn bowtie_join(r: &TrieRelation, s: &TrieRelation, t: &TrieRelation) -> JoinResult {
    assert_eq!(r.arity(), 1, "R must be unary");
    assert_eq!(s.arity(), 2, "S must be binary");
    assert_eq!(t.arity(), 1, "T must be unary");
    let mut stats = ExecStats::new();
    let mut pst = ProbeStats::default();
    let mut cds = ConstraintTree::new(2, ProbeMode::Chain);
    let mut tuples = Vec::new();
    while let Some(probe) = cds.get_probe_point(&mut pst) {
        let (x, y) = (probe[0], probe[1]);
        // Line 3: gap around x in R.
        let gr = r.find_gap(r.root(), x, &mut stats);
        // Line 4: gap around y in T.
        let gt = t.find_gap(t.root(), y, &mut stats);
        // Line 5: gap around x in S's first level.
        let gs = s.find_gap(s.root(), x, &mut stats);
        // Lines 6–7: gaps around y under S[i^ℓ_S] and S[i^h_S].
        let lo_in_range = gs.lo_coord >= 1;
        let hi_in_range = gs.hi_coord <= s.child_count(s.root());
        let g_lo = if lo_in_range {
            Some((
                gs.lo_val,
                s.find_gap(s.child(s.root(), gs.lo_coord), y, &mut stats),
            ))
        } else {
            None
        };
        let g_hi = if hi_in_range && gs.hi_coord != gs.lo_coord {
            Some((
                gs.hi_val,
                s.find_gap(s.child(s.root(), gs.hi_coord), y, &mut stats),
            ))
        } else if gs.exact() {
            g_lo
        } else {
            None
        };
        // Line 8: output test — all high ends exact.
        let s_exact = gs.exact() && g_hi.as_ref().is_some_and(|(_, g)| g.exact());
        if gr.exact() && gt.exact() && s_exact {
            // Line 9–10.
            stats.outputs += 1;
            tuples.push(vec![x, y]);
            cds.insert_constraint(&Constraint::point_exclusion(&[x, y]), &mut pst);
        } else {
            // Lines 12–18.
            cds.insert_constraint(
                &Constraint::new(Pattern::empty(), gr.lo_val, gr.hi_val),
                &mut pst,
            );
            cds.insert_constraint(
                &Constraint::new(Pattern::empty(), gs.lo_val, gs.hi_val),
                &mut pst,
            );
            cds.insert_constraint(
                &Constraint::new(Pattern(vec![PatternComp::Star]), gt.lo_val, gt.hi_val),
                &mut pst,
            );
            if let Some((xv, g)) = &g_hi {
                cds.insert_constraint(
                    &Constraint::new(Pattern(vec![PatternComp::Eq(*xv)]), g.lo_val, g.hi_val),
                    &mut pst,
                );
            }
            if let Some((xv, g)) = &g_lo {
                cds.insert_constraint(
                    &Constraint::new(Pattern(vec![PatternComp::Eq(*xv)]), g.lo_val, g.hi_val),
                    &mut pst,
                );
            }
        }
    }
    merge_probe_stats(&mut stats, &pst);
    JoinResult { tuples, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minesweeper::minesweeper_join;
    use crate::query::Query;
    use minesweeper_cds::ProbeMode;
    use minesweeper_storage::{builder, Database, Val};

    #[test]
    fn small_bowtie() {
        let r = builder::unary("R", [1, 2, 4]);
        let s = builder::binary("S", [(1, 5), (2, 6), (2, 7), (3, 5), (4, 9)]);
        let t = builder::unary("T", [5, 7, 9]);
        let res = bowtie_join(&r, &s, &t);
        let mut got = res.tuples.clone();
        got.sort();
        assert_eq!(got, vec![vec![1, 5], vec![2, 7], vec![4, 9]]);
    }

    #[test]
    fn agrees_with_generic_minesweeper() {
        let mut seed = 0x5ca1ab1eu64;
        let mut rng = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for _ in 0..20 {
            let rv: Vec<Val> = (0..rng(12)).map(|_| rng(10) as Val).collect();
            let sv: Vec<(Val, Val)> = (0..rng(25))
                .map(|_| (rng(10) as Val, rng(10) as Val))
                .collect();
            let tv: Vec<Val> = (0..rng(12)).map(|_| rng(10) as Val).collect();
            let r = builder::unary("R", rv.iter().copied());
            let s = builder::binary("S", sv.iter().copied());
            let t = builder::unary("T", tv.iter().copied());
            let mut fast = bowtie_join(&r, &s, &t).tuples;
            fast.sort();
            let mut db = Database::new();
            let rid = db.add(r).unwrap();
            let sid = db.add(s).unwrap();
            let tid = db.add(t).unwrap();
            let q = Query::new(2)
                .atom(rid, &[0])
                .atom(sid, &[0, 1])
                .atom(tid, &[1]);
            let mut generic = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap().tuples;
            generic.sort();
            assert_eq!(fast, generic);
        }
    }

    #[test]
    fn hidden_certificate_instance_from_appendix_i3() {
        // R = {2}, T = {N+1}, S = {(1, N+1+i)} ∪ {(3, i)}: empty output
        // with an O(1) certificate {S[1,1] > T[1], S[2,N] < T[1]}. The
        // exploration under BOTH S-children is what finds it fast.
        let n: Val = 400;
        let r = builder::unary("R", [2]);
        let s = builder::binary(
            "S",
            (1..=n)
                .map(|i| (1, n + 1 + i))
                .chain((1..=n).map(|i| (3, i))),
        );
        let t = builder::unary("T", [n + 1]);
        let res = bowtie_join(&r, &s, &t);
        assert!(res.tuples.is_empty());
        assert!(
            res.stats.probe_points < 10,
            "must not scan S: probes = {}",
            res.stats.probe_points
        );
    }

    #[test]
    fn empty_inputs() {
        let r = builder::unary("R", []);
        let s = builder::binary("S", [(1, 1)]);
        let t = builder::unary("T", [1]);
        let res = bowtie_join(&r, &s, &t);
        assert!(res.tuples.is_empty());
    }

    #[test]
    fn full_cross_pattern() {
        // All of R × T realized through S.
        let r = builder::unary("R", [1, 2]);
        let s = builder::binary("S", [(1, 10), (1, 20), (2, 10), (2, 20)]);
        let t = builder::unary("T", [10, 20]);
        let res = bowtie_join(&r, &s, &t);
        assert_eq!(res.tuples.len(), 4);
        assert_eq!(res.stats.outputs, 4);
    }
}
