//! Naive backtracking join — the ground truth for every other algorithm's
//! tests. Deliberately simple; only correctness matters here.

use minesweeper_storage::{Database, Tuple, Val};

use crate::query::{Query, QueryError};

/// Computes the natural join by attribute-at-a-time backtracking over all
/// candidate values (drawn from the first atom containing each attribute),
/// checking every atom whose attributes are fully bound.
pub fn naive_join(db: &Database, query: &Query) -> Result<Vec<Tuple>, QueryError> {
    query.validate(db)?;
    let n = query.n_attrs;
    let mut binding: Vec<Val> = Vec::with_capacity(n);
    let mut out = Vec::new();
    recurse(db, query, &mut binding, &mut out);
    out.sort();
    out.dedup();
    Ok(out)
}

fn recurse(db: &Database, query: &Query, binding: &mut Vec<Val>, out: &mut Vec<Tuple>) {
    let i = binding.len();
    if i == query.n_attrs {
        out.push(binding.clone());
        return;
    }
    // Candidate values for attribute i: from any atom containing i, the
    // values consistent with the current binding (prefix semijoin).
    let (atom, pos) = query
        .atoms
        .iter()
        .find_map(|a| a.attrs.iter().position(|&x| x == i).map(|p| (a, p)))
        .expect("validated queries cover all attributes");
    let rel = db.relation(atom.rel);
    let mut candidates: Vec<Val> = Vec::new();
    for t in rel.iter_tuples() {
        // The atom's attributes before `pos` must match the binding if
        // already bound.
        let ok = atom.attrs[..pos]
            .iter()
            .enumerate()
            .all(|(j, &attr)| attr >= i || t[j] == binding[attr]);
        // Attributes at or after pos with GAO position < i must also match.
        let ok2 = atom.attrs[pos..]
            .iter()
            .enumerate()
            .all(|(j, &attr)| attr >= i || t[pos + j] == binding[attr]);
        if ok && ok2 {
            candidates.push(t[pos]);
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    'cand: for v in candidates {
        binding.push(v);
        // Check all atoms fully bound within the prefix.
        for atom in &query.atoms {
            if atom.attrs.iter().all(|&a| a < binding.len()) {
                let proj: Vec<Val> = atom.attrs.iter().map(|&a| binding[a]).collect();
                if !db.relation(atom.rel).contains(&proj) {
                    binding.pop();
                    continue 'cand;
                }
            }
        }
        recurse(db, query, binding, out);
        binding.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use minesweeper_storage::{builder, Database};

    #[test]
    fn unary_intersection() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2, 3])).unwrap();
        let s = db.add(builder::unary("S", [2, 3, 4])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        assert_eq!(naive_join(&db, &q).unwrap(), vec![vec![2], vec![3]]);
    }

    #[test]
    fn path_join() {
        let mut db = Database::new();
        let r = db.add(builder::binary("R", [(1, 2), (2, 3)])).unwrap();
        let s = db.add(builder::binary("S", [(2, 9), (3, 7)])).unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
        assert_eq!(
            naive_join(&db, &q).unwrap(),
            vec![vec![1, 2, 9], vec![2, 3, 7]]
        );
    }

    #[test]
    fn triangle_join() {
        let mut db = Database::new();
        let e = db
            .add(builder::binary("E", [(1, 2), (2, 3), (1, 3), (3, 4)]))
            .unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        assert_eq!(naive_join(&db, &q).unwrap(), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn empty_when_any_relation_empty() {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [])).unwrap();
        let s = db.add(builder::unary("S", [1])).unwrap();
        let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        assert!(naive_join(&db, &q).unwrap().is_empty());
    }

    #[test]
    fn bound_check_on_later_atoms() {
        // U(B) restricts the join of R(A,B).
        let mut db = Database::new();
        let r = db.add(builder::binary("R", [(1, 5), (2, 6)])).unwrap();
        let u = db.add(builder::unary("U", [6])).unwrap();
        let q = Query::new(2).atom(r, &[0, 1]).atom(u, &[1]);
        assert_eq!(naive_join(&db, &q).unwrap(), vec![vec![2, 6]]);
    }
}
