//! Set-intersection benches (Appendix H): Minesweeper's specialization vs
//! the DLM-style adaptive baseline across certificate regimes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minesweeper_baselines::adaptive_intersection;
use minesweeper_core::set_intersection;
use minesweeper_storage::TrieRelation;
use minesweeper_workloads::intersection::{blocks, disjoint_ranges, interleaved, random_sets};

fn families(c: &mut Criterion) {
    let n = 1i64 << 14;
    let cases: Vec<(&str, Vec<TrieRelation>)> = vec![
        ("disjoint", disjoint_ranges(2, n)),
        ("interleaved", interleaved(2, n)),
        ("blocks_64", blocks(n, 64)),
        ("random", random_sets(3, n as usize / 2, n, 3)),
    ];
    let mut group = c.benchmark_group("intersection");
    group.sample_size(20);
    for (name, sets) in &cases {
        let refs: Vec<&TrieRelation> = sets.iter().collect();
        group.bench_with_input(BenchmarkId::new("minesweeper", name), &refs, |b, refs| {
            b.iter(|| black_box(set_intersection(refs).tuples.len()))
        });
        group.bench_with_input(BenchmarkId::new("dlm_adaptive", name), &refs, |b, refs| {
            b.iter(|| black_box(adaptive_intersection(refs).tuples.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, families);
criterion_main!(benches);
