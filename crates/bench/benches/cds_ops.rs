//! Microbenchmarks for the CDS building blocks (Props 3.1, E.2, E.3):
//! interval-set insertion/`Next`, sorted-list operations, and constraint
//! streams through the `ConstraintTree`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minesweeper_cds::{
    Constraint, ConstraintTree, IntervalSet, Pattern, ProbeMode, ProbeStats, SortedList,
};

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

fn interval_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_set");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("insert_merge", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = IntervalSet::new();
                let mut seed = 42u64;
                for _ in 0..n {
                    let lo = (xorshift(&mut seed) % 1_000_000) as i64;
                    s.insert_closed(lo, lo + 64);
                }
                black_box(s.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("next_scan", n), &n, |b, &n| {
            let mut s = IntervalSet::new();
            let mut seed = 42u64;
            for _ in 0..n {
                let lo = (xorshift(&mut seed) % 1_000_000) as i64;
                s.insert_closed(lo, lo + 32);
            }
            b.iter(|| {
                let mut v = -1i64;
                let mut count = 0u64;
                while v < 1_000_000 {
                    v = s.next(v) + 1;
                    count += 1;
                }
                black_box(count)
            })
        });
    }
    group.finish();
}

fn sorted_list_ops(c: &mut Criterion) {
    c.bench_function("sorted_list/insert_find_delete_10k", |b| {
        b.iter(|| {
            let mut l = SortedList::new();
            let mut seed = 7u64;
            for _ in 0..10_000 {
                l.insert((xorshift(&mut seed) % 100_000) as i64, ());
            }
            let mut hits = 0u64;
            for v in (0..100_000).step_by(97) {
                if l.find_lub(v).is_some() {
                    hits += 1;
                }
            }
            l.delete_range_closed(25_000, 75_000);
            black_box((hits, l.len()))
        })
    });
}

fn constraint_tree_stream(c: &mut Criterion) {
    c.bench_function("constraint_tree/insert_probe_stream", |b| {
        b.iter(|| {
            let mut cds = ConstraintTree::new(3, ProbeMode::General);
            let mut st = ProbeStats::default();
            let mut seed = 99u64;
            cds.insert_constraint(
                &Constraint::new(Pattern::empty(), minesweeper_cds::NEG_INF, 0),
                &mut st,
            );
            for _ in 0..500 {
                let a = (xorshift(&mut seed) % 50) as i64;
                let lo = (xorshift(&mut seed) % 100) as i64;
                cds.insert_constraint(&Constraint::new(Pattern::all_eq(&[a]), lo, lo + 8), &mut st);
                if let Some(t) = cds.get_probe_point(&mut st) {
                    cds.insert_constraint(&Constraint::point_exclusion(&t), &mut st);
                }
            }
            black_box(st.probe_points)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = interval_set_ops, sorted_list_ops, constraint_tree_stream
);
criterion_main!(benches);
