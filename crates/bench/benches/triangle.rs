//! Triangle query benches (Theorem 5.4): dyadic CDS vs generic CDS on the
//! hard `|C| = O(m)` instance, plus triangle listing on a power-law graph.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minesweeper_cds::ProbeMode;
use minesweeper_core::triangle::triangle_query;
use minesweeper_core::{minesweeper_join, triangle_join};
use minesweeper_storage::{builder, Database, RelId, Val};
use minesweeper_workloads::graphs::chung_lu;
use minesweeper_workloads::triangle_instance;

fn hard_instance(m: Val) -> (Database, RelId, RelId, RelId) {
    let mut db = Database::new();
    let mut r_pairs = Vec::new();
    for a in 1..=m {
        for b in 1..=m {
            r_pairs.push((a, b));
        }
    }
    let r = db.add(builder::binary("R", r_pairs)).unwrap();
    let s = db
        .add(builder::binary("S", (1..=m).map(|b| (b, 1))))
        .unwrap();
    let t = db
        .add(builder::binary("T", (1..=m).map(|a| (a, 2))))
        .unwrap();
    (db, r, s, t)
}

fn hard_triangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_hard");
    group.sample_size(10);
    for &m in &[24i64, 48] {
        let (db, r, s, t) = hard_instance(m);
        let q = triangle_query(r, s, t);
        group.bench_with_input(BenchmarkId::new("dyadic_cds", m), &m, |b, _| {
            b.iter(|| black_box(triangle_join(&db, r, s, t).unwrap().tuples.len()))
        });
        group.bench_with_input(BenchmarkId::new("generic_cds", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    minesweeper_join(&db, &q, ProbeMode::General)
                        .unwrap()
                        .tuples
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn powerlaw_triangles(c: &mut Criterion) {
    let edges = chung_lu(1500, 10_000, 2.3, 31);
    let (db, r, s, t, q) = triangle_instance(&edges);
    let mut group = c.benchmark_group("triangle_powerlaw");
    group.sample_size(10);
    group.bench_function("dyadic_cds", |b| {
        b.iter(|| black_box(triangle_join(&db, r, s, t).unwrap().tuples.len()))
    });
    group.bench_function("generic_cds", |b| {
        b.iter(|| {
            black_box(
                minesweeper_join(&db, &q, ProbeMode::General)
                    .unwrap()
                    .tuples
                    .len(),
            )
        })
    });
    group.bench_function("lftj", |b| {
        b.iter(|| {
            black_box(
                minesweeper_baselines::leapfrog_triejoin(&db, &q)
                    .unwrap()
                    .tuples
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, hard_triangle, powerlaw_triangles);
criterion_main!(benches);
