//! Join algorithm comparison benches, dispatched through the unified
//! `Algorithm` registry: every registered evaluator that supports the
//! query shape runs on (a) the Appendix J hidden-certificate family and
//! (b) the Section 5.2 star query on a power-law graph, plus a streaming
//! `LIMIT k` group showing the early-termination advantage of
//! `Plan::stream` over full materialization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minesweeper_baselines::algorithms;
use minesweeper_core::plan;
use minesweeper_workloads::appendix_j::hidden_certificate_instance;
use minesweeper_workloads::graphs::{chung_lu, symmetrize};
use minesweeper_workloads::star_query;

fn appendix_j_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix_j_m4");
    group.sample_size(10);
    for &chunk in &[16i64, 32] {
        let inst = hidden_certificate_instance(4, chunk);
        for algo in algorithms() {
            if algo.name() == "naive" || !algo.supports(&inst.query) {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(algo.name(), chunk), &inst, |b, inst| {
                b.iter(|| black_box(algo.run(&inst.db, &inst.query).unwrap().tuples.len()))
            });
        }
    }
    group.finish();
}

fn star_on_powerlaw(c: &mut Criterion) {
    let edges = symmetrize(&chung_lu(3000, 25_000, 2.3, 17));
    let inst = star_query(&edges, 3000, 0.005, 17);
    let mut group = c.benchmark_group("star_query");
    group.sample_size(10);
    for algo in algorithms() {
        // The naive oracle and the binary plans are too slow at this scale
        // to keep in the default sweep.
        if matches!(algo.name(), "naive" | "hash" | "sort-merge" | "nested-loop")
            || !algo.supports(&inst.query)
        {
            continue;
        }
        group.bench_function(algo.name(), |b| {
            b.iter(|| black_box(algo.run(&inst.db, &inst.query).unwrap().tuples.len()))
        });
    }
    group.finish();
}

fn streaming_limit(c: &mut Criterion) {
    // Z ≫ k: early termination through the streaming executor pays only
    // for the first k certified tuples.
    let inst = hidden_certificate_instance(4, 32);
    let p = plan(&inst.db, &inst.query).unwrap();
    let mut group = c.benchmark_group("limit_pushdown");
    group.sample_size(10);
    group.bench_function("stream_take_10", |b| {
        b.iter(|| {
            let stream = p.stream(&inst.db).unwrap();
            black_box(stream.take(10).count())
        })
    });
    group.bench_function("materialize_then_truncate_10", |b| {
        b.iter(|| {
            let exec = p.execute(&inst.db).unwrap();
            black_box(exec.result.tuples.iter().take(10).count())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    appendix_j_family,
    star_on_powerlaw,
    streaming_limit
);
criterion_main!(benches);
