//! Join algorithm comparison benches: Minesweeper vs Yannakakis, LFTJ,
//! NPRR, and the binary hash plan on (a) the Appendix J hidden-certificate
//! family and (b) the Section 5.2 star query on a power-law graph.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minesweeper_baselines::{generic_join, hash_join_plan, leapfrog_triejoin, yannakakis};
use minesweeper_cds::ProbeMode;
use minesweeper_core::minesweeper_join;
use minesweeper_workloads::appendix_j::hidden_certificate_instance;
use minesweeper_workloads::graphs::{chung_lu, symmetrize};
use minesweeper_workloads::star_query;

fn appendix_j_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix_j_m4");
    group.sample_size(10);
    for &chunk in &[16i64, 32] {
        let inst = hidden_certificate_instance(4, chunk);
        group.bench_with_input(
            BenchmarkId::new("minesweeper", chunk),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(
                        minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain)
                            .unwrap()
                            .tuples
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("yannakakis", chunk), &inst, |b, inst| {
            b.iter(|| black_box(yannakakis(&inst.db, &inst.query).unwrap().tuples.len()))
        });
        group.bench_with_input(BenchmarkId::new("lftj", chunk), &inst, |b, inst| {
            b.iter(|| {
                black_box(leapfrog_triejoin(&inst.db, &inst.query).unwrap().tuples.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("nprr", chunk), &inst, |b, inst| {
            b.iter(|| black_box(generic_join(&inst.db, &inst.query).unwrap().tuples.len()))
        });
        group.bench_with_input(BenchmarkId::new("hash_plan", chunk), &inst, |b, inst| {
            b.iter(|| black_box(hash_join_plan(&inst.db, &inst.query).unwrap().tuples.len()))
        });
    }
    group.finish();
}

fn star_on_powerlaw(c: &mut Criterion) {
    let edges = symmetrize(&chung_lu(3000, 25_000, 2.3, 17));
    let inst = star_query(&edges, 3000, 0.005, 17);
    let mut group = c.benchmark_group("star_query");
    group.sample_size(10);
    group.bench_function("minesweeper", |b| {
        b.iter(|| {
            black_box(
                minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain)
                    .unwrap()
                    .tuples
                    .len(),
            )
        })
    });
    group.bench_function("yannakakis", |b| {
        b.iter(|| black_box(yannakakis(&inst.db, &inst.query).unwrap().tuples.len()))
    });
    group.bench_function("lftj", |b| {
        b.iter(|| black_box(leapfrog_triejoin(&inst.db, &inst.query).unwrap().tuples.len()))
    });
    group.finish();
}

criterion_group!(benches, appendix_j_family, star_on_powerlaw);
criterion_main!(benches);
