//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **chain-walk memoization** (Algorithm 4 line 13): disabling it keeps
//!   results identical but loses Lemma 4.3's amortization — Example 4.1
//!   degrades from `Õ(N²)` to `Ω(N³)`;
//! * **Chain vs General probe mode** on a β-acyclic query: the shadow
//!   machinery must cost little when the filter already is a chain.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minesweeper_cds::{Constraint, ConstraintTree, Pattern, PatternComp, ProbeMode, ProbeStats};
use minesweeper_core::minesweeper_join;
use minesweeper_workloads::appendix_j::hidden_certificate_instance;

/// Example 4.1's constraint system over a, b ∈ [n].
fn example_4_1(memoize: bool, n: i64) -> u64 {
    use PatternComp::{Eq, Star};
    let mut cds = ConstraintTree::with_options(3, ProbeMode::Chain, memoize);
    let mut st = ProbeStats::default();
    for d in 0..2usize {
        let p = Pattern::all_star(d);
        cds.insert_constraint(
            &Constraint::new(p.clone(), minesweeper_cds::NEG_INF, 1),
            &mut st,
        );
        cds.insert_constraint(&Constraint::new(p, n, minesweeper_cds::POS_INF), &mut st);
    }
    for a in 1..=n {
        for b in 1..=n {
            cds.insert_constraint(
                &Constraint::new(Pattern::all_eq(&[a, b]), minesweeper_cds::NEG_INF, 1),
                &mut st,
            );
        }
    }
    for b in 1..=n {
        for i in 1..=n {
            cds.insert_constraint(
                &Constraint::new(Pattern(vec![Star, Eq(b)]), 2 * i - 2, 2 * i),
                &mut st,
            );
        }
    }
    for i in 1..=n {
        cds.insert_constraint(
            &Constraint::new(Pattern::all_star(2), 2 * i - 1, 2 * i + 1),
            &mut st,
        );
    }
    cds.insert_constraint(
        &Constraint::new(Pattern::all_star(2), 2 * n, minesweeper_cds::POS_INF),
        &mut st,
    );
    cds.insert_constraint(
        &Constraint::new(Pattern::all_star(2), minesweeper_cds::NEG_INF, 1),
        &mut st,
    );
    assert!(cds.get_probe_point(&mut st).is_none());
    st.next_calls
}

fn memoization_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memoization");
    group.sample_size(10);
    for &n in &[16i64, 32] {
        group.bench_with_input(BenchmarkId::new("with_memo", n), &n, |b, &n| {
            b.iter(|| black_box(example_4_1(true, n)))
        });
        group.bench_with_input(BenchmarkId::new("without_memo", n), &n, |b, &n| {
            b.iter(|| black_box(example_4_1(false, n)))
        });
    }
    group.finish();
}

fn chain_vs_general_mode(c: &mut Criterion) {
    // On a β-acyclic query both modes are correct; General pays for
    // linearization + suffix meets. The overhead should be modest.
    let inst = hidden_certificate_instance(4, 32);
    let mut group = c.benchmark_group("ablation_probe_mode");
    group.sample_size(10);
    group.bench_function("chain", |b| {
        b.iter(|| {
            black_box(
                minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain)
                    .unwrap()
                    .stats
                    .probe_points,
            )
        })
    });
    group.bench_function("general", |b| {
        b.iter(|| {
            black_box(
                minesweeper_join(&inst.db, &inst.query, ProbeMode::General)
                    .unwrap()
                    .stats
                    .probe_points,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, memoization_ablation, chain_vs_general_mode);
criterion_main!(benches);
