//! Microbenchmarks for the hybrid bitset leaves: `FindGap` probes and
//! rank lookups on dense runs, sorted arrays vs packed `u64` words.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minesweeper_storage::{
    BitLeafRelation, ExecStats, LeafPolicy, RelationBuilder, TrieRelation, TrieStorage, Val,
};

/// `D(a, b)`: 64 contiguous left values each owning the contiguous run
/// `0..n` — every node passes the density test.
fn dense_relation(n: Val) -> TrieRelation {
    let mut b = RelationBuilder::new("D", 2);
    for a in 0..64 {
        for v in 0..n {
            b.push(&[a, v]);
        }
    }
    b.build().unwrap()
}

fn xorshift(seed: &mut u64, m: u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed % m
}

/// 10k random `FindGap` probes against one dense second-level node,
/// binary search on the sorted trie vs rank lookups on the packed run.
fn find_gap_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitleaf_find_gap_10k");
    for &n in &[4096 as Val, 65_536] {
        let sorted = Arc::new(dense_relation(n));
        let hybrid = BitLeafRelation::build(sorted.clone(), LeafPolicy::Dense).unwrap();
        let mut stats = ExecStats::new();
        let g = sorted.find_gap(sorted.root(), 7, &mut stats);
        let node = sorted.child(sorted.root(), g.hi_coord);
        group.bench_with_input(BenchmarkId::new("sorted", n), &n, |b, &n| {
            b.iter(|| {
                let mut stats = ExecStats::new();
                let mut seed = 11u64;
                for _ in 0..10_000 {
                    let x = xorshift(&mut seed, n as u64 + 2) as Val - 1;
                    black_box(sorted.find_gap(node, x, &mut stats));
                }
                stats.find_gap_calls
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid", n), &n, |b, &n| {
            b.iter(|| {
                let mut stats = ExecStats::new();
                let mut seed = 11u64;
                for _ in 0..10_000 {
                    let x = xorshift(&mut seed, n as u64 + 2) as Val - 1;
                    black_box(hybrid.find_gap(node, x, &mut stats));
                }
                stats.find_gap_calls
            })
        });
    }
    group.finish();
}

/// 10k random `count_le` rank queries on the same node: one masked
/// popcount against a binary search.
fn count_le_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitleaf_count_le_10k");
    let n: Val = 65_536;
    let sorted = Arc::new(dense_relation(n));
    let hybrid = BitLeafRelation::build(sorted.clone(), LeafPolicy::Dense).unwrap();
    let mut stats = ExecStats::new();
    let g = sorted.find_gap(sorted.root(), 7, &mut stats);
    let node = sorted.child(sorted.root(), g.hi_coord);
    group.bench_function("sorted", |b| {
        b.iter(|| {
            let mut stats = ExecStats::new();
            let mut seed = 17u64;
            let mut acc = 0usize;
            for _ in 0..10_000 {
                let x = xorshift(&mut seed, n as u64) as Val;
                acc += sorted.count_le(node, x, &mut stats);
            }
            black_box(acc)
        })
    });
    group.bench_function("hybrid", |b| {
        b.iter(|| {
            let mut stats = ExecStats::new();
            let mut seed = 17u64;
            let mut acc = 0usize;
            for _ in 0..10_000 {
                let x = xorshift(&mut seed, n as u64) as Val;
                acc += hybrid.count_le(node, x, &mut stats);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = find_gap_dense, count_le_dense
);
criterion_main!(benches);
