//! Microbenchmarks for the storage layer: trie construction, `FindGap`
//! probes (the paper assumes `O(k log |R|)` per probe), and cursor seeks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minesweeper_storage::{ExecStats, RelationBuilder, TrieCursor, TrieRelation, Val};

fn build_relation(n: usize, seed: u64) -> TrieRelation {
    let mut s = seed;
    let mut x = move |m: u64| {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s % m
    };
    let mut b = RelationBuilder::new("R", 2);
    for _ in 0..n {
        b.push(&[x(100_000) as Val, x(100_000) as Val]);
    }
    b.build().unwrap()
}

fn trie_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_build");
    for &n in &[10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(build_relation(n, 5)).len())
        });
    }
    group.finish();
}

fn find_gap_probes(c: &mut Criterion) {
    let rel = build_relation(100_000, 5);
    c.bench_function("find_gap/root_10k_probes", |b| {
        b.iter(|| {
            let mut stats = ExecStats::new();
            let mut seed = 11u64;
            for _ in 0..10_000 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let g = rel.find_gap(rel.root(), (seed % 100_000) as Val, &mut stats);
                black_box(g);
            }
            stats.find_gap_calls
        })
    });
    c.bench_function("find_gap/two_level_10k_probes", |b| {
        b.iter(|| {
            let mut stats = ExecStats::new();
            let mut seed = 13u64;
            for _ in 0..10_000 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let a = (seed % 100_000) as Val;
                let g = rel.find_gap(rel.root(), a, &mut stats);
                if g.exact() {
                    let child = rel.child(rel.root(), g.hi_coord);
                    black_box(rel.find_gap(child, a / 2, &mut stats));
                }
            }
            stats.find_gap_calls
        })
    });
}

fn cursor_sweep(c: &mut Criterion) {
    let rel = build_relation(100_000, 5);
    c.bench_function("cursor/leapfrog_sweep", |b| {
        b.iter(|| {
            let mut stats = ExecStats::new();
            let mut cur = TrieCursor::new(&rel);
            cur.open();
            let mut count = 0u64;
            let mut target = 0;
            while !cur.at_end() {
                cur.seek(target, &mut stats);
                if cur.at_end() {
                    break;
                }
                count += 1;
                target = cur.key() + 97;
            }
            black_box(count)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = trie_build, find_gap_probes, cursor_sweep
);
criterion_main!(benches);
