//! Shared utilities for the benchmark harnesses.
//!
//! Every experiment in EXPERIMENTS.md has a binary in `src/bin/` that
//! prints a paper-style table; this module provides the table renderer,
//! unit formatting (the paper's `M`/`K` units from Figure 2), and a tiny
//! wall-clock helper.

use std::time::{Duration, Instant};

/// Formats a count the way Figure 2 does: `352M`, `214K`, or plain.
pub fn human(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{}K", n / 1_000)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Formats a duration compactly (`1.23s`, `45.6ms`, `789µs`).
pub fn human_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Times a closure, returning `(result, wall_time)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A simple aligned-column table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (lengths must match the header).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..width[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Parses a `--flag value` style argument from `std::env::args`, with a
/// default.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == flag {
            if let Ok(v) = args[i + 1].parse() {
                return v;
            }
        }
    }
    default
}

/// Parses an optional `--flag value` string argument from `std::env::args`.
pub fn arg_opt(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    (0..args.len().saturating_sub(1))
        .find(|&i| args[i] == flag)
        .map(|i| args[i + 1].clone())
}

/// A flat set of named benchmark metrics, serialized as the one-pair-per-
/// line JSON object the CI regression gate consumes.
///
/// Two metric kinds by naming convention: **work counters** (deterministic
/// — probe points, `FindGap` calls, CDS next calls, seeks) are gated by
/// `bench_gate`; anything starting with `time_` is recorded for humans but
/// never gated, because wall-clock on shared CI runners is noise.
#[derive(Debug, Default, Clone)]
pub struct BenchRecord {
    metrics: Vec<(String, f64)>,
}

impl BenchRecord {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a gated work-counter metric.
    pub fn metric(&mut self, name: impl Into<String>, value: u64) {
        self.push(name.into(), value as f64);
    }

    /// Adds an ungated wall-clock metric (`time_ms_` prefix enforced).
    pub fn time_ms(&mut self, name: &str, d: Duration) {
        self.push(format!("time_ms_{name}"), d.as_secs_f64() * 1e3);
    }

    /// Adds a raw fractional metric under its exact name (used when
    /// merging already-recorded files, where names carry their prefixes).
    pub fn metric_f64(&mut self, name: impl Into<String>, value: f64) {
        self.push(name.into(), value);
    }

    fn push(&mut self, name: String, value: f64) {
        assert!(
            !self.metrics.iter().any(|(n, _)| *n == name),
            "duplicate metric {name}"
        );
        self.metrics.push((name, value));
    }

    /// The metrics recorded so far, in insertion order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// Renders the flat-JSON object (the format [`parse_flat_json`]
    /// reads back).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let sep = if i + 1 == self.metrics.len() { "" } else { "," };
            if value.fract() == 0.0 && value.abs() < 1e15 {
                out.push_str(&format!("  \"{name}\": {}{sep}\n", *value as i64));
            } else {
                out.push_str(&format!("  \"{name}\": {value:.3}{sep}\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Writes the record to `path` as flat JSON.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Parses the flat-JSON metric format emitted by [`BenchRecord::to_json`]:
/// a single object of `"name": number` pairs (no nesting, no strings, no
/// arrays — by design, so no JSON dependency is needed). Returns pairs in
/// file order.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| "expected a top-level JSON object".to_string())?;
    let mut out = Vec::new();
    for raw in body.split(',') {
        let pair = raw.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed pair {pair:?}"))?;
        let name = name
            .trim()
            .strip_prefix('"')
            .and_then(|n| n.strip_suffix('"'))
            .ok_or_else(|| format!("metric name must be quoted: {pair:?}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number in {pair:?}: {e}"))?;
        out.push((name.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_units_match_figure2_style() {
        assert_eq!(human(352_000_000), "352M");
        assert_eq!(human(1_500_000), "1.5M");
        assert_eq!(human(214_000), "214K");
        assert_eq!(human(3_441), "3.4K");
        assert_eq!(human(842), "842");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Query", "N", "|C|"]);
        t.row(&["Star".into(), "352M".into(), "214K".into()]);
        t.row(&["3-path".into(), "1.5M".into(), "842".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Query"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("352M"));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(human_time(Duration::from_secs(2)), "2.00s");
        assert_eq!(human_time(Duration::from_millis(45)), "45.0ms");
        assert_eq!(human_time(Duration::from_micros(789)), "789µs");
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn bench_record_json_round_trips() {
        let mut r = BenchRecord::new();
        r.metric("triangle_hard_m12_generic_next", 12345);
        r.metric("appendixj_m8_ms_probes", 42);
        r.time_ms("triangle_hard_m12_generic", Duration::from_micros(1500));
        let json = r.to_json();
        assert!(json.starts_with("{\n"), "{json}");
        assert!(json.contains("\"triangle_hard_m12_generic_next\": 12345,"));
        assert!(json.contains("\"time_ms_triangle_hard_m12_generic\": 1.500"));
        let parsed = parse_flat_json(&json).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, "triangle_hard_m12_generic_next");
        assert_eq!(parsed[0].1, 12345.0);
        assert!((parsed[2].1 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn parse_flat_json_rejects_garbage() {
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json("{\"a\" 1}").is_err());
        assert!(parse_flat_json("{\"a\": x}").is_err());
        assert!(parse_flat_json("{a: 1}").is_err(), "unquoted name");
        assert_eq!(parse_flat_json("{}").unwrap(), vec![]);
        assert_eq!(
            parse_flat_json("{ \"a\": 1, \"b\": 2.5 }").unwrap(),
            vec![("a".to_string(), 1.0), ("b".to_string(), 2.5)]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_metric_names_rejected() {
        let mut r = BenchRecord::new();
        r.metric("x", 1);
        r.metric("x", 2);
    }
}
