//! Shared utilities for the benchmark harnesses.
//!
//! Every experiment in EXPERIMENTS.md has a binary in `src/bin/` that
//! prints a paper-style table; this module provides the table renderer,
//! unit formatting (the paper's `M`/`K` units from Figure 2), and a tiny
//! wall-clock helper.

use std::time::{Duration, Instant};

/// Formats a count the way Figure 2 does: `352M`, `214K`, or plain.
pub fn human(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{}K", n / 1_000)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Formats a duration compactly (`1.23s`, `45.6ms`, `789µs`).
pub fn human_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Times a closure, returning `(result, wall_time)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A simple aligned-column table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (lengths must match the header).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..width[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Parses a `--flag value` style argument from `std::env::args`, with a
/// default.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == flag {
            if let Ok(v) = args[i + 1].parse() {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_units_match_figure2_style() {
        assert_eq!(human(352_000_000), "352M");
        assert_eq!(human(1_500_000), "1.5M");
        assert_eq!(human(214_000), "214K");
        assert_eq!(human(3_441), "3.4K");
        assert_eq!(human(842), "842");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Query", "N", "|C|"]);
        t.row(&["Star".into(), "352M".into(), "214K".into()]);
        t.row(&["3-path".into(), "1.5M".into(), "842".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Query"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("352M"));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(human_time(Duration::from_secs(2)), "2.00s");
        assert_eq!(human_time(Duration::from_millis(45)), "45.0ms");
        assert_eq!(human_time(Duration::from_micros(789)), "789µs");
    }

    #[test]
    fn timed_returns_result() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
