//! Experiment `serve_load` — the query service under concurrent load.
//!
//! Starts an in-process `msj serve` (one shared `Engine`, a bounded
//! worker budget) and drives it with concurrent clients over real TCP
//! sockets, in three phases:
//!
//! 1. **serial fan-in** — every client runs full (no-limit) queries over
//!    the same prepared shapes; all work counters are deterministic
//!    (each request performs the same probe work), so rows, `FindGap`
//!    calls and probe points are **gated** metrics;
//! 2. **parallel limited streams** — `threads=… limit=k` requests
//!    exercise admission (declared cost > 1) and the global-order
//!    streaming merge; the *row* counters stay deterministic (every
//!    request yields exactly `k` rows) and are gated, while the probe
//!    counters depend on cancellation timing and are reported ungated;
//! 3. **prepared statements** — every client `PREPARE`s the hot shape
//!    once, then `EXEC`s it; the `prepared`/`exec_hits` counters, the
//!    rows, and the *parse* count (exactly one per client — EXEC skips
//!    request parsing and planning) are all deterministic and gated;
//! 4. **deadlines** — `timeout=0` requests expire before any work; the
//!    `deadlines` counter is gated and — deliberately — `errors` stays
//!    zero (a deadline is a caller-requested cancellation);
//! 5. **disconnects** — clients abandon large limited streams after a
//!    few rows; the count of registered disconnects is gated, and the
//!    harness asserts the cancelled probe work stayed well below one
//!    full execution per abandoned request.
//!
//! The coalesced-flush counter is gated for the serial and limited
//! phases, whose bodies (and so whose watermark arithmetic) are
//! deterministic. Throughout, the harness asserts the admission
//! invariant (peak in-flight worker permits ≤ budget) and zero protocol
//! errors.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin serve_load
//! [--n edges] [--clients c] [--reps r] [--budget b] [--json FILE]`.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_join::engine::Engine;
use minesweeper_join::server::{Client, Reply, Server, ServerStats};

/// Runs `clients` threads, each sending every request in `reqs` `reps`
/// times; returns the total data rows received. Panics on any `ERR`.
fn drive(addr: std::net::SocketAddr, clients: usize, reps: usize, reqs: &[String]) -> u64 {
    let barrier = Arc::new(Barrier::new(clients));
    let reqs = Arc::new(reqs.to_vec());
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let reqs = Arc::clone(&reqs);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                let mut rows = 0u64;
                for rep in 0..reps {
                    for k in 0..reqs.len() {
                        let req = &reqs[(c + rep + k) % reqs.len()];
                        match client.request(req).expect("request") {
                            Reply::Ok { rows: r, .. } => rows += r,
                            Reply::Err { code, message } => {
                                panic!("{req}: ERR {code} {message}")
                            }
                        }
                    }
                }
                rows
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("client")).sum()
}

/// Work-counter deltas between two server snapshots.
fn delta(after: &ServerStats, before: &ServerStats) -> (u64, u64, u64) {
    (
        after.outputs - before.outputs,
        after.find_gap_calls - before.find_gap_calls,
        after.probe_points - before.probe_points,
    )
}

fn main() {
    let n: usize = arg_or("--n", 20_000);
    let clients: usize = arg_or("--clients", 8);
    let reps: usize = arg_or("--reps", 3);
    let budget: usize = arg_or("--budget", 4);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();

    println!(
        "Query service under load: {clients} clients × {reps} reps against one\n\
         shared engine (path graph, {n} edges), worker budget {budget}.\n"
    );

    // One engine for every connection: a path graph for the two-hop
    // join, and a wide-string relation big enough that an abandoned
    // stream must be cancelled long before it completes.
    let mut engine = Engine::new();
    let edges: String = (0..n).map(|i| format!("{} {}\n", i, i + 1)).collect();
    engine.load_tsv("E", &edges).unwrap();
    let big_rows = 5 * n;
    let big: String = (0..big_rows).map(|i| format!("k{i:0>60} {i}\n")).collect();
    engine.load_tsv("B", &big).unwrap();

    let server = Server::start(Arc::new(engine), "127.0.0.1:0", budget).unwrap();
    let addr = server.addr();
    let mut table = Table::new(&["phase", "requests", "rows", "outputs", "findgap", "time"]);

    // Phase 1: serial full scans — every counter deterministic.
    let serial_reqs = vec![
        "Q E(x, y), E(y, z)".to_string(),
        "Q algo=leapfrog E(x, y), E(y, z)".to_string(),
    ];
    let before = server.stats();
    let (serial_rows, t_serial) = timed(|| drive(addr, clients, reps, &serial_reqs));
    let after = server.stats();
    let (outputs, findgap, probes) = delta(&after, &before);
    let serial_requests = (clients * reps * serial_reqs.len()) as u64;
    table.row(&[
        "serial full".into(),
        serial_requests.to_string(),
        human(serial_rows),
        human(outputs),
        human(findgap),
        human_time(t_serial),
    ]);
    record.metric("serve_load_serial_requests", serial_requests);
    record.metric("serve_load_serial_rows", serial_rows);
    record.metric("serve_load_serial_outputs", outputs);
    record.metric("serve_load_serial_findgap", findgap);
    record.metric("serve_load_serial_probes", probes);
    // Deterministic bodies ⇒ deterministic watermark flushes (first
    // line, then every --flush-rows lines): gate the coalescing.
    record.metric("serve_load_serial_flushes", after.flushes - before.flushes);
    record.time_ms("serve_load_serial", t_serial);

    // Phase 2: parallel limited streams — rows deterministic (each
    // request yields exactly k), probe counters cancellation-dependent.
    let k = 500u64;
    let limited_reqs = vec![
        format!("Q threads=2 limit={k} E(x, y), E(y, z)"),
        format!("Q threads=4 limit={k} E(x, y), E(y, z)"),
    ];
    let before = server.stats();
    let (limit_rows, t_limit) = timed(|| drive(addr, clients, reps, &limited_reqs));
    let after = server.stats();
    let (outputs, findgap, _) = delta(&after, &before);
    let limit_requests = (clients * reps * limited_reqs.len()) as u64;
    assert_eq!(
        limit_rows,
        limit_requests * k,
        "every limited request must stream exactly {k} rows"
    );
    table.row(&[
        format!("parallel limit={k}"),
        limit_requests.to_string(),
        human(limit_rows),
        human(outputs),
        human(findgap),
        human_time(t_limit),
    ]);
    record.metric("serve_load_limit_requests", limit_requests);
    record.metric("serve_load_limit_rows", limit_rows);
    record.metric("serve_load_limit_flushes", after.flushes - before.flushes);
    // Probe work under a cancelled parallel stream depends on worker
    // timing: report it for humans, keep it out of the gate.
    record.time_ms("serve_load_limit", t_limit);

    // Phase 3: prepared statements — every client PREPAREs the hot
    // shape once, then EXECs it `reps` times. The parse counter is the
    // point: it moves once per client (the PREPARE), then stays flat —
    // EXEC skips request parsing and plan lookup entirely.
    const HOT: &str = "E(x, y), E(y, z)";
    let before = server.stats();
    let (prep_rows, t_prep) = timed(|| {
        let barrier = Arc::new(Barrier::new(clients));
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    match client.request(&format!("PREPARE hot -- {HOT}")) {
                        Ok(Reply::Ok { .. }) => {}
                        other => panic!("PREPARE failed: {other:?}"),
                    }
                    let mut rows = 0u64;
                    for _ in 0..reps {
                        match client.request("EXEC hot").expect("request") {
                            Reply::Ok { rows: r, .. } => rows += r,
                            Reply::Err { code, message } => {
                                panic!("EXEC hot: ERR {code} {message}")
                            }
                        }
                    }
                    rows
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .sum::<u64>()
    });
    let after = server.stats();
    let (outputs, findgap, _) = delta(&after, &before);
    let exec_requests = (clients * reps) as u64;
    let prepared = after.prepared - before.prepared;
    let exec_hits = after.exec_hits - before.exec_hits;
    let exec_parses = after.query_parses - before.query_parses;
    assert_eq!(prepared, clients as u64, "one PREPARE per client");
    assert_eq!(exec_hits, exec_requests, "every EXEC hit its statement");
    assert_eq!(
        exec_parses, clients as u64,
        "EXEC must not parse: only the {clients} PREPAREs may move the parse counter"
    );
    table.row(&[
        "prepared EXEC".into(),
        exec_requests.to_string(),
        human(prep_rows),
        human(outputs),
        human(findgap),
        human_time(t_prep),
    ]);
    record.metric("serve_load_prepared", prepared);
    record.metric("serve_load_exec_hits", exec_hits);
    record.metric("serve_load_exec_parses", exec_parses);
    record.metric("serve_load_exec_rows", prep_rows);
    record.time_ms("serve_load_prepared", t_prep);

    // Phase 4: deadlines — timeout=0 expires before any work, the one
    // fully deterministic deadline. ERR DEADLINE is the expected
    // response and `errors` must not move (asserted globally below).
    let before = server.stats();
    let (_, t_deadline) = timed(|| {
        let barrier = Arc::new(Barrier::new(clients));
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    for _ in 0..reps {
                        match client
                            .request(&format!("Q timeout=0 {HOT}"))
                            .expect("request")
                        {
                            Reply::Err { code, .. } => assert_eq!(code, "DEADLINE"),
                            Reply::Ok { rows, .. } => {
                                panic!("timeout=0 must expire, got {rows} rows")
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client");
        }
    });
    let after = server.stats();
    let deadlines = after.deadlines - before.deadlines;
    assert_eq!(
        deadlines,
        (clients * reps) as u64,
        "every timeout=0 request must answer ERR DEADLINE"
    );
    table.row(&[
        "timeout=0 deadlines".into(),
        (clients * reps).to_string(),
        "0".into(),
        "0".into(),
        "0".into(),
        human_time(t_deadline),
    ]);
    record.metric("serve_load_deadlines", deadlines);
    record.time_ms("serve_load_deadline", t_deadline);

    // Phase 5: abandoned streams — disconnect-triggered cancellation.
    let abandons = 4usize;
    let before = server.stats();
    let (_, t_abandon) = timed(|| {
        for _ in 0..abandons {
            let mut client = Client::connect(addr).expect("connect");
            client
                .send(&format!("Q threads=2 limit={big_rows} B(k, v)"))
                .expect("send");
            for _ in 0..5 {
                client.read_line().expect("stream is live");
            }
            // Drop with megabytes unread: the server's next flush fails
            // and the session cancels the stream's remaining work.
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.stats().disconnects < before.disconnects + abandons as u64 {
            assert!(
                Instant::now() < deadline,
                "server never registered all {abandons} disconnects"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    });
    let after = server.stats();
    let (cancelled_outputs, cancelled_findgap, _) = delta(&after, &before);
    let full = (abandons * big_rows) as u64;
    assert!(
        cancelled_outputs < full / 2,
        "cancellation must stop well short of the {full} outputs the \
         abandoned requests would have produced, got {cancelled_outputs}"
    );
    table.row(&[
        "abandoned streams".into(),
        abandons.to_string(),
        human(after.rows - before.rows),
        human(cancelled_outputs),
        human(cancelled_findgap),
        human_time(t_abandon),
    ]);
    record.metric("serve_load_disconnects", abandons as u64);
    record.time_ms("serve_load_abandon", t_abandon);

    // Service-level invariants, asserted after all phases.
    let stats = server.stats();
    assert_eq!(stats.errors, 0, "no request may fail under load");
    assert!(
        stats.peak_in_flight <= budget as u64,
        "admission broke its bound: peak {} > budget {budget}",
        stats.peak_in_flight
    );
    record.metric("serve_load_errors", stats.errors);
    record.metric("serve_load_peak_budget_ok", 1);

    table.print();
    println!(
        "\nadmission: budget {budget}, peak in-flight {}, admitted {}, queued {}",
        stats.peak_in_flight, stats.admitted, stats.waited
    );
    println!(
        "cancellation: {cancelled_outputs} of {full} potential outputs before \
         the {abandons} disconnects were honoured"
    );
    server.shutdown().unwrap();

    if let Some(path) = json {
        record.write_json(&path).expect("write json");
        println!("wrote {path}");
    }
}
