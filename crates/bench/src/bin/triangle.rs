//! Experiment `triangle` — Theorem 5.4: the dyadic triangle CDS evaluates
//! `Q∆` in `Õ(|C|^{3/2} + Z)` where the generic ConstraintTree needs
//! `Õ(|C|²+Z)`.
//!
//! Two workloads:
//! 1. the **hard instance** (a U-free Prop 5.3 shape: `R = [m]²`,
//!    `S = [m]×{1}`, `T = [m]×{2}`, empty output, `|C| = O(m)`): the
//!    generic CDS pays `Ω(m²)` merges, the dyadic CDS prunes whole
//!    subtrees and stays `Õ(m)`;
//! 2. **random power-law graphs**: triangle listing where both agree on
//!    the output and LFTJ provides the worst-case-optimal baseline.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin triangle
//! [--mmax m] [--edges e] [--json FILE]`. With `--json` the deterministic
//! work counters (and ungated wall times) are also written as flat JSON
//! for CI's `bench_gate` regression check.

use minesweeper_baselines::leapfrog_triejoin;
use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::{minesweeper_join, triangle_join};
use minesweeper_storage::{builder, Database, Val};
use minesweeper_workloads::graphs::chung_lu;
use minesweeper_workloads::triangle_instance;

fn hard_instance(
    m: Val,
) -> (
    Database,
    minesweeper_storage::RelId,
    minesweeper_storage::RelId,
    minesweeper_storage::RelId,
) {
    let mut db = Database::new();
    let mut r_pairs = Vec::new();
    for a in 1..=m {
        for b in 1..=m {
            r_pairs.push((a, b));
        }
    }
    let r = db.add(builder::binary("R", r_pairs)).unwrap();
    let s = db
        .add(builder::binary("S", (1..=m).map(|b| (b, 1))))
        .unwrap();
    let t = db
        .add(builder::binary("T", (1..=m).map(|a| (a, 2))))
        .unwrap();
    (db, r, s, t)
}

fn main() {
    let mmax: i64 = arg_or("--mmax", 96);
    let edges: usize = arg_or("--edges", 30_000);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Theorem 5.4, part 1 — hard Q∆ instance (empty output, |C| = O(m)):\n\
         generic CDS work must grow ~m², dyadic CDS ~m.\n"
    );
    let mut t1 = Table::new(&[
        "m",
        "N",
        "generic next",
        "generic time",
        "dyadic next",
        "dyadic time",
    ]);
    let mut m = 12i64;
    while m <= mmax {
        let (db, r, s, t) = hard_instance(m);
        let q = minesweeper_core::triangle::triangle_query(r, s, t);
        let (gen, t_gen) = timed(|| minesweeper_join(&db, &q, ProbeMode::General).unwrap());
        let (tri, t_tri) = timed(|| triangle_join(&db, r, s, t).unwrap());
        assert!(gen.tuples.is_empty() && tri.tuples.is_empty());
        record.metric(
            format!("triangle_hard_m{m}_generic_next"),
            gen.stats.cds_next_calls,
        );
        record.metric(
            format!("triangle_hard_m{m}_dyadic_next"),
            tri.stats.cds_next_calls,
        );
        record.time_ms(&format!("triangle_hard_m{m}_generic"), t_gen);
        record.time_ms(&format!("triangle_hard_m{m}_dyadic"), t_tri);
        t1.row(&[
            m.to_string(),
            human(db.total_tuples() as u64),
            human(gen.stats.cds_next_calls),
            human_time(t_gen),
            human(tri.stats.cds_next_calls),
            human_time(t_tri),
        ]);
        m *= 2;
    }
    t1.print();
    println!("\nPart 2 — triangle listing on Chung-Lu graphs ({edges} edges):\n");
    let mut t2 = Table::new(&[
        "nodes",
        "N",
        "Z",
        "dyadic time",
        "generic time",
        "LFTJ time",
    ]);
    for nodes in [1000i64, 4000] {
        let el = chung_lu(nodes, edges, 2.3, 99);
        let (db, r, s, t, q) = triangle_instance(&el);
        let (tri, t_tri) = timed(|| triangle_join(&db, r, s, t).unwrap());
        let (gen, t_gen) = timed(|| minesweeper_join(&db, &q, ProbeMode::General).unwrap());
        let (lf, t_lf) = timed(|| leapfrog_triejoin(&db, &q).unwrap());
        assert_eq!(tri.tuples.len(), lf.tuples.len());
        assert_eq!(gen.tuples.len(), lf.tuples.len());
        record.metric(format!("triangle_list_n{nodes}_z"), tri.tuples.len() as u64);
        record.metric(
            format!("triangle_list_n{nodes}_dyadic_next"),
            tri.stats.cds_next_calls,
        );
        record.metric(format!("triangle_list_n{nodes}_lftj_seeks"), lf.stats.seeks);
        record.time_ms(&format!("triangle_list_n{nodes}_dyadic"), t_tri);
        record.time_ms(&format!("triangle_list_n{nodes}_lftj"), t_lf);
        t2.row(&[
            nodes.to_string(),
            human(db.total_tuples() as u64),
            human(tri.tuples.len() as u64),
            human_time(t_tri),
            human_time(t_gen),
            human_time(t_lf),
        ]);
    }
    t2.print();
    println!(
        "\nPaper's shape: part 1 shows the |C|² vs |C|^{{3/2}} separation\n\
         (generic next-calls quadruple per doubling, dyadic ~double)."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
