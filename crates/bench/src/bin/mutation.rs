//! Experiment `mutation` — the write path's lazy merge, priced.
//!
//! A versioned relation answers cursor probes from *base + delta*
//! without materializing the merge (see `docs/STORAGE.md`). This
//! harness prices that contract with deterministic counters:
//!
//! 1. **Probe equivalence** — a forward `FindGap` sweep through a
//!    [`MergeCursor`] over a dirty relation (pending inserts and
//!    tombstoned deletes) must return gaps bit-identical to the same
//!    sweep over the materialized snapshot. The sweep's `delta_probes`
//!    (probes that consulted a non-empty delta) and `merge_steps`
//!    (per-child liveness/union work) are the lazy path's price.
//! 2. **Engine writes** — the same delta applied through
//!    [`Engine::insert`] / [`Engine::delete`]: the join's output size
//!    and certificate-proxy work after the writes are gated, and the
//!    relation version counter must move exactly once per
//!    content-changing batch.
//! 3. **Compaction** — folding the delta is content-neutral: same
//!    output, same probe work, cache still warm, and the fold count is
//!    gated.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin mutation
//! [--n size] [--json FILE]`.

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_join::engine::{Engine, ExecOptions};
use minesweeper_storage::{
    ExecStats, MergeCursor, RelationBuilder, Val, VersionedRelation, WriteOp,
};

/// The base relation: `R(a, b)` with `n` left values, three right
/// values each — dense enough that deltas overlap real subtrees.
fn base_relation(n: Val) -> minesweeper_storage::TrieRelation {
    let mut rb = RelationBuilder::new("R", 2);
    for a in 0..n {
        for k in 0..3 {
            rb.push(&[a, (a * 7 + k * 11) % (2 * n)]);
        }
    }
    rb.build().unwrap()
}

/// The deterministic delta: an insert touching every 3rd subtree (one
/// new child, one brand-new left value), a delete tombstoning every 5th
/// base tuple, and a full subtree kill every 16th left value.
fn delta_ops(n: Val) -> Vec<WriteOp> {
    let mut ops = Vec::new();
    for a in (0..n).step_by(3) {
        ops.push(WriteOp::Insert(vec![a, (a * 7 + 5) % (2 * n)]));
        ops.push(WriteOp::Insert(vec![a + n, a]));
    }
    for a in (0..n).step_by(5) {
        ops.push(WriteOp::Delete(vec![a, (a * 7) % (2 * n)]));
    }
    for a in (0..n).step_by(16) {
        for k in 0..3 {
            ops.push(WriteOp::Delete(vec![a, (a * 7 + k * 11) % (2 * n)]));
        }
    }
    ops
}

fn main() {
    let n: Val = arg_or("--n", 512);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Mutation: versioned delta tries at n = {n} — lazy merge probes vs\n\
         the materialized snapshot, engine write batches, compaction.\n"
    );

    // ---- phase 1: cursor-level probe equivalence over a dirty relation.
    let mut rel = VersionedRelation::from_base(base_relation(n));
    let ops = delta_ops(n);
    let (outcome, t_apply) = timed(|| rel.apply(&ops).expect("in-domain batch"));
    let snap = rel.snapshot().clone();

    let view = rel.merge_view();
    let mut lazy = ExecStats::new();
    let mut exact = ExecStats::new();
    let (probes, t_sweep) = timed(|| {
        let mut cursor = MergeCursor::new(view);
        let mut probes = 0u64;
        for a in 0..(2 * n + 2) {
            let got = cursor.find_gap(a, &mut lazy);
            let expect = snap.find_gap(snap.root(), a, &mut exact);
            assert_eq!(got, expect, "root gap at {a} must match the snapshot");
            probes += 1;
            // Exact hit: descend and sweep one level down, then return.
            if got.lo_val == a && cursor.descend(a, &mut lazy) {
                let under = snap.child(snap.root(), {
                    let g = snap.find_gap(snap.root(), a, &mut exact);
                    g.lo_coord
                });
                for b in (0..(2 * n + 2)).step_by(7) {
                    let got = cursor.find_gap(b, &mut lazy);
                    let expect = snap.find_gap(under, b, &mut exact);
                    assert_eq!(got, expect, "level-1 gap at ({a}, {b}) must match");
                    probes += 1;
                }
                cursor.up();
            }
        }
        probes
    });
    assert_eq!(
        view.iter_tuples().collect::<Vec<_>>(),
        snap.to_tuples(),
        "lazy iteration equals the materialized snapshot"
    );
    let (materialized, materialize_steps) = view.materialize();
    assert_eq!(materialized.len(), snap.len());

    record.metric("mutation_ops", ops.len() as u64);
    record.metric("mutation_changed_rows", outcome.affected() as u64);
    record.metric("mutation_probes", probes);
    record.metric("mutation_delta_probes", lazy.delta_probes);
    record.metric("mutation_merge_steps", lazy.merge_steps);
    record.metric("mutation_materialize_steps", materialize_steps);
    record.time_ms("mutation_apply", t_apply);
    record.time_ms("mutation_sweep", t_sweep);

    // ---- phase 2: the same writes through the engine front door.
    let mut engine = Engine::new();
    engine.add_int_relation(base_relation(n)).unwrap();
    {
        let mut sb = RelationBuilder::new("S", 2);
        for b in 0..(2 * n) {
            sb.push(&[b, b % 97]);
        }
        engine.add_int_relation(sb.build().unwrap()).unwrap();
    }
    let opts = ExecOptions::default().with_stats();
    let query = "R(a, b), S(b, c)";
    let z_before = engine
        .prepare(query)
        .unwrap()
        .execute(&opts)
        .unwrap()
        .rows
        .len();

    let (_, t_writes) = timed(|| {
        for chunk in ops.chunks(64) {
            let rows = chunk.iter().map(|op| {
                op.tuple()
                    .iter()
                    .map(|&v| minesweeper_storage::Value::Int(v))
                    .collect::<Vec<_>>()
            });
            let inserts: Vec<_> = chunk
                .iter()
                .zip(rows)
                .map(|(op, row)| match op {
                    WriteOp::Insert(_) => minesweeper_join::engine::RowOp::Insert(row),
                    WriteOp::Delete(_) => minesweeper_join::engine::RowOp::Delete(row),
                })
                .collect();
            engine.apply_batch("R", inserts).expect("valid batch");
        }
    });
    let version = engine.relation_version("R").unwrap();
    let after = engine.prepare(query).unwrap().execute(&opts).unwrap();
    let stats = after.stats.as_ref().expect("stats requested");
    record.metric("mutation_version", version);
    record.metric("mutation_z_before", z_before as u64);
    record.metric("mutation_z_after", after.rows.len() as u64);
    record.metric("mutation_find_gap_calls", stats.find_gap_calls);
    record.time_ms("mutation_writes", t_writes);

    // ---- phase 3: compaction is observationally silent.
    let (folded, t_compact) = timed(|| engine.compact());
    let again = engine.prepare(query).unwrap();
    assert!(
        again.cache_hit(),
        "compaction must not invalidate the cache"
    );
    let re = again.execute(&opts).unwrap();
    assert_eq!(re.rows, after.rows, "compaction must not change results");
    assert_eq!(
        engine.relation_version("R").unwrap(),
        version,
        "compaction must not bump versions"
    );
    record.metric("mutation_compactions", folded as u64);
    record.time_ms("mutation_compact", t_compact);

    let mut table = Table::new(&["counter", "value"]);
    for (name, value) in record.metrics() {
        table.row(&[name.clone(), human(*value as u64)]);
    }
    table.print();
    println!(
        "\napply {} · sweep {} · writes {} · compact {}",
        human_time(t_apply),
        human_time(t_sweep),
        human_time(t_writes),
        human_time(t_compact)
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
