//! Experiment `bitleaf` — hybrid bitset leaves vs sorted arrays, priced.
//!
//! `BitLeafRelation` packs dense child lists into `u64` bitset words
//! with a rank directory while sparse lists keep the sorted arrays
//! (see `docs/STORAGE.md`). This harness prices that representation
//! with deterministic counters:
//!
//! 1. **Sweep equivalence** — a `FindGap` sweep over a fully dense
//!    two-level relation must return gaps bit-identical across the
//!    sorted and hybrid backends, with the hybrid's `bitset_probes` /
//!    `bitset_words_scanned` (and the sorted side's zeros) gated. The
//!    per-backend wall clocks are reported so the dense-workload win
//!    is visible in every run.
//! 2. **Selection** — the `Auto` policy must pick every run of the
//!    dense relation and *no* run of a sparse control; run and word
//!    totals are gated.
//! 3. **Join** — the same chain query through two engines differing
//!    only in `LeafPolicy`: identical rows, identical `find_gap_calls`,
//!    and the hybrid run's bitset counters gated.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin bitleaf
//! [--n run-length] [--json FILE]`.

use std::sync::Arc;

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_join::engine::{Engine, ExecOptions};
use minesweeper_storage::{
    BitLeafRelation, ExecStats, LeafPolicy, RelationBuilder, TrieRelation, TrieStorage, Val,
};

/// The dense workload: `D(a, b)` with `m` contiguous left values, each
/// owning the contiguous run `0..n` — every node qualifies as dense.
fn dense_relation(name: &str, m: Val, n: Val) -> TrieRelation {
    let mut rb = RelationBuilder::new(name, 2);
    for a in 0..m {
        for b in 0..n {
            rb.push(&[a, b]);
        }
    }
    rb.build().unwrap()
}

/// The sparse control: the same shape with every value spread far
/// apart, so no run passes the `Auto` density test.
fn sparse_relation(m: Val, n: Val) -> TrieRelation {
    let mut rb = RelationBuilder::new("Z", 2);
    for a in 0..m {
        for b in 0..n {
            rb.push(&[a * 1000, b * 1000 + 1]);
        }
    }
    rb.build().unwrap()
}

/// A forward `FindGap` sweep over both levels of `rel`, folding every
/// gap into a checksum so the two backends can be compared exactly.
fn sweep<S: TrieStorage>(rel: &S, m: Val, n: Val, stats: &mut ExecStats) -> (u64, u64) {
    let mut checksum = 0u64;
    let mut probes = 0u64;
    let root = rel.root();
    for a in 0..m {
        let g = rel.find_gap(root, a, stats);
        probes += 1;
        assert!(g.exact(), "every left value is present");
        let child = rel.child(root, g.hi_coord);
        let mut b = -1;
        while b <= n {
            let g = rel.find_gap(child, b, stats);
            probes += 1;
            for part in [
                g.lo_coord as u64,
                g.hi_coord as u64,
                g.lo_val as u64,
                g.hi_val as u64,
            ] {
                checksum = checksum.wrapping_mul(1_000_003).wrapping_add(part);
            }
            b += 3;
        }
    }
    (checksum, probes)
}

/// An engine over the chain workload `R(a, b), S(b, c)` whose first
/// relation carries dense runs, built under the given leaf policy.
fn chain_engine(policy: LeafPolicy, m: Val, n: Val) -> Engine {
    let mut e = Engine::new();
    e.set_leaf_policy(policy);
    e.add_int_relation(dense_relation("R", m, n)).unwrap();
    let mut sb = RelationBuilder::new("S", 2);
    for b in 0..n {
        sb.push(&[b, b % 29]);
        sb.push(&[b, n + b % 31]);
    }
    e.add_int_relation(sb.build().unwrap()).unwrap();
    e
}

fn main() {
    let n: Val = arg_or("--n", 4096);
    let json = arg_opt("--json");
    let m: Val = 64;
    let mut record = BenchRecord::new();
    println!(
        "Bitleaf: hybrid bitset leaves at run length n = {n} — FindGap\n\
         sweeps and a chain join, sorted arrays vs packed bitset runs.\n"
    );

    // ---- phase 1: sweep equivalence and the per-backend wall clocks.
    let sorted = Arc::new(dense_relation("D", m, n));
    let hybrid =
        BitLeafRelation::build(sorted.clone(), LeafPolicy::Dense).expect("dense runs selected");
    let mut st_sorted = ExecStats::new();
    let mut st_hybrid = ExecStats::new();
    let ((sum_sorted, probes), t_sorted) = timed(|| sweep(sorted.as_ref(), m, n, &mut st_sorted));
    let ((sum_hybrid, probes_h), t_hybrid) = timed(|| sweep(&hybrid, m, n, &mut st_hybrid));
    assert_eq!(sum_sorted, sum_hybrid, "gaps must match bit for bit");
    assert_eq!(probes, probes_h);
    assert_eq!(
        st_sorted.bitset_probes, 0,
        "sorted backend never touches a bitset"
    );
    assert!(
        st_hybrid.bitset_probes > 0,
        "hybrid backend answers from runs"
    );
    record.metric("bitleaf_sweep_probes", probes);
    record.metric("bitleaf_sweep_bitset_probes", st_hybrid.bitset_probes);
    record.metric("bitleaf_sweep_words", st_hybrid.bitset_words_scanned);
    record.time_ms("bitleaf_sweep_sorted", t_sorted);
    record.time_ms("bitleaf_sweep_hybrid", t_hybrid);

    // ---- phase 2: Auto selection on dense data, silence on sparse.
    let auto = BitLeafRelation::build(sorted.clone(), LeafPolicy::Auto)
        .expect("Auto selects the dense runs");
    assert_eq!(
        auto.dense_run_count(),
        1 + m as u64,
        "root run + one per left value"
    );
    let control = Arc::new(sparse_relation(8, 8));
    assert!(
        BitLeafRelation::build(control, LeafPolicy::Auto).is_none(),
        "Auto must leave the sparse control sorted"
    );
    record.metric("bitleaf_dense_runs", auto.dense_run_count());
    record.metric("bitleaf_words_total", auto.words_total());

    // ---- phase 3: the chain join under both policies.
    let m_join: Val = 16;
    let n_join: Val = n / 4;
    let opts = ExecOptions::default().with_stats();
    let query = "R(a, b), S(b, c)";
    let e_sorted = chain_engine(LeafPolicy::Sorted, m_join, n_join);
    let e_hybrid = chain_engine(LeafPolicy::Dense, m_join, n_join);
    let (rows_sorted, t_join_sorted) =
        timed(|| e_sorted.prepare(query).unwrap().execute(&opts).unwrap());
    let (rows_hybrid, t_join_hybrid) =
        timed(|| e_hybrid.prepare(query).unwrap().execute(&opts).unwrap());
    assert_eq!(
        rows_sorted.rows, rows_hybrid.rows,
        "policies answer identically"
    );
    let js = rows_sorted.stats.as_ref().expect("stats requested");
    let jh = rows_hybrid.stats.as_ref().expect("stats requested");
    assert_eq!(js.find_gap_calls, jh.find_gap_calls, "same probe sequence");
    assert_eq!(js.bitset_probes, 0);
    assert_eq!(js.dense_leaves, 0);
    assert!(jh.dense_leaves > 0, "the dense relation is hybrid-backed");
    record.metric("bitleaf_join_z", rows_hybrid.rows.len() as u64);
    record.metric("bitleaf_join_find_gap", jh.find_gap_calls);
    record.metric("bitleaf_join_bitset_probes", jh.bitset_probes);
    record.metric("bitleaf_join_dense_leaves", jh.dense_leaves);
    record.time_ms("bitleaf_join_sorted", t_join_sorted);
    record.time_ms("bitleaf_join_hybrid", t_join_hybrid);

    let mut table = Table::new(&["counter", "value"]);
    for (name, value) in record.metrics() {
        table.row(&[name.clone(), human(*value as u64)]);
    }
    table.print();
    println!(
        "\nsweep sorted {} · sweep hybrid {} · join sorted {} · join hybrid {}",
        human_time(t_sorted),
        human_time(t_hybrid),
        human_time(t_join_sorted),
        human_time(t_join_hybrid)
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
