//! Experiment `engine_cache` — what the `Engine` front door amortizes.
//!
//! The certificate bound `Õ(|C| + Z)` prices the *probe loop*, assuming
//! ordered indexes consistent with the GAO already exist. A service that
//! re-plans and physically re-indexes per call pays that setup cost every
//! time. This harness runs Example B.3's parity instance — written order
//! not a NEO (so the planner must re-index), empty output, certificate
//! `O(n)` against input `Θ(n²)` — in two regimes:
//!
//! 1. **re-plan per call** — `plan()` + `execute()` each repetition, the
//!    pre-Engine API shape: every call rebuilds the re-indexed relations;
//! 2. **prepared** — one `Engine::prepare_query` (plan + re-index, both
//!    cached), then `execute` repetitions that go straight to the probe
//!    loop.
//!
//! Both regimes produce identical output and identical *probe* work; the
//! separation is pure setup overhead, and it grows with the input while
//! the probe work tracks the certificate. A second `prepare_query` is
//! also asserted to hit the statement cache with the same plan identity.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin engine_cache
//! [--n size] [--reps k] [--json FILE]`.

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_core::{plan, Query};
use minesweeper_join::engine::{Engine, ExecOptions};
use minesweeper_storage::{Database, RelationBuilder, Val};

/// Example B.3's parity instance: `R(A,C)` holds even `C`s, `S(B,C)` odd
/// `C`s, so `R(A,C) ⋈ S(B,C)` is empty with a certificate of `O(n)`
/// comparisons under the (C,A,B) nested elimination order — but the
/// written (A,B,C) order is not a NEO, so every un-cached execution must
/// physically re-index all `2n²` tuples first. Setup cost `Θ(n²)`, probe
/// cost `Õ(n)`: exactly the gap the prepared-statement cache closes.
fn parity_instance(n: Val) -> (Database, Query) {
    let mut db = Database::new();
    let mut rb = RelationBuilder::new("R", 2);
    let mut sb = RelationBuilder::new("S", 2);
    for a in 1..=n {
        for k in 1..=n {
            rb.push(&[a, 2 * k]);
            sb.push(&[a, 2 * k - 1]);
        }
    }
    let r = db.add(rb.build().unwrap()).unwrap();
    let s = db.add(sb.build().unwrap()).unwrap();
    let q = Query::new(3).atom(r, &[0, 2]).atom(s, &[1, 2]);
    (db, q)
}

fn main() {
    let n: Val = arg_or("--n", 64);
    let reps: usize = arg_or("--reps", 20);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Engine amortization: B.3-shaped query (re-index required, empty\n\
         output, certificate O(n)) at n = {n}, {reps} executions per regime.\n"
    );
    let (db, q) = parity_instance(n);
    let p = plan(&db, &q).unwrap();
    assert!(p.is_reindexed(), "instance must force a re-index");

    // Regime 1: re-plan + re-index on every call.
    let (replan_rows, t_replan) = timed(|| {
        let mut last = 0usize;
        for _ in 0..reps {
            last = plan(&db, &q)
                .unwrap()
                .execute(&db)
                .unwrap()
                .result
                .tuples
                .len();
        }
        last
    });

    // Regime 2: prepare once, probe loop only afterwards.
    let engine = Engine::from_database(db);
    let opts = ExecOptions::default().with_stats();
    let ((prepared_rows, probes_per_exec), t_prepared) = timed(|| {
        let stmt = engine.prepare_query(&q).unwrap();
        assert!(!stmt.cache_hit(), "first prepare builds the entry");
        let mut last = 0usize;
        let mut probes = 0u64;
        for _ in 0..reps {
            let res = stmt.execute(&opts).unwrap();
            last = res.rows.len();
            probes = res.stats.expect("stats requested").probe_points;
        }
        (last, probes)
    });
    assert_eq!(replan_rows, prepared_rows, "identical output either way");

    // A repeat prepare must hit the cache with the same plan identity.
    let first_id = {
        let stmt = engine.prepare_query(&q).unwrap();
        assert!(stmt.cache_hit(), "second prepare is a cache hit");
        stmt.plan_id()
    };
    let again = engine.prepare_query(&q).unwrap();
    assert_eq!(again.plan_id(), first_id, "plan identity is stable");

    record.metric("engine_cache_z", prepared_rows as u64);
    record.metric("engine_cache_probes_per_exec", probes_per_exec);
    record.time_ms("engine_cache_replan_total", t_replan);
    record.time_ms("engine_cache_prepared_total", t_prepared);

    let mut table = Table::new(&["regime", "execs", "Z", "probes/exec", "total time"]);
    table.row(&[
        "re-plan per call".into(),
        reps.to_string(),
        human(prepared_rows as u64),
        human(probes_per_exec),
        human_time(t_replan),
    ]);
    table.row(&[
        "prepared (cached)".into(),
        reps.to_string(),
        human(prepared_rows as u64),
        human(probes_per_exec),
        human_time(t_prepared),
    ]);
    table.print();
    println!(
        "\nExpected shape: identical probe work, but the re-plan regime pays a\n\
         full physical re-index per execution — the prepared regime amortizes\n\
         it across all {reps} runs ({}x here).",
        (t_replan.as_secs_f64() / t_prepared.as_secs_f64().max(1e-9)).round()
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
