//! `bench_gate` — the CI benchmark regression gate.
//!
//! Merges one or more freshly produced flat-JSON metric files (from the
//! bench binaries' `--json` flag), optionally writes the merged set to a
//! single artifact (`--emit BENCH_pr.json`), and compares every **gated**
//! metric against a checked-in baseline:
//!
//! * gated: deterministic work counters (probe points, `FindGap` calls,
//!   CDS next calls, LFTJ seeks, output sizes) — a current value more
//!   than `--tolerance` (default 0.25 = 25%) above the baseline fails
//!   the run with exit code 1;
//! * ungated: anything named `time_*` — wall-clock on shared CI runners
//!   is noise, so times are printed for humans but never gate;
//! * a baseline metric missing from the current set fails (a silently
//!   dropped benchmark is a regression of coverage); a new current
//!   metric absent from the baseline is reported as `new` and passes
//!   (update the baseline to start gating it).
//!
//! Usage:
//! `bench_gate --baseline ci/bench_baseline.json [--tolerance 0.25]
//!  [--emit BENCH_pr.json] CURRENT.json [CURRENT2.json ...]`

use std::collections::BTreeMap;
use std::process::ExitCode;

use minesweeper_bench::{parse_flat_json, BenchRecord, Table};

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut emit: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut current_paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" | "--tolerance" | "--emit" if i + 1 >= args.len() => {
                eprintln!("{} needs a value", args[i]);
                return ExitCode::from(2);
            }
            "--baseline" => {
                baseline_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--emit" => {
                emit = Some(args[i + 1].clone());
                i += 2;
            }
            "--tolerance" => {
                let Ok(t) = args[i + 1].parse() else {
                    eprintln!("--tolerance expects a fraction, got {:?}", args[i + 1]);
                    return ExitCode::from(2);
                };
                tolerance = t;
                i += 2;
            }
            path => {
                current_paths.push(path.to_string());
                i += 1;
            }
        }
    }
    let (Some(baseline_path), false) = (baseline_path, current_paths.is_empty()) else {
        eprintln!(
            "usage: bench_gate --baseline FILE [--tolerance FRACTION] \
             [--emit FILE] CURRENT.json [CURRENT2.json ...]"
        );
        return ExitCode::from(2);
    };

    // Merge the current files (rejecting duplicate metric names across
    // them — that would make the comparison ambiguous).
    let mut current: Vec<(String, f64)> = Vec::new();
    for path in &current_paths {
        match load(path) {
            Ok(metrics) => {
                for (name, value) in metrics {
                    if current.iter().any(|(n, _)| *n == name) {
                        eprintln!("duplicate metric {name:?} (second copy in {path})");
                        return ExitCode::FAILURE;
                    }
                    current.push((name, value));
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &emit {
        let mut merged = BenchRecord::new();
        for (name, value) in &current {
            if value.fract() == 0.0 && value.abs() < 1e15 {
                merged.metric(name.clone(), *value as u64);
            } else {
                // Preserve fractional (time) metrics verbatim; the name
                // already carries its `time_ms_` prefix.
                merged.metric_f64(name.clone(), *value);
            }
        }
        if let Err(e) = merged.write_json(path) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("merged {} metric(s) into {path}", current.len());
    }

    let baseline: BTreeMap<String, f64> = match load(&baseline_path) {
        Ok(m) => m.into_iter().collect(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let current_map: BTreeMap<String, f64> = current.iter().cloned().collect();

    let gated = |name: &str| !name.starts_with("time_");
    let mut table = Table::new(&["metric", "baseline", "current", "Δ%", "status"]);
    let mut failures: Vec<String> = Vec::new();
    for (name, &base) in &baseline {
        let Some(&cur) = current_map.get(name) else {
            if gated(name) {
                failures.push(format!("{name}: present in baseline but not produced"));
                table.row(&[
                    name.clone(),
                    format!("{base}"),
                    "—".into(),
                    "—".into(),
                    "MISSING".into(),
                ]);
            }
            continue;
        };
        let delta_pct = if base == 0.0 {
            if cur == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cur - base) / base * 100.0
        };
        let status = if !gated(name) {
            "time (ungated)"
        } else if cur <= base * (1.0 + tolerance) {
            "ok"
        } else {
            failures.push(format!(
                "{name}: {cur} exceeds baseline {base} by {delta_pct:.1}% \
                 (tolerance {:.0}%)",
                tolerance * 100.0
            ));
            "REGRESSION"
        };
        table.row(&[
            name.clone(),
            format!("{base}"),
            format!("{cur}"),
            format!("{delta_pct:+.1}"),
            status.into(),
        ]);
    }
    for (name, value) in &current {
        if !baseline.contains_key(name) {
            table.row(&[
                name.clone(),
                "—".into(),
                format!("{value}"),
                "—".into(),
                "new (ungated)".into(),
            ]);
        }
    }
    table.print();
    if failures.is_empty() {
        println!(
            "\nbench gate: OK ({} gated metric(s) within {:.0}%)",
            baseline.keys().filter(|n| gated(n)).count(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench gate: FAILED");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}
