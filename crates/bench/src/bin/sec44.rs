//! Experiment `sec44` — the Section 4.4 argument that neither NPRR nor
//! LFTJ can match Minesweeper's certificate guarantee on β-acyclic
//! queries: compute all paths of length ℓ in a layered DAG whose longest
//! path has ℓ−1 edges. The output is empty, `|C| = O(ℓ·|E|)`, but the
//! worst-case-optimal algorithms enumerate all `width^(ℓ−1)` maximal
//! paths.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin sec44
//! [--layers l] [--wmax width] [--json FILE]`. With `--json` the
//! deterministic work counters (MS probes, LFTJ seeks, NPRR comparisons)
//! and ungated wall times are written as flat JSON for CI's `bench_gate`
//! regression check.

use minesweeper_baselines::{generic_join, leapfrog_triejoin};
use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::minesweeper_join;
use minesweeper_workloads::layered_path_instance;

fn main() {
    let layers: usize = arg_or("--layers", 5);
    let wmax: i64 = arg_or("--wmax", 16);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Section 4.4: ℓ = {layers}-edge path query on an (ℓ−1)-edge-deep\n\
         layered DAG (empty output; width^(ℓ−1) maximal paths to explore).\n"
    );
    let mut table = Table::new(&[
        "width",
        "|E|",
        "max paths",
        "MS probes",
        "MS time",
        "LFTJ seeks",
        "LFTJ time",
        "NPRR cmps",
        "NPRR time",
    ]);
    let mut width = 2i64;
    while width <= wmax {
        let inst = layered_path_instance(layers, width);
        let paths = (width as u64).pow(layers as u32 - 1);
        let (ms, t_ms) =
            timed(|| minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap());
        let (lf, t_lf) = timed(|| leapfrog_triejoin(&inst.db, &inst.query).unwrap());
        let (np, t_np) = timed(|| generic_join(&inst.db, &inst.query).unwrap());
        assert!(ms.tuples.is_empty() && lf.tuples.is_empty() && np.tuples.is_empty());
        record.metric(format!("sec44_w{width}_ms_probes"), ms.stats.probe_points);
        record.metric(format!("sec44_w{width}_lftj_seeks"), lf.stats.seeks);
        record.metric(
            format!("sec44_w{width}_nprr_comparisons"),
            np.stats.comparisons,
        );
        record.time_ms(&format!("sec44_w{width}_ms"), t_ms);
        record.time_ms(&format!("sec44_w{width}_lftj"), t_lf);
        record.time_ms(&format!("sec44_w{width}_nprr"), t_np);
        table.row(&[
            width.to_string(),
            human(inst.db.total_tuples() as u64),
            human(paths),
            human(ms.stats.probe_points),
            human_time(t_ms),
            human(lf.stats.seeks),
            human_time(t_lf),
            human(np.stats.comparisons),
            human_time(t_np),
        ]);
        width *= 2;
    }
    table.print();
    println!(
        "\nPaper's shape: Minesweeper's probes track |E| (the certificate),\n\
         while LFTJ's seeks and NPRR's comparisons track the exponential\n\
         count of maximal paths."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
