//! Experiment `appendix_h` — Theorem H.4: Minesweeper's set-intersection
//! specialization is near instance optimal. Four instance families sweep
//! the certificate size from `O(m)` to `Θ(N)`; the probe counts must track
//! `|C|`, and the DLM-style adaptive baseline provides the comparison
//! point from Section 6.2.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin appendix_h
//! [--n size] [--json FILE]`. With `--json` each family's deterministic
//! work counters (Minesweeper probes and `FindGap`s, DLM seeks, m-way
//! merge comparisons, output size — the random family is seeded) and
//! ungated wall times are written as flat JSON for CI's `bench_gate`
//! regression check.

use minesweeper_baselines::{adaptive_intersection, merge_intersection};
use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_core::set_intersection;
use minesweeper_storage::TrieRelation;
use minesweeper_workloads::intersection::{
    blocks, disjoint_ranges, interleaved, needle, random_sets,
};

fn main() {
    let n: i64 = arg_or("--n", 1 << 17);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Appendix H: adaptive set intersection, N ≈ {} per family.\n",
        human(2 * n as u64)
    );
    let mut table = Table::new(&[
        "family",
        "N",
        "Z",
        "MS probes",
        "MS findgaps",
        "MS time",
        "DLM seeks",
        "DLM time",
        "merge cmps",
        "merge time",
    ]);
    let families: Vec<(&str, &str, Vec<TrieRelation>)> = vec![
        ("disjoint (|C|=O(m))", "disjoint", disjoint_ranges(2, n)),
        ("interleaved (|C|=Θ(N))", "interleaved", interleaved(2, n)),
        ("blocks b=16 (|C|=Θ(N/16))", "blocks16", blocks(n, 16)),
        (
            "blocks b=1024 (|C|=Θ(N/1024))",
            "blocks1024",
            blocks(n, 1024),
        ),
        ("needle (|C|=O(m))", "needle", needle(3, n)),
        ("random", "random", random_sets(3, n as usize / 2, n, 7)),
    ];
    for (name, slug, sets) in &families {
        let refs: Vec<&TrieRelation> = sets.iter().collect();
        let total: usize = sets.iter().map(|s| s.len()).sum();
        let (ms, t_ms) = timed(|| set_intersection(&refs));
        let (ad, t_ad) = timed(|| adaptive_intersection(&refs));
        let (mg, t_mg) = timed(|| merge_intersection(&refs));
        assert_eq!(ms.tuples.len(), ad.tuples.len(), "{name}");
        assert_eq!(ms.tuples.len(), mg.tuples.len(), "{name}");
        record.metric(format!("apxh_{slug}_z"), ms.stats.outputs);
        record.metric(format!("apxh_{slug}_probes"), ms.stats.probe_points);
        record.metric(format!("apxh_{slug}_findgap"), ms.stats.find_gap_calls);
        record.metric(format!("apxh_{slug}_dlm_seeks"), ad.stats.seeks);
        record.metric(format!("apxh_{slug}_merge_cmps"), mg.stats.comparisons);
        record.time_ms(&format!("apxh_{slug}_ms"), t_ms);
        record.time_ms(&format!("apxh_{slug}_dlm"), t_ad);
        record.time_ms(&format!("apxh_{slug}_merge"), t_mg);
        table.row(&[
            name.to_string(),
            human(total as u64),
            human(ms.stats.outputs),
            human(ms.stats.probe_points),
            human(ms.stats.find_gap_calls),
            human_time(t_ms),
            human(ad.stats.seeks),
            human_time(t_ad),
            human(mg.stats.comparisons),
            human_time(t_mg),
        ]);
    }
    table.print();
    println!(
        "\nPaper's shape: the adaptive algorithms collapse from Θ(N)\n\
         (interleaved) to O(1) (disjoint/needle) as the certificate\n\
         shrinks, with the block families interpolating at Θ(N/b);\n\
         the non-adaptive m-way merge pays Θ(N) on every family."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
