//! Experiment `thm51` — Theorem 5.1: Minesweeper evaluates *any* query
//! whose GAO has elimination width `w` in `Õ(|C|^{w+1} + Z)`, via the
//! shadow-chain `getProbePoint` (Algorithm 6).
//!
//! Workload: the 4-cycle query `E₁(A,B) ⋈ E₂(B,C) ⋈ E₃(C,D) ⋈ E₄(A,D)`
//! (β-cyclic, treewidth 2 — the class where Prop 2.8 rules out
//! `Õ(|C|^{4/3−ε} + Z)` and Theorem 5.1 still guarantees a
//! polynomial-in-|C| bound). Random 4-partite instances of growing size;
//! LFTJ and NPRR provide the worst-case-optimal reference points.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin thm51
//! [--nmax size] [--json FILE]`. With `--json` the deterministic work
//! counters (probe points, CDS next calls, output size, LFTJ seeks — the
//! instances are seeded, so every counter is reproducible) and ungated
//! wall times are written as flat JSON for CI's `bench_gate` regression
//! check.

use minesweeper_baselines::{generic_join, leapfrog_triejoin};
use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::{canonical_certificate_size, minesweeper_join, Query};
use minesweeper_storage::{builder, Database, Val};
use minesweeper_workloads::graphs::erdos_renyi;

fn main() {
    let nmax: i64 = arg_or("--nmax", 512);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Theorem 5.1: width-2 β-cyclic query (4-cycle) under the general\n\
         shadow-chain getProbePoint; bound Õ(|C|^3 + Z).\n"
    );
    let mut table = Table::new(&[
        "n/side",
        "N",
        "Z",
        "cert UB",
        "MS probes",
        "MS next",
        "MS time",
        "LFTJ time",
        "NPRR time",
    ]);
    let mut n = 64i64;
    while n <= nmax {
        // Random 4-partite edge sets over [0, n) per side.
        let mut db = Database::new();
        let m = (4 * n) as usize;
        let mk = |db: &mut Database, name: &str, seed: u64| {
            let pairs: Vec<(Val, Val)> = erdos_renyi(n, m, seed);
            db.add(builder::binary(name, pairs)).unwrap()
        };
        let e1 = mk(&mut db, "E1", 1);
        let e2 = mk(&mut db, "E2", 2);
        let e3 = mk(&mut db, "E3", 3);
        let e4 = mk(&mut db, "E4", 4);
        let q = Query::new(4)
            .atom(e1, &[0, 1])
            .atom(e2, &[1, 2])
            .atom(e3, &[2, 3])
            .atom(e4, &[0, 3]);
        let cert = canonical_certificate_size(&db, &q).unwrap();
        let (ms, t_ms) = timed(|| minesweeper_join(&db, &q, ProbeMode::General).unwrap());
        let (lf, t_lf) = timed(|| leapfrog_triejoin(&db, &q).unwrap());
        let (np, t_np) = timed(|| generic_join(&db, &q).unwrap());
        assert_eq!(ms.tuples.len(), lf.tuples.len());
        assert_eq!(ms.tuples.len(), np.tuples.len());
        record.metric(format!("thm51_n{n}_z"), ms.stats.outputs);
        record.metric(format!("thm51_n{n}_probes"), ms.stats.probe_points);
        record.metric(format!("thm51_n{n}_next"), ms.stats.cds_next_calls);
        record.metric(format!("thm51_n{n}_lftj_seeks"), lf.stats.seeks);
        record.time_ms(&format!("thm51_n{n}_ms"), t_ms);
        record.time_ms(&format!("thm51_n{n}_lftj"), t_lf);
        record.time_ms(&format!("thm51_n{n}_nprr"), t_np);
        table.row(&[
            n.to_string(),
            human(db.total_tuples() as u64),
            human(ms.stats.outputs),
            human(cert),
            human(ms.stats.probe_points),
            human(ms.stats.cds_next_calls),
            human_time(t_ms),
            human_time(t_lf),
            human_time(t_np),
        ]);
        n *= 2;
    }
    table.print();
    println!(
        "\nPaper's shape: Minesweeper completes on β-cyclic inputs with work\n\
         polynomial in |C| (here far below the |C|^3 ceiling); the\n\
         worst-case-optimal algorithms are the stronger choice on dense\n\
         random data — certificate optimality is a *sparse/skewed-data*\n\
         guarantee (Prop 2.8 says no algorithm gets |C|^(4/3−ε) here)."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
