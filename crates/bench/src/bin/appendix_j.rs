//! Experiment `appendix_j` — the separation of Appendix J: on the
//! hidden-certificate path instances, Minesweeper runs in `Õ(mM)` while
//! Yannakakis, Leapfrog Triejoin, the NPRR generic join, and the binary
//! hash plan all need `Ω(mM²)` (they cannot skip the full `(M−1)²` grids).
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin appendix_j
//! [--m atoms] [--mmax chunk] [--json FILE]`. With `--json` the
//! deterministic work counters (and ungated wall times) are also written
//! as flat JSON for CI's `bench_gate` regression check.

use minesweeper_baselines::{
    generic_join, hash_join_plan, index_nested_loop, leapfrog_triejoin, yannakakis,
};
use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::minesweeper_join;
use minesweeper_workloads::appendix_j::hidden_certificate_instance;

fn main() {
    let m: usize = arg_or("--m", 4);
    let mmax: i64 = arg_or("--mmax", 64);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Appendix J separation: path query with {m} relations, chunk width M\n\
         sweeping M (input N = Θ(m·M²) per relation, |C| = Θ(m·M), Z = 0).\n"
    );
    let mut table = Table::new(&[
        "M",
        "N",
        "MS probes",
        "MS time",
        "Yann time",
        "LFTJ time",
        "LFTJ seeks",
        "NPRR time",
        "Hash time",
        "INLJ time",
    ]);
    let mut chunk = 8i64;
    while chunk <= mmax {
        let inst = hidden_certificate_instance(m, chunk);
        let n = inst.db.total_tuples() as u64;
        let (ms, t_ms) =
            timed(|| minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap());
        assert!(ms.tuples.is_empty());
        let (ya, t_ya) = timed(|| yannakakis(&inst.db, &inst.query).unwrap());
        assert!(ya.tuples.is_empty());
        let (lf, t_lf) = timed(|| leapfrog_triejoin(&inst.db, &inst.query).unwrap());
        assert!(lf.tuples.is_empty());
        let (np, t_np) = timed(|| generic_join(&inst.db, &inst.query).unwrap());
        assert!(np.tuples.is_empty());
        let (hj, t_hj) = timed(|| hash_join_plan(&inst.db, &inst.query).unwrap());
        assert!(hj.tuples.is_empty());
        let (il, t_il) = timed(|| index_nested_loop(&inst.db, &inst.query).unwrap());
        assert!(il.tuples.is_empty());
        record.metric(
            format!("appendixj_m{chunk}_ms_probes"),
            ms.stats.probe_points,
        );
        record.metric(
            format!("appendixj_m{chunk}_ms_findgap"),
            ms.stats.find_gap_calls,
        );
        record.metric(format!("appendixj_m{chunk}_lftj_seeks"), lf.stats.seeks);
        record.time_ms(&format!("appendixj_m{chunk}_ms"), t_ms);
        record.time_ms(&format!("appendixj_m{chunk}_yannakakis"), t_ya);
        record.time_ms(&format!("appendixj_m{chunk}_lftj"), t_lf);
        table.row(&[
            chunk.to_string(),
            human(n),
            human(ms.stats.probe_points),
            human_time(t_ms),
            human_time(t_ya),
            human_time(t_lf),
            human(lf.stats.seeks),
            human_time(t_np),
            human_time(t_hj),
            human_time(t_il),
        ]);
        chunk *= 2;
    }
    table.print();
    println!(
        "\nPaper's shape: doubling M doubles Minesweeper's work (probes ∝ mM)\n\
         but quadruples every baseline's (they touch the Θ(M²) grids)."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
