//! Experiment `appendix_j` — the separation of Appendix J: on the
//! hidden-certificate path instances, Minesweeper runs in `Õ(mM)` while
//! Yannakakis, Leapfrog Triejoin, the NPRR generic join, and the binary
//! hash plan all need `Ω(mM²)` (they cannot skip the full `(M−1)²` grids).
//!
//! The binary also runs a **skewed parallel workload** per chunk size: a
//! path query whose first GAO attribute is one giant duplicate run, so
//! the sharded executor must engage its nested second-attribute split.
//! Its effective shard count and aggregate work counters are emitted as
//! `appendixj_skew_*` metrics — scheduling-independent (per-shard probe
//! loops are deterministic and the counters are their sum), so CI's
//! `bench_gate` can guard the nested-sharding path.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin appendix_j
//! [--m atoms] [--mmax chunk] [--json FILE]`. With `--json` the
//! deterministic work counters (and ungated wall times) are also written
//! as flat JSON for CI's `bench_gate` regression check.

use minesweeper_baselines::{
    generic_join, hash_join_plan, index_nested_loop, leapfrog_triejoin, yannakakis,
};
use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::{minesweeper_join, plan, Query};
use minesweeper_storage::{builder, Database};
use minesweeper_workloads::appendix_j::hidden_certificate_instance;

/// Workers for the skewed parallel runs — fixed so the shard split (and
/// hence the gated counters) is machine-independent.
const SKEW_THREADS: usize = 4;

/// A path instance `R(a,b) ⋈ S(b,c)` with every S tuple sharing one
/// attribute-2 value: under the planner's nested elimination order
/// `[2,1,0]` that value is a giant duplicate run on the first execution
/// attribute.
fn skewed_instance(n: i64) -> (Database, Query) {
    let mut db = Database::new();
    let r = db
        .add(builder::binary("R", (0..n).map(|i| ((i * 7) % n, i))))
        .unwrap();
    let s = db
        .add(builder::binary("S", (0..n).map(|i| (i, n + 1))))
        .unwrap();
    let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
    (db, q)
}

fn main() {
    let m: usize = arg_or("--m", 4);
    let mmax: i64 = arg_or("--mmax", 64);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Appendix J separation: path query with {m} relations, chunk width M\n\
         sweeping M (input N = Θ(m·M²) per relation, |C| = Θ(m·M), Z = 0).\n"
    );
    let mut table = Table::new(&[
        "M",
        "N",
        "MS probes",
        "MS time",
        "Yann time",
        "LFTJ time",
        "LFTJ seeks",
        "NPRR time",
        "Hash time",
        "INLJ time",
    ]);
    let mut chunk = 8i64;
    while chunk <= mmax {
        let inst = hidden_certificate_instance(m, chunk);
        let n = inst.db.total_tuples() as u64;
        let (ms, t_ms) =
            timed(|| minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap());
        assert!(ms.tuples.is_empty());
        let (ya, t_ya) = timed(|| yannakakis(&inst.db, &inst.query).unwrap());
        assert!(ya.tuples.is_empty());
        let (lf, t_lf) = timed(|| leapfrog_triejoin(&inst.db, &inst.query).unwrap());
        assert!(lf.tuples.is_empty());
        let (np, t_np) = timed(|| generic_join(&inst.db, &inst.query).unwrap());
        assert!(np.tuples.is_empty());
        let (hj, t_hj) = timed(|| hash_join_plan(&inst.db, &inst.query).unwrap());
        assert!(hj.tuples.is_empty());
        let (il, t_il) = timed(|| index_nested_loop(&inst.db, &inst.query).unwrap());
        assert!(il.tuples.is_empty());
        record.metric(
            format!("appendixj_m{chunk}_ms_probes"),
            ms.stats.probe_points,
        );
        record.metric(
            format!("appendixj_m{chunk}_ms_findgap"),
            ms.stats.find_gap_calls,
        );
        record.metric(format!("appendixj_m{chunk}_lftj_seeks"), lf.stats.seeks);
        record.time_ms(&format!("appendixj_m{chunk}_ms"), t_ms);
        record.time_ms(&format!("appendixj_m{chunk}_yannakakis"), t_ya);
        record.time_ms(&format!("appendixj_m{chunk}_lftj"), t_lf);
        table.row(&[
            chunk.to_string(),
            human(n),
            human(ms.stats.probe_points),
            human_time(t_ms),
            human_time(t_ya),
            human_time(t_lf),
            human(lf.stats.seeks),
            human_time(t_np),
            human_time(t_hj),
            human_time(t_il),
        ]);
        chunk *= 2;
    }
    table.print();
    println!(
        "\nPaper's shape: doubling M doubles Minesweeper's work (probes ∝ mM)\n\
         but quadruples every baseline's (they touch the Θ(M²) grids)."
    );

    println!(
        "\nSkewed parallel workload: one dominant first-GAO-attribute value,\n\
         {SKEW_THREADS} workers — the nested second-attribute split must engage.\n"
    );
    let mut skew_table = Table::new(&["M", "N", "shards", "nested", "Z", "probes", "par time"]);
    let mut chunk = 8i64;
    while chunk <= mmax {
        let n = chunk * 16;
        let (db, q) = skewed_instance(n);
        let p = plan(&db, &q).expect("skewed instance plans");
        let serial = p.execute(&db).expect("serial run");
        let (par, t_par) = timed(|| p.execute_parallel(&db, SKEW_THREADS).expect("parallel run"));
        assert_eq!(
            par.result.tuples, serial.result.tuples,
            "skewed parallel output must stay byte-identical"
        );
        let nested = par.shards.iter().filter(|s| s.spec.is_nested()).count();
        assert!(
            par.shards.len() > 1 && nested > 0,
            "nested split must engage on the duplicate run"
        );
        record.metric(
            format!("appendixj_skew_M{chunk}_shards"),
            par.shards.len() as u64,
        );
        record.metric(
            format!("appendixj_skew_M{chunk}_probes"),
            par.result.stats.probe_points,
        );
        record.metric(
            format!("appendixj_skew_M{chunk}_findgap"),
            par.result.stats.find_gap_calls,
        );
        record.time_ms(&format!("appendixj_skew_M{chunk}_par"), t_par);
        skew_table.row(&[
            chunk.to_string(),
            human(db.total_tuples() as u64),
            par.shards.len().to_string(),
            nested.to_string(),
            human(par.result.stats.outputs),
            human(par.result.stats.probe_points),
            human_time(t_par),
        ]);
        chunk *= 2;
    }
    skew_table.print();
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
