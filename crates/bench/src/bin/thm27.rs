//! Experiment `thm27` — Theorem 2.7's `Õ(|C| + Z)` guarantee, shown two
//! ways:
//!
//! 1. **Fixed N, varying |C|** — the block-intersection family (input size
//!    constant at 2n values; the certificate shrinks as blocks grow):
//!    Minesweeper's probe count and runtime must track `|C| ≈ n/b`, not N.
//! 2. **Certificate scaling** — the hidden-certificate path family at
//!    fixed m: probes must grow linearly in M (`|C| = Θ(mM)`) while the
//!    input grows quadratically.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin thm27
//! [--n size] [--m atoms] [--json FILE]`. With `--json` the deterministic
//! work counters and ungated wall times are written as flat JSON for CI's
//! `bench_gate` regression check.

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::{minesweeper_join, set_intersection};
use minesweeper_storage::TrieRelation;
use minesweeper_workloads::appendix_j::hidden_certificate_instance;
use minesweeper_workloads::intersection::blocks;

fn main() {
    let n: i64 = arg_or("--n", 1 << 16);
    let m: usize = arg_or("--m", 4);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Theorem 2.7: runtime Õ(|C| + Z) for β-acyclic queries under a NEO.\n\
         Part 1 — set intersection with N = {} fixed, block size b sweeping\n\
         (optimal certificate Θ(N/b)):\n",
        human(2 * n as u64)
    );
    let mut t1 = Table::new(&["b", "N", "|C| est", "probes", "time"]);
    let mut b = 4i64;
    while b <= n / 4 {
        let sets = blocks(n, b);
        let refs: Vec<&TrieRelation> = sets.iter().collect();
        let (res, t) = timed(|| set_intersection(&refs));
        assert!(res.tuples.is_empty());
        record.metric(
            format!("thm27_b{b}_findgap"),
            res.stats.certificate_estimate(),
        );
        record.metric(format!("thm27_b{b}_probes"), res.stats.probe_points);
        record.time_ms(&format!("thm27_b{b}"), t);
        t1.row(&[
            b.to_string(),
            human(2 * n as u64),
            human(res.stats.certificate_estimate()),
            human(res.stats.probe_points),
            human_time(t),
        ]);
        b *= 8;
    }
    t1.print();
    println!(
        "\nPart 2 — hidden-certificate path (m = {m}), M sweeping\n\
         (|C| = Θ(mM), N = Θ(mM²)): probes must grow ~linearly in M.\n"
    );
    let mut t2 = Table::new(&["M", "N", "|C| est", "probes", "probes/M", "time"]);
    for chunk in [8i64, 16, 32, 64] {
        let inst = hidden_certificate_instance(m, chunk);
        let (res, t) = timed(|| minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap());
        assert!(res.tuples.is_empty());
        record.metric(
            format!("thm27_M{chunk}_findgap"),
            res.stats.certificate_estimate(),
        );
        record.metric(format!("thm27_M{chunk}_probes"), res.stats.probe_points);
        record.time_ms(&format!("thm27_M{chunk}"), t);
        t2.row(&[
            chunk.to_string(),
            human(inst.db.total_tuples() as u64),
            human(res.stats.certificate_estimate()),
            human(res.stats.probe_points),
            format!("{:.1}", res.stats.probe_points as f64 / chunk as f64),
            human_time(t),
        ]);
    }
    t2.print();
    println!(
        "\nPaper's shape: both sweeps show work ∝ |C| while N is fixed (part 1)\n\
         or grows quadratically faster than the work (part 2)."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
