//! Experiment `appendix_i` — Theorem I.4: the bow-tie specialization
//! (Algorithm 9) runs in `O((|C| + Z) log N)`. The hidden-certificate
//! instance of Appendix I.3 is the stress test: its `O(1)` certificate is
//! invisible to the "lexicographic neighbour" strategy, and Yannakakis
//! must still scan `S` end to end.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin appendix_i
//! [--nmax size] [--json FILE]`. With `--json` the deterministic work
//! counters (bow-tie and generic-Minesweeper probe points, `FindGap`
//! calls — the I.3 instances are fully deterministic) and ungated wall
//! times are written as flat JSON for CI's `bench_gate` regression
//! check.

use minesweeper_baselines::yannakakis;
use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::{bowtie_join, minesweeper_join};
use minesweeper_workloads::examples::example_i3;

fn main() {
    let nmax: i64 = arg_or("--nmax", 1 << 18);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Appendix I: bow-tie R(X) ⋈ S(X,Y) ⋈ T(Y) on the I.3 instance\n\
         (|C| = O(1), Z = 0, N sweeping):\n"
    );
    let mut table = Table::new(&[
        "N",
        "bowtie probes",
        "bowtie time",
        "generic MS time",
        "Yannakakis time",
    ]);
    let mut n = 1i64 << 12;
    while n <= nmax {
        let inst = example_i3(n);
        let r = inst.db.relation_by_name("R").unwrap();
        let s = inst.db.relation_by_name("S").unwrap();
        let t = inst.db.relation_by_name("T").unwrap();
        let (bt, t_bt) = timed(|| bowtie_join(r, s, t));
        assert!(bt.tuples.is_empty());
        let (ms, t_ms) =
            timed(|| minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap());
        assert!(ms.tuples.is_empty());
        let (ya, t_ya) = timed(|| yannakakis(&inst.db, &inst.query).unwrap());
        assert!(ya.tuples.is_empty());
        record.metric(format!("apxi_n{n}_bowtie_probes"), bt.stats.probe_points);
        record.metric(format!("apxi_n{n}_ms_probes"), ms.stats.probe_points);
        record.metric(format!("apxi_n{n}_ms_findgap"), ms.stats.find_gap_calls);
        record.time_ms(&format!("apxi_n{n}_bowtie"), t_bt);
        record.time_ms(&format!("apxi_n{n}_ms"), t_ms);
        record.time_ms(&format!("apxi_n{n}_yannakakis"), t_ya);
        table.row(&[
            human(inst.db.total_tuples() as u64),
            bt.stats.probe_points.to_string(),
            human_time(t_bt),
            human_time(t_ms),
            human_time(t_ya),
        ]);
        n *= 4;
    }
    table.print();
    println!(
        "\nPaper's shape: bow-tie probes stay constant as N grows 64x;\n\
         Yannakakis' runtime grows linearly with N."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
