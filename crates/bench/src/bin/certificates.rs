//! Experiment `certificates` — the certificate phenomenology of
//! Section 2.2 / Appendix B, measured on the paper's own examples:
//!
//! * B.1: constant-size certificate, empty output;
//! * B.2: `|C| ≪ Z` (constant certificate, linear output);
//! * B.3/B.4: the same data under GAO `(A,B,C)` vs `(C,A,B)` — the
//!   certificate (and Minesweeper's work) changes by a factor of ~N;
//! * B.6: `(A,B)` vs `(B,A)` on matched diagonal relations;
//! * 2.1: the witness-structure example.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin certificates
//! [--n size] [--json FILE]`. With `--json` each example's deterministic
//! work counters (measured `FindGap` certificate proxy, probe points,
//! output size) and ungated wall times are written as flat JSON for CI's
//! `bench_gate` regression check.

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::{canonical_certificate_size, minesweeper_join, reindex_for_gao};
use minesweeper_workloads::examples::{
    example_2_1, example_b1, example_b2, example_b3, example_b6,
};
use minesweeper_workloads::queries::Instance;

fn report(
    table: &mut Table,
    record: &mut BenchRecord,
    (name, slug): (&str, &str),
    inst: &Instance,
    mode: ProbeMode,
) {
    let n = inst.db.total_tuples() as u64;
    let ub = canonical_certificate_size(&inst.db, &inst.query).unwrap();
    let (res, t) = timed(|| minesweeper_join(&inst.db, &inst.query, mode).unwrap());
    record.metric(
        format!("cert_{slug}_findgap"),
        res.stats.certificate_estimate(),
    );
    record.metric(format!("cert_{slug}_probes"), res.stats.probe_points);
    record.metric(format!("cert_{slug}_z"), res.stats.outputs);
    record.time_ms(&format!("cert_{slug}"), t);
    table.row(&[
        name.to_string(),
        human(n),
        human(ub),
        human(res.stats.certificate_estimate()),
        human(res.stats.outputs),
        human(res.stats.probe_points),
        human_time(t),
    ]);
}

fn main() {
    let n: i64 = arg_or("--n", 20_000);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Certificate phenomenology (Appendix B), N parameter = {}:\n\
         'cert UB' is the Prop 2.6 canonical certificate (≤ r·N);\n\
         '|C| est' is the measured FindGap count.\n",
        human(n as u64)
    );
    let mut table = Table::new(&["example", "N", "cert UB", "|C| est", "Z", "probes", "time"]);
    report(
        &mut table,
        &mut record,
        ("B.1 (|C|=O(1), Z=0)", "b1"),
        &example_b1(n),
        ProbeMode::Chain,
    );
    report(
        &mut table,
        &mut record,
        ("B.2 (|C|=O(1), Z=N)", "b2"),
        &example_b2(n),
        ProbeMode::Chain,
    );
    report(
        &mut table,
        &mut record,
        ("2.1 (Z=2N)", "e21"),
        &example_2_1(n),
        ProbeMode::Chain,
    );
    report(
        &mut table,
        &mut record,
        ("B.6 GAO (A,B)", "b6"),
        &example_b6(n),
        ProbeMode::Chain,
    );
    // B.3 vs B.4: same data, two GAOs. Keep N small — the (A,B,C) order
    // really does quadratic work.
    let nb = (n as f64).sqrt() as i64 + 1;
    let b3 = example_b3(nb);
    report(
        &mut table,
        &mut record,
        ("B.3 GAO (A,B,C)", "b3"),
        &b3,
        ProbeMode::General,
    );
    let (db2, q2) = reindex_for_gao(&b3.db, &b3.query, &[2, 0, 1]).unwrap();
    let b4 = Instance { db: db2, query: q2 };
    report(
        &mut table,
        &mut record,
        ("B.4 GAO (C,A,B)", "b4"),
        &b4,
        ProbeMode::Chain,
    );
    table.print();
    println!(
        "\nPaper's shape: B.1/B.2 finish in O(1) probes regardless of N and Z\n\
         only adds Θ(Z); B.3 vs B.4 shows the GAO changing |C| by ~N^(1/2)\n\
         on this sizing (Θ(N²) vs Θ(N) in the paper's parameterization)."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
