//! Experiment `durability` — the write-ahead log and recovery, priced.
//!
//! The durability subsystem promises lossless recovery (see
//! `docs/DURABILITY.md`): every committed batch is logged before it
//! applies, a checkpoint pins a consistent snapshot plus a WAL
//! position, and reopening a directory replays exactly the tail. This
//! harness prices that contract with deterministic counters:
//!
//! 1. **Log** — a fixed insert/delete workload through a durable
//!    engine: one WAL record per committed batch, with the encoded byte
//!    volume gated (the text format is deterministic for a fixed
//!    workload).
//! 2. **Checkpoint** — a mid-run checkpoint dumps every relation's
//!    decoded rows; the dump size is gated.
//! 3. **Recover** — the directory reopens after more batches: the
//!    replayed-record count and the recovered join's output size must
//!    both match the never-crashed run exactly.
//! 4. **Torn tail** — the final record is cut mid-line; recovery
//!    truncates, warns, and replays one record fewer.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin durability
//! [--n size] [--json FILE]`.

use std::path::PathBuf;

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_join::durability::wal::{list_segments, read_segment_bytes, write_segment_bytes};
use minesweeper_join::durability::{DurabilityOptions, FsyncPolicy};
use minesweeper_join::engine::{DurableBoot, Engine, ExecOptions};
use minesweeper_storage::{Val, Value};

/// Scratch directory for the run, removed on exit.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("msj-bench-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Counters, not wall time, are the contract — skip fsync so the
/// numbers price the log and recovery code, not the disk.
fn options() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Never,
        ..DurabilityOptions::default()
    }
}

fn int_rows(pairs: impl IntoIterator<Item = (Val, Val)>) -> Vec<Vec<Value>> {
    pairs
        .into_iter()
        .map(|(a, b)| vec![Value::Int(a), Value::Int(b)])
        .collect()
}

/// Loads the fixed base tables: `R(a, b)` with three children per left
/// value and `S(b, c)` mapping every right value.
fn load_base(e: &mut Engine, n: Val) {
    let r: String = (0..n)
        .flat_map(|a| (0..3).map(move |k| format!("{a} {}\n", (a * 7 + k * 11) % (2 * n))))
        .collect();
    let s: String = (0..2 * n).map(|b| format!("{b} {}\n", b % 97)).collect();
    e.load_tsv("R", &r).unwrap();
    e.load_tsv("S", &s).unwrap();
}

/// The committed batches, in two halves: `0..half` land before the
/// mid-run checkpoint, the rest form the WAL tail recovery replays.
fn batch(e: &Engine, n: Val, i: Val) -> u64 {
    let out = match i % 3 {
        0 => e
            .insert("R", int_rows([(i % n, (i * 13 + 5) % (2 * n)), (n + i, i)]))
            .unwrap(),
        1 => e
            .delete("R", int_rows([(i % n, ((i % n) * 7) % (2 * n))]))
            .unwrap(),
        _ => e
            .insert("S", int_rows([((2 * n + i) % (3 * n), i % 97)]))
            .unwrap(),
    };
    out.affected() as u64
}

fn main() {
    let n: Val = arg_or("--n", 512);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Durability: write-ahead log + checkpoint + recovery at n = {n} —\n\
         logged batches, dump sizes, and replay counts, all deterministic.\n"
    );

    let batches = n / 4;
    let half = batches / 2;
    let query = "R(a, b), S(b, c)";
    let opts = ExecOptions::default();
    let dir = scratch_dir();

    // ---- phase 1: log a fixed workload through a durable engine.
    let (mut engine, boot) = Engine::open_durable(&dir, options()).expect("open scratch dir");
    assert!(matches!(boot, DurableBoot::Fresh), "scratch dir is new");
    load_base(&mut engine, n);
    engine.checkpoint().expect("boot checkpoint").unwrap();
    let (changed, t_log) = timed(|| (0..half).map(|i| batch(&engine, n, i)).sum::<u64>());
    let stats = engine.durability_stats().unwrap();
    assert_eq!(stats.wal_records, half as u64, "one record per batch");
    record.metric("durability_wal_records", stats.wal_records);
    record.metric("durability_wal_bytes", stats.wal_bytes);
    record.metric("durability_changed_rows", changed);
    record.time_ms("durability_log", t_log);

    // ---- phase 2: a mid-run checkpoint pins snapshot + WAL position.
    let (report, t_ckpt) = timed(|| engine.checkpoint().expect("checkpoint").unwrap());
    record.metric("durability_checkpoint_relations", report.relations as u64);
    record.metric("durability_checkpoint_rows", report.rows);
    record.time_ms("durability_checkpoint", t_ckpt);

    // ---- phase 3: more batches form the tail; reopening replays them.
    for i in half..batches {
        batch(&engine, n, i);
    }
    let z_live = engine
        .prepare(query)
        .unwrap()
        .execute(&opts)
        .unwrap()
        .rows
        .len();
    drop(engine);
    let ((engine, boot), t_recover) =
        timed(|| Engine::open_durable(&dir, options()).expect("reopen scratch dir"));
    let report = match boot {
        DurableBoot::Recovered(r) => r,
        DurableBoot::Fresh => panic!("the directory holds data"),
    };
    assert!(
        report.warnings.is_empty(),
        "clean log: {:?}",
        report.warnings
    );
    assert_eq!(
        report.replayed_records,
        (batches - half) as u64,
        "the tail is every batch after the checkpoint"
    );
    let z_after = engine
        .prepare(query)
        .unwrap()
        .execute(&opts)
        .unwrap()
        .rows
        .len();
    assert_eq!(z_after, z_live, "recovery must not change any answer");
    record.metric("durability_replayed_records", report.replayed_records);
    record.metric("durability_z_after", z_after as u64);
    record.time_ms("durability_recover", t_recover);

    // ---- phase 4: a torn final record is truncated, never refused.
    drop(engine);
    let wal_dir = dir.join("wal");
    let last = *list_segments(&wal_dir).unwrap().last().unwrap();
    let bytes = read_segment_bytes(&wal_dir, last).unwrap();
    write_segment_bytes(&wal_dir, last, &bytes[..bytes.len() - 3]).unwrap();
    let ((engine, boot), t_torn) =
        timed(|| Engine::open_durable(&dir, options()).expect("torn tails are tolerated"));
    let report = match boot {
        DurableBoot::Recovered(r) => r,
        DurableBoot::Fresh => panic!("the directory holds data"),
    };
    assert!(
        report.warnings.iter().any(|w| w.contains("truncated")),
        "the cut surfaces as a truncation warning: {:?}",
        report.warnings
    );
    assert_eq!(
        report.replayed_records,
        (batches - half) as u64 - 1,
        "exactly the cut record is lost"
    );
    record.metric("durability_torn_replayed", report.replayed_records);
    record.time_ms("durability_torn_recover", t_torn);
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);

    let mut table = Table::new(&["counter", "value"]);
    for (name, value) in record.metrics() {
        table.row(&[name.clone(), human(*value as u64)]);
    }
    table.print();
    println!(
        "\nlog {} · checkpoint {} · recover {} · torn {}",
        human_time(t_log),
        human_time(t_ckpt),
        human_time(t_recover),
        human_time(t_torn)
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
