//! Experiment `prop53` — Proposition 5.3: on `Q_w` (here `w = 2`),
//! Minesweeper's CDS must execute `Ω(m^w)` chain merges even though
//! `|C| = O(wm)`. Probe points stay `O(m)` — the cost shows up in
//! backtracks and `Next` calls, exactly the "Line 17" executions the
//! paper's proof counts.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin prop53
//! [--mmax m] [--json FILE]`. With `--json` the deterministic work
//! counters (probe points, backtracks, CDS next calls — `Q_w` instances
//! are fully deterministic) and ungated wall times are written as flat
//! JSON for CI's `bench_gate` regression check.

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::{canonical_certificate_size, minesweeper_join};
use minesweeper_workloads::prop53::qw_instance;

fn main() {
    let mmax: i64 = arg_or("--mmax", 48);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    println!(
        "Proposition 5.3: Q_2 = R12 ⋈ R13 ⋈ R23 ⋈ U with |C| = O(m);\n\
         Minesweeper's merge work must grow ~m² (backtracks / Next calls).\n"
    );
    let mut table = Table::new(&[
        "m",
        "N",
        "cert UB",
        "probes",
        "backtracks",
        "bt/m^2",
        "next calls",
        "time",
    ]);
    let mut m = 6i64;
    while m <= mmax {
        let inst = qw_instance(2, m);
        let cert = canonical_certificate_size(&inst.db, &inst.query).unwrap();
        let (res, t) =
            timed(|| minesweeper_join(&inst.db, &inst.query, ProbeMode::General).unwrap());
        assert!(res.tuples.is_empty());
        record.metric(format!("prop53_m{m}_probes"), res.stats.probe_points);
        record.metric(format!("prop53_m{m}_backtracks"), res.stats.backtracks);
        record.metric(format!("prop53_m{m}_next"), res.stats.cds_next_calls);
        record.time_ms(&format!("prop53_m{m}"), t);
        table.row(&[
            m.to_string(),
            human(inst.db.total_tuples() as u64),
            human(cert),
            human(res.stats.probe_points),
            human(res.stats.backtracks),
            format!("{:.2}", res.stats.backtracks as f64 / (m * m) as f64),
            human(res.stats.cds_next_calls),
            human_time(t),
        ]);
        m *= 2;
    }
    table.print();
    println!(
        "\nPaper's shape: backtracks/m² stays ~constant (the Ω(m^w) lower\n\
         bound for Minesweeper, tight against Theorem 5.1's O(|C|^{{w+1}}))."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
